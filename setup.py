"""Legacy setup shim.

Kept so ``pip install -e .`` works on minimal environments without the
``wheel`` package (pip falls back to ``setup.py develop`` when no
``[build-system]`` table forces PEP 517).  All metadata lives in
``pyproject.toml`` (PEP 621), which setuptools reads.
"""

from setuptools import setup

setup()
