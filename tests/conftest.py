"""Shared fixtures for the test suite."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro import obs
from repro.db import FiniteInstance, FRInstance, Schema
from repro.logic import between, variables


@pytest.fixture(autouse=True)
def _obs_isolation():
    """Every test starts and ends with observability off and zeroed."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministically seeded NumPy generator."""
    return np.random.default_rng(20260704)


@pytest.fixture
def xy():
    """The two workhorse variables."""
    return variables("x y")


@pytest.fixture
def unary_schema() -> Schema:
    return Schema.make({"U": 1})


@pytest.fixture
def unary_instance(unary_schema) -> FiniteInstance:
    """U = {1/4, 1/2, 3/4}."""
    return FiniteInstance.make(
        unary_schema, {"U": [Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)]}
    )


@pytest.fixture
def triangle_instance() -> FRInstance:
    """S(x, y) = the triangle 0 <= y <= x <= 1 (area 1/2)."""
    x, y = variables("x y")
    schema = Schema.make({"S": 2})
    body = (0 <= y) & (y <= x) & (x <= 1)
    return FRInstance.make(schema, {"S": ((x, y), body)})


@pytest.fixture
def square_instance() -> FRInstance:
    """S(x, y) = the unit square."""
    x, y = variables("x y")
    schema = Schema.make({"S": 2})
    body = between(0, x, 1) & between(0, y, 1)
    return FRInstance.make(schema, {"S": ((x, y), body)})
