"""The exact -> approximate degradation ladder (``robust_volume``)."""

from fractions import Fraction

import numpy as np
import pytest

from repro import ApproximationError, guard, obs
from repro.guard import (
    Budget,
    BudgetExceeded,
    DeadlineExceeded,
    RobustResult,
    robust_volume,
    testing,
)
from repro.logic import exists, variables

x, y, z = variables("x y z")

TRIANGLE = (0 <= y) & (y <= x) & (x <= 1)


def rng():
    return np.random.default_rng(0)


def find_spans(trace, name):
    found = []

    def walk(record):
        if record.name == name:
            found.append(record)
        for child in record.children:
            walk(child)

    for root in trace.roots:
        walk(root)
    return found


class TestExactRung:
    def test_no_budget_stays_exact(self):
        result = robust_volume(TRIANGLE, ("x", "y"))
        assert result.mode == "exact"
        assert result.value == Fraction(1, 2)
        assert isinstance(result.value, Fraction)
        assert result.confidence_radius is None
        assert result.attempts == []

    def test_ample_budget_stays_exact(self):
        result = robust_volume(
            TRIANGLE, ("x", "y"), budget=Budget(deadline_s=60, max_cells=10**6)
        )
        assert result.mode == "exact"
        assert result.value == Fraction(1, 2)

    def test_uses_contextually_active_budget(self):
        with guard.activate(Budget(deadline_s=0)):
            with pytest.raises(DeadlineExceeded):
                robust_volume(TRIANGLE, ("x", "y"), policy="off")

    def test_float_protocol(self):
        assert float(robust_volume(TRIANGLE, ("x", "y"))) == 0.5

    def test_variables_default_to_sorted_free_variables(self):
        result = robust_volume(TRIANGLE)
        assert result.value == Fraction(1, 2)

    def test_custom_box(self):
        box = [(Fraction(0), Fraction(2)), (Fraction(0), Fraction(2))]
        result = robust_volume(TRIANGLE, ("x", "y"), box=box)
        # The triangle is unchanged; only the integration box grew.
        assert result.value == Fraction(1, 2)


class TestDegradation:
    def test_one_trip_degrades_to_exact_coarse(self):
        # Kill exactly the first rung; the prune-free retry still succeeds.
        with testing.trip_after(1, resource="cells", times=1):
            result = robust_volume(TRIANGLE, ("x", "y"), policy="auto")
        assert result.mode == "exact-coarse"
        assert result.value == Fraction(1, 2)
        assert [mode for mode, _ in result.attempts] == ["exact"]

    def test_deadline_degrades_to_approximate(self):
        result = robust_volume(
            TRIANGLE, ("x", "y"), budget=Budget(deadline_s=0), policy="auto",
            epsilon=0.1, delta=0.05, rng=rng(),
        )
        assert result.mode == "approximate"
        assert [mode for mode, _ in result.attempts] == ["exact", "exact-coarse"]
        assert all(isinstance(e, DeadlineExceeded) for _, e in result.attempts)
        assert abs(result.value - 0.5) < 0.1
        assert result.confidence_radius is not None
        assert result.samples >= 1
        assert result.epsilon == 0.1

    def test_policy_off_propagates_first_exhaustion(self):
        with pytest.raises(DeadlineExceeded):
            robust_volume(
                TRIANGLE, ("x", "y"), budget=Budget(deadline_s=0), policy="off"
            )

    def test_approx_only_skips_exact_rungs(self):
        result = robust_volume(
            TRIANGLE, ("x", "y"), policy="approx-only", epsilon=0.1, rng=rng()
        )
        assert result.mode == "approximate"
        assert result.attempts == []
        assert abs(result.value - 0.5) < 0.1

    def test_unknown_policy_rejected(self):
        with pytest.raises(ApproximationError):
            robust_volume(TRIANGLE, ("x", "y"), policy="yolo")

    def test_countable_consumption_reset_between_rungs(self):
        # A cell budget the exact rungs each exceed on their own still lets
        # both rungs *start* from zero: the first injected trip consumes the
        # injector, then the coarse rung finishes within the real cap.
        budget = Budget(max_cells=10)
        with testing.trip_after(1, resource="cells", times=1):
            result = robust_volume(
                TRIANGLE, ("x", "y"), budget=budget, policy="auto"
            )
        assert result.mode == "exact-coarse"
        assert budget.cells <= 10

    def test_quantified_formula_falls_back_through_qe(self):
        # The approximate rung must eliminate quantifiers before sampling.
        formula = exists(z, (0 <= z) & (z <= y) & (y <= x) & (x <= 1))
        result = robust_volume(
            formula, ("x", "y"), policy="approx-only", epsilon=0.1, rng=rng()
        )
        assert result.mode == "approximate"
        assert abs(result.value - 0.5) < 0.1


class TestObsIntegration:
    def test_fallback_transitions_counted_and_span_annotated(self):
        trace = obs.enable("fallback-test")
        try:
            robust_volume(
                TRIANGLE, ("x", "y"), budget=Budget(deadline_s=0),
                policy="auto", rng=rng(),
            )
            assert obs.REGISTRY.value("guard.fallback_transitions") == 2
            assert obs.REGISTRY.value("guard.trips.deadline") == 2
            (span,) = find_spans(trace, "guard.robust_volume")
            assert span.attrs["policy"] == "auto"
            assert span.attrs["deadline_s"] == 0
            assert span.attrs["mode"] == "approximate"
        finally:
            obs.disable()

    def test_exact_span_mode(self):
        trace = obs.enable("fallback-test")
        try:
            robust_volume(TRIANGLE, ("x", "y"))
            (span,) = find_spans(trace, "guard.robust_volume")
            assert span.attrs["mode"] == "exact"
        finally:
            obs.disable()


class TestRobustResult:
    def test_is_importable_from_guard(self):
        assert RobustResult is not None
        assert isinstance(robust_volume(TRIANGLE, ("x", "y")), RobustResult)

    def test_attempt_errors_are_budget_exceeded(self):
        result = robust_volume(
            TRIANGLE, ("x", "y"), budget=Budget(deadline_s=0), policy="auto",
            rng=rng(),
        )
        for _, error in result.attempts:
            assert isinstance(error, BudgetExceeded)
