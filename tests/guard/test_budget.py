"""Budgets, checkpoints, and every exhaustion path of the resource governor."""

from fractions import Fraction

import pytest

from repro import QEError, ReproError, guard, obs
from repro.guard import (
    Budget,
    BudgetExceeded,
    CellBudgetExceeded,
    ConstraintBudgetExceeded,
    DeadlineExceeded,
    DepthBudgetExceeded,
    RetryBudgetExceeded,
    SizeBudgetExceeded,
    testing,
)
from repro.geometry import formula_volume_unit_cube
from repro.logic import exists, variables
from repro.qe import qe_linear
from repro.qe.cad import decide

x, y, z = variables("x y z")

#: A 2-cell semi-linear query: enough checkpoints/cells to trip tiny budgets.
TRIANGLE = (0 <= y) & (y <= x) & (x <= 1)
UNION = (x < Fraction(1, 4)) | (x > Fraction(3, 4))


class TestBudgetObject:
    def test_caps_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            Budget(deadline_s=-1)
        with pytest.raises(ValueError):
            Budget(max_cells=-5)

    def test_unknown_charge_resource_rejected(self):
        with pytest.raises(ValueError):
            Budget().charge("polynomials")

    def test_clock_starts_once(self):
        budget = Budget(deadline_s=100)
        budget.start()
        first = budget.started_s
        budget.start()
        assert budget.started_s == first

    def test_reset_consumed_keeps_clock_and_checkpoints(self):
        budget = Budget()
        budget.start()
        budget.charge("cells", 3)
        budget.charge("constraints", 2)
        budget.check_size(7)
        budget.check_depth(4)
        budget.checkpoint()
        budget.reset_consumed()
        assert budget.cells == 0
        assert budget.constraints == 0
        assert budget.peak_size == 0
        assert budget.peak_depth == 0
        assert budget.checkpoints == 1
        assert budget.started_s is not None

    def test_repr_names_configured_caps(self):
        assert "max_cells=5" in repr(Budget(max_cells=5))
        assert repr(Budget()) == "Budget(unlimited)"

    def test_remaining_s_none_without_deadline(self):
        assert Budget().remaining_s() is None
        assert Budget(max_cells=10).remaining_s() is None

    def test_remaining_s_full_allowance_before_start(self):
        assert Budget(deadline_s=7.5).remaining_s() == 7.5

    def test_remaining_s_decreases_after_start(self):
        import time

        budget = Budget(deadline_s=60)
        budget.start()
        first = budget.remaining_s()
        assert first <= 60
        time.sleep(0.01)
        assert budget.remaining_s() < first

    def test_remaining_s_clamps_at_zero(self):
        import time

        budget = Budget(deadline_s=0.001)
        budget.start()
        time.sleep(0.01)
        assert budget.remaining_s() == 0.0


class TestExhaustionPaths:
    """One real (non-injected) trip per budgeted resource."""

    def test_deadline(self):
        with pytest.raises(DeadlineExceeded) as info:
            with guard.activate(Budget(deadline_s=0)):
                formula_volume_unit_cube(TRIANGLE, ("x", "y"))
        error = info.value
        assert error.resource == "deadline"
        assert error.limit == 0
        assert error.elapsed_s >= 0
        assert error.progress["checkpoints"] >= 1

    def test_cells_via_decomposition(self):
        with pytest.raises(CellBudgetExceeded) as info:
            with guard.activate(Budget(max_cells=1)):
                formula_volume_unit_cube(UNION, ("x",))
        assert info.value.consumed > info.value.limit == 1

    def test_cells_via_cad_lifting(self):
        with pytest.raises(CellBudgetExceeded):
            with guard.activate(Budget(max_cells=2)):
                decide(exists(x, (x * x).eq(2)))

    def test_constraints_via_fourier_motzkin(self):
        body = (0 <= z) & (z <= x) & (z <= y) & (x <= 1) & (y <= 1)
        with pytest.raises(ConstraintBudgetExceeded):
            with guard.activate(Budget(max_constraints=1)):
                qe_linear(exists(z, body))

    def test_size_via_dnf_expansion(self):
        # ((a or b) and (c or d) and ...) explodes to 2^k DNF conjuncts.
        clauses = [(x <= Fraction(i)) | (y <= Fraction(i)) for i in range(4)]
        formula = clauses[0]
        for clause in clauses[1:]:
            formula = formula & clause
        with pytest.raises(SizeBudgetExceeded) as info:
            with guard.activate(Budget(max_size=3)):
                qe_linear(exists(z, (z <= x) & formula))
        assert info.value.consumed > 3

    def test_depth_via_cad_recursion(self):
        with pytest.raises(DepthBudgetExceeded):
            with guard.activate(Budget(max_depth=1)):
                decide(exists(x, exists(y, (x * x + y * y) < 1)))

    def test_depth_cap_allows_shallow_queries(self):
        with guard.activate(Budget(max_depth=5)):
            assert decide(exists(x, (x * x).eq(2))) is True


class TestRetryBudget:
    """The retry budget the batch executor spends on transient failures."""

    def test_charges_then_trips(self):
        budget = Budget(max_retries=2)
        budget.charge("retries")
        budget.charge("retries")
        with pytest.raises(RetryBudgetExceeded) as info:
            budget.charge("retries")
        assert info.value.resource == "retries"
        assert budget.retries == 3
        assert budget.snapshot()["retries"] == 3
        assert budget.limits()["max_retries"] == 2

    def test_unlimited_without_cap(self):
        budget = Budget()
        for _ in range(10):
            budget.charge("retries")
        assert budget.retries == 10

    def test_reset_consumed_keeps_retry_history(self):
        # A per-attempt reset must never erase how many attempts there
        # were — that history is what quarantine decisions hang on.
        budget = Budget(max_retries=1)
        budget.charge("retries")
        budget.reset_consumed()
        assert budget.retries == 1
        with pytest.raises(RetryBudgetExceeded):
            budget.charge("retries")

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            Budget(max_retries=-1)

    def test_is_a_budget_exceeded(self):
        assert issubclass(RetryBudgetExceeded, BudgetExceeded)

    def test_injectable_via_trip_after(self):
        with testing.trip_after(1, resource="retries"):
            with pytest.raises(RetryBudgetExceeded):
                guard.checkpoint()


class TestErrorTaxonomy:
    def test_all_trips_are_repro_errors(self):
        assert issubclass(BudgetExceeded, ReproError)
        for cls in (DeadlineExceeded, CellBudgetExceeded,
                    ConstraintBudgetExceeded, SizeBudgetExceeded,
                    DepthBudgetExceeded):
            assert issubclass(cls, BudgetExceeded)

    def test_depth_exhaustion_is_also_a_qe_error(self):
        # Callers wrapping decide()/find_sample() in `except QEError` keep
        # working when the recursion budget trips.
        assert issubclass(DepthBudgetExceeded, QEError)

    def test_recursion_error_becomes_depth_budget_exceeded(self, monkeypatch):
        from repro.qe import cad

        def boom(*args, **kwargs):
            raise RecursionError("maximum recursion depth exceeded")

        monkeypatch.setattr(cad, "_stack_samples", boom)
        with pytest.raises(DepthBudgetExceeded) as info:
            decide(exists(x, (x * x).eq(2)))
        message = str(info.value)
        assert "variable order" in message
        assert "x" in message
        assert info.value.resource == "depth"

    def test_message_reports_consumption_and_progress(self):
        with pytest.raises(BudgetExceeded) as info:
            with guard.activate(Budget(max_cells=0)):
                formula_volume_unit_cube(TRIANGLE, ("x", "y"))
        assert "cells budget exceeded" in str(info.value)
        assert "progress:" in str(info.value)


class TestFaultInjection:
    def test_trips_exact_checkpoint(self):
        with testing.trip_after(2, resource="deadline") as spec:
            with pytest.raises(DeadlineExceeded):
                guard.checkpoint()
                guard.checkpoint()
        assert spec["count"] == 2

    def test_resource_picks_exception_class(self):
        for resource, cls in (
            ("cells", CellBudgetExceeded),
            ("constraints", ConstraintBudgetExceeded),
            ("size", SizeBudgetExceeded),
            ("depth", DepthBudgetExceeded),
        ):
            with testing.trip_after(1, resource=resource):
                with pytest.raises(cls):
                    guard.checkpoint()

    def test_times_bounds_the_trips(self):
        with testing.trip_after(1, resource="cells", times=2):
            for _ in range(2):
                with pytest.raises(CellBudgetExceeded):
                    guard.checkpoint()
            guard.checkpoint()  # injector is inert after two trips

    def test_injection_works_without_a_budget(self):
        # The injector rides the checkpoint hook even when ungoverned.
        with testing.trip_after(1):
            with pytest.raises(DeadlineExceeded):
                formula_volume_unit_cube(TRIANGLE, ("x", "y"))

    def test_validation(self):
        with pytest.raises(ValueError):
            with testing.trip_after(0):
                pass
        with pytest.raises(ValueError):
            with testing.trip_after(1, resource="entropy"):
                pass

    def test_injector_uninstalled_on_exit(self):
        with testing.trip_after(1, times=1):
            with pytest.raises(DeadlineExceeded):
                guard.checkpoint()
        guard.checkpoint()  # no spec left behind


class TestContextManagement:
    def test_checkpoint_is_noop_when_ungoverned(self):
        assert guard.active() is None
        guard.checkpoint()
        guard.charge("cells", 10)
        guard.check_size(10**9)
        guard.check_depth(10**9)

    def test_govern_none_is_noop(self):
        with guard.govern(None):
            assert guard.active() is None

    def test_activate_installs_and_restores(self):
        budget = Budget(max_cells=100)
        with guard.activate(budget) as installed:
            assert installed is budget
            assert guard.active() is budget
        assert guard.active() is None

    def test_nested_activation_restores_outer(self):
        outer, inner = Budget(), Budget()
        with guard.activate(outer):
            with guard.activate(inner):
                assert guard.active() is inner
            assert guard.active() is outer

    def test_suspend_pauses_budget_and_injection(self):
        budget = Budget(deadline_s=0)
        with guard.activate(budget):
            with testing.trip_after(1):
                with guard.suspend():
                    assert guard.active() is None
                    guard.checkpoint()  # neither deadline nor injection fires
                with pytest.raises(BudgetExceeded):
                    guard.checkpoint()


class TestObsIntegration:
    def test_trip_counters(self):
        obs.enable("guard-test")
        try:
            with pytest.raises(CellBudgetExceeded):
                with guard.activate(Budget(max_cells=0)):
                    formula_volume_unit_cube(TRIANGLE, ("x", "y"))
            assert obs.REGISTRY.value("guard.trips") == 1
            assert obs.REGISTRY.value("guard.trips.cells") == 1
        finally:
            obs.disable()

    def test_checkpoints_flushed_on_deactivation(self):
        obs.enable("guard-test")
        try:
            budget = Budget(deadline_s=60)
            with guard.activate(budget):
                for _ in range(5):
                    guard.checkpoint()
                assert obs.REGISTRY.value("guard.checkpoints") == 0
            assert obs.REGISTRY.value("guard.checkpoints") == 5
            with guard.activate(budget):
                guard.checkpoint()
            # Re-activation flushes only the fresh delta.
            assert obs.REGISTRY.value("guard.checkpoints") == 6
        finally:
            obs.disable()

    def test_guard_metrics_are_catalogued(self):
        for name in ("guard.checkpoints", "guard.trips", "guard.trips.deadline",
                     "guard.trips.cells", "guard.trips.constraints",
                     "guard.trips.size", "guard.trips.depth",
                     "guard.fallback_transitions"):
            kind, description = obs.CATALOGUE[name]
            assert kind == "counter"
            assert description
