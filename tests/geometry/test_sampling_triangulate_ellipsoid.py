"""Monte Carlo sampling, triangulation baselines, and MVEE."""

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.logic import between, variables
from repro.geometry import (
    compile_formula_numpy,
    convex_hull_volume_float,
    exact_membership,
    fan_triangulation_area,
    hit_or_miss_volume,
    hoeffding_sample_size,
    john_volume_estimate,
    mvee,
    shoelace_area,
    simplex_volume,
    sort_ccw,
    triangle_area,
    unit_ball_volume,
)
from repro._errors import ApproximationError, GeometryError

x, y = variables("x y")


class TestCompiled:
    def test_predicate_matches_exact(self, rng):
        f = (x**2 + y**2 < 1) & (y > x * Fraction(1, 2))
        compiled = compile_formula_numpy(f, ("x", "y"))
        member = exact_membership(f, ("x", "y"))
        pts = rng.random((200, 2))
        flags = compiled(pts)
        for point, flag in zip(pts, flags):
            exact = member([Fraction(point[0]).limit_denominator(10**9),
                            Fraction(point[1]).limit_denominator(10**9)])
            assert exact == bool(flag)

    def test_boolean_structure(self, rng):
        f = ((x < Fraction(1, 2)) | (y < Fraction(1, 2))) & ~(x.eq(y))
        compiled = compile_formula_numpy(f, ("x", "y"))
        pts = np.array([[0.2, 0.9], [0.9, 0.9], [0.3, 0.3]])
        assert list(compiled(pts)) == [True, False, False]

    def test_quantifier_rejected(self):
        from repro.logic import exists

        with pytest.raises(ApproximationError):
            compile_formula_numpy(exists(y, y > x), ("x",))


class TestMonteCarlo:
    def test_quarter_disk(self, rng):
        est = hit_or_miss_volume(x**2 + y**2 < 1, ("x", "y"), 40_000, rng)
        assert abs(est.estimate - math.pi / 4) < 0.02

    def test_confidence_radius_shrinks(self, rng):
        small = hit_or_miss_volume(x < Fraction(1, 2), ("x",), 100, rng)
        large = hit_or_miss_volume(x < Fraction(1, 2), ("x",), 10_000, rng)
        assert large.confidence_radius < small.confidence_radius

    def test_custom_box_scales(self, rng):
        est = hit_or_miss_volume(
            between(0, x, 2), ("x",), 1000, rng, box=[(0.0, 2.0)]
        )
        assert est.estimate == pytest.approx(2.0)

    def test_hoeffding_sample_size_monotone(self):
        assert hoeffding_sample_size(0.01, 0.05) > hoeffding_sample_size(0.1, 0.05)
        with pytest.raises(ApproximationError):
            hoeffding_sample_size(0.0, 0.05)

    def test_zero_samples_rejected(self, rng):
        with pytest.raises(ApproximationError):
            hit_or_miss_volume(x < 1, ("x",), 0, rng)


class TestTriangulation:
    def test_triangle_area_formula(self):
        a, b, c = (Fraction(0), Fraction(0)), (Fraction(1), Fraction(0)), (Fraction(0), Fraction(1))
        assert triangle_area(a, b, c) == Fraction(1, 2)
        # orientation-independent
        assert triangle_area(a, c, b) == Fraction(1, 2)

    def test_degenerate_triangle(self):
        a, b, c = (Fraction(0), Fraction(0)), (Fraction(1), Fraction(1)), (Fraction(2), Fraction(2))
        assert triangle_area(a, b, c) == 0

    def test_simplex_volume_3d(self):
        vertices = [
            (Fraction(0), Fraction(0), Fraction(0)),
            (Fraction(1), Fraction(0), Fraction(0)),
            (Fraction(0), Fraction(1), Fraction(0)),
            (Fraction(0), Fraction(0), Fraction(1)),
        ]
        assert simplex_volume(vertices) == Fraction(1, 6)

    def test_simplex_vertex_count_checked(self):
        with pytest.raises(GeometryError):
            simplex_volume([(Fraction(0), Fraction(0))])

    def test_fan_equals_shoelace(self):
        pentagon = [
            (Fraction(0), Fraction(0)),
            (Fraction(2), Fraction(0)),
            (Fraction(3), Fraction(2)),
            (Fraction(1), Fraction(3)),
            (Fraction(-1), Fraction(1)),
        ]
        assert fan_triangulation_area(pentagon) == shoelace_area(pentagon)

    def test_fan_input_order_independent(self):
        square = [
            (Fraction(0), Fraction(0)),
            (Fraction(1), Fraction(1)),
            (Fraction(1), Fraction(0)),
            (Fraction(0), Fraction(1)),
        ]
        assert fan_triangulation_area(square) == 1

    def test_sort_ccw_produces_positive_shoelace(self):
        scrambled = [
            (Fraction(1), Fraction(1)),
            (Fraction(0), Fraction(0)),
            (Fraction(0), Fraction(1)),
            (Fraction(1), Fraction(0)),
        ]
        assert shoelace_area(sort_ccw(scrambled)) == 1

    def test_qhull_agreement(self):
        pts = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]
        assert convex_hull_volume_float(pts) == pytest.approx(1.0)


class TestEllipsoid:
    def test_unit_ball_volumes(self):
        assert unit_ball_volume(1) == pytest.approx(2.0)
        assert unit_ball_volume(2) == pytest.approx(math.pi)
        assert unit_ball_volume(3) == pytest.approx(4 * math.pi / 3)

    def test_mvee_contains_points(self):
        pts = [(0.0, 0.0), (4.0, 0.0), (4.0, 1.0), (0.0, 1.0), (2.0, 0.5)]
        e = mvee(pts)
        for p in pts:
            assert e.contains(np.array(p), slack=1e-6)

    def test_mvee_of_square_is_circle_like(self):
        pts = [(-1.0, -1.0), (1.0, -1.0), (1.0, 1.0), (-1.0, 1.0)]
        e = mvee(pts, tolerance=1e-9)
        # MVEE of the square [-1,1]^2 is the circle of radius sqrt(2).
        assert e.volume() == pytest.approx(math.pi * 2.0, rel=1e-3)

    def test_john_bracket(self):
        pts = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]
        estimate, lower, upper = john_volume_estimate(pts)
        assert lower <= 1.0 <= upper * (1 + 1e-6)
        assert lower <= estimate <= upper

    def test_mvee_needs_enough_points(self):
        with pytest.raises(GeometryError):
            mvee([(0.0, 0.0), (1.0, 0.0)])

    def test_degenerate_points_rejected(self):
        with pytest.raises(GeometryError):
            mvee([(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0)])
