"""Exact volumes: the Theorem-3 slicing algorithm and unions."""

from fractions import Fraction

import pytest

from repro.logic import between, variables
from repro.geometry import (
    Polyhedron,
    formula_to_cells,
    formula_volume,
    formula_volume_unit_cube,
    integrate_upoly,
    lagrange_interpolate,
    polytope_volume,
    union_volume,
)
from repro.realalg import UPoly
from repro._errors import GeometryError, UnboundedSetError

x, y, z, w = variables("x y z w")


def cell(formula, names):
    (only,) = formula_to_cells(formula, names)
    return only


class TestInterpolation:
    def test_lagrange_line(self):
        p = lagrange_interpolate([(Fraction(0), Fraction(1)), (Fraction(1), Fraction(3))])
        assert p(Fraction(1, 2)) == 2

    def test_lagrange_quadratic(self):
        pts = [(Fraction(t), Fraction(t * t)) for t in (0, 1, 2)]
        p = lagrange_interpolate(pts)
        assert p(Fraction(5)) == 25

    def test_integration(self):
        p = UPoly([0, 0, 3])  # 3x^2
        assert integrate_upoly(p, Fraction(0), Fraction(2)) == 8


class TestPolytopeVolume:
    def test_interval(self):
        assert polytope_volume(cell(between(0, x, Fraction(1, 3)), ("x",))) == Fraction(1, 3)

    def test_square(self):
        assert polytope_volume(Polyhedron.unit_cube(("x", "y"))) == 1

    def test_2d_simplex(self):
        simplex = cell((x >= 0) & (y >= 0) & (x + y <= 1), ("x", "y"))
        assert polytope_volume(simplex) == Fraction(1, 2)

    def test_3d_simplex(self):
        simplex = cell(
            (x >= 0) & (y >= 0) & (z >= 0) & (x + y + z <= 1), ("x", "y", "z")
        )
        assert polytope_volume(simplex) == Fraction(1, 6)

    def test_4d_simplex(self):
        simplex = cell(
            (x >= 0) & (y >= 0) & (z >= 0) & (w >= 0) & (x + y + z + w <= 1),
            ("x", "y", "z", "w"),
        )
        assert polytope_volume(simplex) == Fraction(1, 24)

    def test_scaled_cube(self):
        box = cell(
            between(0, x, 2) & between(Fraction(-1, 2), y, Fraction(1, 2)),
            ("x", "y"),
        )
        assert polytope_volume(box) == 2

    def test_strict_constraints_same_volume(self):
        open_square = cell((x > 0) & (x < 1) & (y > 0) & (y < 1), ("x", "y"))
        assert polytope_volume(open_square) == 1

    def test_lower_dimensional_is_zero(self):
        segment = cell(x.eq(y) & between(0, x, 1) & between(0, y, 1), ("x", "y"))
        assert polytope_volume(segment) == 0

    def test_empty_is_zero(self):
        from repro.qe import compare_to_constraints

        (c1,) = compare_to_constraints(x > 1)
        (c2,) = compare_to_constraints(x < 0)
        empty = Polyhedron.make(("x", "y"), [c1, c2])
        assert polytope_volume(empty) == 0

    def test_unbounded_raises(self):
        halfplane = cell(x >= 0, ("x", "y"))
        with pytest.raises(UnboundedSetError):
            polytope_volume(halfplane)

    def test_octahedron(self):
        # |x| + |y| + |z| <= 1 has volume 4/3; build one orthant and scale.
        octant = cell(
            (x >= 0) & (y >= 0) & (z >= 0) & (x + y + z <= 1), ("x", "y", "z")
        )
        assert 8 * polytope_volume(octant) == Fraction(4, 3)

    def test_matches_qhull(self):
        from repro.geometry import convex_hull_volume_float

        p = cell(
            (x >= 0) & (y >= 0) & (y <= 2 * x + 1) & (x + y <= 3), ("x", "y")
        )
        exact = polytope_volume(p)
        hull = convex_hull_volume_float([[float(a), float(b)] for a, b in p.vertices()])
        assert abs(float(exact) - hull) < 1e-9


class TestUnionVolume:
    def test_disjoint(self):
        a = cell(between(0, x, 1) & between(0, y, 1), ("x", "y"))
        b = cell(between(2, x, 3) & between(0, y, 1), ("x", "y"))
        assert union_volume([a, b]) == 2

    def test_overlapping(self):
        a = cell(between(0, x, 2) & between(0, y, 1), ("x", "y"))
        b = cell(between(1, x, 3) & between(0, y, 1), ("x", "y"))
        assert union_volume([a, b]) == 3

    def test_nested(self):
        outer = cell(between(0, x, 2) & between(0, y, 2), ("x", "y"))
        inner = cell(between(0, x, 1) & between(0, y, 1), ("x", "y"))
        assert union_volume([outer, inner]) == 4

    def test_empty_union(self):
        assert union_volume([]) == 0

    def test_triple_overlap(self):
        a = cell(between(0, x, 2), ("x",))
        b = cell(between(1, x, 3), ("x",))
        c = cell(between(2, x, 4), ("x",))
        assert union_volume([a, b, c]) == 4

    def test_variable_mismatch_rejected(self):
        a = cell(between(0, x, 1), ("x",))
        b = cell(between(0, x, 1) & between(0, y, 1), ("x", "y"))
        with pytest.raises(GeometryError):
            union_volume([a, b])


class TestFormulaVolume:
    def test_union_formula(self):
        f = (between(0, x, 1) & between(0, y, 1)) | (
            between(Fraction(1, 2), x, Fraction(3, 2)) & between(0, y, 1)
        )
        assert formula_volume(f, ("x", "y")) == Fraction(3, 2)

    def test_neq_measure_zero(self):
        f = between(0, x, 1) & x.ne(Fraction(1, 2))
        assert formula_volume(f, ("x",)) == 1

    def test_quantified_query(self):
        from repro.logic import exists

        f = exists(z, between(0, z, 1) & x.eq(z) & between(0, y, x))
        # region: 0<=x<=1, 0<=y<=x -> area 1/2
        assert formula_volume(f, ("x", "y")) == Fraction(1, 2)

    def test_unit_cube_clip(self):
        f = (x + y >= 0)  # unbounded halfplane
        assert formula_volume_unit_cube(f, ("x", "y")) == 1

    def test_clip_partial(self):
        f = x + y <= 1
        assert formula_volume_unit_cube(f, ("x", "y")) == Fraction(1, 2)

    def test_arctan_style_epigraph_clipped(self):
        # VOL_I of { (x,y) : 0 <= y <= x } = 1/2 (paper's running shape)
        f = (0 <= y) & (y <= x)
        assert formula_volume_unit_cube(f, ("x", "y")) == Fraction(1, 2)

    def test_box_argument_validated(self):
        with pytest.raises(GeometryError):
            formula_volume(between(0, x, 1), ("x",), box=[(0, 1), (0, 1)])
