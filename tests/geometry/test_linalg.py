"""Exact rational linear algebra."""

from fractions import Fraction

import pytest

from repro.geometry import determinant, gaussian_elimination_rank, solve_linear_system


class TestSolve:
    def test_unique_solution(self):
        sol = solve_linear_system(
            [[Fraction(2), Fraction(1)], [Fraction(1), Fraction(-1)]],
            [Fraction(3), Fraction(0)],
        )
        assert sol == (Fraction(1), Fraction(1))

    def test_singular_returns_none(self):
        sol = solve_linear_system(
            [[Fraction(1), Fraction(1)], [Fraction(2), Fraction(2)]],
            [Fraction(1), Fraction(2)],
        )
        assert sol is None

    def test_exactness(self):
        sol = solve_linear_system(
            [[Fraction(1, 3), Fraction(1, 7)], [Fraction(1, 11), Fraction(1, 13)]],
            [Fraction(1), Fraction(2)],
        )
        a, b = sol
        assert a * Fraction(1, 3) + b * Fraction(1, 7) == 1
        assert a * Fraction(1, 11) + b * Fraction(1, 13) == 2

    def test_empty_system(self):
        assert solve_linear_system([], []) == ()

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            solve_linear_system([[Fraction(1)]], [Fraction(1), Fraction(2)])


class TestDeterminant:
    def test_identity(self):
        assert determinant([[Fraction(1), Fraction(0)], [Fraction(0), Fraction(1)]]) == 1

    def test_swap_changes_sign(self):
        m = [[Fraction(0), Fraction(1)], [Fraction(1), Fraction(0)]]
        assert determinant(m) == -1

    def test_singular(self):
        m = [[Fraction(1), Fraction(2)], [Fraction(2), Fraction(4)]]
        assert determinant(m) == 0

    def test_3x3(self):
        m = [
            [Fraction(2), Fraction(0), Fraction(0)],
            [Fraction(0), Fraction(3), Fraction(0)],
            [Fraction(1), Fraction(1), Fraction(4)],
        ]
        assert determinant(m) == 24


class TestRank:
    def test_full_rank(self):
        m = [[Fraction(1), Fraction(0)], [Fraction(0), Fraction(1)]]
        assert gaussian_elimination_rank(m) == 2

    def test_rank_deficient(self):
        m = [[Fraction(1), Fraction(2)], [Fraction(2), Fraction(4)]]
        assert gaussian_elimination_rank(m) == 1

    def test_wide_matrix(self):
        m = [[Fraction(1), Fraction(0), Fraction(5)]]
        assert gaussian_elimination_rank(m) == 1

    def test_empty(self):
        assert gaussian_elimination_rank([]) == 0
