"""Polyhedra: feasibility, bounds, vertices, slicing."""

from fractions import Fraction

import pytest

from repro.logic import variables
from repro.geometry import Polyhedron, formula_to_cells
from repro.qe import compare_to_constraints
from repro._errors import GeometryError, UnboundedSetError

x, y, z = variables("x y z")


def polyhedron_of(formula, names):
    cells = formula_to_cells(formula, names)
    assert len(cells) == 1
    return cells[0]


def simplex2d():
    return polyhedron_of((x >= 0) & (y >= 0) & (x + y <= 1), ("x", "y"))


class TestBasics:
    def test_unit_cube(self):
        cube = Polyhedron.unit_cube(("x", "y", "z"))
        assert not cube.is_empty()
        assert cube.contains((Fraction(1, 2),) * 3)
        assert not cube.contains((Fraction(2), Fraction(0), Fraction(0)))

    def test_emptiness(self):
        empty = polyhedron_of((x > 1), ("x",)).intersect(
            polyhedron_of((x < 0), ("x",))
        )
        assert empty.is_empty()

    def test_contains_dimension_checked(self):
        with pytest.raises(GeometryError):
            simplex2d().contains((Fraction(0),))

    def test_unknown_variable_rejected(self):
        (c,) = compare_to_constraints(z < 1)
        with pytest.raises(GeometryError):
            Polyhedron.make(("x", "y"), [c])

    def test_closure_replaces_strict(self):
        p = polyhedron_of((x > 0) & (x < 1), ("x",))
        closed = p.closure()
        assert closed.contains((Fraction(0),))
        assert closed.contains((Fraction(1),))

    def test_intersect_requires_same_variables(self):
        with pytest.raises(GeometryError):
            simplex2d().intersect(Polyhedron.unit_cube(("x",)))


class TestBoundsAndBoundedness:
    def test_coordinate_bounds(self):
        simplex = simplex2d()
        assert simplex.coordinate_bounds("x") == (0, 1)
        assert simplex.coordinate_bounds("y") == (0, 1)

    def test_bounding_box(self):
        box = simplex2d().bounding_box()
        assert box == [(0, 1), (0, 1)]

    def test_unbounded_detected(self):
        halfplane = polyhedron_of((x >= 0), ("x", "y"))
        assert not halfplane.is_bounded()
        with pytest.raises(UnboundedSetError):
            halfplane.bounding_box()

    def test_empty_is_bounded(self):
        (c1,) = compare_to_constraints(x > 1)
        (c2,) = compare_to_constraints(x < 0)
        empty = Polyhedron.make(("x", "y"), [c1, c2])
        assert empty.is_empty()
        assert empty.is_bounded()

    def test_bounded_polytope(self):
        assert simplex2d().is_bounded()


class TestVertices:
    def test_simplex_vertices(self):
        vertices = sorted(simplex2d().vertices())
        assert vertices == [
            (Fraction(0), Fraction(0)),
            (Fraction(0), Fraction(1)),
            (Fraction(1), Fraction(0)),
        ]

    def test_cube_vertices(self):
        cube = Polyhedron.unit_cube(("x", "y", "z"))
        assert len(cube.vertices()) == 8

    def test_degenerate_segment(self):
        segment = polyhedron_of((y.eq(0)) & (x >= 0) & (x <= 1), ("x", "y"))
        vertices = sorted(segment.vertices())
        assert vertices == [(Fraction(0), Fraction(0)), (Fraction(1), Fraction(0))]

    def test_strict_constraints_use_closure(self):
        open_square = polyhedron_of(
            (x > 0) & (x < 1) & (y > 0) & (y < 1), ("x", "y")
        )
        assert len(open_square.vertices()) == 4


class TestSlicing:
    def test_fix_variable(self):
        simplex = simplex2d()
        slice_at = simplex.fix_variable("x", Fraction(1, 4))
        assert slice_at.variables == ("y",)
        low, high = slice_at.coordinate_bounds("y")
        assert (low, high) == (0, Fraction(3, 4))

    def test_fix_unknown_variable(self):
        with pytest.raises(GeometryError):
            simplex2d().fix_variable("w", Fraction(0))


class TestFromVertices2D:
    def test_square_roundtrip(self):
        square = Polyhedron.from_vertices_2d(
            ("x", "y"),
            [(Fraction(0), Fraction(0)), (Fraction(1), Fraction(0)),
             (Fraction(1), Fraction(1)), (Fraction(0), Fraction(1))],
        )
        assert square.contains((Fraction(1, 2), Fraction(1, 2)))
        assert not square.contains((Fraction(2), Fraction(0)))
        assert sorted(square.vertices()) == [
            (Fraction(0), Fraction(0)), (Fraction(0), Fraction(1)),
            (Fraction(1), Fraction(0)), (Fraction(1), Fraction(1)),
        ]

    def test_needs_three_vertices(self):
        with pytest.raises(GeometryError):
            Polyhedron.from_vertices_2d(("x", "y"), [(Fraction(0), Fraction(0))])


class TestSimplified:
    def test_redundant_constraint_dropped(self):
        p = polyhedron_of((x >= 0) & (x <= 1) & (x <= 2), ("x",))
        assert len(p.simplified().constraints) == 2
