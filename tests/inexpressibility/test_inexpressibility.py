"""Section 4 machinery: structures, EF games, reductions, circuits."""

from fractions import Fraction

import pytest

from repro.inexpressibility import (
    GoodInstance,
    OrderedStructure,
    avg_reduction,
    check_separating_on_instances,
    compile_sentence,
    delta_for_epsilon,
    distinguishing_rank,
    duplicator_wins,
    ef_refutation_pair,
    good_constants,
    interval_sets,
    pure_order_equivalent,
    refute_rank,
    separates_cardinalities,
    separation_constants,
    two_set_instance,
    volume_decision,
)
from repro.logic import Relation, exists_adom, forall_adom, variables
from repro._errors import ApproximationError

x, y = variables("x y")
B = Relation("B", 1)


class TestStructures:
    def test_two_set_instance(self):
        s = two_set_instance(3, 2)
        assert s.size == 5
        assert s.cardinalities() == {"U1": 3, "U2": 2}

    def test_colour(self):
        s = two_set_instance(1, 1)
        assert s.colour(0) == (True, False)
        assert s.colour(1) == (False, True)

    def test_members_validated(self):
        with pytest.raises(ValueError):
            OrderedStructure.make(3, {"U": [5]})


class TestEFGames:
    def test_pure_order_threshold(self):
        # Orders of size >= 2^r - 1 are r-equivalent.
        for r in (1, 2, 3):
            big = 2**r - 1
            a = OrderedStructure.make(big, {})
            b = OrderedStructure.make(big + 5, {})
            assert duplicator_wins(a, b, r) is True

    def test_pure_order_below_threshold(self):
        a = OrderedStructure.make(2, {})
        b = OrderedStructure.make(3, {})
        assert duplicator_wins(a, b, 2) is False

    def test_oracle_agreement(self):
        for size_a in range(1, 9):
            for size_b in range(1, 9):
                for r in (1, 2):
                    a = OrderedStructure.make(size_a, {})
                    b = OrderedStructure.make(size_b, {})
                    assert duplicator_wins(a, b, r) == pure_order_equivalent(
                        size_a, size_b, r
                    ), (size_a, size_b, r)

    def test_colours_matter(self):
        a = OrderedStructure.make(2, {"U": [0]})
        b = OrderedStructure.make(2, {"U": []})
        assert duplicator_wins(a, b, 1) is False

    def test_identical_structures_equivalent(self):
        s = two_set_instance(4, 4)
        assert duplicator_wins(s, s, 5) is True

    def test_distinguishing_rank(self):
        a = two_set_instance(1, 0)
        b = two_set_instance(2, 0)
        # card(U1)=1 vs 2 distinguished at some small rank
        rank = distinguishing_rank(a, b, max_rounds=3)
        assert rank is not None and rank <= 2

    def test_predicate_names_must_match(self):
        a = OrderedStructure.make(2, {"U": [0]})
        b = OrderedStructure.make(2, {"V": [0]})
        with pytest.raises(ValueError):
            duplicator_wins(a, b, 1)


class TestSeparatingSentences:
    def test_refutation_pairs_straddle_band(self):
        a, b = ef_refutation_pair(2.0, 2.0, 2)
        ca, cb = a.cardinalities(), b.cardinalities()
        assert ca["U1"] > 2.0 * ca["U2"]
        assert cb["U2"] > 2.0 * cb["U1"]

    @pytest.mark.parametrize("rank", [1, 2, 3])
    def test_refutation_succeeds(self, rank):
        assert refute_rank(2.0, 2.0, rank) is True

    def test_candidate_sentence_fails(self):
        # "U1 is nonempty" is not (2, 2)-separating.
        def sentence(structure):
            return structure.cardinalities()["U1"] > 0

        instances = [two_set_instance(1, 10), two_set_instance(10, 1)]
        counterexample = check_separating_on_instances(sentence, 2, 2, instances)
        assert counterexample is not None
        assert counterexample.expected is False  # claimed True where U2-heavy

    def test_cardinality_oracle_is_separating(self):
        # A non-FO oracle *can* separate — sanity check of the contract.
        def oracle(structure):
            cards = structure.cardinalities()
            return cards["U1"] > cards["U2"]

        instances = [two_set_instance(a, b) for a in range(1, 6) for b in range(1, 6)]
        assert check_separating_on_instances(oracle, 2, 2, instances) is None

    def test_constants_validated(self):
        with pytest.raises(ValueError):
            check_separating_on_instances(lambda s: True, 0.5, 2, [])


class TestAvgReduction:
    def test_translation_layout(self):
        red = avg_reduction([1, 5, 9], [2], Fraction(1, 10))
        assert all(0 < v < red.delta for v in red.translated_u1)
        assert all(1 - red.delta < v < 1 for v in red.translated_u2)

    def test_average_monotone_in_ratio(self):
        eps = Fraction(1, 10)
        averages = [
            avg_reduction(list(range(n1)), [0], eps).average for n1 in (1, 5, 20)
        ]
        # more U1 mass -> average drops toward 0.
        assert averages[0] > averages[1] > averages[2]

    def test_decision_with_exact_average(self):
        eps = Fraction(1, 10)
        c, _ = separation_constants(eps)
        heavy_u1 = avg_reduction(list(range(int(4 * c))), [0], eps)
        assert heavy_u1.decide_ratio(heavy_u1.average, c) == "U1-heavy"
        heavy_u2 = avg_reduction([0], list(range(int(4 * c))), eps)
        assert heavy_u2.decide_ratio(heavy_u2.average, c) == "U2-heavy"

    def test_decision_robust_to_epsilon_noise(self):
        eps = Fraction(1, 10)
        c, _ = separation_constants(eps)
        heavy_u1 = avg_reduction(list(range(int(4 * c) + 1)), [0], eps)
        for noise in (-eps + Fraction(1, 100), 0, eps - Fraction(1, 100)):
            assert heavy_u1.decide_ratio(heavy_u1.average + noise, c) == "U1-heavy"

    def test_validation(self):
        with pytest.raises(ApproximationError):
            delta_for_epsilon(Fraction(1, 2))
        with pytest.raises(ApproximationError):
            avg_reduction([], [1], Fraction(1, 10))


class TestGoodInstances:
    def test_vol_x_equals_density(self):
        for n, b in [(10, range(8)), (10, [0, 2, 4, 6]), (6, [1, 3])]:
            instance = GoodInstance.make(n, list(b))
            x_set, y_set = interval_sets(instance)
            assert x_set.measure() == Fraction(len(list(b)), n)
            assert y_set.measure() == Fraction(n - len(list(b)), n)

    def test_x_and_y_partition_unit_interval(self):
        instance = GoodInstance.make(8, [1, 2, 5])
        x_set, y_set = interval_sets(instance)
        assert x_set.measure() + y_set.measure() == 1

    def test_constants(self):
        c1, c2 = good_constants(Fraction(1, 10))
        assert c1 == Fraction(8, 30)
        assert c2 == Fraction(22, 30)

    def test_decision_contract(self):
        eps = Fraction(1, 10)
        c1, c2 = good_constants(eps)
        n = 30
        for size in range(1, n):
            instance = GoodInstance.make(n, list(range(size)))
            decision = volume_decision(instance, eps)
            if size > c2 * n:
                assert decision is True
            if size < c1 * n:
                assert decision is False

    def test_decision_with_noisy_estimate(self):
        eps = Fraction(1, 10)
        c1, c2 = good_constants(eps)
        n = 30
        size = 25  # > c2 * n = 22
        instance = GoodInstance.make(n, list(range(size)))
        x_set, _ = interval_sets(instance)
        noisy = x_set.measure() - eps + Fraction(1, 1000)
        assert volume_decision(instance, eps, x_estimate=noisy) is True

    def test_validation(self):
        with pytest.raises(ValueError):
            GoodInstance.make(5, [])
        with pytest.raises(ValueError):
            GoodInstance.make(5, list(range(5)))


class TestCircuits:
    def test_exists_compiles_to_or(self):
        circuit = compile_sentence(exists_adom(x, B(x)), 6)
        assert circuit.depth() == 1
        assert circuit.evaluate([False] * 6) is False
        assert circuit.evaluate([False, True] + [False] * 4) is True

    def test_forall_compiles_to_and(self):
        circuit = compile_sentence(forall_adom(x, B(x)), 4)
        assert circuit.evaluate([True] * 4) is True
        assert circuit.evaluate([True, False, True, True]) is False

    def test_order_atoms_are_constants(self):
        sentence = exists_adom(x, B(x) & (x < 2))
        circuit = compile_sentence(sentence, 5)
        assert circuit.evaluate([False, True, False, False, False]) is True
        assert circuit.evaluate([False, False, False, True, False]) is False

    def test_size_polynomial_depth_constant(self):
        sentence = exists_adom(x, forall_adom(y, B(x) | (y < x)))
        small = compile_sentence(sentence, 4)
        large = compile_sentence(sentence, 16)
        assert large.depth() == small.depth()
        assert large.size() > small.size()
        assert large.size() <= 16 * 16 * 8  # O(n^rank)

    def test_fixed_sentence_fails_to_separate(self):
        # "exists two consecutive B elements" — not a cardinality separator.
        sentence = exists_adom(
            x, exists_adom(y, B(x) & B(y) & (y.eq(x + 1)))
        )
        circuit = compile_sentence(sentence, 12)
        assert separates_cardinalities(circuit, 1 / 3, 2 / 3) is False

    def test_free_variables_rejected(self):
        from repro._errors import EvaluationError

        with pytest.raises(EvaluationError):
            compile_sentence(B(x), 4)

    def test_unknown_relation_rejected(self):
        from repro._errors import EvaluationError

        C = Relation("C", 1)
        with pytest.raises(EvaluationError):
            compile_sentence(exists_adom(x, C(x)), 4)
