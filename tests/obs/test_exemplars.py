"""OpenMetrics exemplars: histogram storage, rendering, auto-capture."""

from repro import obs
from repro.obs.histogram import Histogram
from repro.obs.trace import TraceContext


class TestHistogramExemplars:
    def test_observe_with_trace_id_records_exemplar(self):
        hist = Histogram("h")
        hist.observe(0.05, trace_id="aa" * 16)
        (index,) = hist.exemplars
        value, trace_id = hist.exemplars[index]
        assert value == 0.05
        assert trace_id == "aa" * 16

    def test_recent_observation_wins_per_bucket(self):
        hist = Histogram("h")
        hist.observe(0.05, trace_id="first")
        hist.observe(0.051, trace_id="second")  # same bucket
        (exemplar,) = hist.exemplars.values()
        assert exemplar[1] == "second"

    def test_exemplars_never_change_counts(self):
        plain, traced = Histogram("p"), Histogram("t")
        for value in (0.001, 0.5, 2.0, 1e4):
            plain.observe(value)
            traced.observe(value, trace_id="t" * 32)
        assert plain.count == traced.count
        assert plain.buckets == traced.buckets
        assert plain.sum == traced.sum

    def test_as_dict_omits_exemplars_when_absent(self):
        hist = Histogram("h")
        hist.observe(1.0)
        assert "exemplars" not in hist.as_dict()

    def test_dict_round_trip_carries_exemplars(self):
        hist = Histogram("h")
        hist.observe(0.2, trace_id="cd" * 16)
        clone = Histogram.from_dict("h", hist.as_dict())
        assert clone.exemplars == hist.exemplars

    def test_old_snapshot_without_exemplars_still_loads(self):
        hist = Histogram("h")
        hist.observe(0.2)
        data = hist.as_dict()
        assert "exemplars" not in data
        clone = Histogram.from_dict("h", data)
        assert clone.count == 1 and clone.exemplars == {}

    def test_malformed_exemplars_dropped_not_fatal(self):
        hist = Histogram("h")
        hist.observe(0.2, trace_id="ok")
        data = hist.as_dict()
        data["exemplars"] = {"not-an-int": [1.0, "x"], "3": "not-a-pair"}
        clone = Histogram.from_dict("h", data)
        assert clone.exemplars == {}
        assert clone.count == 1

    def test_merge_incoming_wins(self):
        a, b = Histogram("a"), Histogram("b")
        a.observe(0.05, trace_id="old")
        b.observe(0.052, trace_id="new")  # same bucket
        a.merge(b)
        (exemplar,) = a.exemplars.values()
        assert exemplar[1] == "new"
        assert a.count == 2

    def test_reset_clears_exemplars(self):
        hist = Histogram("h")
        hist.observe(0.05, trace_id="x")
        hist.reset()
        assert hist.exemplars == {}


class TestRenderedExemplars:
    def _registry_with_latency(self, trace_id="ab" * 16):
        registry = obs.Registry()
        registry.histogram("serve.latency_s").observe(
            0.05, trace_id=trace_id
        )
        return registry

    def test_suffix_only_on_bucket_lines(self):
        text = obs.render_prometheus(
            self._registry_with_latency(), exemplars=True
        )
        for line in text.splitlines():
            if " # {" in line:
                assert "_bucket{" in line
        assert any(" # {" in line for line in text.splitlines())

    def test_exemplar_syntax(self):
        text = obs.render_prometheus(
            self._registry_with_latency("ab" * 16), exemplars=True
        )
        exemplar_lines = [l for l in text.splitlines() if " # {" in l]
        assert len(exemplar_lines) == 1
        assert exemplar_lines[0].endswith(f'# {{trace_id="{"ab" * 16}"}} 0.05')

    def test_disabled_rendering_is_byte_identical_to_plain(self):
        with_traces = self._registry_with_latency()
        plain = obs.Registry()
        plain.histogram("serve.latency_s").observe(0.05)
        assert (
            obs.render_prometheus(with_traces)
            == obs.render_prometheus(plain)
        )

    def test_every_line_parses_as_prometheus(self):
        text = obs.render_prometheus(
            self._registry_with_latency(), exemplars=True
        )
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            if " # {" in line:
                sample, _, exemplar = line.partition(" # ")
                float(exemplar.rsplit(" ", 1)[1])
                line = sample
            float(line.rsplit(" ", 1)[1])


class TestAutoCapture:
    def test_observe_value_pulls_trace_id_from_active_context(self):
        obs.enable_counting()
        ctx = TraceContext.mint()
        obs.start_trace("req", context=ctx)
        try:
            obs.observe_value("serve.latency_s", 0.07)
        finally:
            obs.stop_trace()
        hist = obs.REGISTRY.histogram("serve.latency_s")
        (exemplar,) = hist.exemplars.values()
        assert exemplar == (0.07, ctx.trace_id)

    def test_explicit_trace_id_beats_provider(self):
        obs.enable_counting()
        obs.start_trace("req", context=TraceContext.mint())
        try:
            obs.observe_value("serve.latency_s", 0.07, trace_id="explicit")
        finally:
            obs.stop_trace()
        hist = obs.REGISTRY.histogram("serve.latency_s")
        (exemplar,) = hist.exemplars.values()
        assert exemplar[1] == "explicit"

    def test_no_context_means_no_exemplar(self):
        obs.enable_counting()
        obs.observe_value("serve.latency_s", 0.07)
        assert obs.REGISTRY.histogram("serve.latency_s").exemplars == {}
