"""Chrome trace-event export: schema validity and timeline synthesis."""

import json

from repro import obs
from repro.obs.perfetto import (
    MIN_DUR_US, perfetto_json, record_events, render_perfetto, span_events,
)

#: A byte-stable batch task record: spans carry no durations at all.
BATCH_RECORD = {
    "schema": "repro.obs/v2",
    "experiment": "repro.batch.task",
    "row": {"task": "t0", "status": "ok"},
    "spans": [{
        "name": "task",
        "attrs": {"task": 0},
        "children": [
            {"name": "engine.plan.compile"},
            {"name": "engine.eval", "children": [{"name": "qe.project"}]},
        ],
    }],
}

#: A slow-query record: spans carry measured durations.
SLOWQUERY_RECORD = {
    "schema": "repro.slowquery/v1",
    "trace_id": "ab" * 16,
    "path": "/v1/query",
    "spans": [{
        "name": "serve.request",
        "duration_s": 0.5,
        "attrs": {"trace_id": "ab" * 16},
        "children": [
            {"name": "serve.queue_wait", "duration_s": 0.1},
            {"name": "task", "duration_s": 0.35},
        ],
    }],
}


def _check_event_schema(events):
    """The acceptance-criteria schema check: required keys, sane values."""
    assert events, "no events produced"
    for event in events:
        for key in ("ph", "ts", "pid", "tid", "name"):
            assert key in event, f"missing {key}: {event}"
        assert event["ph"] in ("X", "M")
        assert isinstance(event["ts"], int) and event["ts"] >= 0
        if event["ph"] == "X":
            assert event["dur"] >= MIN_DUR_US


class TestSpanLayout:
    def test_leaf_without_duration_gets_min_width(self):
        events, end = span_events({"name": "leaf"}, pid=1)
        assert events[0]["dur"] == MIN_DUR_US
        assert end == MIN_DUR_US

    def test_parent_spans_at_least_its_children(self):
        span = {"name": "p", "children": [{"name": "a"}, {"name": "b"}]}
        events, end = span_events(span, pid=1)
        parent = events[0]
        assert parent["name"] == "p"
        assert parent["dur"] >= 2 * MIN_DUR_US
        assert end == parent["ts"] + parent["dur"]

    def test_siblings_laid_out_sequentially(self):
        span = {"name": "p", "children": [{"name": "a"}, {"name": "b"}]}
        events, _ = span_events(span, pid=1)
        a, b = events[1], events[2]
        assert b["ts"] == a["ts"] + a["dur"]

    def test_recorded_durations_respected(self):
        events, _ = span_events(
            {"name": "s", "duration_s": 0.25}, pid=1
        )
        assert events[0]["dur"] == 250_000

    def test_attrs_and_error_become_args(self):
        events, _ = span_events(
            {"name": "s", "attrs": {"k": 1}, "error": "boom"}, pid=1
        )
        assert events[0]["args"] == {"k": 1, "error": "boom"}


class TestRecordConversion:
    def test_batch_record_passes_schema_check(self):
        events = record_events(BATCH_RECORD, pid=1)
        _check_event_schema(events)

    def test_slow_query_record_passes_schema_check(self):
        events = record_events(SLOWQUERY_RECORD, pid=1)
        _check_event_schema(events)

    def test_timestamps_monotone_per_lane(self):
        for record in (BATCH_RECORD, SLOWQUERY_RECORD):
            events = [
                e for e in record_events(record, pid=1) if e["ph"] == "X"
            ]
            # Depth-first emission: each event starts at or after the
            # previous one.
            for earlier, later in zip(events, events[1:]):
                assert later["ts"] >= earlier["ts"]

    def test_metadata_event_names_the_lane(self):
        meta = record_events(SLOWQUERY_RECORD, pid=7)[0]
        assert meta["ph"] == "M"
        assert meta["name"] == "process_name"
        assert meta["pid"] == 7
        assert "abababab" in meta["args"]["name"]

    def test_spanless_record_contributes_nothing(self):
        assert record_events({"schema": "repro.obs/v2", "counters": {}}, 1) == []


class TestDocument:
    def test_document_shape(self):
        doc = perfetto_json([BATCH_RECORD, SLOWQUERY_RECORD])
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        _check_event_schema(doc["traceEvents"])

    def test_one_lane_per_span_bearing_record(self):
        doc = perfetto_json([
            BATCH_RECORD,
            {"schema": "repro.obs/v2", "counters": {"x": 1}},  # no lane
            SLOWQUERY_RECORD,
        ])
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {1, 2}

    def test_render_is_valid_json(self):
        parsed = json.loads(render_perfetto([SLOWQUERY_RECORD]))
        _check_event_schema(parsed["traceEvents"])

    def test_real_trace_out_record_converts(self):
        # A record produced by the real exporter (make_record over a
        # collected trace) must convert, not just hand-written fixtures.
        with obs.observe("perfetto-src") as trace:
            with obs.span("outer", task=3):
                with obs.span("inner"):
                    pass
        record = obs.make_record("demo", trace=trace)
        doc = perfetto_json([record])
        _check_event_schema(doc["traceEvents"])
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert names == ["outer", "inner"]
