"""JSON-lines export: schema shape and round-tripping."""

from fractions import Fraction

import pytest

from repro import obs
from repro.obs.export import (
    SCHEMA,
    JsonlSink,
    make_record,
    read_jsonl,
    span_to_dict,
    trace_to_dicts,
)
from repro.obs.metrics import Registry
from repro.obs.sinks import MemorySink


def _sample_trace():
    with obs.collect("sample") as trace:
        with obs.span("outer", k=Fraction(1, 2)):
            with obs.span("inner"):
                pass
    return trace


class TestSpanToDict:
    def test_shape(self):
        trace = _sample_trace()
        d = span_to_dict(trace.roots[0])
        assert d["name"] == "outer"
        assert d["duration_s"] >= 0.0
        # Non-JSON values are stringified, never emitted raw.
        assert d["attrs"] == {"k": "1/2"}
        assert d["children"][0]["name"] == "inner"
        assert "children" not in d["children"][0]
        assert "error" not in d

    def test_error_recorded(self):
        with obs.collect() as trace:
            try:
                with obs.span("bad"):
                    raise KeyError("x")
            except KeyError:
                pass
        assert span_to_dict(trace.roots[0])["error"] == "KeyError"


class TestMakeRecord:
    def test_empty_sections_omitted(self):
        record = make_record("E0")
        assert record == {"schema": SCHEMA, "experiment": "E0"}

    def test_full_record(self):
        registry = Registry()
        registry.counter("cad.cells").add(7)
        registry.counter("untouched")
        trace = _sample_trace()
        record = make_record(
            "E9", row={"n": 3, "vol": Fraction(1, 2)},
            registry=registry, trace=trace, extra={"row_index": 0},
        )
        assert record["schema"] == SCHEMA
        assert record["row"] == {"n": 3, "vol": "1/2"}
        assert record["counters"] == {"cad.cells": 7}
        assert record["spans"] == trace_to_dicts(trace)
        assert record["row_index"] == 0


class TestRoundTrip:
    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "out.jsonl")
        registry = Registry()
        registry.counter("mc.samples").add(100)
        records = [
            make_record("E1", row={"eps": 0.1}, registry=registry),
            make_record("E1", row={"eps": 0.05}, registry=registry),
        ]
        sink = JsonlSink(path)
        sink.write_all(records)
        sink.write(make_record("E2"))
        back = read_jsonl(path)
        assert back == records + [make_record("E2")]
        assert all(r["schema"] == SCHEMA for r in back)

    def test_append_only(self, tmp_path):
        path = str(tmp_path / "out.jsonl")
        JsonlSink(path).write(make_record("a"))
        JsonlSink(path).write(make_record("b"))
        assert [r["experiment"] for r in read_jsonl(path)] == ["a", "b"]

    def test_identical_runs_byte_comparable(self, tmp_path):
        # No timestamps anywhere: two exports of the same record match.
        p1, p2 = str(tmp_path / "1.jsonl"), str(tmp_path / "2.jsonl")
        record = make_record("E4", row={"case": 1})
        JsonlSink(p1).write(record)
        JsonlSink(p2).write(record)
        assert open(p1, "rb").read() == open(p2, "rb").read()


class TestSpanFromDict:
    def test_inverse_of_span_to_dict(self):
        from repro.obs.export import span_from_dict

        trace = _sample_trace()
        original = span_to_dict(trace.roots[0])
        record = span_from_dict(original)
        assert record.name == "outer"
        assert record.attrs == {"k": "1/2"}
        assert record.children[0].name == "inner"
        assert span_to_dict(record) == original


class TestReadJsonlHardening:
    def _write(self, tmp_path, text):
        path = tmp_path / "records.jsonl"
        path.write_text(text)
        return str(path)

    def test_blank_lines_silently_ignored(self, tmp_path):
        path = self._write(
            tmp_path, '\n{"schema": "%s", "experiment": "a"}\n\n\n' % SCHEMA
        )
        records = read_jsonl(path)
        assert [r["experiment"] for r in records] == ["a"]
        assert records.skipped == 0

    def test_malformed_line_skipped_with_warning(self, tmp_path):
        path = self._write(
            tmp_path,
            '{"schema": "%s", "experiment": "a"}\n'
            "{truncated\n"
            '"just a string"\n'
            '{"schema": "%s", "experiment": "b"}\n' % (SCHEMA, SCHEMA),
        )
        with pytest.warns(UserWarning, match="skipping") as caught:
            records = read_jsonl(path)
        assert len(caught) == 2  # one warning per unreadable line
        assert [r["experiment"] for r in records] == ["a", "b"]
        assert records.skipped == 2

    def test_unknown_schema_skipped(self, tmp_path):
        path = self._write(
            tmp_path,
            '{"schema": "repro.obs/v99", "experiment": "future"}\n'
            '{"schema": "%s", "experiment": "now"}\n' % SCHEMA,
        )
        with pytest.warns(UserWarning):
            records = read_jsonl(path)
        assert [r["experiment"] for r in records] == ["now"]
        assert records.skipped == 1

    def test_v1_records_still_read(self, tmp_path):
        from repro.obs.export import SCHEMA_V1

        path = self._write(
            tmp_path, '{"schema": "%s", "experiment": "old"}\n' % SCHEMA_V1
        )
        records = read_jsonl(path)
        assert records[0]["experiment"] == "old"
        assert records.skipped == 0

    def test_schemaless_records_pass_through(self, tmp_path):
        # Foreign-but-valid JSONL (e.g. a task manifest) is not our schema
        # to police; only an explicit unknown schema key is rejected.
        path = self._write(tmp_path, '{"formula": "x < 1"}\n')
        records = read_jsonl(path)
        assert records == [{"formula": "x < 1"}]


class TestMemorySink:
    def test_collects(self):
        sink = MemorySink()
        assert len(sink) == 0
        sink.write(make_record("E1"))
        sink.write(make_record("E2"))
        assert len(sink) == 2
        assert sink.records[1]["experiment"] == "E2"
