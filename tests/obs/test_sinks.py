"""Human-readable sinks: the table renderer and the span-tree formatter."""

from repro import obs
from repro.obs.sinks import format_counters, format_span_tree, render_table
from repro.obs.metrics import Registry


class TestRenderTable:
    def test_basic_table(self):
        out = render_table("t", ["a", "bb"], [[1, 2], [30, 4]])
        lines = out.splitlines()
        assert lines[1] == "=== t ==="
        assert "a" in lines[2] and "bb" in lines[2]
        assert lines[4].startswith("1")
        assert lines[5].startswith("30")

    def test_empty_rows_do_not_crash(self):
        # Regression: the old benchmarks renderer raised TypeError on
        # max() with an empty sequence when rows was empty.
        out = render_table("empty", ["col1", "col2"], [])
        assert "(no rows)" in out
        assert "col1" in out

    def test_wide_cells_set_column_width(self):
        out = render_table("t", ["h"], [["wider-than-header"]])
        header_line = out.splitlines()[2]
        assert len(header_line) >= len("wider-than-header")


class TestFormatSpanTree:
    def test_siblings_aggregate(self):
        with obs.collect("agg") as trace:
            with obs.span("parent"):
                for _ in range(250):
                    with obs.span("hot"):
                        pass
        out = format_span_tree(trace)
        assert "trace 'agg': 251 spans, depth 2" in out
        assert "- hot x250" in out
        # One aggregated line, not 250.
        assert out.count("- hot") == 1

    def test_attrs_and_errors_shown(self):
        with obs.collect() as trace:
            try:
                with obs.span("step", n=3):
                    raise ValueError
            except ValueError:
                pass
        out = format_span_tree(trace)
        assert "[n=3]" in out
        assert "!ValueError" in out

    def test_dropped_spans_reported(self):
        trace = obs.start_trace("d")
        trace.dropped_spans = 5
        obs.stop_trace()
        assert "5 spans over the cap were dropped" in format_span_tree(trace)


class TestFormatCounters:
    def test_only_nonzero_shown(self):
        registry = Registry()
        registry.counter("cad.cells", "cells sampled").add(4)
        registry.counter("quiet")
        registry.gauge("km.sample_size").set(10)
        out = format_counters(registry)
        assert "cad.cells" in out and "cells sampled" in out
        assert "km.sample_size" in out
        assert "quiet" not in out
