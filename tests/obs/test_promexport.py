"""Prometheus text exposition: naming, types, and histogram series."""

import math
import re

from repro import obs
from repro.obs.histogram import BUCKET_BOUNDS
from repro.obs.promexport import prom_name, render_prometheus


def _registry():
    registry = obs.Registry()
    registry.counter("mc.samples", "hit-or-miss sample points drawn").add(700)
    registry.gauge("km.sample_size", "last KM sample size").set(42)
    hist = registry.histogram(
        "engine.query.volume_s", "seconds per exact volume evaluation"
    )
    for value in (0.01, 0.02, 5.0):
        hist.observe(value)
    return registry


class TestPromName:
    def test_prefix_and_sanitization(self):
        assert prom_name("mc.samples") == "repro_mc_samples"
        assert prom_name("engine.query.volume_s") == "repro_engine_query_volume_s"
        assert prom_name("weird-name!x") == "repro_weird_name_x"

    def test_colons_survive(self):
        # Colons are legal in the Prometheus grammar (recording rules).
        assert prom_name("a:b") == "repro_a:b"


class TestRender:
    def test_counter_gets_total_suffix_and_headers(self):
        text = render_prometheus(_registry())
        assert "# HELP repro_mc_samples hit-or-miss sample points drawn" in text
        assert "# TYPE repro_mc_samples counter" in text
        assert "repro_mc_samples_total 700" in text

    def test_gauge_plain(self):
        text = render_prometheus(_registry())
        assert "# TYPE repro_km_sample_size gauge" in text
        assert "repro_km_sample_size 42" in text

    def test_histogram_series_complete(self):
        text = render_prometheus(_registry())
        assert "# TYPE repro_engine_query_volume_s histogram" in text
        bucket_lines = [
            line for line in text.splitlines()
            if line.startswith("repro_engine_query_volume_s_bucket")
        ]
        # One line per shared bound plus the +Inf bucket.
        assert len(bucket_lines) == len(BUCKET_BOUNDS) + 1
        assert bucket_lines[-1] == 'repro_engine_query_volume_s_bucket{le="+Inf"} 3'
        assert "repro_engine_query_volume_s_count 3" in text
        assert "repro_engine_query_volume_s_sum 5.03" in text

    def test_histogram_buckets_cumulative_and_monotone(self):
        text = render_prometheus(_registry())
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_engine_query_volume_s_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 3

    def test_skip_empty_metrics(self):
        registry = obs.Registry()
        registry.counter("mc.samples")
        registry.histogram("engine.query.volume_s")
        registry.counter("mc.hits").add(1)
        text = render_prometheus(registry)
        assert "mc_samples" not in text
        assert "volume_s" not in text
        assert "repro_mc_hits_total 1" in text

    def test_skip_empty_false_renders_zeroes(self):
        registry = obs.Registry()
        registry.counter("mc.samples")
        text = render_prometheus(registry, skip_empty=False)
        assert "repro_mc_samples_total 0" in text

    def test_no_timestamps_and_newline_terminated(self):
        text = render_prometheus(_registry())
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            # Exposition lines are "name value" — no trailing timestamp.
            assert len(line.rsplit(" ")) == 2

    def test_nonfinite_values_render_prometheus_style(self):
        registry = obs.Registry()
        registry.gauge("km.sample_size").set(math.inf)
        text = render_prometheus(registry)
        assert "repro_km_sample_size +Inf" in text

    def test_output_is_deterministic(self):
        assert render_prometheus(_registry()) == render_prometheus(_registry())


class TestEscaping:
    """Exposition-format escaping of help text and label values.

    An unescaped newline or quote in either position desynchronizes the
    whole scrape, so these are regression-pinned exactly.
    """

    def test_help_backslash_doubled(self):
        from repro.obs.promexport import escape_help

        assert escape_help(r"path C:\tmp") == r"path C:\\tmp"

    def test_help_newline_escaped(self):
        from repro.obs.promexport import escape_help

        assert escape_help("two\nlines") == "two\\nlines"

    def test_help_carriage_returns_fold_into_newline_escape(self):
        from repro.obs.promexport import escape_help

        assert escape_help("a\r\nb") == "a\\nb"
        assert escape_help("a\rb") == "a\\nb"

    def test_help_backslash_before_newline_does_not_double_escape(self):
        from repro.obs.promexport import escape_help

        # The backslash pass must run first: escaping produces "\\" then
        # "\n" -> "\\n", never a re-escaped "\\\\n".
        assert escape_help("a\\\nb") == "a\\\\\\nb"

    def test_label_value_escapes_quote(self):
        from repro.obs.promexport import escape_label_value

        assert escape_label_value('say "hi"') == 'say \\"hi\\"'

    def test_label_value_escapes_backslash_and_newlines(self):
        from repro.obs.promexport import escape_label_value

        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
        assert escape_label_value("a\r\nb") == "a\\nb"
        assert escape_label_value("a\rb") == "a\\nb"

    def test_rendered_help_line_stays_single_line(self):
        registry = obs.Registry()
        registry.counter(
            "weird.help", 'first line\nsecond "quoted" \\ line'
        ).add(1)
        text = render_prometheus(registry)
        help_lines = [
            line for line in text.splitlines() if line.startswith("# HELP")
        ]
        assert len(help_lines) == 1
        assert "\\n" in help_lines[0]
        # Every line of the block is a comment or a sample, nothing bare.
        for line in text.splitlines():
            assert line.startswith("#") or line.startswith("repro_"), line

    def test_bucket_labels_go_through_label_escaping(self):
        registry = obs.Registry()
        registry.histogram("h.s", "a histogram").observe(0.01)
        text = render_prometheus(registry)
        for line in text.splitlines():
            if "_bucket" in line:
                assert re.fullmatch(
                    r'repro_h_s_bucket\{le="[^"\n]+"\} \d+', line
                ), line
