"""W3C-style trace context: minting, propagation, and header parsing."""

from repro import obs
from repro.obs.trace import TraceContext, new_span_id, new_trace_id


class TestIds:
    def test_trace_id_is_32_lowercase_hex(self):
        trace_id = new_trace_id()
        assert len(trace_id) == 32
        assert trace_id == trace_id.lower()
        int(trace_id, 16)

    def test_span_id_is_16_lowercase_hex(self):
        span_id = new_span_id()
        assert len(span_id) == 16
        int(span_id, 16)

    def test_ids_are_unique(self):
        assert len({new_trace_id() for _ in range(64)}) == 64


class TestContext:
    def test_mint_has_no_parent(self):
        ctx = TraceContext.mint()
        assert ctx.parent_span_id is None

    def test_child_shares_trace_id_with_fresh_span(self):
        ctx = TraceContext.mint()
        child = ctx.child()
        assert child.trace_id == ctx.trace_id
        assert child.span_id != ctx.span_id
        assert child.parent_span_id == ctx.span_id

    def test_dict_round_trip(self):
        ctx = TraceContext.mint().child()
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_to_dict_omits_absent_parent(self):
        assert "parent_span_id" not in TraceContext.mint().to_dict()


class TestTraceparent:
    def test_round_trip(self):
        ctx = TraceContext.mint()
        parsed = TraceContext.parse_traceparent(ctx.traceparent())
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id
        assert parsed.span_id == ctx.span_id

    def test_header_shape(self):
        header = TraceContext.mint().traceparent()
        version, trace_id, span_id, flags = header.split("-")
        assert (version, flags) == ("00", "01")
        assert len(trace_id) == 32 and len(span_id) == 16

    def test_malformed_headers_rejected(self):
        for header in (
            None, "", "garbage", "00-short-short-01",
            "00-" + "g" * 32 + "-" + "1" * 16 + "-01",  # non-hex
            "zz-" + "1" * 32 + "-" + "2" * 16 + "-01",  # bad version
        ):
            assert TraceContext.parse_traceparent(header) is None

    def test_all_zero_ids_rejected_per_spec(self):
        valid_span = "1" * 16
        valid_trace = "1" * 32
        assert TraceContext.parse_traceparent(
            f"00-{'0' * 32}-{valid_span}-01") is None
        assert TraceContext.parse_traceparent(
            f"00-{valid_trace}-{'0' * 16}-01") is None

    def test_uppercase_header_normalized(self):
        ctx = TraceContext.mint()
        parsed = TraceContext.parse_traceparent(ctx.traceparent().upper())
        assert parsed is not None and parsed.trace_id == ctx.trace_id


class TestCurrentTraceId:
    def test_none_without_a_trace(self):
        assert obs.current_trace_id() is None

    def test_none_for_context_free_trace(self):
        obs.start_trace("plain")
        try:
            assert obs.current_trace_id() is None
        finally:
            obs.stop_trace()

    def test_reflects_installed_context(self):
        ctx = TraceContext.mint()
        obs.start_trace("req", context=ctx)
        try:
            assert obs.current_trace_id() == ctx.trace_id
        finally:
            obs.stop_trace()
