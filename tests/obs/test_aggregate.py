"""Cross-process aggregation: task snapshots, merges, and record shapes."""

import json

import pytest

from repro import obs
from repro.obs.aggregate import (
    SUMMARY_EXPERIMENT,
    TASK_EXPERIMENT,
    merge_snapshot_into,
    merged_registry,
    registry_from_records,
    snapshot_spans,
    stable_span,
    summary_record,
    task_observation,
    task_record,
)


def _run_fake_task():
    """Emit some metrics and spans as an observed task would."""
    obs.add("mc.samples", 7)
    obs.set_gauge("km.sample_size", 42)
    obs.observe_value("engine.query.volume_s", 0.25)
    with obs.span("engine.compile", kind="volume"):
        with obs.span("volume.decompose"):
            pass


class TestTaskObservation:
    def test_snapshot_captures_the_delta(self):
        with task_observation() as observation:
            _run_fake_task()
        snapshot = observation.snapshot
        assert snapshot["counters"] == {"mc.samples": 7}
        assert snapshot["gauges"] == {"km.sample_size": 42}
        assert snapshot["histograms"]["engine.query.volume_s"]["count"] == 1
        assert snapshot["spans"][0]["name"] == "engine.compile"
        assert snapshot["worker_pid"] > 0

    def test_ambient_registry_restored_after_the_block(self):
        obs.enable_counting()
        obs.add("mc.samples", 3)
        with task_observation():
            _run_fake_task()
        # The task's delta was removed: the parent re-applies it by
        # merging the snapshot, identically for serial and parallel runs.
        assert obs.REGISTRY.value("mc.samples") == 3
        assert obs.REGISTRY.histogram("engine.query.volume_s").count == 0
        assert obs.counting_enabled()  # prior state restored

    def test_disabled_state_restored(self):
        assert not obs.counting_enabled()
        with task_observation():
            pass
        assert not obs.counting_enabled()
        assert not obs.tracing_enabled()

    def test_outer_trace_parked_and_restored(self):
        outer = obs.start_trace("outer")
        with task_observation() as observation:
            with obs.span("inside-task"):
                pass
        assert obs.current_trace() is outer
        assert outer.roots == []  # task spans stayed out of the outer trace
        assert observation.snapshot["spans"][0]["name"] == "inside-task"
        obs.stop_trace()

    def test_snapshot_is_json_safe(self):
        from fractions import Fraction

        with task_observation() as observation:
            obs.add("mc.samples", Fraction(3, 2))
            obs.set_gauge("km.sample_size", Fraction(1, 4))
        json.dumps(observation.snapshot)  # must not raise


class TestMergeSnapshot:
    SNAPSHOT = {
        "worker_pid": 1234,
        "counters": {"mc.samples": 5},
        "gauges": {"km.sample_size": 9},
        "histograms": {
            "engine.query.volume_s": {
                "count": 2, "sum": 0.3, "min": 0.1, "max": 0.2,
                "buckets": {"19": 1, "20": 1},
            }
        },
        "dropped": 3,
    }

    def test_merge_into_fresh_registry(self):
        registry = obs.Registry()
        merge_snapshot_into(registry, self.SNAPSHOT)
        assert registry.value("mc.samples") == 5
        assert registry.value("km.sample_size") == 9
        assert registry.histogram("engine.query.volume_s").count == 2
        assert registry.value("trace.spans_dropped") == 3

    def test_counters_and_histograms_accumulate(self):
        registry = obs.Registry()
        merge_snapshot_into(registry, self.SNAPSHOT)
        merge_snapshot_into(registry, self.SNAPSHOT)
        assert registry.value("mc.samples") == 10
        hist = registry.histogram("engine.query.volume_s")
        assert hist.count == 4
        assert hist.sum == pytest.approx(0.6)
        assert hist.buckets == {19: 2, 20: 2}

    def test_merged_registry_skips_results_without_obs(self):
        results = [
            {"status": "ok", "obs": self.SNAPSHOT},
            {"status": "ok"},
            {"status": "error", "obs": {"counters": {"mc.samples": 1}}},
        ]
        registry = merged_registry(results)
        assert registry.value("mc.samples") == 6

    def test_merge_order_independent_for_counters_and_histograms(self):
        other = {
            "counters": {"mc.samples": 2},
            "histograms": {
                "engine.query.volume_s": {
                    "count": 1, "sum": 9.0, "min": 9.0, "max": 9.0,
                    "buckets": {"24": 1},
                }
            },
        }
        forward, backward = obs.Registry(), obs.Registry()
        merge_snapshot_into(forward, self.SNAPSHOT)
        merge_snapshot_into(forward, other)
        merge_snapshot_into(backward, other)
        merge_snapshot_into(backward, self.SNAPSHOT)
        assert forward.value("mc.samples") == backward.value("mc.samples")
        assert (
            forward.histogram("engine.query.volume_s").as_dict()
            == backward.histogram("engine.query.volume_s").as_dict()
        )


class TestRecordShapes:
    def _result(self):
        with task_observation() as observation:
            _run_fake_task()
        return {
            "id": "tri", "op": "volume", "status": "ok", "seed": 99,
            "elapsed_s": 0.123, "obs": observation.snapshot,
        }

    def test_task_record_is_byte_stable_material_only(self):
        record = task_record(self._result(), 4)
        assert record["schema"] == obs.SCHEMA
        assert record["experiment"] == TASK_EXPERIMENT
        assert record["task"] == 4
        assert record["id"] == "tri"
        # Histograms degrade to observation counts; no timing anywhere.
        assert record["histograms"] == {"engine.query.volume_s": 1}
        assert "worker_pid" not in json.dumps(record)
        assert "duration_s" not in json.dumps(record)
        assert "elapsed_s" not in record

    def test_task_record_spans_tagged_with_task(self):
        record = task_record(self._result(), 2)
        root = record["spans"][0]
        assert root["attrs"]["task"] == 2
        assert root["attrs"]["kind"] == "volume"
        assert root["children"][0]["name"] == "volume.decompose"

    def test_stable_span_drops_durations_keeps_structure(self):
        data = {
            "name": "a", "duration_s": 0.5, "attrs": {"k": 1},
            "error": "ValueError",
            "children": [{"name": "b", "duration_s": 0.1}],
        }
        assert stable_span(data) == {
            "name": "a", "attrs": {"k": 1}, "error": "ValueError",
            "children": [{"name": "b"}],
        }

    def test_snapshot_spans_rematerialise_with_task_attr(self):
        result = self._result()
        (root,) = snapshot_spans(result["obs"], 7)
        assert root.name == "engine.compile"
        assert root.attrs["task"] == 7
        assert root.children[0].name == "volume.decompose"

    def test_summary_record_merges_and_tallies(self):
        results = [self._result(), self._result()]
        results[1]["status"] = "error"
        record = summary_record(results, extra={"workers": 2})
        assert record["experiment"] == SUMMARY_EXPERIMENT
        assert (record["tasks"], record["ok"], record["errors"]) == (2, 1, 1)
        assert record["counters"]["mc.samples"] == 14
        assert record["gauges"]["km.sample_size"] == 42
        assert record["histograms"]["engine.query.volume_s"]["count"] == 2
        assert record["workers"] == 2
        json.dumps(record)  # JSON-safe end to end


class TestRegistryFromRecords:
    def test_summary_is_authoritative(self):
        records = [
            {"experiment": TASK_EXPERIMENT, "counters": {"mc.samples": 999}},
            {
                "experiment": SUMMARY_EXPERIMENT,
                "counters": {"mc.samples": 12},
                "histograms": {
                    "engine.query.volume_s": {
                        "count": 3, "sum": 0.6, "min": 0.1, "max": 0.3,
                        "buckets": {"20": 3},
                    }
                },
            },
        ]
        registry = registry_from_records(records)
        assert registry.value("mc.samples") == 12
        assert registry.histogram("engine.query.volume_s").sum == pytest.approx(0.6)

    def test_task_records_accumulate_without_summary(self):
        records = [
            {
                "experiment": TASK_EXPERIMENT,
                "counters": {"mc.samples": 4},
                "histograms": {"engine.query.volume_s": 2},
                "dropped": 1,
            },
            {"experiment": TASK_EXPERIMENT, "counters": {"mc.samples": 6}},
            {"experiment": "unrelated", "counters": {"mc.samples": 100}},
        ]
        registry = registry_from_records(records)
        assert registry.value("mc.samples") == 10
        # Count-only degradation: observations exist, timing was elided.
        assert registry.histogram("engine.query.volume_s").count == 2
        assert registry.value("trace.spans_dropped") == 1
