"""Mixed-schema trajectory files: skip accounting and exemplar replay."""

import json

import pytest

from repro import obs
from repro.obs.aggregate import SUMMARY_EXPERIMENT


def _write_lines(path, lines):
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


class TestMixedSchemaReads:
    def test_v1_v2_and_slowquery_records_all_accepted(self, tmp_path):
        lines = [
            json.dumps({"schema": "repro.obs/v1", "experiment": "old",
                        "counters": {"cad.cells": 1}}),
            json.dumps({"schema": "repro.obs/v2", "experiment": "new",
                        "counters": {"cad.cells": 2}}),
            json.dumps({"schema": "repro.slowquery/v1",
                        "trace_id": "ab" * 16, "elapsed_s": 2.0}),
        ]
        target = tmp_path / "mixed.jsonl"
        _write_lines(target, lines)
        records = obs.read_jsonl(str(target))
        assert len(records) == 3
        assert records.skipped == 0

    def test_garbage_lines_counted_not_fatal(self, tmp_path):
        lines = [
            json.dumps({"schema": "repro.obs/v2", "experiment": "keep"}),
            "{not json at all",
            json.dumps(["an", "array"]),
            json.dumps({"schema": "repro.alien/v9", "x": 1}),
            "",  # blank: silently ignored, not counted
            json.dumps({"no_schema": "passes through"}),
        ]
        target = tmp_path / "dirty.jsonl"
        _write_lines(target, lines)
        with pytest.warns(UserWarning):
            records = obs.read_jsonl(str(target))
        assert len(records) == 2
        assert records.skipped == 3

    def test_skip_warnings_name_file_and_line(self, tmp_path):
        target = tmp_path / "bad.jsonl"
        _write_lines(target, ["not-json"])
        with pytest.warns(UserWarning, match=r"bad\.jsonl:1"):
            obs.read_jsonl(str(target))


class TestExemplarReplay:
    def _summary_record(self, with_exemplars):
        registry = obs.Registry()
        hist = registry.histogram("serve.latency_s")
        hist.observe(
            0.05, trace_id=("ab" * 16 if with_exemplars else None)
        )
        return {
            "schema": "repro.obs/v2",
            "experiment": SUMMARY_EXPERIMENT,
            "histograms": registry.histograms_as_dict(),
        }

    def test_replay_restores_exemplars(self):
        registry = obs.registry_from_records([self._summary_record(True)])
        hist = registry.histogram("serve.latency_s")
        assert hist.count == 1
        assert ("ab" * 16) in {t for _, t in hist.exemplars.values()}
        text = obs.render_prometheus(registry, exemplars=True)
        assert f'trace_id="{"ab" * 16}"' in text

    def test_old_reader_shape_files_without_exemplars_replay(self):
        # A v2 file written before exemplars existed has no "exemplars"
        # key anywhere; replay must behave exactly as it always did.
        record = self._summary_record(False)
        assert "exemplars" not in json.dumps(record)
        registry = obs.registry_from_records([record])
        hist = registry.histogram("serve.latency_s")
        assert hist.count == 1
        assert hist.exemplars == {}

    def test_untraced_snapshot_bytes_unchanged_by_exemplar_support(self):
        # The serialized form of an exemplar-free histogram must be
        # byte-identical to the pre-exemplar format: the byte-stability
        # contract for task records depends on it.
        hist_data = self._summary_record(False)["histograms"][
            "serve.latency_s"
        ]
        assert set(hist_data) == {"count", "sum", "min", "max", "buckets"}
