"""Span tracing: nesting, exception safety, and the disabled fast path."""

import threading

import pytest

from repro import obs
from repro.obs.trace import _NULL_SPAN, MAX_SPANS, _LiveSpan


class TestDisabledPath:
    def test_span_is_shared_noop_when_disabled(self):
        assert not obs.tracing_enabled()
        s = obs.span("anything", k=1)
        assert s is _NULL_SPAN
        # Same object every time — no allocation on the hot path.
        assert obs.span("other") is s
        with s:
            s.set(extra=2)  # no-op, must not raise

    def test_current_trace_none_when_disabled(self):
        assert obs.current_trace() is None


class TestNesting:
    def test_nested_spans_build_a_tree(self):
        with obs.collect("t") as trace:
            with obs.span("outer", a=1):
                with obs.span("inner"):
                    pass
                with obs.span("inner"):
                    pass
            with obs.span("second-root"):
                pass
        assert [r.name for r in trace.roots] == ["outer", "second-root"]
        assert [c.name for c in trace.roots[0].children] == ["inner", "inner"]
        assert trace.span_count() == 4
        assert trace.depth() == 2
        assert trace.roots[0].attrs == {"a": 1}

    def test_durations_are_nonnegative_and_monotonic_clocked(self):
        with obs.collect() as trace:
            with obs.span("a"):
                pass
        (root,) = trace.roots
        assert root.duration_s >= 0.0

    def test_set_attaches_attributes_after_open(self):
        with obs.collect() as trace:
            with obs.span("a", x=1) as s:
                s.set(y=2)
        assert trace.roots[0].attrs == {"x": 1, "y": 2}

    def test_stop_trace_detaches(self):
        trace = obs.start_trace("t")
        assert obs.current_trace() is trace
        assert obs.stop_trace() is trace
        assert obs.current_trace() is None
        assert obs.stop_trace() is None


class TestExceptionSafety:
    def test_error_recorded_and_stack_unwound(self):
        with obs.collect() as trace:
            with pytest.raises(ValueError):
                with obs.span("failing"):
                    raise ValueError("boom")
            # The stack must be clean: a new span is a fresh root.
            with obs.span("after"):
                pass
        assert [r.name for r in trace.roots] == ["failing", "after"]
        assert trace.roots[0].error == "ValueError"
        assert trace.roots[1].error is None

    def test_error_inside_nested_span(self):
        with obs.collect() as trace:
            with pytest.raises(RuntimeError):
                with obs.span("outer"):
                    with obs.span("inner"):
                        raise RuntimeError
        outer = trace.roots[0]
        assert outer.error == "RuntimeError"
        assert outer.children[0].error == "RuntimeError"

    def test_stranded_child_frames_are_unwound(self):
        # A generator suspended inside a span can leak its record on the
        # stack; the parent's __exit__ must pop past it.
        trace = obs.start_trace()
        outer = _LiveSpan(trace, "outer", {})
        outer.__enter__()
        stranded = _LiveSpan(trace, "stranded", {})
        stranded.__enter__()            # never exited
        outer.__exit__(None, None, None)
        assert trace._stack == []
        obs.stop_trace()


class TestSpanCap:
    def test_spans_over_cap_counted_not_materialised(self):
        trace = obs.start_trace("cap")
        trace._count = MAX_SPANS  # pretend the cap is already reached
        with obs.span("dropped"):
            pass
        obs.stop_trace()
        assert trace.dropped_spans == 1
        assert trace.roots == []
        assert trace.span_count() == MAX_SPANS + 1

    def test_drops_increment_the_spans_dropped_counter(self):
        # The cap must not be silent: every drop also lands in the
        # trace.spans_dropped counter so merged telemetry surfaces it.
        obs.enable_counting()
        trace = obs.start_trace("cap")
        trace._count = MAX_SPANS
        with obs.span("dropped"):
            pass
        with obs.span("also-dropped"):
            pass
        obs.stop_trace()
        assert obs.REGISTRY.value("trace.spans_dropped") == 2

    def test_dropped_count_lands_in_export_records(self):
        trace = obs.start_trace("cap")
        trace._count = MAX_SPANS
        with obs.span("dropped"):
            pass
        obs.stop_trace()
        record = obs.make_record("E0", trace=trace)
        assert record["dropped"] == 1
        clean = obs.make_record("E0", trace=obs.Trace("empty"))
        assert "dropped" not in clean


class TestThreadLocality:
    def test_trace_does_not_leak_across_threads(self):
        obs.start_trace("main-thread")
        seen = {}

        def worker():
            seen["trace"] = obs.current_trace()
            with obs.span("in-worker"):
                pass

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        trace = obs.stop_trace()
        assert seen["trace"] is None      # tracing is per-thread
        assert trace.roots == []          # worker spans were no-ops


class TestCollect:
    def test_collect_restores_disabled_state(self):
        assert not obs.tracing_enabled()
        with obs.collect("c") as trace:
            assert obs.current_trace() is trace
            with obs.span("x"):
                pass
        assert not obs.tracing_enabled()
        assert trace.span_count() == 1

    def test_observe_resets_counters_and_restores(self):
        obs.enable_counting()
        obs.add("mc.samples", 5)
        with obs.observe("block") as trace:
            # Counters were reset on entry.
            assert obs.REGISTRY.value("mc.samples") == 0
            obs.add("mc.samples", 3)
            with obs.span("inside"):
                pass
        assert trace.span_count() == 1
        assert obs.counting_enabled()     # was on before, stays on
        assert not obs.tracing_enabled()
        obs.disable_counting()

    def test_observe_restores_outer_trace(self):
        outer = obs.start_trace("outer")
        with obs.observe("inner"):
            pass
        assert obs.current_trace() is outer
        obs.stop_trace()
