"""Histogram metric: bucketing, quantiles, and exact merges."""

import math

import pytest

from repro import obs
from repro.obs.histogram import BUCKET_BOUNDS, _OVERFLOW, Histogram


class TestBucketLayout:
    def test_bounds_are_fixed_log_scaled(self):
        assert len(BUCKET_BOUNDS) == 40
        assert BUCKET_BOUNDS[0] == pytest.approx(1e-7)
        assert BUCKET_BOUNDS[-1] == pytest.approx(1e6)
        ratios = [
            BUCKET_BOUNDS[i + 1] / BUCKET_BOUNDS[i]
            for i in range(len(BUCKET_BOUNDS) - 1)
        ]
        assert all(r == pytest.approx(10 ** (1 / 3)) for r in ratios)

    def test_values_land_in_covering_bucket(self):
        hist = Histogram("h")
        hist.observe(0.5)
        (index,) = hist.buckets
        # The bucket's bound is the smallest one >= the value.
        assert BUCKET_BOUNDS[index] >= 0.5
        assert index == 0 or BUCKET_BOUNDS[index - 1] < 0.5

    def test_overflow_bucket_catches_huge_values(self):
        hist = Histogram("h")
        hist.observe(1e9)
        assert hist.buckets == {_OVERFLOW: 1}
        assert hist.count == 1

    def test_negative_values_clamp_into_first_bucket(self):
        hist = Histogram("h")
        hist.observe(-3.0)
        assert hist.buckets == {0: 1}
        assert hist.min == -3.0


class TestStats:
    def test_count_sum_min_max_exact(self):
        hist = Histogram("h")
        for v in (0.1, 0.2, 0.4):
            hist.observe(v)
        assert hist.count == 3
        assert hist.sum == pytest.approx(0.7)
        assert hist.min == 0.1
        assert hist.max == 0.4
        assert hist.value == 3  # generic metric value = count

    def test_quantiles_none_when_empty(self):
        hist = Histogram("h")
        assert hist.quantile(0.5) is None
        assert hist.summary()["p95"] is None

    def test_quantiles_within_observed_range(self):
        hist = Histogram("h")
        for v in (0.001, 0.01, 0.1, 1.0, 10.0):
            hist.observe(v)
        for q in (0.01, 0.5, 0.95, 0.99):
            estimate = hist.quantile(q)
            assert hist.min <= estimate <= hist.max

    def test_single_observation_quantile_is_that_value(self):
        hist = Histogram("h")
        hist.observe(0.25)
        assert hist.quantile(0.5) == pytest.approx(0.25)

    def test_quantile_accuracy_within_a_bucket_width(self):
        hist = Histogram("h")
        for i in range(1, 101):
            hist.observe(i / 100)
        p50 = hist.quantile(0.5)
        # Accurate to the containing bucket (~2.154x wide).
        assert 0.5 / (10 ** (1 / 3)) <= p50 <= 0.5 * (10 ** (1 / 3))

    def test_reset(self):
        hist = Histogram("h")
        hist.observe(1.0)
        hist.reset()
        assert hist.count == 0 and hist.sum == 0.0
        assert hist.min is None and hist.buckets == {}


class TestMerge:
    def _sample(self, values):
        hist = Histogram("h")
        for v in values:
            hist.observe(v)
        return hist

    def test_merge_equals_observing_everything_in_one(self):
        left = self._sample([0.1, 5.0])
        right = self._sample([0.002, 300.0, 1e9])
        combined = self._sample([0.1, 5.0, 0.002, 300.0, 1e9])
        left.merge(right)
        assert left.buckets == combined.buckets
        assert left.count == combined.count
        assert left.sum == pytest.approx(combined.sum)
        assert (left.min, left.max) == (combined.min, combined.max)

    def test_merge_commutative(self):
        a1, b1 = self._sample([0.1, 0.2]), self._sample([3.0])
        a2, b2 = self._sample([0.1, 0.2]), self._sample([3.0])
        ab = a1.merge(b1)
        ba = b2.merge(a2)
        assert ab.as_dict() == ba.as_dict()

    def test_merge_associative(self):
        def fresh():
            return (
                self._sample([0.1]),
                self._sample([2.0, 2.5]),
                self._sample([1e-9, 40.0]),
            )

        a, b, c = fresh()
        left_first = a.merge(b).merge(c)
        a2, b2, c2 = fresh()
        right_first = a2.merge(b2.merge(c2))
        assert left_first.as_dict() == right_first.as_dict()

    def test_merge_empty_is_identity(self):
        hist = self._sample([0.5])
        before = hist.as_dict()
        hist.merge(Histogram("h"))
        assert hist.as_dict() == before


class TestSerialization:
    def test_round_trip(self):
        hist = Histogram("h", "a histogram")
        for v in (0.01, 0.5, 1e9):
            hist.observe(v)
        back = Histogram.from_dict("h", hist.as_dict())
        assert back.as_dict() == hist.as_dict()
        assert back.count == 3

    def test_merge_dict_cross_process_shape(self):
        # Simulate the pickle/JSON boundary: string bucket keys.
        hist = Histogram("h")
        hist.merge_dict(
            {"count": 2, "sum": 1.5, "min": 0.5, "max": 1.0,
             "buckets": {"20": 1, "22": 1}}
        )
        assert hist.count == 2
        assert hist.buckets == {20: 1, 22: 1}

    def test_cumulative_buckets_end_at_inf_total(self):
        hist = Histogram("h")
        for v in (0.5, 0.6, 1e9):
            hist.observe(v)
        cumulative = hist.cumulative_buckets()
        assert len(cumulative) == len(BUCKET_BOUNDS) + 1
        bound, total = cumulative[-1]
        assert math.isinf(bound) and total == 3
        counts = [n for _, n in cumulative]
        assert counts == sorted(counts)  # cumulative is monotone


class TestRegistryIntegration:
    def test_registry_histogram_accessor(self):
        registry = obs.Registry()
        hist = registry.histogram("engine.query.volume_s")
        assert hist is registry.histogram("engine.query.volume_s")
        registry.counter("some.counter")
        with pytest.raises(Exception):
            registry.histogram("some.counter")  # kind conflict

    def test_observe_value_noop_while_disabled(self):
        assert not obs.counting_enabled()
        obs.observe_value("engine.query.volume_s", 0.5)
        assert obs.REGISTRY.histogram("engine.query.volume_s").count == 0

    def test_observe_value_records_when_enabled(self):
        obs.enable_counting()
        obs.observe_value("engine.query.volume_s", 0.5)
        obs.observe_value("engine.query.volume_s", 0.7)
        hist = obs.REGISTRY.histogram("engine.query.volume_s")
        assert hist.count == 2
        assert hist.sum == pytest.approx(1.2)

    def test_reset_clears_histograms(self):
        obs.enable_counting()
        obs.observe_value("engine.query.volume_s", 0.5)
        obs.reset()
        assert obs.REGISTRY.histogram("engine.query.volume_s").count == 0
