"""Regression pins: the instrumented pipeline emits deterministic counts.

Two small fixed queries — one through the CAD decision procedure, one
through Fourier-Motzkin elimination — must produce exactly the counter
values recorded here.  A change in these numbers means the algorithms
explored a different search space; update the pins only with an
explanation of the algorithmic change.
"""

from fractions import Fraction

from repro import obs
from repro.core import SumEvaluator, endpoints_range
from repro.db import FiniteInstance, Schema
from repro.logic import Relation, Var, exists, variables
from repro.qe import qe_linear
from repro.qe.cad import decide

x, y = variables("x y")


class TestCadPins:
    def test_sqrt2_membership_counts(self):
        """exists x. x^2 = 2 and 0 < x < 2 — a one-variable CAD."""
        sentence = exists(x, (x * x).eq(2) & (0 < x) & (x < 2))
        obs.enable_counting()
        obs.reset()
        assert decide(sentence) is True
        counts = obs.REGISTRY.as_dict()
        assert counts["cad.decisions"] == 1
        assert counts["cad.cells"] == 9
        assert counts["cad.section_roots"] == 4
        assert counts["sturm.evaluations"] == 12
        assert counts["sturm.sign_changes"] == 11

    def test_cad_spans_nest(self):
        sentence = exists(x, (x * x).eq(2) & (0 < x) & (x < 2))
        with obs.observe("cad") as trace:
            decide(sentence)
        names = {r.name for r in trace.roots}
        assert "qe.cad.decide" in names
        root = next(r for r in trace.roots if r.name == "qe.cad.decide")
        child_names = {c.name for c in root.children}
        assert {"qe.cad.project", "qe.cad.lift"} <= child_names


class TestFourierMotzkinPins:
    def test_triangle_projection_counts(self):
        """exists y. 0 <= y <= x <= 1 — one linear elimination."""
        formula = exists(y, (0 <= y) & (y <= x) & (x <= 1))
        obs.enable_counting()
        obs.reset()
        qe_linear(formula)
        counts = obs.REGISTRY.as_dict()
        assert counts["fm.eliminations"] == 2
        assert counts["fm.constraints_pruned"] == 1
        assert counts["fm.disjuncts"] == 1


class TestEvaluatorCounts:
    def test_range_set_candidates(self):
        U = Relation("U", 1)
        schema = Schema.make({"U": 1})
        instance = FiniteInstance.make(
            schema, {"U": [Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)]}
        )
        rho = endpoints_range("w", U(Var("w")))
        obs.enable_counting()
        obs.reset()
        with obs.collect("eval") as trace:
            selected = SumEvaluator(instance).range_set(rho)
        counts = obs.REGISTRY.as_dict()
        assert len(selected) == 3
        assert counts["evaluator.range_selected"] == 3
        assert counts["evaluator.range_candidates"] >= 3
        assert trace.roots[0].name == "evaluator.range_set"

    def test_disabled_pipeline_emits_nothing(self):
        U = Relation("U", 1)
        schema = Schema.make({"U": 1})
        instance = FiniteInstance.make(schema, {"U": [1, 2]})
        rho = endpoints_range("w", U(Var("w")))
        obs.disable_counting()
        obs.reset()
        SumEvaluator(instance).range_set(rho)
        assert obs.REGISTRY.as_dict() == {}
