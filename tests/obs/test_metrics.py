"""Counter/gauge registry semantics and the enabled/disabled gate."""

from fractions import Fraction

import pytest

from repro import obs
from repro.obs.metrics import CATALOGUE, Counter, Gauge, MetricError, Registry


class TestCounter:
    def test_monotonic(self):
        c = Counter("c")
        c.add()
        c.add(4)
        assert c.value == 5
        with pytest.raises(MetricError):
            c.add(-1)
        assert c.value == 5

    def test_reset(self):
        c = Counter("c")
        c.add(3)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_last_value_wins(self):
        g = Gauge("g")
        assert g.value is None
        g.set(7)
        g.set(2)
        assert g.value == 2
        g.reset()
        assert g.value is None


class TestRegistry:
    def test_get_or_create_is_typed(self):
        r = Registry()
        c = r.counter("a")
        assert r.counter("a") is c
        with pytest.raises(MetricError):
            r.gauge("a")
        g = r.gauge("b")
        with pytest.raises(MetricError):
            r.counter("b")
        assert r.get("b") is g
        assert r.get("missing") is None

    def test_reset_survives_registrations(self):
        r = Registry()
        r.counter("a", "described").add(9)
        r.gauge("b").set(1)
        r.reset()
        assert r.value("a") == 0
        assert r.value("b") is None
        assert r.counter("a").description == "described"

    def test_as_dict_skips_empty_and_converts_fractions(self):
        r = Registry()
        r.counter("zero")
        r.counter("nonzero").add(2)
        r.gauge("unset")
        r.gauge("exact").set(Fraction(1, 4))
        snapshot = r.as_dict()
        assert snapshot == {"nonzero": 2, "exact": 0.25}
        assert isinstance(snapshot["exact"], float)
        full = r.as_dict(skip_empty=False)
        assert full["zero"] == 0 and full["unset"] is None


class TestCatalogue:
    def test_catalogue_preregistered_in_global_registry(self):
        for name, (kind, description) in CATALOGUE.items():
            metric = obs.REGISTRY.get(name)
            assert metric is not None, name
            assert metric.kind == kind
            assert metric.description == description

    def test_key_pipeline_metrics_present(self):
        for name in ("cad.cells", "fm.constraints_pruned",
                     "evaluator.range_candidates", "mc.samples",
                     "sturm.sign_changes"):
            assert name in CATALOGUE


class TestModuleGate:
    def test_disabled_add_is_noop(self):
        assert not obs.counting_enabled()
        obs.add("mc.samples", 10)
        obs.set_gauge("km.sample_size", 99)
        assert obs.REGISTRY.value("mc.samples") == 0
        assert obs.REGISTRY.value("km.sample_size") is None

    def test_enabled_add_accumulates(self):
        obs.enable_counting()
        obs.add("mc.samples", 10)
        obs.add("mc.samples")
        obs.set_gauge("km.sample_size", 99)
        assert obs.REGISTRY.value("mc.samples") == 11
        assert obs.REGISTRY.value("km.sample_size") == 99
        obs.disable_counting()

    def test_reset_zeroes_but_keeps_switch(self):
        obs.enable_counting()
        obs.add("mc.samples", 3)
        obs.reset()
        assert obs.REGISTRY.value("mc.samples") == 0
        assert obs.counting_enabled()
        obs.disable_counting()
