"""Prometheus text parsing and the quantile estimate behind ``repro top``."""

import math

from repro import obs
from repro.obs.promparse import parse_prometheus, quantile_from_buckets
from repro.obs.top import render_top

EXPOSITION = """\
# HELP repro_serve_requests_total requests received
# TYPE repro_serve_requests_total counter
repro_serve_requests_total 42
# TYPE repro_serve_queue_depth gauge
repro_serve_queue_depth 3
# TYPE repro_serve_latency_s histogram
repro_serve_latency_s_bucket{le="0.01"} 10
repro_serve_latency_s_bucket{le="0.1"} 30 # {trace_id="aa11"} 0.07
repro_serve_latency_s_bucket{le="+Inf"} 32 # {trace_id="bb22"} 1.5
repro_serve_latency_s_sum 2.9
repro_serve_latency_s_count 32
garbage line that parses as nothing !!
"""


class TestParse:
    def test_counters_and_gauges(self):
        snap = parse_prometheus(EXPOSITION)
        assert snap.samples["repro_serve_requests_total"] == 42
        assert snap.value("repro_serve_requests") == 42  # _total fallback
        assert snap.samples["repro_serve_queue_depth"] == 3

    def test_histogram_reassembled(self):
        snap = parse_prometheus(EXPOSITION)
        hist = snap.histograms["repro_serve_latency_s"]
        assert hist.sorted_buckets() == [(0.01, 10), (0.1, 30), (math.inf, 32)]
        assert hist.sum == 2.9
        assert hist.count == 32

    def test_exemplars_parsed(self):
        hist = parse_prometheus(EXPOSITION).histograms["repro_serve_latency_s"]
        assert hist.exemplars[0.1] == ("aa11", 0.07)
        assert hist.exemplars[math.inf] == ("bb22", 1.5)

    def test_unparseable_lines_skipped(self):
        snap = parse_prometheus(EXPOSITION)
        assert "garbage" not in snap.samples

    def test_type_declarations_recorded(self):
        snap = parse_prometheus(EXPOSITION)
        assert snap.types["repro_serve_latency_s"] == "histogram"

    def test_round_trip_through_exporter(self):
        registry = obs.Registry()
        registry.counter("serve.requests").add(7)
        registry.histogram("serve.latency_s").observe(0.05, trace_id="xyz")
        text = obs.render_prometheus(registry, exemplars=True)
        snap = parse_prometheus(text)
        assert snap.value("repro_serve_requests") == 7
        hist = snap.histograms["repro_serve_latency_s"]
        assert hist.count == 1
        assert ("xyz", 0.05) in hist.exemplars.values()


class TestQuantile:
    def test_empty_and_zero_total(self):
        assert quantile_from_buckets([], 0.5) == 0.0
        assert quantile_from_buckets([(1.0, 0)], 0.5) == 0.0

    def test_interpolates_within_bucket(self):
        buckets = [(1.0, 0), (2.0, 100)]
        # Median of 100 observations uniformly inside (1, 2].
        assert 1.0 < quantile_from_buckets(buckets, 0.5) <= 2.0

    def test_inf_bucket_collapses_to_last_finite_bound(self):
        buckets = [(1.0, 10), (math.inf, 20)]
        assert quantile_from_buckets(buckets, 0.99) == 1.0

    def test_quantiles_monotone_in_q(self):
        buckets = [(0.01, 5), (0.1, 20), (1.0, 30), (math.inf, 31)]
        values = [
            quantile_from_buckets(buckets, q)
            for q in (0.1, 0.5, 0.9, 0.99)
        ]
        assert values == sorted(values)


class TestRenderTop:
    def test_one_screen_from_a_scrape(self):
        frame = render_top(parse_prometheus(EXPOSITION), url="http://x/metrics")
        assert "repro top" in frame
        assert "requests 42 total" in frame
        assert "p95" in frame
        assert "depth 3" in frame
        # Exemplar trace ids surface as the slow-trace list.
        assert "trace_id=bb22" in frame
        assert len(frame.splitlines()) < 25

    def test_rate_needs_two_scrapes(self):
        snap = parse_prometheus(EXPOSITION)
        first = render_top(snap)
        assert "rate -" in first
        later = parse_prometheus(
            EXPOSITION.replace("repro_serve_requests_total 42",
                               "repro_serve_requests_total 52")
        )
        second = render_top(later, previous=snap, interval=2.0)
        assert "rate 5.0/s" in second

    def test_empty_scrape_renders_without_error(self):
        frame = render_top(parse_prometheus(""))
        assert "no observations" in frame
