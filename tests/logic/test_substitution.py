"""Capture-avoiding substitution and bound-variable renaming."""

from fractions import Fraction

from repro.logic import (
    Const,
    Exists,
    evaluate,
    rename_bound,
    substitute,
    substitute_term,
    fresh_variable,
    variables,
)

x, y, z = variables("x y z")


class TestTermSubstitution:
    def test_substitute_variable(self):
        t = substitute_term(x + y, {"x": Const(Fraction(2))})
        assert t.evaluate({"y": Fraction(1)}) == 3

    def test_simultaneous(self):
        # x := y, y := x swaps, no chain effects.
        t = substitute_term(x - y, {"x": y, "y": x})
        assert t.evaluate({"x": Fraction(1), "y": Fraction(5)}) == 4

    def test_untouched_variables(self):
        t = substitute_term(x + z, {"y": Const(Fraction(0))})
        assert t == x + z


class TestFormulaSubstitution:
    def test_free_occurrence_substituted(self):
        f = substitute(x < y, {"x": Const(Fraction(0))})
        assert f.free_variables() == {"y"}

    def test_bound_occurrence_untouched(self):
        f = Exists("x", x < y)
        g = substitute(f, {"x": Const(Fraction(0))})
        assert g == f

    def test_capture_avoided(self):
        # substituting y := x into (exists x . x < y) must not capture x.
        f = Exists("x", x < y)
        g = substitute(f, {"y": x})
        # Semantically: "exists v . v < x" — true for every x over R,
        # but the key point is the bound variable was renamed.
        assert isinstance(g, Exists)
        assert g.var != "x"
        assert "x" in g.free_variables()

    def test_no_mapping_is_identity(self):
        f = Exists("x", x < y)
        assert substitute(f, {}) is f

    def test_substitution_semantics(self):
        f = (x + y < 4)
        g = substitute(f, {"x": y + 1})
        assert evaluate(g, {"y": 1}) == evaluate(f, {"x": 2, "y": 1})


class TestRenameBound:
    def test_renames_collision_with_free(self):
        f = (x < 1) & Exists("x", x > 2)
        g = rename_bound(f)
        # The inner bound variable no longer clashes with the free x.
        inner = g.args[1]
        assert isinstance(inner, Exists)
        assert inner.var != "x"

    def test_distinct_binders_get_distinct_names(self):
        f = Exists("y", y > x) & Exists("y", y < x)
        g = rename_bound(f)
        binders = [part.var for part in g.args]
        assert len(set(binders)) == 2


class TestFreshVariable:
    def test_prefers_stem(self):
        assert fresh_variable({"a", "b"}, "x") == "x"

    def test_avoids_taken(self):
        name = fresh_variable({"x", "x_0"}, "x")
        assert name not in {"x", "x_0"}
