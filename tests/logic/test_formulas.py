"""Unit tests for formula construction and structure."""

import pytest

from repro.logic import (
    And,
    Compare,
    Exists,
    ExistsAdom,
    FALSE,
    Forall,
    ForallAdom,
    Not,
    Or,
    RelAtom,
    TRUE,
    conjunction,
    disjunction,
    variables,
)


x, y, z = variables("x y z")


class TestAtoms:
    def test_comparison_operators_build_atoms(self):
        assert (x < y).op == "<"
        assert (x <= y).op == "<="
        assert (x > y).op == ">"
        assert (x >= y).op == ">="

    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError):
            Compare("<<", x, y)

    def test_negated_atom(self):
        assert (x < y).negated().op == ">="
        assert (x.eq(y)).negated().op == "!="

    def test_flipped_atom(self):
        flipped = (x < y).flipped()
        assert flipped.op == ">"
        assert flipped.lhs == y

    def test_free_variables_of_atom(self):
        assert (x + y < z).free_variables() == {"x", "y", "z"}

    def test_rel_atom_relation_names(self):
        atom = RelAtom("R", (x, y))
        assert atom.relation_names() == {"R"}
        assert atom.free_variables() == {"x", "y"}


class TestConnectives:
    def test_and_flattens(self):
        f = (x < y) & ((y < z) & (x < z))
        assert isinstance(f, And)
        assert len(f.args) == 3

    def test_or_flattens(self):
        f = (x < y) | ((y < z) | (x < z))
        assert isinstance(f, Or)
        assert len(f.args) == 3

    def test_conjunction_true_unit(self):
        assert conjunction(TRUE, x < y) == (x < y)

    def test_conjunction_false_annihilates(self):
        assert conjunction(x < y, FALSE) == FALSE

    def test_empty_conjunction_is_true(self):
        assert conjunction() == TRUE

    def test_disjunction_false_unit(self):
        assert disjunction(FALSE, x < y) == (x < y)

    def test_disjunction_true_annihilates(self):
        assert disjunction(x < y, TRUE) == TRUE

    def test_empty_disjunction_is_false(self):
        assert disjunction() == FALSE

    def test_double_negation_collapses(self):
        f = x < y
        assert ~~f == f

    def test_negating_constants(self):
        assert ~TRUE == FALSE
        assert ~FALSE == TRUE

    def test_implies(self):
        f = (x < y).implies(x < z)
        assert isinstance(f, Or)

    def test_iff(self):
        f = (x < y).iff(y > x)
        assert isinstance(f, And)


class TestQuantifiers:
    def test_exists_binds(self):
        f = Exists("y", x < y)
        assert f.free_variables() == {"x"}

    def test_forall_binds(self):
        f = Forall("x", Exists("y", x < y))
        assert f.free_variables() == set()

    def test_adom_quantifiers_bind(self):
        assert ExistsAdom("x", x < y).free_variables() == {"y"}
        assert ForallAdom("x", x < y).free_variables() == {"y"}

    def test_relation_names_propagate(self):
        f = Exists("x", RelAtom("R", (x,)) & (x < 1))
        assert f.relation_names() == {"R"}

    def test_shadowing(self):
        f = Exists("x", Exists("x", x < 1))
        assert f.free_variables() == set()


class TestRequiredArity:
    def test_and_needs_two(self):
        with pytest.raises(ValueError):
            And((x < y,))

    def test_or_needs_two(self):
        with pytest.raises(ValueError):
            Or((x < y,))


class TestHashability:
    def test_formulas_are_hashable(self):
        f1 = Exists("y", (x < y) & (y < 1))
        f2 = Exists("y", (x < y) & (y < 1))
        assert len({f1, f2}) == 1

    def test_not_wraps(self):
        f = Not(RelAtom("R", (x,)))
        assert f.free_variables() == {"x"}
