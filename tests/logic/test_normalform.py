"""Normal forms: NNF, prenex, DNF."""

import pytest

from repro.logic import (
    Exists,
    FALSE,
    Forall,
    Not,
    RelAtom,
    TRUE,
    evaluate,
    is_quantifier_free,
    qf_to_dnf,
    to_nnf,
    to_prenex,
    variables,
)
from repro._errors import NotQuantifierFree

x, y, z = variables("x y z")


class TestNNF:
    def test_negated_comparison_resolved(self):
        f = to_nnf(~(x < y))
        # No Not nodes over comparisons.
        assert "NOT" not in str(f)
        assert str(f) == "x >= y"

    def test_de_morgan_and(self):
        f = to_nnf(~((x < 1) & (y < 1)))
        assert str(f) == "x >= 1 OR y >= 1"

    def test_de_morgan_or(self):
        f = to_nnf(~((x < 1) | (y < 1)))
        assert str(f) == "x >= 1 AND y >= 1"

    def test_quantifier_duality(self):
        f = to_nnf(~Exists("x", x < 1))
        assert isinstance(f, Forall)

    def test_adom_quantifier_duality(self):
        from repro.logic import ExistsAdom, ForallAdom

        f = to_nnf(~ExistsAdom("x", x < 1))
        assert isinstance(f, ForallAdom)

    def test_negated_relation_atom_stays(self):
        f = to_nnf(~RelAtom("R", (x,)))
        assert isinstance(f, Not)

    def test_nnf_preserves_semantics(self):
        # Check at sample points over a small domain.
        f = ~((x < y) & ~(y < z))
        g = to_nnf(f)
        domain = [0, 1, 2]
        for a in domain:
            for b in domain:
                for c in domain:
                    env = {"x": a, "y": b, "z": c}
                    assert evaluate(f, env) == evaluate(g, env)


class TestPrenex:
    def test_simple_pull(self):
        f = (x < 1) & Exists("y", y > x)
        p = to_prenex(f)
        assert len(p.prefix) == 1
        assert p.prefix[0][0] is Exists
        assert is_quantifier_free(p.matrix)

    def test_negation_flips_quantifier(self):
        f = ~Exists("y", y > x)
        p = to_prenex(f)
        assert p.prefix[0][0] is Forall

    def test_colliding_bound_variables_renamed(self):
        f = Exists("y", y > x) & Exists("y", y < x)
        p = to_prenex(f)
        assert len(p.prefix) == 2
        names = {var for _, var in p.prefix}
        assert len(names) == 2

    def test_roundtrip_to_formula(self):
        f = Forall("x", Exists("y", x < y))
        p = to_prenex(f)
        rebuilt = p.to_formula()
        assert to_prenex(rebuilt).prefix == p.prefix

    def test_bound_variable_capture_avoided(self):
        # free x outside, bound x inside
        f = (x < 1) & Exists("x", x > 2)
        p = to_prenex(f)
        (kind, var), = p.prefix
        assert var != "x"
        assert "x" in p.matrix.free_variables()


class TestDNF:
    def test_atom_is_single_conjunct(self):
        assert qf_to_dnf(x < 1) == [[x < 1]]

    def test_true_is_empty_conjunct(self):
        assert qf_to_dnf(TRUE) == [[]]

    def test_false_is_empty_dnf(self):
        assert qf_to_dnf(FALSE) == []

    def test_distribution(self):
        f = (x < 1) & ((y < 1) | (z < 1))
        dnf = qf_to_dnf(f)
        assert len(dnf) == 2
        assert all(len(c) == 2 for c in dnf)

    def test_rejects_quantifiers(self):
        with pytest.raises(NotQuantifierFree):
            qf_to_dnf(Exists("x", x < 1))

    def test_max_conjuncts_guard(self):
        f = ((x < 1) | (x > 2)) & ((y < 1) | (y > 2)) & ((z < 1) | (z > 2))
        with pytest.raises(ValueError):
            qf_to_dnf(f, max_conjuncts=4)

    def test_dnf_preserves_semantics(self):

        f = ~((x < y) | ((y < z) & ~(x < z)))
        dnf = qf_to_dnf(f)
        domain = [0, 1, 2]
        for a in domain:
            for b in domain:
                for c in domain:
                    env = {"x": a, "y": b, "z": c}
                    expected = evaluate(f, env)
                    got = any(
                        all(evaluate(lit, env) for lit in conjunct)
                        for conjunct in dnf
                    )
                    assert got == expected
