"""Regression pin: ``__eq__`` / ``__hash__`` agree on every AST node type.

The plan cache and canonicalizer of :mod:`repro.engine` put formulas and
terms into sets and dict keys, which is only sound if structurally equal
nodes are ``==``-equal *and* hash-equal.  Every node is a frozen
dataclass, so both are generated from the same field tuple — this suite
pins that contract so a future hand-written ``__eq__`` or ``__hash__``
on one class cannot silently skew.
"""

import dataclasses
from fractions import Fraction

from repro.engine import canonical_formula
from repro.logic import (
    And,
    Compare,
    Const,
    Exists,
    ExistsAdom,
    FALSE,
    Forall,
    ForallAdom,
    Formula,
    Not,
    Or,
    RelAtom,
    TRUE,
    Var,
    parse,
    walk_ast,
)
from repro.logic.terms import Add, Mul, Neg, Pow, Term

X, Y = Var("x"), Var("y")

#: One representative instance per concrete node type.
SPECIMENS = [
    X,
    Const(Fraction(1, 3)),
    Add((X, Y)),
    Mul((Const(2), X)),
    Neg(X),
    Pow(X, 3),
    TRUE,
    FALSE,
    Compare("<", X, Y),
    RelAtom("S", (X, Y)),
    And((Compare("<", X, Y), Compare("<", Y, Const(1)))),
    Or((Compare("<", X, Y), Compare("<", Y, Const(1)))),
    Not(RelAtom("S", (X,))),
    Exists("x", Compare("<", X, Y)),
    Forall("x", Compare("<", X, Y)),
    ExistsAdom("x", Compare("<", X, Y)),
    ForallAdom("x", Compare("<", X, Y)),
]


def rebuild(node):
    """An independently constructed, structurally identical copy."""
    kwargs = {}
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        if isinstance(value, (Formula, Term)):
            value = rebuild(value)
        elif isinstance(value, tuple):
            value = tuple(
                rebuild(item) if isinstance(item, (Formula, Term)) else item
                for item in value
            )
        kwargs[field.name] = value
    return type(node)(**kwargs)


class TestEqHashContract:
    def test_specimens_cover_every_concrete_node_type(self):
        def leaves(cls):
            subs = cls.__subclasses__()
            if not subs:
                return {cls}
            found = set()
            for sub in subs:
                found |= leaves(sub)
            return found | ({cls} if dataclasses.is_dataclass(cls) else set())

        concrete = {
            cls for cls in leaves(Formula) | leaves(Term)
            if dataclasses.is_dataclass(cls)
            # Other packages (e.g. repro.core's aggregate language) may
            # subclass the AST; this contract pin covers repro.logic.
            and cls.__module__.startswith("repro.logic")
        }
        covered = {type(node) for node in SPECIMENS}
        assert concrete <= covered, f"missing: {concrete - covered}"

    def test_every_node_type_is_a_frozen_dataclass(self):
        for node in SPECIMENS:
            params = getattr(type(node), "__dataclass_params__")
            assert params.frozen, type(node).__name__
            assert params.eq, type(node).__name__

    def test_structural_copies_are_equal_and_hash_equal(self):
        for node in SPECIMENS:
            copy = rebuild(node)
            assert copy is not node
            assert copy == node, type(node).__name__
            assert hash(copy) == hash(node), type(node).__name__

    def test_distinct_structures_are_unequal(self):
        assert len(set(SPECIMENS)) == len(SPECIMENS)

    def test_const_normalises_int_to_fraction(self):
        assert Const(1) == Const(Fraction(1))
        assert hash(Const(1)) == hash(Const(Fraction(1)))

    def test_quantifier_flavours_do_not_collide(self):
        body = Compare("<", X, Y)
        flavours = {
            Exists("x", body), Forall("x", body),
            ExistsAdom("x", body), ForallAdom("x", body),
        }
        assert len(flavours) == 4


class TestWalkAst:
    def test_preorder_and_complete(self):
        formula = Exists("x", And((Compare("<", X, Y), RelAtom("S", (Neg(X),)))))
        nodes = list(walk_ast(formula))
        assert nodes[0] is formula
        assert X in nodes and Y in nodes
        assert any(isinstance(n, Neg) for n in nodes)
        # Every child appears after its parent.
        assert nodes.index(formula) < nodes.index(X)

    def test_walk_methods_delegate(self):
        formula = Compare("<", X, Y)
        assert list(formula.walk()) == list(walk_ast(formula))
        assert list(X.walk()) == [X]


class TestCanonicalIdentification:
    """Structural equality is strict; canonical forms identify variants."""

    def test_alpha_variants_unequal_until_canonicalized(self):
        a = parse("EXISTS z . z < x")
        b = parse("EXISTS w . w < x")
        assert a != b
        assert canonical_formula(a) == canonical_formula(b)
        assert hash(canonical_formula(a)) == hash(canonical_formula(b))

    def test_reordered_conjunctions_unequal_until_canonicalized(self):
        a = (X < 1) & (Y < 1)
        b = (Y < 1) & (X < 1)
        assert a != b
        assert canonical_formula(a) == canonical_formula(b)
