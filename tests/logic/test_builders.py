"""Builder helpers: variables, relations, quantifier sugar, range sugar."""

from fractions import Fraction

import pytest

from repro.logic import (
    Exists,
    ExistsAdom,
    Forall,
    ForallAdom,
    Relation,
    between,
    const,
    evaluate,
    exists,
    exists_adom,
    forall,
    forall_adom,
    iff,
    implies,
    in_unit_cube,
    in_unit_interval,
    land,
    lor,
    variables,
)

x, y, z = variables("x y z")


class TestVariables:
    def test_from_string(self):
        a, b = variables("a b")
        assert a.name == "a" and b.name == "b"

    def test_from_iterable(self):
        (a,) = variables(["a"])
        assert a.name == "a"


class TestConst:
    def test_from_int(self):
        assert const(3).value == 3

    def test_from_string_fraction(self):
        assert const("3/7").value == Fraction(3, 7)


class TestRelation:
    def test_arity_enforced(self):
        R = Relation("R", 2)
        with pytest.raises(ValueError):
            R(x)

    def test_positive_arity_required(self):
        with pytest.raises(ValueError):
            Relation("R", 0)

    def test_arguments_coerced(self):
        R = Relation("R", 2)
        atom = R(x, 1)
        from repro.logic import Const

        assert atom.args[1] == Const(Fraction(1))


class TestQuantifierSugar:
    def test_single_variable(self):
        assert isinstance(exists(x, x < 1), Exists)
        assert isinstance(forall(x, x < 1), Forall)
        assert isinstance(exists_adom(x, x < 1), ExistsAdom)
        assert isinstance(forall_adom(x, x < 1), ForallAdom)

    def test_string_variable(self):
        assert exists("x", x < 1) == exists(x, x < 1)

    def test_sequence_binds_in_order(self):
        f = exists([x, y], x < y)
        assert isinstance(f, Exists)
        assert f.var == "x"
        assert isinstance(f.body, Exists)
        assert f.body.var == "y"


class TestConnectiveSugar:
    def test_land_lor(self):
        assert evaluate(land(x < 1, x > 0), {"x": Fraction(1, 2)})
        assert evaluate(lor(x < 0, x > 1), {"x": Fraction(1, 2)}) is False

    def test_implies(self):
        f = implies(x > 0, x >= 0)
        assert evaluate(f, {"x": 1}) and evaluate(f, {"x": -1})

    def test_iff(self):
        f = iff(x > 0, 0 < x)
        assert evaluate(f, {"x": 5}) and evaluate(f, {"x": -5})


class TestRangeSugar:
    def test_between_closed(self):
        f = between(0, x, 1)
        assert evaluate(f, {"x": 0}) and evaluate(f, {"x": 1})

    def test_between_strict(self):
        f = between(0, x, 1, strict=True)
        assert not evaluate(f, {"x": 0})
        assert evaluate(f, {"x": Fraction(1, 2)})

    def test_unit_interval(self):
        assert evaluate(in_unit_interval(x), {"x": Fraction(1, 2)})
        assert not evaluate(in_unit_interval(x), {"x": 2})

    def test_unit_cube(self):
        f = in_unit_cube((x, y))
        assert evaluate(f, {"x": Fraction(1, 2), "y": 1})
        assert not evaluate(f, {"x": Fraction(1, 2), "y": 2})
