"""Parser and printer: round-trips and error handling."""

from fractions import Fraction

import pytest

from repro.logic import (
    Const,
    ParseError,
    Relation,
    conjunction,
    exists,
    forall,
    parse,
    parse_term,
    variables,
)

x, y, z = variables("x y z")
R = Relation("R", 2)


class TestTermParsing:
    def test_number(self):
        assert parse_term("3") == Const(Fraction(3))

    def test_fraction_literal(self):
        assert parse_term("3/4") == Const(Fraction(3, 4))

    def test_arithmetic_precedence(self):
        t = parse_term("1 + 2 * x")
        assert t.evaluate({"x": Fraction(10)}) == 21

    def test_power(self):
        t = parse_term("x^3")
        assert t.evaluate({"x": Fraction(2)}) == 8

    def test_unary_minus(self):
        t = parse_term("-x + 5")
        assert t.evaluate({"x": Fraction(2)}) == 3

    def test_parenthesised_term(self):
        t = parse_term("(x + 1) * 2")
        assert t.evaluate({"x": Fraction(3)}) == 8

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_term("x + 1 )")

    def test_fractional_exponent_rejected(self):
        with pytest.raises(ParseError):
            parse_term("x^(1/2)")


class TestFormulaParsing:
    def test_comparison(self):
        assert parse("x < 1") == (x < 1)

    def test_chained_comparison(self):
        f = parse("0 <= x < y <= 1")
        # Note Const(0) <= x, not the reflected x >= 0 Python builds.
        assert f == conjunction(Const(Fraction(0)) <= x, x < y, y <= 1)

    def test_boolean_connectives(self):
        f = parse("x < 1 AND y < 1 OR x > 2")
        # AND binds tighter than OR
        assert f == ((x < 1) & (y < 1)) | (x > 2)

    def test_not(self):
        f = parse("NOT x < 1")
        assert f == ~(x < 1)

    def test_quantifiers(self):
        f = parse("EXISTS y. x < y")
        assert f == exists(y, x < y)

    def test_multi_variable_quantifier(self):
        # Quantifier scope is minimal; parenthesise to extend it.
        f = parse("FORALL x y. (x < y OR y <= x)")
        assert f == forall([x, y], (x < y) | (y <= x))

    def test_quantifier_scope_is_minimal(self):
        f = parse("FORALL x. x < y OR y <= x")
        assert f == forall(x, x < y) | (y <= x)

    def test_relation_atom(self):
        f = parse("R(x, y + 1)")
        assert f == R(x, y + 1)

    def test_true_false(self):
        from repro.logic import TRUE, FALSE

        assert parse("TRUE") == TRUE
        assert parse("FALSE") == FALSE

    def test_parenthesised_formula(self):
        f = parse("(x < 1 OR y < 1) AND x > 0")
        assert f == ((x < 1) | (y < 1)) & (x > 0)

    def test_parenthesised_term_in_comparison(self):
        f = parse("(x + 1) < 2")
        assert f == (x + 1 < 2)

    def test_keywords_case_insensitive(self):
        assert parse("exists y. x < y") == exists(y, x < y)

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("x <")
        with pytest.raises(ParseError):
            parse("AND x < 1")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "formula",
        [
            x < 1,
            (x < 1) & (y < 1),
            (x < 1) | ((y < 1) & (z < 1)),
            ~R(x, y),
            exists(y, (x < y) & (y**2 < x + 2)),
            forall(x, exists(y, x + y * Fraction(1, 3) < 1)),
            x.eq(y),
            x.ne(y),
        ],
    )
    def test_print_then_parse(self, formula):
        assert parse(str(formula)) == formula

    def test_negative_constant_roundtrip(self):
        f = x < Const(Fraction(-3, 7))
        assert parse(str(f)) == f
