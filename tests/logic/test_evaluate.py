"""Direct evaluation of formulas (finite semantics)."""

from fractions import Fraction

import pytest

from repro.logic import (
    Relation,
    evaluate,
    exists,
    exists_adom,
    forall,
    forall_adom,
    variables,
)
from repro._errors import EvaluationError

x, y = variables("x y")
U = Relation("U", 1)
S = Relation("S", 2)


class TestAtoms:
    def test_exact_comparison(self):
        assert evaluate(x * 3 < 1, {"x": Fraction(1, 3)}) is False
        assert evaluate((x * 3).eq(1), {"x": Fraction(1, 3)}) is True

    @pytest.mark.parametrize(
        "op,expected",
        [("<", True), ("<=", True), ("=", False), ("!=", True), (">=", False), (">", False)],
    )
    def test_all_operators(self, op, expected):
        from repro.logic import Compare

        assert evaluate(Compare(op, x, y), {"x": 1, "y": 2}) is expected

    def test_relation_lookup(self):
        rels = {"U": {(Fraction(1),)}}
        assert evaluate(U(x), {"x": 1}, relations=rels) is True
        assert evaluate(U(x), {"x": 2}, relations=rels) is False

    def test_missing_relation_raises(self):
        with pytest.raises(EvaluationError):
            evaluate(U(x), {"x": 1})


class TestQuantifiers:
    def test_adom_exists(self):
        f = exists_adom(x, x.eq(2))
        assert evaluate(f, adom=[1, 2, 3]) is True
        assert evaluate(f, adom=[1, 3]) is False

    def test_adom_forall(self):
        f = forall_adom(x, x > 0)
        assert evaluate(f, adom=[1, 2]) is True
        assert evaluate(f, adom=[0, 1]) is False

    def test_adom_without_domain_raises(self):
        with pytest.raises(EvaluationError):
            evaluate(exists_adom(x, x.eq(1)))

    def test_natural_requires_domain(self):
        with pytest.raises(EvaluationError):
            evaluate(exists(x, x.eq(1)))

    def test_natural_over_explicit_domain(self):
        f = forall(x, exists(y, y > x))
        assert evaluate(f, domain=[1, 2, 3]) is False
        assert evaluate(f, domain=[]) is True

    def test_quantifier_restores_outer_binding(self):
        f = exists_adom(x, x.eq(2)) & x.eq(5)
        assert evaluate(f, {"x": 5}, adom=[2]) is True

    def test_nested_quantifiers(self):
        f = forall_adom(x, exists_adom(y, y > x))
        assert evaluate(f, adom=[1, 2, 3]) is False  # no y > 3
        g = forall_adom(x, exists_adom(y, y >= x))
        assert evaluate(g, adom=[1, 2, 3]) is True


class TestBooleans:
    def test_connectives(self):
        assert evaluate((x < 1) | (x > 2), {"x": 0}) is True
        assert evaluate((x < 1) & (x > 2), {"x": 0}) is False
        assert evaluate(~(x < 1), {"x": 0}) is False

    def test_constants(self):
        from repro.logic import TRUE, FALSE

        assert evaluate(TRUE) is True
        assert evaluate(FALSE) is False
