"""Round-trips and structure for active-domain quantifier syntax."""

from repro.logic import (
    ExistsAdom,
    ForallAdom,
    exists_adom,
    forall_adom,
    parse,
    variables,
)

x, y = variables("x y")


class TestAdomSyntax:
    def test_print_parse_exists_adom(self):
        f = exists_adom(x, x < 1)
        assert parse(str(f)) == f

    def test_print_parse_forall_adom(self):
        f = forall_adom(x, exists_adom(y, x < y))
        assert parse(str(f)) == f

    def test_keyword_parsing(self):
        f = parse("EXISTSADOM x. x < 1")
        assert isinstance(f, ExistsAdom)
        g = parse("FORALLADOM x. x < 1")
        assert isinstance(g, ForallAdom)

    def test_mixed_quantifier_roundtrip(self):
        from repro.logic import exists

        f = exists(y, forall_adom(x, (x < y) | x.eq(y)))
        assert parse(str(f)) == f
