"""Formula size metrics."""

from repro.logic import (
    count_atoms,
    count_quantifiers,
    exists,
    forall,
    formula_depth,
    max_degree,
    quantifier_rank,
    term_degree,
    variables,
    Relation,
    TRUE,
)

x, y, z = variables("x y z")
R = Relation("R", 1)


class TestAtomCounting:
    def test_single_atom(self):
        assert count_atoms(x < 1) == 1

    def test_counts_occurrences_not_distinct(self):
        assert count_atoms((x < 1) & (x < 1)) == 2

    def test_relation_atoms_count(self):
        assert count_atoms(R(x) & (x < 1)) == 2

    def test_true_has_no_atoms(self):
        assert count_atoms(TRUE) == 0

    def test_through_quantifiers(self):
        assert count_atoms(exists(y, (x < y) & (y < 1))) == 2


class TestQuantifierCounting:
    def test_count_vs_rank(self):
        f = exists(x, x < 1) & exists(y, y < 1)
        assert count_quantifiers(f) == 2
        assert quantifier_rank(f) == 1

    def test_nested_rank(self):
        f = forall(x, exists(y, forall(z, (x < y) & (y < z))))
        assert quantifier_rank(f) == 3
        assert count_quantifiers(f) == 3

    def test_quantifier_free(self):
        assert count_quantifiers(x < 1) == 0
        assert quantifier_rank(x < 1) == 0


class TestDegrees:
    def test_linear_term(self):
        assert term_degree(2 * x + y) == 1

    def test_product_degree(self):
        assert term_degree(x * y) == 2

    def test_power_degree(self):
        assert term_degree(x**3 * y) == 4

    def test_constant_degree(self):
        from repro.logic import Const

        assert term_degree(Const(5)) == 0

    def test_max_degree_of_formula(self):
        f = (x < 1) & (x * y**2 > 3)
        assert max_degree(f) == 3

    def test_max_degree_defaults_to_one(self):
        assert max_degree(TRUE) == 1
        assert max_degree(x < 1) == 1


class TestDepth:
    def test_atom_depth(self):
        assert formula_depth(x < 1) == 1

    def test_connective_depth(self):
        assert formula_depth((x < 1) & ((y < 1) | (z < 1))) == 3

    def test_quantifier_adds_depth(self):
        assert formula_depth(exists(x, x < 1)) == 2
