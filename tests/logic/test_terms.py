"""Unit tests for the term language."""

from fractions import Fraction

import pytest

from repro.logic import Add, Const, Mul, Pow, Var, as_term, ONE, ZERO


class TestConstruction:
    def test_var_has_name(self):
        assert Var("x").name == "x"

    def test_const_coerces_to_fraction(self):
        assert Const(3).value == Fraction(3)
        assert isinstance(Const(3).value, Fraction)

    def test_as_term_accepts_int(self):
        assert as_term(5) == Const(Fraction(5))

    def test_as_term_accepts_fraction(self):
        assert as_term(Fraction(2, 3)) == Const(Fraction(2, 3))

    def test_as_term_accepts_string_as_variable(self):
        assert as_term("z") == Var("z")

    def test_as_term_passes_terms_through(self):
        t = Var("x") + 1
        assert as_term(t) is t

    def test_as_term_rejects_float(self):
        with pytest.raises(TypeError):
            as_term(0.5)

    def test_add_requires_two_args(self):
        with pytest.raises(ValueError):
            Add((Var("x"),))

    def test_mul_requires_two_args(self):
        with pytest.raises(ValueError):
            Mul((Var("x"),))

    def test_pow_rejects_negative_exponent(self):
        with pytest.raises(ValueError):
            Pow(Var("x"), -1)
        with pytest.raises(ValueError):
            Var("x") ** -2


class TestOperators:
    def test_addition_builds_add(self):
        t = Var("x") + Var("y")
        assert isinstance(t, Add)

    def test_radd_with_int(self):
        t = 2 + Var("x")
        assert isinstance(t, Add)
        assert t.evaluate({"x": Fraction(3)}) == 5

    def test_subtraction_negates(self):
        t = Var("x") - 1
        assert t.evaluate({"x": Fraction(4)}) == 3

    def test_rsub(self):
        t = 10 - Var("x")
        assert t.evaluate({"x": Fraction(4)}) == 6

    def test_multiplication(self):
        t = 3 * Var("x") * Var("y")
        assert t.evaluate({"x": Fraction(2), "y": Fraction(5)}) == 30

    def test_negation(self):
        assert (-Var("x")).evaluate({"x": Fraction(7)}) == -7

    def test_power(self):
        assert (Var("x") ** 3).evaluate({"x": Fraction(2)}) == 8

    def test_power_zero_is_one(self):
        assert (Var("x") ** 0).evaluate({"x": Fraction(99)}) == 1


class TestVariables:
    def test_var_variables(self):
        assert Var("x").variables() == frozenset({"x"})

    def test_const_variables_empty(self):
        assert Const(1).variables() == frozenset()

    def test_compound_variables(self):
        t = (Var("x") + Var("y")) * Var("z") ** 2
        assert t.variables() == frozenset({"x", "y", "z"})


class TestEvaluation:
    def test_exact_rational_arithmetic(self):
        t = Var("x") * Fraction(1, 3) + Fraction(1, 6)
        assert t.evaluate({"x": Fraction(1, 2)}) == Fraction(1, 3)

    def test_unbound_variable_raises(self):
        with pytest.raises(KeyError):
            Var("x").evaluate({})

    def test_zero_and_one_constants(self):
        assert ZERO.evaluate({}) == 0
        assert ONE.evaluate({}) == 1


class TestEqualityAndHashing:
    def test_structural_equality(self):
        assert Var("x") + 1 == Var("x") + 1

    def test_hashable(self):
        seen = {Var("x"), Var("x"), Var("y")}
        assert len(seen) == 2

    def test_eq_method_builds_formula(self):
        from repro.logic import Compare

        atom = Var("x").eq(1)
        assert isinstance(atom, Compare)
        assert atom.op == "="

    def test_ne_method_builds_formula(self):
        atom = Var("x").ne(1)
        assert atom.op == "!="
