"""Fixtures for the serve tests: a subprocess server harness.

The integration tests exercise ``python -m repro serve`` exactly as a
deployment would — a real subprocess, real sockets, real signals — so
the admission, coalescing, deadline, and drain behavior is observed
end to end rather than simulated.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

#: A query whose compile takes a couple of seconds (Fourier-Motzkin
#: blowup grows with the disjunction count), used to hold a pool slot
#: while backpressure and drain behavior is probed.
SLOW_FORMULA = (
    "EXISTS u . EXISTS v . (0 <= u AND u <= 1 AND 0 <= v AND v <= 1 AND ("
    + " OR ".join(
        f"({j}*u <= 2*x AND u + v <= x + {j}*y AND {j}*v <= u + 1)"
        for j in range(1, 7)
    )
    + ") AND 0 <= x AND x <= 1 AND 0 <= y AND y <= 1)"
)

#: Moderately slow to compile (~0.1 s) — wide enough a window for
#: concurrent duplicates to overlap, fast enough to not drag the suite.
MEDIUM_FORMULA = (
    "EXISTS u . EXISTS v . (0 <= u AND u <= 1 AND 0 <= v AND v <= 1 AND ("
    + " OR ".join(
        f"({j}*u <= 2*x AND u + v <= x + {j}*y AND {j}*v <= u + 1)"
        for j in range(1, 4)
    )
    + ") AND 0 <= x AND x <= 1 AND 0 <= y AND y <= 1)"
)


class ServerProc:
    """One ``repro serve`` subprocess plus small HTTP client helpers."""

    def __init__(self, *args: str, startup_timeout: float = 30.0):
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0", *args],
            env=env, stderr=subprocess.PIPE, text=True,
        )
        self.port: int | None = None
        self.stderr_lines: list[str] = []
        self._ready = threading.Event()
        self._reader = threading.Thread(target=self._drain_stderr, daemon=True)
        self._reader.start()
        if not self._ready.wait(startup_timeout):
            self.proc.kill()
            raise RuntimeError(
                "server never printed its listening line; stderr so far: "
                + "".join(self.stderr_lines)
            )

    def _drain_stderr(self) -> None:
        assert self.proc.stderr is not None
        for line in self.proc.stderr:
            self.stderr_lines.append(line)
            if line.startswith("serve: listening on "):
                self.port = int(line.split()[3].rsplit(":", 1)[1])
                self._ready.set()
        self._ready.set()  # EOF: unblock a waiter even on startup failure

    # -- client helpers ----------------------------------------------------
    def connect(self, timeout: float = 60.0) -> http.client.HTTPConnection:
        assert self.port is not None
        return http.client.HTTPConnection("127.0.0.1", self.port, timeout=timeout)

    def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        timeout: float = 60.0,
    ) -> tuple[int, dict[str, str], bytes]:
        """One request on a fresh connection: (status, headers, body)."""
        conn = self.connect(timeout=timeout)
        try:
            body = json.dumps(payload).encode() if payload is not None else None
            conn.request(method, path, body=body)
            response = conn.getresponse()
            return (
                response.status,
                {k.lower(): v for k, v in response.getheaders()},
                response.read(),
            )
        finally:
            conn.close()

    def json(
        self, method: str, path: str, payload: dict | None = None,
        timeout: float = 60.0,
    ) -> tuple[int, dict]:
        status, _, body = self.request(method, path, payload, timeout=timeout)
        return status, json.loads(body)

    # -- lifecycle ---------------------------------------------------------
    def stop(self, sig: int = signal.SIGTERM, timeout: float = 30.0) -> int:
        if self.proc.poll() is None:
            self.proc.send_signal(sig)
        code = self.proc.wait(timeout=timeout)
        self._reader.join(timeout=10)
        return code

    def stderr_text(self) -> str:
        return "".join(self.stderr_lines)

    def __enter__(self) -> "ServerProc":
        return self

    def __exit__(self, *exc) -> None:
        # SIGTERM first so the server drains its worker pool; SIGKILL
        # would orphan the pool children.  Escalate only if it wedges.
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)
        self._reader.join(timeout=10)


@pytest.fixture
def server_factory():
    """Start ``repro serve`` subprocesses that are always torn down."""
    started: list[ServerProc] = []

    def factory(*args: str) -> ServerProc:
        server = ServerProc(*args)
        started.append(server)
        return server

    yield factory
    for server in started:
        server.__exit__()


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()
