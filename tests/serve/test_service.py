"""QueryService pool-death handling: rebuild exactly once, hurt nobody.

When a worker dies, every request in flight on the pool raises
``BrokenExecutor`` — but only the *first* handler may rebuild.  A later
handler that shut down ``self._pool`` again would be cancelling innocent
requests already dispatched to the fresh pool, and the resulting
``CancelledError`` (a BaseException) would sail through ``_route``'s
``except Exception`` and kill the connection without a response.
"""

import asyncio
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro import obs
from repro.serve.service import QueryService, ServiceConfig

TASK = {"id": "t", "op": "volume", "formula": "0 <= x AND x <= 1"}


class FakePool:
    """An executor whose submitted futures the test controls."""

    def __init__(self, exception=None):
        self.exception = exception
        self.futures: list[Future] = []
        self.shutdown_calls = 0

    def submit(self, fn, *args):
        future: Future = Future()
        if self.exception is not None:
            future.set_exception(self.exception)
        self.futures.append(future)
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdown_calls += 1


@pytest.fixture
def service():
    service = QueryService(ServiceConfig(workers=1))
    try:
        yield service
    finally:
        service.close()


class TestBrokenPoolRebuild:
    def test_concurrent_failures_rebuild_once(self, service):
        async def go():
            obs.enable_counting()
            broken = FakePool(BrokenProcessPool("worker died"))
            real = service._pool
            real.shutdown(wait=False)
            service._pool = broken
            records = await asyncio.gather(
                service._dispatch(dict(TASK), 0, None, None),
                service._dispatch(dict(TASK), 1, None, None),
                service._dispatch(dict(TASK), 2, None, None),
            )
            for record in records:
                assert record["status"] == "error"
                assert record["error_type"] == "BrokenExecutor"
            # One rebuild, one shutdown — of the broken pool only; the
            # replacement pool is alive and was never touched.
            assert broken.shutdown_calls == 1
            assert obs.REGISTRY.value("engine.pool.rebuilds") == 1
            assert service._pool is not broken
            assert not service._pool._shutdown_thread

        asyncio.run(go())

    def test_cancelled_by_rebuild_returns_error_record(self, service):
        # A request still *queued* on the dead pool is cancelled by the
        # rebuilder's shutdown(cancel_futures=True); it must answer with
        # the structured pool-death record, not leak CancelledError.
        async def go():
            stalled = FakePool()
            real = service._pool
            service._pool = stalled
            dispatch = asyncio.ensure_future(
                service._dispatch(dict(TASK), 0, None, None)
            )
            await asyncio.sleep(0)  # dispatch captured `stalled`
            service._pool = real  # another handler already rebuilt
            stalled.futures[0].cancel()
            record = await dispatch
            assert record["status"] == "error"
            assert record["error_type"] == "BrokenExecutor"

        asyncio.run(go())

    def test_foreign_cancellation_still_propagates(self, service):
        # With no rebuild in between, a cancellation is not the pool's —
        # it must keep propagating.
        async def go():
            stalled = FakePool()
            service._pool = stalled
            dispatch = asyncio.ensure_future(
                service._dispatch(dict(TASK), 0, None, None)
            )
            await asyncio.sleep(0)
            stalled.futures[0].cancel()
            with pytest.raises(asyncio.CancelledError):
                await dispatch

        asyncio.run(go())
