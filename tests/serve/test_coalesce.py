"""Single-flight coalescing: one leader per key, waiters park and resume."""

import asyncio

from repro.serve.coalesce import SingleFlight


def run(coroutine):
    return asyncio.run(coroutine)


class TestSingleFlight:
    def test_first_caller_leads(self):
        async def go():
            flights = SingleFlight()
            assert flights.begin("k") is None
            assert flights.inflight() == 1
            flights.finish("k")
            assert flights.inflight() == 0

        run(go())

    def test_duplicates_wait_until_leader_finishes(self):
        async def go():
            flights = SingleFlight()
            assert flights.begin("k") is None
            released: list[int] = []

            async def wait(tag: int):
                future = flights.begin("k")
                assert future is not None
                await future
                released.append(tag)

            waiters = [asyncio.ensure_future(wait(i)) for i in range(3)]
            await asyncio.sleep(0)
            assert released == []  # parked until the leader lands
            flights.finish("k")
            await asyncio.gather(*waiters)
            assert sorted(released) == [0, 1, 2]

        run(go())

    def test_keys_are_independent(self):
        async def go():
            flights = SingleFlight()
            assert flights.begin("a") is None
            assert flights.begin("b") is None
            assert flights.begin("a") is not None
            flights.finish("a")
            assert flights.inflight() == 1
            flights.finish("b")

        run(go())

    def test_next_flight_after_landing_gets_a_new_leader(self):
        async def go():
            flights = SingleFlight()
            assert flights.begin("k") is None
            flights.finish("k")
            # The key is cold again: a later request leads its own flight.
            assert flights.begin("k") is None
            flights.finish("k")

        run(go())

    def test_finish_unknown_key_is_a_noop(self):
        async def go():
            flights = SingleFlight()
            flights.finish("never-started")
            assert flights.inflight() == 0

        run(go())
