"""HTTP/1.1 framing: parsing, limits, and response serialization."""

import asyncio

import pytest

from repro.serve.http import (
    HttpError,
    HttpRequest,
    MAX_HEADER_LINES,
    read_request,
    response_bytes,
)


def parse(raw: bytes, max_body: int = 1 << 20, limit: int = 1 << 16):
    """Run read_request over an in-memory stream."""

    async def go():
        reader = asyncio.StreamReader(limit=limit)
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, max_body)

    return asyncio.run(go())


def parse_error(raw: bytes, **kwargs) -> HttpError:
    with pytest.raises(HttpError) as excinfo:
        parse(raw, **kwargs)
    return excinfo.value


class TestParsing:
    def test_get_with_headers(self):
        request = parse(
            b"GET /healthz?verbose=1 HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"X-Request-Id: abc\r\n"
            b"\r\n"
        )
        assert request.method == "GET"
        assert request.target == "/healthz?verbose=1"
        assert request.path == "/healthz"
        assert request.headers["host"] == "localhost"
        assert request.headers["x-request-id"] == "abc"
        assert request.body == b""

    def test_post_reads_content_length_body(self):
        request = parse(
            b"POST /v1/query HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}"
        )
        assert request.body == b'{"a":1}'

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_header_names_lowercased_values_stripped(self):
        request = parse(b"GET / HTTP/1.1\r\nX-Thing:   padded \r\n\r\n")
        assert request.headers["x-thing"] == "padded"


class TestKeepAlive:
    def test_http11_default_keep_alive(self):
        request = parse(b"GET / HTTP/1.1\r\n\r\n")
        assert request.keep_alive

    def test_http11_connection_close(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_http10_default_close(self):
        request = parse(b"GET / HTTP/1.0\r\n\r\n")
        assert not request.keep_alive

    def test_http10_explicit_keep_alive(self):
        request = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        assert request.keep_alive


class TestRejections:
    def test_malformed_request_line_400(self):
        assert parse_error(b"GETONLY\r\n\r\n").status == 400

    def test_unknown_method_400(self):
        assert parse_error(b"BREW /pot HTTP/1.1\r\n\r\n").status == 400

    def test_unsupported_version_400(self):
        assert parse_error(b"GET / HTTP/2.0\r\n\r\n").status == 400

    def test_post_without_length_411(self):
        assert parse_error(b"POST /v1/query HTTP/1.1\r\n\r\n").status == 411

    def test_get_without_length_is_fine(self):
        assert parse(b"GET / HTTP/1.1\r\n\r\n") is not None

    def test_chunked_501(self):
        error = parse_error(
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        )
        assert error.status == 501

    def test_body_over_cap_413(self):
        error = parse_error(
            b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100,
            max_body=10,
        )
        assert error.status == 413

    def test_negative_length_400(self):
        error = parse_error(b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
        assert error.status == 400

    def test_non_numeric_length_400(self):
        error = parse_error(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n")
        assert error.status == 400

    def test_header_line_without_colon_400(self):
        assert parse_error(b"GET / HTTP/1.1\r\nnocolon\r\n\r\n").status == 400

    def test_oversized_request_line_431(self):
        error = parse_error(b"GET /" + b"a" * (1 << 17), limit=1 << 10)
        assert error.status == 431

    def test_too_many_header_lines_431(self):
        headers = b"".join(
            b"X-H%d: v\r\n" % i for i in range(MAX_HEADER_LINES + 1)
        )
        error = parse_error(b"GET / HTTP/1.1\r\n" + headers + b"\r\n")
        assert error.status == 431


class TestDuplicateHeaders:
    """RFC 9112 §6.3: duplicate framing headers are a smuggling vector."""

    def test_duplicate_content_length_400(self):
        error = parse_error(
            b"POST / HTTP/1.1\r\n"
            b"Content-Length: 3\r\nContent-Length: 30\r\n\r\nabc"
        )
        assert error.status == 400

    def test_duplicate_identical_content_length_still_400(self):
        error = parse_error(
            b"POST / HTTP/1.1\r\n"
            b"Content-Length: 3\r\nContent-Length: 3\r\n\r\nabc"
        )
        assert error.status == 400

    def test_duplicate_transfer_encoding_400(self):
        error = parse_error(
            b"POST / HTTP/1.1\r\n"
            b"Transfer-Encoding: identity\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n"
        )
        assert error.status == 400

    def test_conflicting_repeated_header_400(self):
        error = parse_error(
            b"GET / HTTP/1.1\r\nX-Thing: a\r\nX-Thing: b\r\n\r\n"
        )
        assert error.status == 400

    def test_identical_repeated_header_is_tolerated(self):
        request = parse(
            b"GET / HTTP/1.1\r\nX-Thing: a\r\nX-Thing: a\r\n\r\n"
        )
        assert request.headers["x-thing"] == "a"


class TestResponseBytes:
    def test_shape_and_length(self):
        raw = response_bytes(200, b'{"ok":1}')
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 8" in head
        assert b"Content-Type: application/json" in head
        assert body == b'{"ok":1}'

    def test_close_and_extra_headers(self):
        raw = response_bytes(
            429, b"{}", keep_alive=False, extra_headers={"Retry-After": "1"}
        )
        assert b"HTTP/1.1 429 Too Many Requests" in raw
        assert b"Connection: close" in raw
        assert b"Retry-After: 1" in raw

    def test_roundtrips_through_parser(self):
        # A serialized response body parses back out of the reader when
        # framed as a request-like stream (shared Content-Length logic).
        raw = response_bytes(200, b"xyz", content_type="text/plain")
        assert b"Content-Length: 3" in raw
        assert raw.endswith(b"xyz")

    def test_head_only_keeps_length_but_omits_body(self):
        # RFC 9110 §9.3.2: a HEAD response advertises the body it would
        # have sent but must not send it.
        full = response_bytes(200, b'{"ok":1}')
        head = response_bytes(200, b'{"ok":1}', head_only=True)
        assert head == full[: len(full) - len(b'{"ok":1}')]
        assert b"Content-Length: 8" in head
        assert head.endswith(b"\r\n\r\n")
