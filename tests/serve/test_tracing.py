"""End-to-end request tracing: context propagation, slow-query forensics.

The acceptance property for cross-process tracing: a trace context
minted for a request crosses the ``ProcessPoolExecutor`` boundary inside
the worker config, the worker records it in its telemetry snapshot, and
the harvested span forest reparents under the request's ``trace_id`` —
so one id connects the access log, the latency exemplar, and the
worker's internal spans.
"""

import asyncio
import io
import json
import re

from repro import obs
from repro.engine import normalize_task
from repro.obs.aggregate import request_trace
from repro.obs.trace import TraceContext

from .test_routes import _request, serve_test

TASK = {"id": "t0", "op": "volume", "formula": "0 <= x AND x <= 1"}

RFC3339 = r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z"


def _span_names(span_dict):
    yield span_dict["name"]
    for child in span_dict.get("children") or []:
        yield from _span_names(child)


class TestWorkerPropagation:
    def test_worker_span_forest_reparents_under_request_trace(self):
        """The acceptance test: pool-boundary propagation + reparenting."""
        async def check(server, port):
            ctx = TraceContext.mint()
            req_obs = {}
            record = await server.service.execute(
                normalize_task(dict(TASK), 0),
                index=0, trace_ctx=ctx.to_dict(), obs_out=req_obs,
            )
            assert record["status"] == "ok"
            snapshot = req_obs["snapshot"]
            # The worker recorded the context it actually ran under —
            # proof the id crossed the process boundary intact.
            assert snapshot["trace"]["trace_id"] == ctx.trace_id
            assert snapshot["trace"]["span_id"] == ctx.span_id
            # The harvested forest grafts under the request root.
            root = request_trace(snapshot, ctx)
            assert root.attrs["trace_id"] == ctx.trace_id
            assert root.children, "no worker spans harvested"

        serve_test(check)


class TestSlowQueryLog:
    def test_over_threshold_request_emits_forensic_record(self, tmp_path):
        log = tmp_path / "slow.jsonl"
        sent = TraceContext.mint()

        async def check(server, port):
            status, _, _ = await _request(
                port, "POST", "/v1/query", dict(TASK),
                headers={"traceparent": sent.traceparent()},
            )
            assert status == 200

        serve_test(
            check, slow_query_s=0.0, slow_query_log=str(log),
        )
        (line,) = log.read_text().splitlines()
        record = json.loads(line)
        assert record["schema"] == "repro.slowquery/v1"
        # The request continued the client's trace: same trace_id.
        assert record["trace_id"] == sent.trace_id
        assert re.fullmatch(RFC3339, record["ts"])
        assert record["path"] == "/v1/query"
        assert record["status"] == 200
        assert record["elapsed_s"] >= 0
        assert record["threshold_s"] == 0.0
        assert record["queue_wait_s"] >= 0
        assert record["result_status"] == "ok"
        (root,) = record["spans"]
        assert root["name"] == "serve.request"
        assert root["attrs"]["trace_id"] == sent.trace_id
        names = set(_span_names(root))
        assert "serve.queue_wait" in names
        assert len(names) > 2, "worker span forest missing from the tree"

    def test_slow_query_record_is_perfetto_convertible(self, tmp_path):
        log = tmp_path / "slow.jsonl"

        async def check(server, port):
            await _request(port, "POST", "/v1/query", dict(TASK))

        serve_test(check, slow_query_s=0.0, slow_query_log=str(log))
        records = obs.read_jsonl(str(log))
        assert records.skipped == 0
        doc = obs.perfetto_json(records)
        assert doc["traceEvents"], "slow-query record produced no timeline"
        for event in doc["traceEvents"]:
            for key in ("ph", "ts", "pid", "tid", "name"):
                assert key in event
            assert event["ts"] >= 0

    def test_disabled_by_default(self, tmp_path, capsys):
        async def check(server, port):
            await _request(port, "GET", "/healthz")

        serve_test(check)
        err = capsys.readouterr().err
        assert "repro.slowquery/v1" not in err

    def test_slow_queries_counter_increments(self):
        obs.enable_counting()

        async def check(server, port):
            await _request(port, "GET", "/healthz")
            assert obs.REGISTRY.counter("serve.slow_queries").value == 1

        serve_test(check, slow_query_s=0.0, slow_query_log="/dev/null")


class TestTopIntegration:
    def test_top_once_renders_from_a_live_scrape(self):
        obs.enable_counting()
        from repro.obs.top import run_top

        async def check(server, port):
            # Generate a little traffic so panels are non-trivial.
            await _request(port, "GET", "/healthz")
            await _request(port, "GET", "/healthz")
            buffer = io.StringIO()
            code = await asyncio.to_thread(
                run_top, f"http://127.0.0.1:{port}/metrics",
                once=True, out=buffer,
            )
            assert code == 0
            frame = buffer.getvalue()
            assert "repro top" in frame
            assert "requests" in frame and "latency" in frame
            assert "queue" in frame and "pool" in frame

        serve_test(check)

    def test_top_unreachable_url_exits_nonzero(self):
        from repro.obs.top import run_top

        code = run_top(
            "http://127.0.0.1:9/metrics", once=True, out=io.StringIO()
        )
        assert code == 1
