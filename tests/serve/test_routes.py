"""Routing, status mapping, and protocol errors — in-process server.

These tests run the real :class:`repro.serve.Server` inside the test's
event loop and talk to it over real sockets, but never dispatch a query
to the worker pool — routing and rejection paths are event-loop-only, so
they stay fast.  Query execution is covered by the subprocess
integration tests.
"""

import asyncio
import json

from repro import obs
from repro.serve import ServeConfig, Server


async def _start(**overrides) -> tuple[Server, int]:
    settings = dict(port=0, workers=1, access_log=False)
    settings.update(overrides)
    server = Server(ServeConfig(**settings))
    _, port = await server.start()
    return server, port


async def _request(
    port: int,
    method: str,
    path: str,
    payload: dict | None = None,
    headers: dict[str, str] | None = None,
) -> tuple[int, dict[str, str], bytes]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        body = json.dumps(payload).encode() if payload is not None else b""
        lines = [f"{method} {path} HTTP/1.1", "Host: test"]
        if payload is not None:
            lines.append(f"Content-Length: {len(body)}")
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write("\r\n".join(lines).encode() + b"\r\n\r\n" + body)
        await writer.drain()
        return await _read_response(reader)
    finally:
        writer.close()


async def _read_response(reader) -> tuple[int, dict[str, str], bytes]:
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    response_headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        response_headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(response_headers["content-length"]))
    return status, response_headers, body


def serve_test(coroutine_fn, **overrides):
    """Run *coroutine_fn(server, port)* against a live in-process server."""

    async def go():
        server, port = await _start(**overrides)
        try:
            return await coroutine_fn(server, port)
        finally:
            server._server.close()
            await server._server.wait_closed()
            server.service.close()

    return asyncio.run(go())


class TestHealth:
    def test_healthz_ok(self):
        async def check(server, port):
            status, _, body = await _request(port, "GET", "/healthz")
            assert status == 200
            assert json.loads(body) == {"status": "ok"}

        serve_test(check)

    def test_readyz_flips_to_503_when_draining(self):
        async def check(server, port):
            status, _, _ = await _request(port, "GET", "/readyz")
            assert status == 200
            server.draining = True
            status, _, body = await _request(port, "GET", "/readyz")
            assert status == 503
            assert json.loads(body) == {"status": "draining"}

        serve_test(check)

    def test_query_rejected_while_draining(self):
        async def check(server, port):
            server.draining = True
            status, _, _ = await _request(
                port, "POST", "/v1/query", {"formula": "0 <= x AND x <= 1"}
            )
            assert status == 503

        serve_test(check)


class TestRouting:
    def test_unknown_path_404(self):
        async def check(server, port):
            status, _, _ = await _request(port, "GET", "/nope")
            assert status == 404

        serve_test(check)

    def test_wrong_method_405(self):
        async def check(server, port):
            for method, path in (
                ("POST", "/healthz"), ("POST", "/metrics"),
                ("GET", "/v1/query"), ("GET", "/v1/batch"),
            ):
                payload = {} if method == "POST" else None
                status, _, _ = await _request(port, method, path, payload)
                assert status == 405, (method, path)

        serve_test(check)

    def test_request_id_echoed(self):
        async def check(server, port):
            _, headers, _ = await _request(
                port, "GET", "/healthz", headers={"X-Request-Id": "trace-42"}
            )
            assert headers["x-request-id"] == "trace-42"

        serve_test(check)

    def test_request_id_generated_when_absent(self):
        async def check(server, port):
            _, headers, _ = await _request(port, "GET", "/healthz")
            assert headers["x-request-id"].startswith("req-")

        serve_test(check)

    def test_keep_alive_serves_sequential_requests(self):
        async def check(server, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                for _ in range(3):
                    writer.write(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                    await writer.drain()
                    status, _, _ = await _read_response(reader)
                    assert status == 200
            finally:
                writer.close()

        serve_test(check)


class TestHead:
    def test_head_sends_headers_only_and_keeps_framing(self):
        # RFC 9110 forbids a body on HEAD; a body would desync the next
        # exchange on a keep-alive connection.  Pipeline HEAD then GET on
        # one connection: the GET must still parse cleanly.
        async def check(server, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                writer.write(b"HEAD /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                await writer.drain()
                status_line = await reader.readline()
                assert b"200" in status_line
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode().partition(":")
                    headers[name.strip().lower()] = value.strip()
                # Content-Length advertises the GET body, none follows.
                assert int(headers["content-length"]) > 0
                writer.write(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                await writer.drain()
                status, _, body = await _read_response(reader)
                assert status == 200
                assert json.loads(body) == {"status": "ok"}
            finally:
                writer.close()

        serve_test(check)

    def test_head_matches_get_content_length(self):
        async def check(server, port):
            _, get_headers, get_body = await _request(
                port, "GET", "/metrics"
            )
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                writer.write(
                    b"HEAD /metrics HTTP/1.1\r\nHost: t\r\n"
                    b"Connection: close\r\n\r\n"
                )
                await writer.drain()
                raw = await reader.read()
            finally:
                writer.close()
            head, _, trailing = raw.partition(b"\r\n\r\n")
            assert trailing == b""  # no body after the header block
            assert b"Content-Length:" in head

        serve_test(check)


class TestBatchAdmission:
    def test_batch_shed_accounts_for_inflight_work(self):
        # Pre-fix, the whole-manifest check compared against
        # max_inflight + queue room and ignored gate.inflight: with the
        # slot busy, a 3-task batch would slip past a capacity of 3.
        async def check(server, port):
            await server.gate.acquire()  # saturate the one slot
            try:
                tasks = [{"formula": "0 <= x"}] * 3
                status, headers, _ = await _request(
                    port, "POST", "/v1/batch", {"tasks": tasks}
                )
                assert status == 429
                assert "retry-after" in headers
                assert server.gate.queued == 0
                assert server.gate.reserved == 0
            finally:
                server.gate.release()

        serve_test(check, max_inflight=1, queue_depth=2)

    def test_batch_fitting_free_capacity_is_admitted(self):
        async def check(server, port):
            tasks = [
                {"id": f"t{i}", "op": "volume", "formula": "0 <= x AND x <= 1"}
                for i in range(3)
            ]
            status, _, body = await _request(
                port, "POST", "/v1/batch", {"tasks": tasks}
            )
            assert status == 200
            envelope = json.loads(body)
            assert [r["id"] for r in envelope["results"]] == ["t0", "t1", "t2"]
            assert server.gate.reserved == 0  # nothing stranded

        serve_test(check, max_inflight=2, queue_depth=2)


class TestBadRequests:
    def test_invalid_json_body_400(self):
        async def check(server, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                writer.write(
                    b"POST /v1/query HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: 9\r\n\r\nnot json!"
                )
                await writer.drain()
                status, _, _ = await _read_response(reader)
                assert status == 400
            finally:
                writer.close()

        serve_test(check)

    def test_post_without_length_411(self):
        async def check(server, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                writer.write(b"POST /v1/query HTTP/1.1\r\nHost: t\r\n\r\n")
                await writer.drain()
                status, _, _ = await _read_response(reader)
                assert status == 411
            finally:
                writer.close()

        serve_test(check)

    def test_unnormalizable_task_422(self):
        async def check(server, port):
            status, _, body = await _request(
                port, "POST", "/v1/query", {"op": "volume"}  # no formula
            )
            assert status == 422
            assert "formula" in json.loads(body)["error"]

        serve_test(check)

    def test_unknown_op_422(self):
        async def check(server, port):
            status, _, _ = await _request(
                port, "POST", "/v1/query",
                {"formula": "0 <= x", "op": "summon"},
            )
            assert status == 422

        serve_test(check)

    def test_batch_requires_task_array(self):
        async def check(server, port):
            for payload in ({}, {"tasks": []}, {"tasks": "nope"}):
                status, _, _ = await _request(
                    port, "POST", "/v1/batch", payload
                )
                assert status == 400, payload

        serve_test(check)

    def test_batch_over_inline_cap_413(self):
        from repro.serve.server import MAX_BATCH_TASKS

        async def check(server, port):
            tasks = [{"formula": "0 <= x"}] * (MAX_BATCH_TASKS + 1)
            status, _, body = await _request(
                port, "POST", "/v1/batch", {"tasks": tasks}
            )
            assert status == 413
            assert "repro batch" in json.loads(body)["error"]

        serve_test(check)

    def test_bad_timeout_field_400(self):
        async def check(server, port):
            for timeout in ("soon", 0, -1):
                status, _, _ = await _request(
                    port, "POST", "/v1/query",
                    {"formula": "0 <= x", "timeout": timeout},
                )
                assert status == 400, timeout

        serve_test(check)

    def test_bad_index_field_400(self):
        async def check(server, port):
            status, _, _ = await _request(
                port, "POST", "/v1/query",
                {"formula": "0 <= x", "index": -3},
            )
            assert status == 400

        serve_test(check)


class TestMetricsRoute:
    def test_metrics_exposition_is_parseable(self):
        obs.enable_counting()

        async def check(server, port):
            await _request(port, "GET", "/healthz")
            status, headers, body = await _request(port, "GET", "/metrics")
            assert status == 200
            assert headers["content-type"].startswith("text/plain")
            text = body.decode()
            assert "repro_serve_requests_total" in text
            for line in text.splitlines():
                if not line or line.startswith("#"):
                    continue
                name_part, _, value = line.rpartition(" ")
                assert name_part, line
                float(value)  # every sample line ends in a number

        serve_test(check)


class TestRequestIdSanitization:
    def test_valid_client_id_kept(self):
        async def check(server, port):
            _, headers, _ = await _request(
                port, "GET", "/healthz",
                headers={"X-Request-Id": "build-7.retry_2"},
            )
            assert headers["x-request-id"] == "build-7.retry_2"

        serve_test(check)

    def test_hostile_charset_replaced(self):
        async def check(server, port):
            _, headers, _ = await _request(
                port, "GET", "/healthz",
                headers={"X-Request-Id": "evil{$(rm)}id"},
            )
            assert headers["x-request-id"].startswith("req-")

        serve_test(check)

    def test_overlong_id_replaced(self):
        async def check(server, port):
            _, headers, _ = await _request(
                port, "GET", "/healthz",
                headers={"X-Request-Id": "a" * 129},
            )
            assert headers["x-request-id"].startswith("req-")

        serve_test(check)

    def test_length_cap_boundary_kept(self):
        async def check(server, port):
            _, headers, _ = await _request(
                port, "GET", "/healthz",
                headers={"X-Request-Id": "a" * 128},
            )
            assert headers["x-request-id"] == "a" * 128

        serve_test(check)


class TestAccessLogTimestamps:
    def test_access_log_carries_rfc3339_utc_ts(self, capsys):
        import re

        async def check(server, port):
            await _request(port, "GET", "/healthz")

        serve_test(check, access_log=True)
        access_lines = [
            json.loads(line)
            for line in capsys.readouterr().err.splitlines()
            if line.startswith("{") and '"serve.access"' in line
        ]
        assert len(access_lines) == 1
        entry = access_lines[0]
        assert re.fullmatch(
            r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z", entry["ts"]
        ), entry["ts"]
        assert re.fullmatch(r"[0-9a-f]{32}", entry["trace_id"])
        assert entry["method"] == "GET" and entry["path"] == "/healthz"


class TestMetricsExemplars:
    def test_latency_buckets_carry_trace_id_exemplars(self):
        obs.enable_counting()

        async def check(server, port):
            await _request(port, "GET", "/healthz")
            _, _, body = await _request(port, "GET", "/metrics")
            text = body.decode()
            exemplar_lines = [l for l in text.splitlines() if " # {" in l]
            assert exemplar_lines, "no exemplars on /metrics"
            for line in exemplar_lines:
                assert "_bucket{" in line  # only bucket series
                assert 'trace_id="' in line

        serve_test(check)

    def test_no_exemplars_flag_renders_plain_format(self):
        obs.enable_counting()

        async def check(server, port):
            await _request(port, "GET", "/healthz")
            _, _, body = await _request(port, "GET", "/metrics")
            text = body.decode()
            assert " # {" not in text
            for line in text.splitlines():
                if not line or line.startswith("#"):
                    continue
                _, _, value = line.rpartition(" ")
                float(value)  # strict Prometheus: every line is a sample

        serve_test(check, exemplars=False)
