"""End-to-end serve behavior: a real subprocess, real sockets, real signals.

Covers the serving contract spelled out in docs/SERVING.md:

* results are byte-identical to ``repro batch`` (modulo the volatile
  ``elapsed_s``), cache provenance included, even under concurrency;
* overload is shed with 429 + ``Retry-After`` while admitted work
  finishes unharmed;
* N concurrent requests for one cold plan cost one compile;
* deadlines (request field and queue expiry alike) answer 504 with a
  structured ``budget-exceeded`` record;
* SIGTERM drains gracefully: readiness fails, in-flight work finishes,
  the process exits 0 with a final summary record.
"""

import concurrent.futures
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from .conftest import MEDIUM_FORMULA, SLOW_FORMULA, SRC_DIR, wait_until

#: 16 tasks whose plans all have *distinct* content hashes, so cache
#: provenance is completion-order-independent: safe to fire concurrently
#: and still expect batch-identical records.
DISTINCT_TASKS = (
    [
        {"id": f"v{i}", "op": "volume",
         "formula": f"0 <= x AND {i}*x <= {i + 4} AND x <= 1"}
        for i in range(10)
    ]
    + [
        {"id": f"w{j}", "op": "volume",
         "formula": f"0 <= y AND {j}*y <= x AND x <= 1"}
        for j in (2, 3, 4)
    ]
    + [
        {"id": "root2", "op": "decide",
         "formula": "EXISTS x . (x*x = 2 AND 0 < x AND x < 2)"},
        {"id": "band", "op": "volume", "formula": MEDIUM_FORMULA},
        {"id": "empty", "op": "volume", "formula": "x <= 0 AND 1 <= x"},
    ]
)

#: The mixed manifest: adds same-plan tasks (tri/clip/mc share one
#: content hash) whose hit/store-hit split depends on occurrence order —
#: exercised sequentially and through /v1/batch, where order is fixed.
MANIFEST_TASKS = (
    DISTINCT_TASKS[:10]
    + [
        {"id": "tri", "op": "volume",
         "formula": "0 <= y AND y <= x AND x <= 1"},
        {"id": "clip", "op": "volume",
         "formula": "0 <= y AND y <= x AND x <= 1",
         "box": [["0", "1/2"], ["0", "1/2"]]},
        {"id": "mc", "op": "approx",
         "formula": "0 <= y AND y <= x AND x <= 1",
         "epsilon": 0.2, "delta": 0.2},
        {"id": "root2", "op": "decide",
         "formula": "EXISTS x . (x*x = 2 AND 0 < x AND x < 2)"},
        {"id": "band", "op": "volume", "formula": MEDIUM_FORMULA},
        {"id": "empty", "op": "volume", "formula": "x <= 0 AND 1 <= x"},
    ]
)


def run_batch_cli(*args: str) -> list[dict]:
    """``repro batch`` in a subprocess; returns the result records."""
    env = dict(os.environ, PYTHONPATH=SRC_DIR)
    out = subprocess.run(
        [sys.executable, "-m", "repro", "batch", *args],
        env=env, check=True, capture_output=True, text=True,
    )
    return [json.loads(line) for line in out.stdout.splitlines()]


def write_manifest(tmp_path, tasks) -> str:
    path = tmp_path / "manifest.jsonl"
    path.write_text("".join(json.dumps(t) + "\n" for t in tasks))
    return str(path)


def stable(record: dict) -> dict:
    """A result record minus its volatile wall-clock field."""
    record = dict(record)
    record.pop("elapsed_s", None)
    return record


def scrape(server) -> str:
    status, _, body = server.request("GET", "/metrics")
    assert status == 200
    return body.decode()


def metric_value(text: str, name: str) -> float:
    match = re.search(rf"^{re.escape(name)} (\S+)$", text, re.MULTILINE)
    return float(match.group(1)) if match else 0.0


class TestByteIdentity:
    def test_sixteen_concurrent_clients_match_batch(
        self, tmp_path, server_factory
    ):
        """4 workers, 16 concurrent clients, provenance included."""
        manifest = write_manifest(tmp_path, DISTINCT_TASKS)
        store = str(tmp_path / "plans.sqlite")
        run_batch_cli(manifest, "--plan-store", store, "--compile-only",
                      "--workers", "4")
        expected = run_batch_cli(manifest, "--plan-store", store,
                                 "--workers", "4", "--seed", "11")
        server = server_factory(
            "--workers", "4", "--seed", "11", "--plan-store", store,
            "--max-inflight", "8", "--queue-depth", "32", "--no-access-log",
        )

        def one(index: int) -> dict:
            status, envelope = server.json(
                "POST", "/v1/query", dict(DISTINCT_TASKS[index], index=index)
            )
            assert status in (200, 422), envelope
            assert envelope["schema"] == "repro.serve/v1"
            return envelope["result"]

        with concurrent.futures.ThreadPoolExecutor(16) as pool:
            got = list(pool.map(one, range(len(DISTINCT_TASKS))))

        assert [stable(g) for g in got] == [stable(e) for e in expected]
        # Every formula is distinct and prewarmed: provenance must say so.
        for record in got:
            if record.get("cached_key"):
                assert record["cache"] == {
                    "hits": 0, "misses": 0, "store_hits": 1,
                }

    def test_duplicate_rows_sequentially_match_batch_provenance(
        self, tmp_path, server_factory
    ):
        """First occurrence / repeat split exactly as in a batch run."""
        tasks = [
            {"id": "a", "op": "volume", "formula": "0 <= x AND x <= 1/2"},
            {"id": "b", "op": "volume", "formula": "0 <= x AND x <= 1/4"},
            {"id": "a2", "op": "volume", "formula": "0 <= x AND x <= 1/2"},
        ]
        manifest = write_manifest(tmp_path, tasks)
        expected = run_batch_cli(manifest, "--seed", "3")
        server = server_factory("--workers", "2", "--seed", "3",
                                "--no-access-log")
        got = []
        for index, task in enumerate(tasks):
            status, envelope = server.json(
                "POST", "/v1/query", dict(task, index=index)
            )
            assert status == 200
            got.append(envelope["result"])
        assert [stable(g) for g in got] == [stable(e) for e in expected]
        assert got[0]["cache"] == {"hits": 0, "misses": 1, "store_hits": 0}
        assert got[2]["cache"] == {"hits": 1, "misses": 0, "store_hits": 0}

    def test_batch_endpoint_matches_cli_batch(self, tmp_path, server_factory):
        manifest = write_manifest(tmp_path, MANIFEST_TASKS)
        store = str(tmp_path / "plans.sqlite")
        run_batch_cli(manifest, "--plan-store", store, "--compile-only",
                      "--workers", "4")
        expected = run_batch_cli(manifest, "--plan-store", store,
                                 "--workers", "4", "--seed", "5")
        server = server_factory(
            "--workers", "4", "--seed", "5", "--plan-store", store,
            "--max-inflight", "16", "--queue-depth", "32", "--no-access-log",
        )
        status, envelope = server.json(
            "POST", "/v1/batch", {"tasks": MANIFEST_TASKS}
        )
        assert status == 200
        got = envelope["results"]
        assert [stable(g) for g in got] == [stable(e) for e in expected]
        assert envelope["summary"]["ok"] == sum(
            1 for e in expected if e["status"] == "ok"
        )


class TestBackpressure:
    def test_sheds_429_without_killing_inflight_work(self, server_factory):
        server = server_factory(
            "--workers", "1", "--max-inflight", "1", "--queue-depth", "0",
            "--request-timeout", "0", "--no-access-log",
        )
        slow_result: dict = {}

        def slow():
            status, envelope = server.json(
                "POST", "/v1/query",
                {"id": "slow", "op": "volume", "formula": SLOW_FORMULA},
                timeout=120,
            )
            slow_result["status"] = status
            slow_result["record"] = envelope["result"]

        thread = threading.Thread(target=slow)
        thread.start()
        try:
            assert wait_until(
                lambda: metric_value(scrape(server), "repro_serve_inflight") >= 1,
                timeout=20,
            ), "slow request never became inflight"
            status, headers, body = server.request(
                "POST", "/v1/query",
                {"id": "shed-me", "op": "volume", "formula": "0 <= x"},
            )
            assert status == 429
            assert "retry-after" in headers
            assert "retry_after_s" in json.loads(body)
        finally:
            thread.join(timeout=120)
        assert slow_result["status"] == 200
        assert slow_result["record"]["status"] == "ok"
        text = scrape(server)
        assert metric_value(text, "repro_serve_shed_total") >= 1
        assert metric_value(text, "repro_serve_ok_total") >= 1


class TestCoalescing:
    def test_concurrent_identical_queries_compile_once(
        self, tmp_path, server_factory
    ):
        store = str(tmp_path / "plans.sqlite")
        server = server_factory(
            "--workers", "4", "--plan-store", store,
            "--max-inflight", "8", "--queue-depth", "32", "--no-access-log",
        )
        task = {"op": "volume", "formula": MEDIUM_FORMULA}
        n = 6

        def one(index: int):
            return server.json("POST", "/v1/query", dict(task, index=0),
                               timeout=120)

        with concurrent.futures.ThreadPoolExecutor(n) as pool:
            responses = list(pool.map(one, range(n)))

        values = set()
        outcomes = []
        for status, envelope in responses:
            assert status == 200
            record = envelope["result"]
            assert record["status"] == "ok"
            values.add(record["value"])
            outcomes.append(record["cache"])
        assert len(values) == 1
        # Exactly one first occurrence; every other response reused it.
        assert sum(o["misses"] for o in outcomes) == 1
        assert sum(o["hits"] for o in outcomes) == n - 1
        text = scrape(server)
        assert metric_value(text, "repro_engine_store_compile_total") == 1
        assert metric_value(text, "repro_serve_coalesce_leads_total") == 1
        waits = metric_value(text, "repro_serve_coalesce_waits_total")
        assert 0 <= waits <= n - 1


class TestDeadlines:
    def test_request_timeout_maps_to_504(self, server_factory):
        server = server_factory("--workers", "1", "--no-access-log")
        status, envelope = server.json(
            "POST", "/v1/query",
            {"id": "doomed", "op": "volume", "formula": SLOW_FORMULA,
             "timeout": 0.05},
            timeout=120,
        )
        assert status == 504
        record = envelope["result"]
        assert record["status"] == "budget-exceeded"
        assert record["resource"] == "deadline"

    def test_queue_expiry_answers_504_without_a_pool_slot(
        self, server_factory
    ):
        server = server_factory(
            "--workers", "1", "--max-inflight", "1", "--queue-depth", "4",
            "--request-timeout", "0", "--no-access-log",
        )
        slow_status: list[int] = []

        def slow():
            status, _ = server.json(
                "POST", "/v1/query",
                {"id": "slow", "op": "volume", "formula": SLOW_FORMULA},
                timeout=120,
            )
            slow_status.append(status)

        thread = threading.Thread(target=slow)
        thread.start()
        try:
            assert wait_until(
                lambda: metric_value(scrape(server), "repro_serve_inflight") >= 1,
                timeout=20,
            )
            status, envelope = server.json(
                "POST", "/v1/query",
                {"id": "queued", "op": "volume", "formula": "0 <= x",
                 "timeout": 0.2},
                timeout=120,
            )
        finally:
            thread.join(timeout=120)
        assert status == 504
        record = envelope["result"]
        assert record["status"] == "budget-exceeded"
        assert "admission queue" in record["error"]
        assert slow_status == [200]
        assert metric_value(scrape(server), "repro_serve_timeouts_total") >= 1


class TestGracefulDrain:
    def test_sigterm_drains_inflight_work_and_exits_clean(
        self, server_factory
    ):
        server = server_factory(
            "--workers", "1", "--request-timeout", "0",
            "--drain-timeout", "60", "--no-access-log",
        )
        # A pinned keep-alive connection outlives the listener, so
        # readiness stays observable after SIGTERM closes the socket.
        pinned = server.connect(timeout=60)
        pinned.request("GET", "/readyz")
        ready = pinned.getresponse()
        assert ready.status == 200
        ready.read()  # drain the body so the connection can be reused

        slow_result: dict = {}

        def slow():
            status, envelope = server.json(
                "POST", "/v1/query",
                {"id": "finishing", "op": "volume", "formula": SLOW_FORMULA},
                timeout=120,
            )
            slow_result["status"] = status
            slow_result["record"] = envelope["result"]

        thread = threading.Thread(target=slow)
        thread.start()
        assert wait_until(
            lambda: metric_value(scrape(server), "repro_serve_inflight") >= 1,
            timeout=20,
        )
        server.proc.send_signal(signal.SIGTERM)
        time.sleep(0.2)
        pinned.request("GET", "/readyz")
        response = pinned.getresponse()
        assert response.status == 503
        assert json.loads(response.read()) == {"status": "draining"}

        thread.join(timeout=120)
        assert slow_result["status"] == 200
        assert slow_result["record"]["status"] == "ok"

        # The pinned connection is deliberately left open: an idle
        # keep-alive client must not hold the drain hostage (on
        # Python >= 3.12, Server.wait_closed() blocks until every
        # handler returns — the server has to force-close idlers).
        code = server.stop()
        assert code == 0
        pinned.close()
        stderr = server.stderr_text()
        summary_lines = [
            json.loads(line) for line in stderr.splitlines()
            if line.startswith("{") and '"serve.drain"' in line
        ]
        assert len(summary_lines) == 1
        summary = summary_lines[0]
        assert summary["aborted_inflight"] == 0
        assert summary["served"] >= 1

    def test_idle_keep_alive_connections_do_not_block_drain(
        self, server_factory
    ):
        """SIGTERM with only parked keep-alive clients exits promptly."""
        server = server_factory(
            "--workers", "1", "--drain-timeout", "60", "--no-access-log",
        )
        idlers = [server.connect(timeout=60) for _ in range(3)]
        for connection in idlers:
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
            response.read()
        # All three connections now sit idle in the server's
        # read_request(); none is ever closed by the client.
        started = time.monotonic()
        server.proc.send_signal(signal.SIGTERM)
        code = server.stop()
        assert code == 0
        # Well under the 60 s drain timeout: the idlers were
        # force-closed, not waited out.
        assert time.monotonic() - started < 30
        for connection in idlers:
            connection.close()
        stderr = server.stderr_text()
        summary = [
            json.loads(line) for line in stderr.splitlines()
            if line.startswith("{") and '"serve.drain"' in line
        ]
        assert len(summary) == 1
        assert summary[0]["aborted_inflight"] == 0

    def test_new_connections_refused_after_drain_starts(self, server_factory):
        server = server_factory("--workers", "1", "--no-access-log")
        server.proc.send_signal(signal.SIGTERM)
        assert server.stop() == 0
        with pytest.raises(OSError):
            server.request("GET", "/healthz", timeout=5)


class TestMetricsEndpoint:
    def test_scrape_is_valid_exposition_with_store_gauges(
        self, tmp_path, server_factory
    ):
        store = str(tmp_path / "plans.sqlite")
        server = server_factory("--workers", "1", "--plan-store", store,
                                "--no-access-log")
        status, envelope = server.json(
            "POST", "/v1/query",
            {"op": "volume", "formula": "0 <= x AND x <= 1/2"},
        )
        assert status == 200
        text = scrape(server)
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name_part, _, value = line.rpartition(" ")
            assert name_part, line
            float(value)
        assert metric_value(text, "repro_serve_queries_total") >= 1
        assert metric_value(text, "repro_serve_ok_total") >= 1
        assert metric_value(text, "repro_engine_store_plans") == 1
        # A second scrape must not double-fold the store traffic.
        assert metric_value(
            scrape(server), "repro_engine_store_compile_total"
        ) == metric_value(text, "repro_engine_store_compile_total")
