"""Admission gate: bounded FIFO queueing and load shedding."""

import asyncio

import pytest

from repro import obs
from repro.serve.admission import AdmissionGate, RequestShed


def run(coroutine):
    return asyncio.run(coroutine)


class TestFastPath:
    def test_acquire_below_limit_is_immediate(self):
        async def go():
            gate = AdmissionGate(max_inflight=2, queue_depth=4)
            assert await gate.acquire() == 0.0
            assert await gate.acquire() == 0.0
            assert gate.inflight == 2
            assert gate.queued == 0

        run(go())

    def test_release_frees_the_slot(self):
        async def go():
            gate = AdmissionGate(max_inflight=1, queue_depth=0)
            await gate.acquire()
            gate.release()
            assert gate.idle()
            await gate.acquire()  # not shed: the slot came back

        run(go())

    def test_bad_limits_rejected(self):
        with pytest.raises(ValueError):
            AdmissionGate(max_inflight=0, queue_depth=1)
        with pytest.raises(ValueError):
            AdmissionGate(max_inflight=1, queue_depth=-1)


class TestQueueing:
    def test_fifo_grant_order(self):
        async def go():
            gate = AdmissionGate(max_inflight=1, queue_depth=8)
            order: list[int] = []

            async def worker(tag: int):
                await gate.acquire()
                order.append(tag)
                await asyncio.sleep(0)
                gate.release()

            first = asyncio.ensure_future(worker(0))
            await asyncio.sleep(0)  # 0 holds the slot
            rest = [asyncio.ensure_future(worker(i)) for i in (1, 2, 3)]
            await asyncio.gather(first, *rest)
            assert order == [0, 1, 2, 3]

        run(go())

    def test_queue_wait_is_reported(self):
        async def go():
            gate = AdmissionGate(max_inflight=1, queue_depth=2)
            await gate.acquire()

            async def waiter():
                return await gate.acquire()

            task = asyncio.ensure_future(waiter())
            await asyncio.sleep(0.05)
            gate.release()
            waited = await task
            assert waited > 0.0

        run(go())

    def test_cancelled_waiter_does_not_leak_a_slot(self):
        async def go():
            gate = AdmissionGate(max_inflight=1, queue_depth=4)
            await gate.acquire()
            task = asyncio.ensure_future(gate.acquire())
            await asyncio.sleep(0)
            assert gate.queued == 1
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            assert gate.queued == 0
            gate.release()
            assert gate.idle()
            await gate.acquire()  # the slot is grantable again

        run(go())


class TestShedding:
    def test_sheds_past_queue_depth(self):
        async def go():
            gate = AdmissionGate(max_inflight=1, queue_depth=1, retry_after_s=2.0)
            await gate.acquire()
            filler = asyncio.ensure_future(gate.acquire())
            await asyncio.sleep(0)
            with pytest.raises(RequestShed) as excinfo:
                await gate.acquire()
            assert excinfo.value.retry_after_s == 2.0
            gate.release()
            await filler
            gate.release()

        run(go())

    def test_zero_depth_sheds_immediately_when_busy(self):
        async def go():
            gate = AdmissionGate(max_inflight=1, queue_depth=0)
            await gate.acquire()
            with pytest.raises(RequestShed):
                await gate.acquire()

        run(go())

    def test_shed_false_waits_past_the_depth(self):
        async def go():
            gate = AdmissionGate(max_inflight=1, queue_depth=0)
            await gate.acquire()
            task = asyncio.ensure_future(gate.acquire(shed=False))
            await asyncio.sleep(0)
            assert gate.queued == 1  # over depth, yet queued
            gate.release()
            await task

        run(go())

    def test_shed_increments_counter(self):
        async def go():
            obs.enable_counting()
            gate = AdmissionGate(max_inflight=1, queue_depth=0)
            await gate.acquire()
            with pytest.raises(RequestShed):
                await gate.acquire()
            assert obs.REGISTRY.value("serve.shed") == 1

        run(go())

    def test_shed_counts_inflight_toward_capacity(self):
        # With every slot busy and the queue full of shed=False waiters,
        # capacity is inflight + queued, not queue length alone.
        async def go():
            gate = AdmissionGate(max_inflight=2, queue_depth=1)
            await gate.acquire()
            await gate.acquire()
            filler = asyncio.ensure_future(gate.acquire())
            await asyncio.sleep(0)
            with pytest.raises(RequestShed):
                await gate.acquire()
            gate.release()
            await filler
            gate.release()
            gate.release()

        run(go())

    def test_room_tracks_queue_headroom(self):
        async def go():
            gate = AdmissionGate(max_inflight=1, queue_depth=3)
            assert gate.room() == 3
            await gate.acquire()
            asyncio.ensure_future(gate.acquire())
            await asyncio.sleep(0)
            assert gate.room() == 2
            gate.release()
            await asyncio.sleep(0)
            gate.release()

        run(go())


class TestReservations:
    def test_reserve_counts_inflight_work(self):
        # max_inflight=4 saturated, queue_depth=16: a 20-task batch must
        # NOT pass on max_inflight + queue room alone (the pre-fix check
        # did); free capacity is 16, so 20 is shed and 16 fits.
        async def go():
            gate = AdmissionGate(max_inflight=4, queue_depth=16)
            for _ in range(4):
                await gate.acquire()
            assert gate.try_reserve(20) is None
            reservation = gate.try_reserve(16)
            assert reservation is not None
            reservation.cancel()
            for _ in range(4):
                gate.release()

        run(go())

    def test_concurrent_reservations_cannot_share_headroom(self):
        async def go():
            gate = AdmissionGate(max_inflight=1, queue_depth=4)
            first = gate.try_reserve(5)
            assert first is not None
            # The same headroom is spoken for: a second batch sheds even
            # though nothing has been dispatched yet.
            assert gate.try_reserve(1) is None
            first.cancel()
            assert gate.try_reserve(1) is not None

        run(go())

    def test_unreserved_acquire_sheds_against_reserved_capacity(self):
        async def go():
            gate = AdmissionGate(max_inflight=1, queue_depth=0)
            reservation = gate.try_reserve(1)
            assert reservation is not None
            with pytest.raises(RequestShed):
                await gate.acquire()
            reservation.cancel()
            await gate.acquire()  # capacity came back with the cancel

        run(go())

    def test_reserved_acquires_consume_and_bound_the_queue(self):
        async def go():
            gate = AdmissionGate(max_inflight=1, queue_depth=2)
            await gate.acquire()  # slot busy
            reservation = gate.try_reserve(2)
            assert reservation is not None
            waiters = [
                asyncio.ensure_future(
                    gate.acquire(shed=False, reservation=reservation)
                )
                for _ in range(2)
            ]
            await asyncio.sleep(0)
            assert gate.queued == 2  # within queue_depth
            assert gate.reserved == 0  # fully consumed
            with pytest.raises(RequestShed):
                await gate.acquire()  # queue genuinely full
            reservation.cancel()
            gate.release()
            for waiter in waiters:
                await waiter
                gate.release()
            assert gate.idle()

        run(go())

    def test_cancel_returns_only_unconsumed_units(self):
        async def go():
            gate = AdmissionGate(max_inflight=2, queue_depth=0)
            reservation = gate.try_reserve(2)
            await gate.acquire(shed=False, reservation=reservation)
            assert gate.reserved == 1
            reservation.cancel()
            assert gate.reserved == 0
            assert gate.inflight == 1
            gate.release()

        run(go())
