"""Admission gate: bounded FIFO queueing and load shedding."""

import asyncio

import pytest

from repro import obs
from repro.serve.admission import AdmissionGate, RequestShed


def run(coroutine):
    return asyncio.run(coroutine)


class TestFastPath:
    def test_acquire_below_limit_is_immediate(self):
        async def go():
            gate = AdmissionGate(max_inflight=2, queue_depth=4)
            assert await gate.acquire() == 0.0
            assert await gate.acquire() == 0.0
            assert gate.inflight == 2
            assert gate.queued == 0

        run(go())

    def test_release_frees_the_slot(self):
        async def go():
            gate = AdmissionGate(max_inflight=1, queue_depth=0)
            await gate.acquire()
            gate.release()
            assert gate.idle()
            await gate.acquire()  # not shed: the slot came back

        run(go())

    def test_bad_limits_rejected(self):
        with pytest.raises(ValueError):
            AdmissionGate(max_inflight=0, queue_depth=1)
        with pytest.raises(ValueError):
            AdmissionGate(max_inflight=1, queue_depth=-1)


class TestQueueing:
    def test_fifo_grant_order(self):
        async def go():
            gate = AdmissionGate(max_inflight=1, queue_depth=8)
            order: list[int] = []

            async def worker(tag: int):
                await gate.acquire()
                order.append(tag)
                await asyncio.sleep(0)
                gate.release()

            first = asyncio.ensure_future(worker(0))
            await asyncio.sleep(0)  # 0 holds the slot
            rest = [asyncio.ensure_future(worker(i)) for i in (1, 2, 3)]
            await asyncio.gather(first, *rest)
            assert order == [0, 1, 2, 3]

        run(go())

    def test_queue_wait_is_reported(self):
        async def go():
            gate = AdmissionGate(max_inflight=1, queue_depth=2)
            await gate.acquire()

            async def waiter():
                return await gate.acquire()

            task = asyncio.ensure_future(waiter())
            await asyncio.sleep(0.05)
            gate.release()
            waited = await task
            assert waited > 0.0

        run(go())

    def test_cancelled_waiter_does_not_leak_a_slot(self):
        async def go():
            gate = AdmissionGate(max_inflight=1, queue_depth=4)
            await gate.acquire()
            task = asyncio.ensure_future(gate.acquire())
            await asyncio.sleep(0)
            assert gate.queued == 1
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            assert gate.queued == 0
            gate.release()
            assert gate.idle()
            await gate.acquire()  # the slot is grantable again

        run(go())


class TestShedding:
    def test_sheds_past_queue_depth(self):
        async def go():
            gate = AdmissionGate(max_inflight=1, queue_depth=1, retry_after_s=2.0)
            await gate.acquire()
            filler = asyncio.ensure_future(gate.acquire())
            await asyncio.sleep(0)
            with pytest.raises(RequestShed) as excinfo:
                await gate.acquire()
            assert excinfo.value.retry_after_s == 2.0
            gate.release()
            await filler
            gate.release()

        run(go())

    def test_zero_depth_sheds_immediately_when_busy(self):
        async def go():
            gate = AdmissionGate(max_inflight=1, queue_depth=0)
            await gate.acquire()
            with pytest.raises(RequestShed):
                await gate.acquire()

        run(go())

    def test_shed_false_waits_past_the_depth(self):
        async def go():
            gate = AdmissionGate(max_inflight=1, queue_depth=0)
            await gate.acquire()
            task = asyncio.ensure_future(gate.acquire(shed=False))
            await asyncio.sleep(0)
            assert gate.queued == 1  # over depth, yet queued
            gate.release()
            await task

        run(go())

    def test_shed_increments_counter(self):
        async def go():
            obs.enable_counting()
            gate = AdmissionGate(max_inflight=1, queue_depth=0)
            await gate.acquire()
            with pytest.raises(RequestShed):
                await gate.acquire()
            assert obs.REGISTRY.value("serve.shed") == 1

        run(go())

    def test_room_tracks_queue_headroom(self):
        async def go():
            gate = AdmissionGate(max_inflight=1, queue_depth=3)
            assert gate.room() == 3
            await gate.acquire()
            asyncio.ensure_future(gate.acquire())
            await asyncio.sleep(0)
            assert gate.room() == 2
            gate.release()
            await asyncio.sleep(0)
            gate.release()

        run(go())
