"""The natural-active collapse for dense-order queries ([6], used in
Lemma 2)."""

from fractions import Fraction

import pytest

from repro.db import (
    FiniteInstance,
    Schema,
    collapse_dense_order,
    evaluate_collapsed,
    evaluate_natural,
)
from repro.logic import (
    Exists,
    Forall,
    Relation,
    exists,
    forall,
    variables,
)
from repro._errors import SignatureError

x, y = variables("x y")
U = Relation("U", 1)
schema = Schema.make({"U": 1})


def instance(*values) -> FiniteInstance:
    return FiniteInstance.make(schema, {"U": [Fraction(v) for v in values]})


def _contains_natural_quantifier(formula) -> bool:
    from repro.logic import And, Not, Or
    from repro.logic import ExistsAdom, ForallAdom

    if isinstance(formula, (Exists, Forall)):
        return True
    if isinstance(formula, (And, Or)):
        return any(_contains_natural_quantifier(a) for a in formula.args)
    if isinstance(formula, Not):
        return _contains_natural_quantifier(formula.arg)
    if isinstance(formula, (ExistsAdom, ForallAdom)):
        return _contains_natural_quantifier(formula.body)
    return False


class TestSyntacticShape:
    def test_output_has_only_active_quantifiers(self):
        collapsed = collapse_dense_order(exists(x, U(x) & (x > 1)))
        assert not _contains_natural_quantifier(collapsed)

    def test_nonlinear_signature_rejected(self):
        with pytest.raises(SignatureError):
            collapse_dense_order(exists(x, x + y < 1))

    def test_active_quantifiers_untouched(self):
        from repro.logic import exists_adom

        f = exists_adom(x, U(x))
        assert collapse_dense_order(f) == f


class TestSemanticAgreement:
    """The collapse theorem: collapsed-active == natural on every finite
    instance, including the cases genericity alone cannot handle
    (constants, points outside the active domain, empty instances)."""

    INSTANCES = [
        (),
        (0,),
        (Fraction(1, 2),),
        (0, 2),
        (-1, Fraction(1, 3), 3),
    ]

    @pytest.mark.parametrize("values", INSTANCES)
    def test_witness_beyond_adom(self, values):
        f = exists(x, x > 1)  # always true naturally
        D = instance(*values)
        assert evaluate_collapsed(f, D) is evaluate_natural(f, D) is True

    @pytest.mark.parametrize("values", INSTANCES)
    def test_witness_between_adom_points(self, values):
        f = exists(x, (~U(x)) & (x > 0) & (x < 1))
        D = instance(*values)
        assert evaluate_collapsed(f, D) == evaluate_natural(f, D)

    @pytest.mark.parametrize("values", INSTANCES)
    def test_universal_with_constants(self, values):
        f = forall(x, (x <= 5) | (x > 3))
        D = instance(*values)
        assert evaluate_collapsed(f, D) is evaluate_natural(f, D) is True

    @pytest.mark.parametrize("values", INSTANCES)
    def test_false_universal(self, values):
        f = forall(x, x < 100)
        D = instance(*values)
        assert evaluate_collapsed(f, D) is evaluate_natural(f, D) is False

    @pytest.mark.parametrize("values", INSTANCES)
    def test_nested_quantifiers(self, values):
        # "some point below all of U": true iff naturally (always true
        # over R unless U unbounded below, which finite U never is).
        f = exists(x, forall(y, U(y).implies(x < y)))
        D = instance(*values)
        assert evaluate_collapsed(f, D) is evaluate_natural(f, D) is True

    @pytest.mark.parametrize("values", INSTANCES)
    def test_mixed_boolean_structure(self, values):
        f = exists(x, U(x)) & forall(y, U(y).implies(y < 10))
        D = instance(*values)
        assert evaluate_collapsed(f, D) == evaluate_natural(f, D)

    def test_exhaustive_small_formulas(self):
        """A small systematic sweep of one-quantifier formulas."""
        atoms = [U(x), ~U(x), x > 0, x < 1, x.eq(Fraction(1, 2))]
        import itertools

        for a, b in itertools.product(atoms, repeat=2):
            for kind in (exists, forall):
                f = kind(x, a & b)
                for values in self.INSTANCES:
                    D = instance(*values)
                    assert evaluate_collapsed(f, D) == evaluate_natural(f, D), (
                        f, values,
                    )
