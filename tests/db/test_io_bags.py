"""Serialisation round-trips and bag semantics."""

from fractions import Fraction

import pytest

from repro.db import FiniteInstance, FRInstance, Schema
from repro.db.bags import Bag, bag_avg, bag_count, bag_max, bag_min, bag_sum
from repro.db.io import dumps_instance, loads_instance
from repro.logic import ParseError, variables
from repro._errors import EvaluationError

x, y = variables("x y")


class TestSerialisation:
    def test_finite_roundtrip(self):
        schema = Schema.make({"U": 1, "S": 2})
        instance = FiniteInstance.make(
            schema,
            {"U": [Fraction(1, 3), 2], "S": [(0, 1), (Fraction(-1, 2), 3)]},
        )
        text = dumps_instance(instance)
        loaded = loads_instance(text)
        assert isinstance(loaded, FiniteInstance)
        assert loaded.relation("U") == instance.relation("U")
        assert loaded.relation("S") == instance.relation("S")

    def test_fr_roundtrip(self, triangle_instance):
        text = dumps_instance(triangle_instance)
        loaded = loads_instance(text)
        assert isinstance(loaded, FRInstance)
        params, body = loaded.definition("S")
        original_params, original_body = triangle_instance.definition("S")
        assert params == original_params
        assert body == original_body

    def test_empty_relation_roundtrip(self):
        schema = Schema.make({"U": 1})
        instance = FiniteInstance.make(schema, {})
        loaded = loads_instance(dumps_instance(instance))
        assert loaded.relation("U") == frozenset()

    def test_comments_and_blank_lines_ignored(self):
        text = "# a comment\n\nFINITE\n# another\nU/1: 5\n"
        loaded = loads_instance(text)
        assert loaded.relation("U") == {(Fraction(5),)}

    def test_bad_kind_rejected(self):
        with pytest.raises(ParseError):
            loads_instance("WEIRD\nU/1: 5\n")

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            loads_instance("\n# only comments\n")

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ParseError):
            loads_instance("FINITE\nS/2: 1\n")

    def test_malformed_fr_rejected(self):
        with pytest.raises(ParseError):
            loads_instance("FR\nS(x, y) 0 <= x\n")

    def test_stream_api(self, tmp_path, triangle_instance):
        from repro.db.io import dump_instance, load_instance

        path = tmp_path / "db.txt"
        with open(path, "w") as f:
            dump_instance(triangle_instance, f)
        with open(path) as f:
            loaded = load_instance(f)
        assert loaded.definition("S") == triangle_instance.definition("S")


class TestBags:
    def test_make_counts_duplicates(self):
        bag = Bag.make([1, 2, 2, 3])
        assert bag.multiplicity([2]) == 2
        assert bag.cardinality() == 4
        assert len(bag.support()) == 3

    def test_union_adds(self):
        a = Bag.make([1, 2])
        b = Bag.make([2, 3])
        u = a.union(b)
        assert u.multiplicity([2]) == 2
        assert u.cardinality() == 4

    def test_iteration_respects_multiplicity(self):
        bag = Bag.make([1, 1, 5])
        assert sorted(row[0] for row in bag) == [1, 1, 5]

    def test_map_values_keeps_multiplicity(self):
        bag = Bag.make([1, 1, 2])
        squared = bag.map_values(lambda row: row[0] ** 2)
        assert squared.multiplicity([1]) == 2
        assert squared.multiplicity([4]) == 1

    def test_map_values_partiality(self):
        bag = Bag.make([-1, 4])
        roots = bag.map_values(
            lambda row: None if row[0] < 0 else row[0]
        )
        assert roots.cardinality() == 1

    def test_negative_multiplicity_rejected(self):
        with pytest.raises(ValueError):
            Bag.from_counts({(Fraction(1),): -1})


class TestBagAggregates:
    def test_bag_vs_set_avg(self):
        """The paper's footnote: bag AVG differs from set AVG on repeated
        values — the witnessing instance."""
        bag = Bag.make([0, 0, 3])
        assert bag_avg(bag) == 1  # (0 + 0 + 3)/3
        set_avg = sum(r[0] for r in bag.support()) / len(bag.support())
        assert set_avg == Fraction(3, 2)
        assert bag_avg(bag) != set_avg

    def test_sum_and_count(self):
        bag = Bag.make([1, 1, 2])
        assert bag_sum(bag) == 4
        assert bag_count(bag) == 3

    def test_min_max(self):
        bag = Bag.make([5, 1, 1])
        assert bag_min(bag) == 1
        assert bag_max(bag) == 5

    def test_empty_avg_rejected(self):
        with pytest.raises(EvaluationError):
            bag_avg(Bag.make([]))

    def test_scalar_aggregate_requires_unary(self):
        bag = Bag.make([(1, 2)])
        with pytest.raises(EvaluationError):
            bag_sum(bag)
