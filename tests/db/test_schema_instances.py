"""Schemas, finite instances, and f.r. instances."""

from fractions import Fraction

import pytest

from repro.db import FiniteInstance, FRInstance, Schema
from repro.logic import variables
from repro._errors import SignatureError

x, y = variables("x y")


class TestSchema:
    def test_basic(self):
        schema = Schema.make({"U": 1, "S": 2})
        assert schema.arity("U") == 1
        assert schema.arity("S") == 2
        assert "U" in schema and "T" not in schema
        assert schema.names() == ("S", "U")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Schema.make({})

    def test_zero_arity_rejected(self):
        with pytest.raises(ValueError):
            Schema.make({"U": 0})

    def test_unknown_relation(self):
        schema = Schema.make({"U": 1})
        with pytest.raises(KeyError):
            schema.arity("V")

    def test_symbols(self):
        schema = Schema.make({"S": 2})
        S = schema.symbols()["S"]
        atom = S(x, y)
        assert atom.name == "S"


class TestFiniteInstance:
    def test_unary_shorthand(self, unary_schema):
        D = FiniteInstance.make(unary_schema, {"U": [1, 2]})
        assert (Fraction(1),) in D.relation("U")

    def test_active_domain(self):
        schema = Schema.make({"S": 2})
        D = FiniteInstance.make(schema, {"S": [(1, 2), (2, 3)]})
        assert D.active_domain() == {1, 2, 3}
        assert D.size() == 3

    def test_missing_relation_defaults_empty(self, unary_schema):
        D = FiniteInstance.make(unary_schema, {})
        assert D.relation("U") == frozenset()
        assert D.size() == 0

    def test_arity_mismatch_rejected(self, unary_schema):
        with pytest.raises(ValueError):
            FiniteInstance.make(unary_schema, {"U": [(1, 2)]})

    def test_unknown_relation_rejected(self, unary_schema):
        with pytest.raises(ValueError):
            FiniteInstance.make(unary_schema, {"V": [1]})

    def test_total_tuples(self):
        schema = Schema.make({"S": 2, "U": 1})
        D = FiniteInstance.make(schema, {"S": [(1, 2)], "U": [1, 2, 3]})
        assert D.total_tuples() == 4

    def test_duplicates_collapse(self, unary_schema):
        D = FiniteInstance.make(unary_schema, {"U": [1, 1, 1]})
        assert len(D.relation("U")) == 1


class TestFRInstance:
    def test_triangle(self, triangle_instance):
        variables_, body = triangle_instance.definition("S")
        assert variables_ == ("x", "y")
        assert body.free_variables() == {"x", "y"}

    def test_instantiate(self, triangle_instance):
        from repro.logic import Const, evaluate

        inst = triangle_instance.instantiate(
            "S", [Const(Fraction(1, 2)), Const(Fraction(1, 4))]
        )
        assert evaluate(inst) is True
        inst2 = triangle_instance.instantiate(
            "S", [Const(Fraction(1, 4)), Const(Fraction(1, 2))]
        )
        assert evaluate(inst2) is False

    def test_semilinear_check(self, triangle_instance):
        assert triangle_instance.is_semilinear()
        triangle_instance.check_semilinear()

    def test_semialgebraic_flagged(self):
        schema = Schema.make({"D": 2})
        disk = FRInstance.make(schema, {"D": ((x, y), x**2 + y**2 < 1)})
        assert not disk.is_semilinear()
        with pytest.raises(SignatureError):
            disk.check_semilinear()

    def test_quantified_definition_rejected(self):
        from repro.logic import exists

        schema = Schema.make({"U": 1})
        with pytest.raises(ValueError):
            FRInstance.make(schema, {"U": ((x,), exists(y, y > x))})

    def test_missing_definition_rejected(self):
        schema = Schema.make({"U": 1, "V": 1})
        with pytest.raises(ValueError):
            FRInstance.make(schema, {"U": ((x,), x > 0)})

    def test_stray_variables_rejected(self):
        schema = Schema.make({"U": 1})
        with pytest.raises(ValueError):
            FRInstance.make(schema, {"U": ((x,), x < y)})

    def test_arity_checked(self):
        schema = Schema.make({"U": 1})
        with pytest.raises(ValueError):
            FRInstance.make(schema, {"U": ((x, y), x < y)})

    def test_instantiate_arity_checked(self, triangle_instance):
        from repro.logic import Const

        with pytest.raises(ValueError):
            triangle_instance.instantiate("S", [Const(Fraction(0))])
