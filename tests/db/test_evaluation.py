"""Query evaluation over instances: active, natural, and closure."""

from fractions import Fraction

import pytest

from repro.db import (
    FiniteInstance,
    FRInstance,
    Schema,
    evaluate_active,
    evaluate_natural,
    expand_relations,
    output_formula,
    query_output_tuples,
)
from repro.logic import Relation, evaluate, exists, exists_adom, forall_adom, variables
from repro._errors import EvaluationError

x, y, z = variables("x y z")
U = Relation("U", 1)
S = Relation("S", 2)


class TestExpandRelations:
    def test_finite_encoding(self, unary_instance):
        expanded = expand_relations(U(x), unary_instance)
        assert expanded.relation_names() == frozenset()
        assert evaluate(expanded, {"x": Fraction(1, 2)}) is True
        assert evaluate(expanded, {"x": Fraction(1, 3)}) is False

    def test_fr_substitution(self, triangle_instance):
        expanded = expand_relations(S(x, y) & (x > 0), triangle_instance)
        assert expanded.relation_names() == frozenset()
        assert evaluate(expanded, {"x": Fraction(1, 2), "y": Fraction(1, 4)}) is True

    def test_argument_terms_substituted(self, triangle_instance):
        expanded = expand_relations(S(x + y, y), triangle_instance)
        # S(x + y, y): 0 <= y <= x + y <= 1
        assert evaluate(expanded, {"x": Fraction(1, 2), "y": Fraction(1, 4)}) is True
        assert evaluate(expanded, {"x": Fraction(1), "y": Fraction(1, 4)}) is False

    def test_quantifiers_preserved(self, unary_instance):
        f = exists(y, U(y) & (y > x))
        expanded = expand_relations(f, unary_instance)
        from repro.logic import Exists

        assert isinstance(expanded, Exists)


class TestActiveSemantics:
    def test_exists_adom(self, unary_instance):
        assert evaluate_active(exists_adom(x, U(x)), unary_instance) is True

    def test_forall_adom(self, unary_instance):
        f = forall_adom(x, U(x).implies(x > 0))
        assert evaluate_active(f, unary_instance) is True

    def test_natural_quantifier_over_adom(self, unary_instance):
        # In FO_act evaluation both quantifier kinds range over adom.
        f = exists(x, U(x) & (x > Fraction(1, 2)))
        assert evaluate_active(f, unary_instance) is True

    def test_env_binding(self, unary_instance):
        assert evaluate_active(U(x), unary_instance, {"x": Fraction(1, 4)}) is True


class TestNaturalSemantics:
    def test_linear_sentence(self, unary_instance):
        f = exists(x, U(x) & (x > Fraction(1, 2)))
        assert evaluate_natural(f, unary_instance) is True
        g = exists(x, U(x) & (x > 1))
        assert evaluate_natural(g, unary_instance) is False

    def test_natural_differs_from_active(self, unary_instance):
        # "exists a point strictly between two U elements not in U":
        # true naturally, false actively.
        f = exists(x, (~U(x)) & (Fraction(1, 4) < x) & (x < Fraction(1, 2)))
        assert evaluate_natural(f, unary_instance) is True
        assert evaluate_active(f, unary_instance) is False

    def test_fr_instance(self, triangle_instance):
        f = exists([x, y], S(x, y) & (y > Fraction(1, 2)))
        assert evaluate_natural(f, triangle_instance) is True

    def test_polynomial_path(self):
        schema = Schema.make({"D": 2})
        D = Relation("D", 2)
        disk = FRInstance.make(schema, {"D": ((x, y), x**2 + y**2 < 1)})
        assert evaluate_natural(exists([x, y], D(x, y) & (x > y)), disk) is True
        assert evaluate_natural(exists([x, y], D(x, y) & (x > 2)), disk) is False

    def test_env_substitution(self, triangle_instance):
        f = exists(y, S(x, y))
        assert evaluate_natural(f, triangle_instance, {"x": Fraction(1, 2)}) is True
        assert evaluate_natural(f, triangle_instance, {"x": Fraction(2)}) is False

    def test_unbound_variables_rejected(self, triangle_instance):
        with pytest.raises(EvaluationError):
            evaluate_natural(S(x, y), triangle_instance)

    def test_adom_quantifier_resolved_first(self, unary_instance):
        f = exists_adom(x, U(x) & exists(y, (y > x) & (y < 1)))
        assert evaluate_natural(f, unary_instance) is True


class TestClosure:
    def test_output_is_quantifier_free(self, triangle_instance):
        from repro.logic import is_quantifier_free

        out = output_formula(exists(y, S(x, y) & (y > Fraction(1, 4))), triangle_instance)
        assert is_quantifier_free(out)
        assert out.free_variables() <= {"x"}

    def test_output_semantics(self, triangle_instance):
        out = output_formula(exists(y, S(x, y)), triangle_instance)
        # projection of the triangle onto x: [0, 1]
        assert evaluate(out, {"x": Fraction(1, 2)}) is True
        assert evaluate(out, {"x": Fraction(2)}) is False

    def test_finite_instance_closure(self, unary_instance):
        out = output_formula(exists(y, U(y) & (x < y)), unary_instance)
        assert evaluate(out, {"x": Fraction(0)}) is True
        assert evaluate(out, {"x": Fraction(1)}) is False

    def test_polynomial_rejected(self):
        schema = Schema.make({"D": 2})
        D = Relation("D", 2)
        disk = FRInstance.make(schema, {"D": ((x, y), x**2 + y**2 < 1)})
        with pytest.raises(EvaluationError):
            output_formula(exists(y, D(x, y)), disk)


class TestOutputTuples:
    def test_classical_query(self):
        schema = Schema.make({"S": 2})
        D = FiniteInstance.make(schema, {"S": [(1, 2), (2, 3), (3, 1)]})
        # pairs (a, b) with S(a, b) and a < b
        out = query_output_tuples(S(x, y) & (x < y), D, ("x", "y"))
        assert out == {(1, 2), (2, 3)}

    def test_projection_query(self):
        schema = Schema.make({"S": 2})
        D = FiniteInstance.make(schema, {"S": [(1, 2), (2, 3)]})
        out = query_output_tuples(exists_adom(y, S(x, y)), D, ("x",))
        assert out == {(1,), (2,)}

    def test_free_variable_check(self):
        schema = Schema.make({"S": 2})
        D = FiniteInstance.make(schema, {"S": [(1, 2)]})
        with pytest.raises(EvaluationError):
            query_output_tuples(S(x, y), D, ("x",))
