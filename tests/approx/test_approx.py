"""Approximation operators: trivial, Monte Carlo, KM cost model, convex."""

import math
from fractions import Fraction

import pytest

from repro.approx import (
    approximate_vol_unit_cube,
    convex_relative_approximation,
    epsilon_band_to_relative,
    is_valid_absolute_approximation,
    is_valid_relative_approximation,
    john_band,
    km_cost,
    km_cost_for_query,
    trivial_vol_approximation,
)
from repro.db import FiniteInstance, Schema
from repro.geometry import formula_to_cells, formula_volume_unit_cube
from repro.logic import Relation, between, variables
from repro._errors import ApproximationError

x, y = variables("x y")


class TestOperatorChecks:
    def test_absolute(self):
        assert is_valid_absolute_approximation(0.45, 0.5, 0.1)
        assert not is_valid_absolute_approximation(0.3, 0.5, 0.1)
        with pytest.raises(ApproximationError):
            is_valid_absolute_approximation(0.5, 0.5, 0)

    def test_relative(self):
        assert is_valid_relative_approximation(0.9, 1.0, 0.5, 1.5)
        assert not is_valid_relative_approximation(2.0, 1.0, 0.5, 1.5)
        with pytest.raises(ApproximationError):
            is_valid_relative_approximation(1.0, 0.0, 0.5, 1.5)

    def test_band_conversion(self):
        assert epsilon_band_to_relative(0.25) == (0.75, 1.25)
        with pytest.raises(ApproximationError):
            epsilon_band_to_relative(1.0)


class TestTrivialApproximation:
    def test_middle_returns_half(self):
        f = between(0, x, Fraction(1, 3))
        assert trivial_vol_approximation(f, ("x",)) == Fraction(1, 2)

    def test_empty_returns_zero(self):
        f = (x > 2) & (x < 3)  # outside the unit cube
        assert trivial_vol_approximation(f, ("x",)) == 0

    def test_full_returns_one(self):
        f = x > -1
        assert trivial_vol_approximation(f, ("x",)) == 1

    def test_is_a_valid_half_approximation(self):
        for f in [between(0, x, Fraction(1, 3)), x > Fraction(9, 10), x > 2]:
            estimate = trivial_vol_approximation(f, ("x",))
            truth = formula_volume_unit_cube(f, ("x",))
            assert abs(estimate - truth) <= Fraction(1, 2)

    def test_epsilon_below_half_rejected(self):
        with pytest.raises(ApproximationError):
            trivial_vol_approximation(x > 0, ("x",), epsilon=0.4)


class TestMonteCarlo:
    def test_epsilon_delta_contract(self, rng):
        f = x**2 + y**2 < 1
        estimate = approximate_vol_unit_cube(f, ("x", "y"), 0.05, 0.05, rng)
        assert abs(estimate.estimate - math.pi / 4) < 0.05


class TestKMCostModel:
    def test_paper_example_floors(self):
        """The Section 3 example: eps = 1/10, n = 100 -> >= 1e9 atoms and
        >= 1e11 quantifiers."""
        schema = Schema.make({"U": 1})
        U = Relation("U", 1)
        x1, x2, y1, y2 = variables("x1 x2 y1 y2")
        phi = U(x1) & U(x2) & (x1 < y1) & (y1 < x2) & (0 <= y2) & (y2 <= y1)
        D = FiniteInstance.make(
            schema, {"U": [Fraction(i, 101) for i in range(1, 101)]}
        )
        cost = km_cost_for_query(phi, D, param_vars=2, point_vars=2, epsilon=0.1)
        assert cost.plugged_atoms > 2 * 100  # "> 2n atomic subformulae"
        assert cost.atoms >= 10**9
        assert cost.quantifiers >= 10**11

    def test_cost_grows_as_epsilon_shrinks(self):
        small = km_cost(0.5, plugged_atoms=100, point_arity=2, param_arity=2,
                        database_size=50)
        large = km_cost(0.01, plugged_atoms=100, point_arity=2, param_arity=2,
                        database_size=50)
        assert large.atoms > small.atoms
        assert large.quantifiers > small.quantifiers

    def test_cost_grows_with_database(self):
        small = km_cost(0.1, plugged_atoms=24, point_arity=2, param_arity=2,
                        database_size=10)
        large = km_cost(0.1, plugged_atoms=204, point_arity=2, param_arity=2,
                        database_size=100)
        assert large.atoms > small.atoms

    def test_validation(self):
        with pytest.raises(ApproximationError):
            km_cost(1.5, 10, 1, 1, 10)
        with pytest.raises(ApproximationError):
            km_cost(0.1, 0, 1, 1, 10)

    def test_summary_renders(self):
        cost = km_cost(0.25, 10, 1, 1, 10)
        assert "eps=0.25" in cost.summary()


class TestConvexApproximation:
    def test_john_band_values(self):
        c1, c2 = john_band(2)
        assert c1 == pytest.approx(5 / 8)
        assert c2 == pytest.approx(5 / 2)
        c1_3, c2_3 = john_band(3)
        assert c1_3 == pytest.approx(28 / 54)
        assert c2_3 == pytest.approx(14.0)

    def test_estimate_within_band_square(self):
        (square,) = formula_to_cells(
            between(0, x, 1) & between(0, y, 1), ("x", "y")
        )
        estimate, (c1, c2) = convex_relative_approximation(square)
        ratio = estimate / 1.0
        assert c1 - 1e-6 < ratio < c2 + 1e-6

    def test_estimate_within_band_triangle(self):
        (tri,) = formula_to_cells(
            (x >= 0) & (y >= 0) & (x + y <= 1), ("x", "y")
        )
        estimate, (c1, c2) = convex_relative_approximation(tri)
        ratio = estimate / 0.5
        assert c1 - 1e-6 < ratio < c2 + 1e-6

    def test_band_requires_positive_dimension(self):
        with pytest.raises(ApproximationError):
            john_band(0)
