"""Sampling-based approximation of classical aggregates ([16, 22])."""

from fractions import Fraction

import pytest

from repro.approx import sample_avg, sample_sum
from repro.db import FiniteInstance, Schema
from repro._errors import ApproximationError, EvaluationError


@pytest.fixture
def big_relation():
    schema = Schema.make({"T": 2})
    rows = [(i, Fraction(i % 100, 100)) for i in range(2000)]
    return FiniteInstance.make(schema, {"T": rows})


class TestSampleAvg:
    def test_estimate_near_truth(self, big_relation, rng):
        estimate = sample_avg(
            big_relation, "T", 1, samples=2000, rng=rng, value_range=(0.0, 1.0)
        )
        truth = 0.495  # mean of {0, .01, ..., .99} repeated
        assert abs(estimate.estimate - truth) < estimate.confidence_radius

    def test_interval_contains_truth_with_range(self, big_relation, rng):
        estimate = sample_avg(
            big_relation, "T", 1, samples=500, rng=rng,
            value_range=(0.0, 1.0), delta=0.01,
        )
        low, high = estimate.interval()
        assert low <= 0.495 <= high

    def test_radius_shrinks_with_samples(self, big_relation, rng):
        small = sample_avg(big_relation, "T", 1, 100, rng, value_range=(0, 1))
        large = sample_avg(big_relation, "T", 1, 10_000, rng, value_range=(0, 1))
        assert large.confidence_radius < small.confidence_radius

    def test_heuristic_spread_without_range(self, big_relation, rng):
        estimate = sample_avg(big_relation, "T", 1, 200, rng)
        assert estimate.confidence_radius > 0

    def test_validation(self, big_relation, rng):
        with pytest.raises(ApproximationError):
            sample_avg(big_relation, "T", 1, 0, rng)
        with pytest.raises(ApproximationError):
            sample_avg(big_relation, "T", 1, 10, rng, delta=2.0)
        with pytest.raises(EvaluationError):
            sample_avg(big_relation, "T", 5, 10, rng)

    def test_empty_relation_rejected(self, rng):
        schema = Schema.make({"T": 1})
        empty = FiniteInstance.make(schema, {"T": []})
        with pytest.raises(EvaluationError):
            sample_avg(empty, "T", 0, 10, rng)


class TestSampleSum:
    def test_scales_by_cardinality(self, big_relation, rng):
        estimate = sample_sum(
            big_relation, "T", 1, samples=5000, rng=rng, value_range=(0.0, 1.0)
        )
        truth = 2000 * 0.495
        assert abs(estimate.estimate - truth) < estimate.confidence_radius
