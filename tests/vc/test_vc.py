"""VC dimension: shattering, definable families, bounds, Proposition 5."""

import math
from fractions import Fraction

import pytest

from repro.db import FiniteInstance, Schema
from repro.logic import Relation, variables
from repro.vc import (
    blumer_sample_size,
    family_to_masks,
    family_trace,
    family_vc_dimension,
    goldberg_jerrum_constant,
    goldberg_jerrum_constant_for_query,
    is_shattered,
    prop5_instance,
    prop5_measured_vc_dimension,
    prop5_query,
    vc_dimension,
    vc_dimension_bound,
)
from repro._errors import ApproximationError

x, y = variables("x y")


class TestShattering:
    def test_power_set_shatters_everything(self):
        ground = 3
        family = [frozenset(s) for s in _powerset(range(ground))]
        assert vc_dimension(family, ground) == 3

    def test_singletons_have_dimension_one(self):
        family = [frozenset({i}) for i in range(5)] + [frozenset()]
        assert vc_dimension(family, 5) == 1

    def test_halfline_family_dimension_one(self):
        # Threshold sets {0..k}: shatter any single point, no pair.
        family = [frozenset(range(k)) for k in range(6)]
        assert vc_dimension(family, 5) == 1

    def test_intervals_have_dimension_two(self):
        family = [
            frozenset(range(a, b)) for a in range(5) for b in range(a, 6)
        ]
        assert vc_dimension(family, 5) == 2

    def test_empty_family(self):
        assert vc_dimension([], 4) == 0

    def test_is_shattered_direct(self):
        masks = family_to_masks(
            [frozenset(), frozenset({0}), frozenset({1}), frozenset({0, 1})], 2
        )
        assert is_shattered([0, 1], masks)
        assert not is_shattered([0, 1], masks[:-1])

    def test_out_of_range_index(self):
        with pytest.raises(ValueError):
            family_to_masks([frozenset({7})], 3)


def _powerset(iterable):
    import itertools

    items = list(iterable)
    for r in range(len(items) + 1):
        yield from itertools.combinations(items, r)


class TestFamilyTrace:
    def test_threshold_query(self):
        # phi(x, y) = y < x over a plain domain: threshold family.
        schema = Schema.make({"U": 1})
        instance = FiniteInstance.make(schema, {"U": [0]})
        params = [(Fraction(k),) for k in range(5)]
        ground = [(Fraction(k),) for k in range(4)]
        trace = family_trace(
            y < x, instance, ("x",), ("y",), params, ground
        )
        assert trace[0] == frozenset()
        assert trace[4] == {0, 1, 2, 3}
        assert family_vc_dimension(
            y < x, instance, ("x",), ("y",), params, ground
        ) == 1

    def test_relation_query(self):
        schema = Schema.make({"S": 2})
        S = Relation("S", 2)
        rows = [(0, 0), (1, 1), (2, 0), (2, 1)]
        instance = FiniteInstance.make(schema, {"S": rows})
        params = [(Fraction(a),) for a in range(3)]
        ground = [(Fraction(b),) for b in range(2)]
        trace = family_trace(S(x, y), instance, ("x",), ("y",), params, ground)
        assert trace == [frozenset({0}), frozenset({1}), frozenset({0, 1})]


class TestBounds:
    def test_blumer_monotonicity(self):
        assert blumer_sample_size(0.05, 0.05, 10) > blumer_sample_size(0.1, 0.05, 10)
        assert blumer_sample_size(0.1, 0.05, 100) > blumer_sample_size(0.1, 0.05, 10)

    def test_blumer_matches_paper_formula(self):
        eps, delta, d = 0.1, 0.25, 50.0
        expected = max(
            (4 / eps) * math.log2(2 / delta), (8 * d / eps) * math.log2(13 / eps)
        )
        assert blumer_sample_size(eps, delta, d) == math.floor(expected) + 1

    def test_blumer_validates(self):
        with pytest.raises(ApproximationError):
            blumer_sample_size(1.5, 0.1, 1)
        with pytest.raises(ApproximationError):
            blumer_sample_size(0.1, 0.1, -1)

    def test_goldberg_jerrum_formula(self):
        # C = 16 k (p+q) (log2(8 e d p s) + 1)
        value = goldberg_jerrum_constant(k=2, p=1, q=0, d=1, s=204)
        expected = 16 * 2 * 1 * (math.log2(8 * math.e * 204) + 1)
        assert value == pytest.approx(expected)

    def test_goldberg_jerrum_from_query(self):
        from repro.logic import Relation, exists

        U = Relation("U", 1)
        q = exists(y, U(y) & (x * y < 1))
        value = goldberg_jerrum_constant_for_query(q, point_arity=1, max_relation_arity=1)
        assert value == goldberg_jerrum_constant(k=1, p=1, q=1, d=2, s=2)

    def test_vc_dimension_bound_log(self):
        assert vc_dimension_bound(10.0, 1024) == pytest.approx(100.0)
        assert vc_dimension_bound(10.0, 1) == 10.0


class TestProp5:
    def test_vc_dimension_reaches_log_size(self):
        for k in (2, 3, 4):
            dimension, size = prop5_measured_vc_dimension(k)
            assert dimension == k
            assert dimension >= math.log2(size) - 1  # k >= log2(|D_k|) - O(1)

    def test_instance_size(self):
        instance = prop5_instance(3)
        # adom = codes 0..7 and bits 0..2 (0 appears in both).
        assert instance.size() <= 2**3 + 3

    def test_query_is_quantifier_free(self):
        from repro.logic import is_quantifier_free

        assert is_quantifier_free(prop5_query())

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            prop5_instance(0)
