"""Dense univariate polynomial arithmetic."""

from fractions import Fraction

import pytest

from repro.realalg import UPoly


class TestBasics:
    def test_trailing_zeros_trimmed(self):
        assert UPoly([1, 2, 0, 0]).degree() == 1

    def test_zero_degree_convention(self):
        assert UPoly([]).degree() == -1
        assert UPoly([0]).is_zero()

    def test_from_roots(self):
        p = UPoly.from_roots([1, -2])
        assert p(1) == 0 and p(-2) == 0 and p(0) == -2

    def test_leading_coefficient(self):
        assert UPoly([1, 0, 3]).leading_coefficient() == 3
        assert UPoly([]).leading_coefficient() == 0

    def test_monic(self):
        p = UPoly([2, 4]).monic()
        assert p.coeffs == (Fraction(1, 2), Fraction(1))


class TestArithmetic:
    def test_add_sub(self):
        p, q = UPoly([1, 1]), UPoly([0, 2, 1])
        assert (p + q).coeffs == (1, 3, 1)
        assert (q - p).coeffs == (-1, 1, 1)

    def test_cancellation_trims(self):
        p = UPoly([0, 0, 1])
        assert (p - p).is_zero()

    def test_multiplication(self):
        p = UPoly([1, 1]) * UPoly([-1, 1])  # (x+1)(x-1) = x^2 - 1
        assert p.coeffs == (-1, 0, 1)

    def test_scalar_mult(self):
        assert (3 * UPoly([1, 1])).coeffs == (3, 3)

    def test_pow(self):
        p = UPoly([1, 1]) ** 3
        assert p.coeffs == (1, 3, 3, 1)


class TestDivision:
    def test_exact_division(self):
        numerator = UPoly.from_roots([1, 2, 3])
        q, r = numerator.divmod(UPoly.from_roots([2]))
        assert r.is_zero()
        assert q == UPoly.from_roots([1, 3])

    def test_remainder(self):
        p = UPoly([1, 0, 1])  # x^2 + 1
        q, r = p.divmod(UPoly([-1, 1]))  # x - 1
        assert q.coeffs == (1, 1)
        assert r.coeffs == (2,)

    def test_division_identity(self):
        p = UPoly([3, -2, 0, 5])
        d = UPoly([1, 4, 1])
        q, r = p.divmod(d)
        assert q * d + r == p
        assert r.degree() < d.degree()

    def test_divide_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            UPoly([1]).divmod(UPoly([]))


class TestGcdAndSquarefree:
    def test_gcd_of_coprime_is_one(self):
        p, q = UPoly.from_roots([1]), UPoly.from_roots([2])
        assert p.gcd(q) == UPoly([1])

    def test_gcd_common_factor(self):
        p = UPoly.from_roots([1, 2])
        q = UPoly.from_roots([2, 3])
        assert p.gcd(q) == UPoly.from_roots([2])

    def test_squarefree_part(self):
        p = UPoly.from_roots([1, 1, 2])  # (x-1)^2 (x-2)
        assert p.squarefree_part() == UPoly.from_roots([1, 2])

    def test_squarefree_of_squarefree(self):
        p = UPoly.from_roots([1, 2])
        assert p.squarefree_part() == p


class TestEvaluation:
    def test_horner(self):
        p = UPoly([1, -3, 2])  # 2x^2 - 3x + 1
        assert p(Fraction(1, 2)) == 0
        assert p(2) == 3

    def test_sign_at(self):
        p = UPoly([-1, 0, 1])  # x^2 - 1
        assert p.sign_at(0) == -1
        assert p.sign_at(2) == 1
        assert p.sign_at(1) == 0

    def test_interval_evaluation_contains_range(self):
        p = UPoly([0, -1, 1])  # x^2 - x
        lo, hi = p.evaluate_interval(Fraction(0), Fraction(1))
        # True range on [0,1] is [-1/4, 0]; bounds must contain it.
        assert lo <= Fraction(-1, 4) and hi >= 0

    def test_derivative(self):
        p = UPoly([5, 3, 0, 2])  # 2x^3 + 3x + 5
        assert p.derivative().coeffs == (3, 0, 6)

    def test_cauchy_bound_contains_roots(self):
        p = UPoly.from_roots([3, -7, Fraction(1, 2)])
        bound = p.cauchy_root_bound()
        assert bound > 7
