"""Multivariate polynomial arithmetic."""

from fractions import Fraction

import pytest

from repro.logic import variables
from repro.realalg import Polynomial, term_to_polynomial

x, y = variables("x y")


class TestConstruction:
    def test_constant(self):
        p = Polynomial.constant(Fraction(3, 2))
        assert p.is_constant()
        assert p.constant_value() == Fraction(3, 2)

    def test_zero_constant(self):
        p = Polynomial.constant(0)
        assert p.is_zero()
        assert p.constant_value() == 0

    def test_variable(self):
        p = Polynomial.variable("x")
        assert p.degree_in("x") == 1
        assert p.used_variables() == {"x"}

    def test_variable_must_be_listed(self):
        with pytest.raises(ValueError):
            Polynomial.variable("x", ("y",))

    def test_zero_coefficients_dropped(self):
        p = Polynomial(("x",), {(1,): Fraction(0), (0,): Fraction(1)})
        assert p.is_constant()

    def test_monomial_length_checked(self):
        with pytest.raises(ValueError):
            Polynomial(("x", "y"), {(1,): Fraction(1)})


class TestArithmetic:
    def test_addition_aligns_variables(self):
        p = Polynomial.variable("x") + Polynomial.variable("y")
        assert p.used_variables() == {"x", "y"}

    def test_binomial_expansion(self):
        p = term_to_polynomial((x + y) ** 2)
        q = term_to_polynomial(x**2 + 2 * x * y + y**2)
        assert p == q

    def test_subtraction_cancels(self):
        p = term_to_polynomial(x * y) - term_to_polynomial(x * y)
        assert p.is_zero()

    def test_scalar_operations(self):
        p = 2 * Polynomial.variable("x") + 1
        assert p.evaluate({"x": Fraction(3)}) == 7

    def test_power(self):
        p = Polynomial.variable("x") ** 5
        assert p.degree_in("x") == 5
        assert (Polynomial.variable("x") ** 0).constant_value() == 1

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            Polynomial.variable("x") ** -1

    def test_equality_with_constants(self):
        assert Polynomial.constant(5) == 5
        assert Polynomial.constant(5) != 6


class TestQueries:
    def test_total_degree(self):
        p = term_to_polynomial(x**2 * y + x)
        assert p.total_degree() == 3

    def test_degree_in_each_variable(self):
        p = term_to_polynomial(x**2 * y + x)
        assert p.degree_in("x") == 2
        assert p.degree_in("y") == 1
        assert p.degree_in("z") == 0

    def test_zero_degree(self):
        assert Polynomial.constant(0).total_degree() == 0


class TestSubstitution:
    def test_substitute_constant(self):
        p = term_to_polynomial(x**2 + y)
        q = p.substitute({"x": Fraction(2)})
        assert q == term_to_polynomial(y + 4)

    def test_substitute_polynomial(self):
        p = term_to_polynomial(x**2)
        q = p.substitute({"x": term_to_polynomial(y + 1)})
        assert q == term_to_polynomial(y**2 + 2 * y + 1)

    def test_evaluate(self):
        p = term_to_polynomial(x * y - 1)
        assert p.evaluate({"x": Fraction(1, 2), "y": Fraction(4)}) == 1


class TestUnivariateViews:
    def test_as_univariate_in(self):
        p = term_to_polynomial(x**2 * y + x + 3)
        coeffs = p.as_univariate_in("x")
        assert len(coeffs) == 3
        assert coeffs[0].constant_value() == 3
        assert coeffs[2] == term_to_polynomial(y, ("y",))

    def test_univariate_coefficients(self):
        p = term_to_polynomial(x**2 - 2)
        assert p.univariate_coefficients() == [Fraction(-2), Fraction(0), Fraction(1)]

    def test_univariate_rejects_multivariate(self):
        with pytest.raises(ValueError):
            term_to_polynomial(x * y).univariate_coefficients()


class TestHashing:
    def test_equal_polys_same_hash_across_var_tuples(self):
        p = term_to_polynomial(x + 1, ("x", "y"))
        q = term_to_polynomial(x + 1, ("x",))
        assert p == q
        assert hash(p) == hash(q)
