"""Real algebraic numbers: comparisons and polynomial signs."""

from fractions import Fraction

import pytest

from repro.realalg import RealAlgebraic, UPoly


def sqrt2() -> RealAlgebraic:
    return RealAlgebraic.roots_of(UPoly([-2, 0, 1]))[1]


def sqrt3() -> RealAlgebraic:
    return RealAlgebraic.roots_of(UPoly([-3, 0, 1]))[1]


class TestConstruction:
    def test_from_rational(self):
        r = RealAlgebraic.from_rational(Fraction(2, 3))
        assert r.is_rational()
        assert r.as_fraction() == Fraction(2, 3)

    def test_roots_sorted(self):
        roots = RealAlgebraic.roots_of(UPoly.from_roots([3, -1, 0]))
        values = [r.as_fraction() for r in roots]
        assert values == [-1, 0, 3]

    def test_irrational_as_fraction_raises(self):
        with pytest.raises(ValueError):
            sqrt2().as_fraction()

    def test_float_conversion(self):
        assert abs(float(sqrt2()) - 2**0.5) < 1e-12


class TestComparisons:
    def test_compare_with_rational(self):
        r = sqrt2()
        assert r > Fraction(7, 5)
        assert r < Fraction(3, 2)
        assert not (r == Fraction(3, 2))

    def test_compare_two_algebraics(self):
        assert sqrt2() < sqrt3()
        assert sqrt3() > sqrt2()

    def test_equality_of_same_root_different_polys(self):
        # sqrt(2) as root of x^2-2 and of x^4-4 (= (x^2-2)(x^2+2)).
        a = sqrt2()
        b = RealAlgebraic.roots_of(UPoly([-4, 0, 0, 0, 1]))[1]
        assert a == b
        assert not (a < b) and not (b < a)

    def test_rational_valued_root_equals_fraction(self):
        r = RealAlgebraic.roots_of(UPoly.from_roots([Fraction(1, 2)]))[0]
        assert r == Fraction(1, 2)

    def test_total_ordering_protocol(self):
        assert sqrt2() <= sqrt3()
        assert sqrt3() >= sqrt2()
        assert sqrt2() != sqrt3()

    def test_sorting(self):
        values = [sqrt3(), RealAlgebraic.from_rational(0), sqrt2()]
        ordered = sorted(values)
        assert [float(v) for v in ordered] == sorted(float(v) for v in values)


class TestSignOf:
    def test_sign_zero_at_own_root(self):
        r = sqrt2()
        assert r.sign_of(UPoly([-2, 0, 1])) == 0

    def test_sign_of_other_polynomials(self):
        r = sqrt2()
        assert r.sign_of(UPoly([-1, 1])) == 1  # x - 1 > 0 at sqrt2
        assert r.sign_of(UPoly([-3, 1])) == -1  # x - 3 < 0
        assert r.sign_of(UPoly([0, -1])) == -1  # -x

    def test_sign_of_zero_polynomial(self):
        assert sqrt2().sign_of(UPoly([])) == 0

    def test_sign_at_rational_point(self):
        r = RealAlgebraic.from_rational(2)
        assert r.sign_of(UPoly([-2, 1])) == 0
        assert r.sign_of(UPoly([-1, 1])) == 1

    def test_sign_of_multiple_of_defining_poly(self):
        r = sqrt2()
        # (x^2 - 2) * (x + 10)
        p = UPoly([-2, 0, 1]) * UPoly([10, 1])
        assert r.sign_of(p) == 0


class TestBounds:
    def test_bounds_enclose(self):
        r = sqrt2()
        low, high = r.bounds(Fraction(1, 10**6))
        assert low < high
        assert high - low < Fraction(1, 10**6)
        assert low * low < 2 < high * high

    def test_bounds_of_rational(self):
        r = RealAlgebraic.from_rational(Fraction(1, 3))
        assert r.bounds() == (Fraction(1, 3), Fraction(1, 3))

    def test_approximate_accuracy(self):
        approx = sqrt2().approximate(Fraction(1, 10**10))
        assert abs(approx * approx - 2) < Fraction(1, 10**9)
