"""Resultants and discriminants."""

from fractions import Fraction

import pytest

from repro.logic import variables
from repro.realalg import Polynomial, discriminant, resultant, term_to_polynomial

x, y = variables("x y")


def poly(term) -> Polynomial:
    return term_to_polynomial(term, ("x", "y"))


class TestResultant:
    def test_circle_and_line(self):
        # res_y(x^2 + y^2 - 1, x - y) = 2x^2 - 1
        r = resultant(poly(x**2 + y**2 - 1), poly(x - y), "y")
        assert r == term_to_polynomial(2 * x**2 - 1, ("x",))

    def test_common_root_condition(self):
        # p = y - x, q = y - 1: common root iff x = 1.
        r = resultant(poly(y - x), poly(y - 1), "y")
        assert r == term_to_polynomial(x - 1, ("x",)) or r == term_to_polynomial(
            1 - x, ("x",)
        )

    def test_constant_cases(self):
        r = resultant(Polynomial.constant(3, ("x", "y")), poly(y**2 - x), "y")
        assert r == 9  # c^deg(q)

    def test_both_constant_rejected(self):
        with pytest.raises(ValueError):
            resultant(Polynomial.constant(1), Polynomial.constant(2), "y")

    def test_against_sympy_oracle(self):
        import sympy

        sx, sy = sympy.symbols("x y")
        ours = resultant(poly(x**2 * y + y**2 - 2), poly(x * y - 1), "y")
        theirs = sympy.resultant(sx**2 * sy + sy**2 - 2, sx * sy - 1, sy)
        theirs_poly = sympy.Poly(theirs, sx)
        coeffs = {
            (int(exp),): Fraction(int(c))
            for exp, c in zip(
                (m[0] for m in theirs_poly.monoms()), theirs_poly.coeffs()
            )
        }
        expected = Polynomial(("x",), coeffs)
        # Resultants agree up to sign conventions for PRS variants; the
        # Sylvester determinant is the canonical one, so demand equality.
        assert ours == expected

    def test_vanishes_iff_common_root_univariate(self):
        import sympy

        p = term_to_polynomial(x**2 - 1, ("x",))
        q = term_to_polynomial(x - 1, ("x",))
        r = resultant(p, q, "x")
        assert r.is_constant() and r.constant_value() == 0


class TestDiscriminant:
    def test_quadratic_double_root(self):
        # (y - x)^2 : discriminant (up to lc) vanishes identically in x.
        squared = poly((y - x) * (y - x))
        d = discriminant(squared, "y")
        assert d.is_zero() or all(c == 0 for c in d.coeffs.values())

    def test_quadratic_distinct_roots(self):
        # y^2 - x: res(p, 2y) = -4x (up to sign/scale), vanishing iff x=0.
        d = discriminant(poly(y**2 - x), "y")
        assert d.degree_in("x") == 1
        assert d.evaluate({"x": Fraction(0)}) == 0
        assert d.evaluate({"x": Fraction(1)}) != 0

    def test_linear_has_trivial_discriminant(self):
        d = discriminant(poly(y - x), "y")
        assert d.is_constant()
