"""Edge cases across the real-algebra substrate."""

from fractions import Fraction

import pytest

from repro.logic import variables
from repro.realalg import (
    Polynomial,
    RealAlgebraic,
    UPoly,
    isolate_real_roots,
    term_to_polynomial,
)

x, y = variables("x y")


class TestPolynomialEdges:
    def test_with_variables_cannot_drop_used(self):
        p = term_to_polynomial(x * y)
        with pytest.raises(ValueError):
            p.with_variables(("x",))

    def test_with_variables_reorders(self):
        p = term_to_polynomial(x - y, ("x", "y"))
        q = p.with_variables(("y", "x", "z"))
        assert p == q
        assert q.evaluate({"x": Fraction(3), "y": Fraction(1), "z": Fraction(9)}) == 2

    def test_align_disjoint_variables(self):
        p = Polynomial.variable("x")
        q = Polynomial.variable("y")
        left, right = Polynomial.align(p, q)
        assert left.variables == right.variables

    def test_constant_value_of_nonconstant_raises(self):
        with pytest.raises(ValueError):
            term_to_polynomial(x + 1).constant_value()

    def test_substitute_all_variables_gives_constant(self):
        p = term_to_polynomial(x**2 + y)
        q = p.substitute({"x": Fraction(2), "y": Fraction(-4)})
        assert q.is_constant() and q.constant_value() == 0

    def test_coerce_rejects_float(self):
        with pytest.raises(TypeError):
            term_to_polynomial(x) + 0.5


class TestRootEdges:
    def test_root_at_zero_with_x_factor(self):
        # p = x^2 (x - 1): roots {0, 1}, both rational.
        p = UPoly([0, 0, -1, 1])
        isolations = isolate_real_roots(p)
        assert [i.exact for i in isolations] == [0, 1]

    def test_tight_cluster_separated(self):
        # Roots at 0, 1/128, 1/64 — requires fine bisection.
        p = UPoly.from_roots([0, Fraction(1, 128), Fraction(1, 64)])
        isolations = isolate_real_roots(p)
        assert len(isolations) == 3

    def test_large_coefficients_skip_rational_search(self):
        # Coefficients too large for trial division: still isolates.
        huge = 10**40 + 1
        p = UPoly([-huge, 0, 1])  # x^2 = huge
        isolations = isolate_real_roots(p)
        assert len(isolations) == 2

    def test_negative_rational_root_recognised(self):
        p = UPoly.from_roots([Fraction(-3, 7)])
        (iso,) = isolate_real_roots(p)
        assert iso.exact == Fraction(-3, 7)


class TestAlgebraicEdges:
    def test_equal_hash_for_equal_numbers(self):
        a = RealAlgebraic.roots_of(UPoly([-2, 0, 1]))[1]
        b = RealAlgebraic.roots_of(UPoly([-4, 0, 0, 0, 1]))[1]
        assert a == b
        assert hash(a) == hash(b)

    def test_set_semantics(self):
        a = RealAlgebraic.roots_of(UPoly([-2, 0, 1]))[1]
        b = RealAlgebraic.roots_of(UPoly([-4, 0, 0, 0, 1]))[1]
        assert len({a, b}) == 1

    def test_close_but_distinct(self):
        # sqrt(2) vs sqrt(2) + 1/2^20: distinct and ordered correctly.
        sqrt2 = RealAlgebraic.roots_of(UPoly([-2, 0, 1]))[1]
        offset = Fraction(1, 2**20)
        # (x - offset)^2 = 2  ->  x = sqrt2 + offset
        shifted_poly = UPoly([offset**2 - 2, -2 * offset, 1])
        shifted = RealAlgebraic.roots_of(shifted_poly)[1]
        assert sqrt2 < shifted
        assert sqrt2 != shifted
