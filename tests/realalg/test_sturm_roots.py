"""Sturm sequences, root counting, and root isolation."""

from fractions import Fraction

import pytest

from repro.realalg import (
    UPoly,
    count_real_roots,
    count_roots,
    isolate_real_roots,
    real_roots_as_fractions,
    refine,
)


class TestCounting:
    def test_no_real_roots(self):
        assert count_real_roots(UPoly([1, 0, 1])) == 0  # x^2 + 1

    def test_simple_roots(self):
        assert count_real_roots(UPoly.from_roots([1, 2, 3])) == 3

    def test_multiplicity_ignored(self):
        p = UPoly.from_roots([1, 1, 2])
        assert count_real_roots(p) == 2

    def test_interval_counting(self):
        p = UPoly.from_roots([1, 2, 3])
        assert count_roots(p, Fraction(0), Fraction(5, 2)) == 2
        assert count_roots(p, Fraction(3, 2), None) == 2
        assert count_roots(p, None, Fraction(0)) == 0

    def test_open_interval_excludes_endpoints(self):
        p = UPoly.from_roots([1, 2])
        assert count_roots(p, Fraction(1), Fraction(2)) == 0
        assert count_roots(p, Fraction(1, 2), Fraction(2)) == 1

    def test_zero_polynomial_rejected(self):
        with pytest.raises(ValueError):
            count_real_roots(UPoly([]))

    def test_constant_has_no_roots(self):
        assert count_real_roots(UPoly([5])) == 0


class TestIsolation:
    def test_rational_roots_recognised(self):
        p = UPoly.from_roots([Fraction(1, 3), 2])
        isolations = isolate_real_roots(p)
        assert [i.exact for i in isolations] == [Fraction(1, 3), Fraction(2)]

    def test_linear_root_exact(self):
        isolations = isolate_real_roots(UPoly([1, 3]))  # 3x + 1
        assert isolations[0].exact == Fraction(-1, 3)

    def test_irrational_roots_isolated(self):
        isolations = isolate_real_roots(UPoly([-2, 0, 1]))  # x^2 - 2
        assert len(isolations) == 2
        negative, positive = isolations
        assert negative.high <= positive.low
        assert not positive.is_exact()

    def test_isolating_intervals_disjoint_and_sorted(self):
        p = UPoly.from_roots([0, 1, 2, 3, 4])
        isolations = isolate_real_roots(p)
        assert len(isolations) == 5
        for left, right in zip(isolations, isolations[1:]):
            assert left.high <= right.low

    def test_multiplicities_collapsed(self):
        p = UPoly.from_roots([1, 1, 1])
        assert len(isolate_real_roots(p)) == 1

    def test_degree_zero_no_roots(self):
        assert isolate_real_roots(UPoly([7])) == []


class TestRefinement:
    def test_refine_shrinks(self):
        p = UPoly([-2, 0, 1])
        (negative, positive) = isolate_real_roots(p)
        refined = refine(p, positive, Fraction(1, 10**6))
        if not refined.is_exact():
            assert refined.width() < Fraction(1, 10**6)
            assert refined.low < refined.high
        # sqrt(2) is inside.
        mid = refined.midpoint()
        assert abs(mid * mid - 2) < Fraction(1, 100)

    def test_refine_exact_passthrough(self):
        p = UPoly.from_roots([5])
        (iso,) = isolate_real_roots(p)
        assert refine(p, iso, Fraction(1, 10)).exact == 5


class TestNumericRoots:
    def test_roots_as_fractions(self):
        roots = real_roots_as_fractions(UPoly([-2, 0, 1]))
        assert len(roots) == 2
        assert abs(float(roots[1]) - 2**0.5) < 1e-9

    def test_against_sympy_oracle(self):
        import sympy

        xs = sympy.symbols("x")
        # p = x^4 - 3x^2 + 1 has 4 real roots.
        p = UPoly([1, 0, -3, 0, 1])
        ours = [float(r) for r in real_roots_as_fractions(p)]
        theirs = sorted(float(r) for r in sympy.real_roots(xs**4 - 3 * xs**2 + 1))
        assert len(ours) == len(theirs)
        for a, b in zip(ours, theirs):
            assert abs(a - b) < 1e-9
