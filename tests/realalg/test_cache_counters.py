"""The ``realalg.cache.*`` observability counters on the lru_cache hot spots."""

from fractions import Fraction

from repro import obs
from repro.realalg.sturm import sturm_chain
from repro.realalg.univariate import UPoly


def fresh_poly(salt: int) -> UPoly:
    """A polynomial unlikely to be in the process-wide lru_cache already."""
    return UPoly(
        [Fraction(-20260806 - salt), Fraction(0), Fraction(salt), Fraction(1)]
    )


def counters() -> dict:
    return obs.REGISTRY.as_dict()


class TestSturmChainCounters:
    def test_miss_then_hit(self):
        obs.enable_counting()
        poly = fresh_poly(101)
        sturm_chain(poly)
        first = counters()
        assert first.get("realalg.cache.miss", 0) >= 1
        sturm_chain(poly)
        second = counters()
        assert second.get("realalg.cache.hit", 0) >= first.get(
            "realalg.cache.hit", 0
        ) + 1

    def test_counters_silent_when_disabled(self):
        obs.disable_counting()
        sturm_chain(fresh_poly(202))
        assert "realalg.cache.miss" not in counters()
        assert "realalg.cache.hit" not in counters()


class TestSquarefreeCounters:
    def test_miss_then_hit(self):
        obs.enable_counting()
        poly = fresh_poly(303)
        square = poly * poly
        square.squarefree_part()
        first = counters()
        assert first.get("realalg.cache.miss", 0) >= 1
        square.squarefree_part()
        second = counters()
        assert second.get("realalg.cache.hit", 0) >= first.get(
            "realalg.cache.hit", 0
        ) + 1

    def test_result_identical_with_and_without_counting(self):
        poly = fresh_poly(404)
        obs.disable_counting()
        cold = poly.squarefree_part()
        obs.enable_counting()
        warm = poly.squarefree_part()
        assert cold == warm
