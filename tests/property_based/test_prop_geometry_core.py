"""Property-based tests: exact volumes and FO + POLY + SUM invariants."""

from fractions import Fraction

from hypothesis import assume, given, settings, strategies as st

from repro.core import aggregate_avg, aggregate_count, aggregate_sum, endpoints_range
from repro.db import FiniteInstance, Schema
from repro.geometry import (
    Polyhedron,
    fan_triangulation_area,
    formula_to_cells,
    polytope_volume,
    shoelace_area,
    simplex_volume,
    union_volume,
)
from repro.logic import Const, Relation, Var, between, variables

x, y = variables("x y")
U = Relation("U", 1)

coords = st.fractions(
    min_value=Fraction(-10), max_value=Fraction(10), max_denominator=8
)


@settings(max_examples=50, deadline=None)
@given(coords, coords, coords, coords)
def test_box_volume_is_product(a, b, c, d):
    # Sort instead of filtering on a < b: assume() here rejects ~3/4 of
    # draws and intermittently trips the filter_too_much health check.
    assume(a != b and c != d)
    a, b = sorted((a, b))
    c, d = sorted((c, d))
    (box,) = formula_to_cells(
        between(a, x, b) & between(c, y, d), ("x", "y")
    )
    assert polytope_volume(box) == (b - a) * (d - c)


@settings(max_examples=40, deadline=None)
@given(coords, coords, coords, coords, coords, coords)
def test_triangle_volume_matches_determinant(ax, ay, bx, by, cx, cy):
    a, b, c = (ax, ay), (bx, by), (cx, cy)
    area = simplex_volume([a, b, c])
    assume(area > 0)
    polygon = Polyhedron.from_vertices_2d(("x", "y"), _ccw([a, b, c]))
    assert polytope_volume(polygon) == area


def _ccw(points):
    from repro.geometry import sort_ccw

    return sort_ccw(points)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(coords, coords), min_size=3, max_size=7, unique=True))
def test_fan_area_equals_shoelace_on_hulls(points):
    # Use the convex hull of the sample (vertices in CCW order).
    hull = _convex_hull(points)
    assume(len(hull) >= 3)
    assert fan_triangulation_area(hull) == shoelace_area(hull)


def _convex_hull(points):
    """Exact Andrew monotone chain."""
    pts = sorted(set(points))
    if len(pts) < 3:
        return pts

    def cross(o, a, b):
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    lower, upper = [], []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    for p in reversed(pts):
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    return lower[:-1] + upper[:-1]


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(coords, coords).filter(lambda p: p[0] < p[1]),
        min_size=1,
        max_size=4,
    )
)
def test_union_volume_bounds(intervals):
    cells = []
    for low, high in intervals:
        (cell,) = formula_to_cells(between(low, x, high), ("x",))
        cells.append(cell)
    total = union_volume(cells)
    individual = [polytope_volume(c) for c in cells]
    assert max(individual) <= total <= sum(individual)


@settings(max_examples=40, deadline=None)
@given(st.lists(coords, min_size=1, max_size=8, unique=True))
def test_aggregates_match_python(values):
    schema = Schema.make({"U": 1})
    D = FiniteInstance.make(schema, {"U": values})
    rho = endpoints_range("w", U(Var("w")))
    assert aggregate_count(D, rho) == len(values)
    assert aggregate_sum(D, rho, Var("w")) == sum(values)
    assert aggregate_avg(D, rho, Var("w")) == Fraction(sum(values), len(values))


@settings(max_examples=30, deadline=None)
@given(st.lists(coords, min_size=2, max_size=6, unique=True), coords)
def test_guarded_aggregate_matches_filter(values, threshold):
    schema = Schema.make({"U": 1})
    D = FiniteInstance.make(schema, {"U": values})
    rho = endpoints_range("w", U(Var("w")), guard=Var("w") > threshold)
    kept = [v for v in values if v > threshold]
    assert aggregate_count(D, rho) == len(kept)
    assert aggregate_sum(D, rho, Var("w")) == sum(kept, Fraction(0))


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.fractions(min_value=Fraction(0), max_value=Fraction(2), max_denominator=4),
            st.fractions(min_value=Fraction(0), max_value=Fraction(2), max_denominator=4),
            st.fractions(min_value=Fraction(-1), max_value=Fraction(1), max_denominator=2),
        ),
        min_size=1,
        max_size=2,
    )
)
def test_theorem3_paths_agree_on_skew_unions(cells_spec):
    """The d=2 proof transcription and the production slicing volume agree
    on unions of skewed (non-axis-aligned) cells."""
    from repro.core import volume_2d_fo_poly_sum, volume_of_query
    from repro.db import FRInstance, Schema
    from repro.logic import Relation, between, disjunction

    parts = []
    for x0, width, slope in cells_spec:
        if width == 0:
            continue
        x1 = x0 + width
        # cell: x in [x0, x1], 0 <= y <= 1 + slope * (x - x0)
        upper = 1 + Var("x") * slope - Const(slope * x0)
        parts.append(
            between(x0, Var("x"), x1)
            & (Const(Fraction(0)) <= Var("y"))
            & (Var("y") <= upper)
        )
    assume(parts)
    body = disjunction(*parts)
    schema = Schema.make({"P": 2})
    from repro.logic import variables as _vars
    xv, yv = _vars("x y")
    instance = FRInstance.make(schema, {"P": ((xv, yv), body)})
    P = Relation("P", 2)
    via_proof = volume_2d_fo_poly_sum(instance, P(xv, yv), "x", "y")
    via_production = volume_of_query(P(xv, yv), instance, ("x", "y"))
    assert via_proof == via_production
