"""Property-based tests for the exact real algebra substrate."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.realalg import (
    RealAlgebraic,
    UPoly,
    count_real_roots,
    isolate_real_roots,
)

rationals = st.fractions(
    min_value=Fraction(-50), max_value=Fraction(50), max_denominator=20
)

small_polys = st.lists(rationals, min_size=1, max_size=6).map(UPoly)


@st.composite
def nonzero_polys(draw):
    poly = draw(small_polys)
    if poly.is_zero():
        return UPoly([draw(rationals.filter(lambda r: r != 0))])
    return poly


@settings(max_examples=60, deadline=None)
@given(st.lists(rationals, min_size=1, max_size=5))
def test_count_matches_distinct_roots(roots):
    poly = UPoly.from_roots(roots)
    assert count_real_roots(poly) == len(set(roots))


@settings(max_examples=60, deadline=None)
@given(st.lists(rationals, min_size=1, max_size=5))
def test_isolation_finds_every_root(roots):
    poly = UPoly.from_roots(roots)
    isolations = isolate_real_roots(poly)
    assert len(isolations) == len(set(roots))
    for root in set(roots):
        assert any(
            iso.exact == root if iso.is_exact() else iso.low < root < iso.high
            for iso in isolations
        )


@settings(max_examples=60, deadline=None)
@given(nonzero_polys(), nonzero_polys())
def test_division_identity(a, b):
    q, r = a.divmod(b)
    assert q * b + r == a
    assert r.is_zero() or r.degree() < b.degree()


@settings(max_examples=60, deadline=None)
@given(nonzero_polys(), nonzero_polys())
def test_gcd_divides_both(a, b):
    g = a.gcd(b)
    assert (a % g).is_zero()
    assert (b % g).is_zero()


@settings(max_examples=40, deadline=None)
@given(st.lists(rationals, min_size=1, max_size=4))
def test_squarefree_same_roots(roots):
    poly = UPoly.from_roots(roots) * UPoly.from_roots(roots[:1])
    squarefree = poly.squarefree_part()
    assert count_real_roots(squarefree) == len(set(roots))


@settings(max_examples=40, deadline=None)
@given(nonzero_polys(), rationals, rationals)
def test_interval_evaluation_sound(poly, a, b):
    low, high = min(a, b), max(a, b)
    bound_low, bound_high = poly.evaluate_interval(low, high)
    # spot-check a few interior points
    for k in range(5):
        t = low + (high - low) * Fraction(k, 4) if high > low else low
        value = poly(t)
        assert bound_low <= value <= bound_high


@settings(max_examples=40, deadline=None)
@given(st.lists(rationals, min_size=2, max_size=4, unique=True))
def test_algebraic_ordering_matches_floats(roots):
    poly = UPoly.from_roots(roots)
    algebraics = RealAlgebraic.roots_of(poly)
    values = sorted(set(roots))
    assert len(algebraics) == len(values)
    for alg, expected in zip(algebraics, values):
        assert alg == expected


@settings(max_examples=30, deadline=None)
@given(
    st.lists(rationals, min_size=1, max_size=3, unique=True),
    nonzero_polys(),
)
def test_sign_of_agrees_with_direct_evaluation(roots, probe):
    poly = UPoly.from_roots(roots)
    for alg in RealAlgebraic.roots_of(poly):
        value = probe(alg.as_fraction()) if alg.is_rational() else None
        if value is not None:
            assert alg.sign_of(probe) == (value > 0) - (value < 0)
