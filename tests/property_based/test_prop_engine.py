"""Property-based tests: prepared/cached evaluation equals cold evaluation.

The engine's whole contract is that preparing, caching, spilling and
reloading a plan are *transparent*: every evaluation agrees with the
cold single-shot pipeline — exactly for volume and truth, bit-for-bit
for Monte Carlo estimates, and in the reported mode tag under fallback.
"""

import itertools
from fractions import Fraction

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.engine import PlanCache, PreparedQuery, prepare
from repro.engine.canon import canonical_formula
from repro.geometry import formula_volume_unit_cube
from repro.geometry.sampling import hit_or_miss_volume, hoeffding_sample_size
from repro.guard import Budget, robust_volume
from repro.logic import Compare, Const, Exists, Var, evaluate, is_quantifier_free
from repro.qe import qe_linear

rationals = st.fractions(
    min_value=Fraction(-3), max_value=Fraction(3), max_denominator=4
)

VARS = ("x", "y")


@st.composite
def linear_atoms(draw, variables=VARS + ("z",)):
    names = draw(
        st.lists(st.sampled_from(variables), min_size=1, max_size=2, unique=True)
    )
    term = Const(draw(rationals))
    for name in names:
        coeff = draw(rationals.filter(lambda r: r != 0))
        term = term + Const(coeff) * Var(name)
    op = draw(st.sampled_from(["<", "<=", ">=", ">"]))
    return Compare(op, term, Const(draw(rationals)))


@st.composite
def qf_formulas(draw, depth=2):
    if depth == 0 or draw(st.integers(0, 2)) == 0:
        return draw(linear_atoms())
    if draw(st.booleans()):
        return draw(qf_formulas(depth=depth - 1)) & draw(
            qf_formulas(depth=depth - 1)
        )
    return draw(qf_formulas(depth=depth - 1)) | draw(qf_formulas(depth=depth - 1))


@st.composite
def volume_queries(draw):
    """A formula with free variables exactly {x, y}, optionally quantified."""
    matrix = draw(qf_formulas())
    if "z" in matrix.free_variables():
        formula = Exists("z", matrix)
    else:
        formula = matrix
    # Pin the dimension: conjoin unit-interval bounds on both variables.
    bounds = (Var("x") >= 0) & (Var("x") <= 1) & (Var("y") >= 0) & (Var("y") <= 1)
    return formula & bounds


GRID = [Fraction(0), Fraction(1, 3), Fraction(1, 2), Fraction(2, 3), Fraction(1)]


@settings(max_examples=20, deadline=None)
@given(volume_queries())
def test_prepared_volume_equals_cold_volume(formula):
    plan = prepare(formula, VARS, cache=None)
    assert plan.volume() == formula_volume_unit_cube(formula, VARS)


@settings(max_examples=20, deadline=None)
@given(volume_queries())
def test_prepared_truth_equals_cold_evaluate(formula):
    plan = prepare(formula, VARS, cache=None)
    # evaluate() has no semantics for natural quantifiers over R, so the
    # cold reference runs QE first (exact, semantics-preserving).
    reference = formula if is_quantifier_free(formula) else qe_linear(formula)
    for point in itertools.product(GRID, repeat=2):
        env = dict(zip(VARS, point))
        assert plan.truth(env) == evaluate(reference, env)


@settings(max_examples=15, deadline=None)
@given(volume_queries(), st.integers(0, 2**31 - 1))
def test_prepared_estimate_is_bitwise_cold(formula, seed):
    epsilon = delta = 0.5  # few samples; the property is stream identity
    plan = prepare(formula, VARS, cache=None)
    warm = plan.approx_volume(epsilon, delta, rng=np.random.default_rng(seed))
    cold = hit_or_miss_volume(
        plan.qf, VARS, hoeffding_sample_size(epsilon, delta),
        np.random.default_rng(seed), box=[(0.0, 1.0)] * 2, delta=delta,
    )
    assert warm.estimate == cold.estimate
    assert warm.samples == cold.samples


@settings(max_examples=15, deadline=None)
@given(volume_queries())
def test_cached_and_spilled_plans_agree(formula):
    cache = PlanCache()
    first = prepare(formula, VARS, cache=cache)
    # A canonical variant must hit the same entry, not recompile.
    again = prepare(canonical_formula(formula), VARS, cache=cache)
    assert again is first

    clone = PreparedQuery.from_record(first.to_record())
    assert clone.key == first.key
    assert clone.volume() == first.volume()
    for point in itertools.product((Fraction(1, 4), Fraction(3, 4)), repeat=2):
        env = dict(zip(VARS, point))
        assert clone.truth(env) == first.truth(env)


@settings(max_examples=10, deadline=None)
@given(volume_queries())
def test_robust_mode_tag_matches_cold_ladder(formula):
    plan = prepare(formula, VARS, cache=None)
    # Generous budget: both ladders stop at the exact rung.
    roomy = plan.robust_volume(budget=Budget(deadline_s=60.0))
    cold = robust_volume(formula, VARS, budget=Budget(deadline_s=60.0))
    assert roomy.mode == "exact" == cold.mode
    assert roomy.value == cold.value
    # No budget at all, approx-only policy: both report approximate.
    seed = 5
    warm = plan.robust_volume(
        policy="approx-only", epsilon=0.5, delta=0.5,
        rng=np.random.default_rng(seed),
    )
    assert warm.mode == "approximate"
