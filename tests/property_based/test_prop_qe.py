"""Property-based tests: quantifier elimination is semantics-preserving."""

import itertools
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.logic import Compare, Const, Exists, Forall, Var, evaluate, qf_to_dnf
from repro.qe import qe_linear, solve_univariate
from repro.qe.fourier_motzkin import conjunct_to_constraints, is_feasible

rationals = st.fractions(
    min_value=Fraction(-5), max_value=Fraction(5), max_denominator=6
)

VARS = ("x", "y", "z")


@st.composite
def linear_atoms(draw, variables=VARS):
    names = draw(st.lists(st.sampled_from(variables), min_size=1, max_size=2, unique=True))
    term = Const(draw(rationals))
    for name in names:
        coeff = draw(rationals.filter(lambda r: r != 0))
        term = term + Const(coeff) * Var(name)
    op = draw(st.sampled_from(["<", "<=", "=", ">=", ">"]))
    return Compare(op, term, Const(draw(rationals)))


@st.composite
def qf_linear_formulas(draw, variables=VARS, depth=2):
    if depth == 0:
        return draw(linear_atoms(variables))
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return draw(linear_atoms(variables))
    if choice == 1:
        return draw(qf_linear_formulas(variables, depth - 1)) & draw(
            qf_linear_formulas(variables, depth - 1)
        )
    if choice == 2:
        return draw(qf_linear_formulas(variables, depth - 1)) | draw(
            qf_linear_formulas(variables, depth - 1)
        )
    return ~draw(qf_linear_formulas(variables, depth - 1))


GRID = [Fraction(-2), Fraction(-1, 2), Fraction(0), Fraction(1, 3), Fraction(1), Fraction(5, 2)]


@settings(max_examples=40, deadline=None)
@given(qf_linear_formulas())
def test_exists_elimination_preserves_semantics(matrix):
    quantified = Exists("x", matrix)
    eliminated = qe_linear(quantified)
    free = sorted(quantified.free_variables())
    for point in itertools.product(GRID, repeat=len(free)):
        env = dict(zip(free, point))
        expected = any(
            evaluate(matrix, {**env, "x": value}) for value in GRID
        )
        got = evaluate(eliminated, env)
        # QE ranges over all of R; the finite grid only witnesses the
        # existential direction.
        if expected:
            assert got, (matrix, env)


@settings(max_examples=40, deadline=None)
@given(qf_linear_formulas())
def test_forall_dual_of_exists(matrix):
    forall_form = qe_linear(Forall("x", matrix))
    negated_exists = qe_linear(~Exists("x", ~matrix))
    free = sorted(
        Forall("x", matrix).free_variables()
    )
    for point in itertools.product(GRID, repeat=min(len(free), 2)):
        env = dict(zip(free, point))
        for name in free[len(point):]:
            env[name] = Fraction(0)
        assert evaluate(forall_form, env) == evaluate(negated_exists, env)


@settings(max_examples=40, deadline=None)
@given(qf_linear_formulas(variables=("x",)))
def test_solve_univariate_matches_pointwise(formula):
    solution = solve_univariate(formula, "x")
    for value in GRID:
        assert solution.contains(value) == evaluate(formula, {"x": value}), (
            formula,
            value,
        )


@settings(max_examples=40, deadline=None)
@given(st.lists(linear_atoms(("x", "y")), min_size=1, max_size=4))
def test_feasibility_agrees_with_witness_search(atoms):
    alternatives = conjunct_to_constraints(atoms)
    feasible = any(is_feasible(alt) for alt in alternatives)
    witnessed = any(
        all(evaluate(a, {"x": px, "y": py}) for a in atoms)
        for px in GRID
        for py in GRID
    )
    # A grid witness implies feasibility (not conversely).
    if witnessed:
        assert feasible


@settings(max_examples=30, deadline=None)
@given(qf_linear_formulas(variables=("x", "y"), depth=2))
def test_dnf_preserves_semantics(formula):
    dnf = qf_to_dnf(formula)
    for px in GRID[:4]:
        for py in GRID[:4]:
            env = {"x": px, "y": py}
            expected = evaluate(formula, env)
            got = any(
                all(evaluate(lit, env) for lit in conjunct) for conjunct in dnf
            )
            assert got == expected
