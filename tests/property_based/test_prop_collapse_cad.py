"""Property-based tests: the natural-active collapse and CAD/one-var
agreement on randomly generated formulas."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.db import FiniteInstance, Schema, evaluate_natural
from repro.db.collapse import evaluate_collapsed
from repro.logic import (
    Compare,
    Const,
    Exists,
    Forall,
    RelAtom,
    Var,
)
from repro.qe import decide, solve_univariate
from repro.qe.cad import find_sample

schema = Schema.make({"U": 1})

small_rationals = st.fractions(
    min_value=Fraction(-3), max_value=Fraction(3), max_denominator=4
)


@st.composite
def dense_order_atoms(draw, var_name="x"):
    x = Var(var_name)
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return RelAtom("U", (x,))
    if choice == 1:
        return ~RelAtom("U", (x,))
    op = draw(st.sampled_from(["<", "<=", "=", ">=", ">"]))
    return Compare(op, x, Const(draw(small_rationals)))


@st.composite
def dense_order_sentences(draw):
    atoms = draw(st.lists(dense_order_atoms(), min_size=1, max_size=3))
    body = atoms[0]
    for atom in atoms[1:]:
        if draw(st.booleans()):
            body = body & atom
        else:
            body = body | atom
    quantifier = Exists if draw(st.booleans()) else Forall
    return quantifier("x", body)


@st.composite
def finite_instances(draw):
    values = draw(st.lists(small_rationals, min_size=0, max_size=4, unique=True))
    return FiniteInstance.make(schema, {"U": values})


@settings(max_examples=60, deadline=None)
@given(dense_order_sentences(), finite_instances())
def test_collapse_agrees_with_natural(sentence, instance):
    """The natural-active collapse theorem, randomly probed."""
    assert evaluate_collapsed(sentence, instance) == evaluate_natural(
        sentence, instance
    )


@st.composite
def univariate_poly_formulas(draw):
    """Quantifier-free polynomial formulas in one variable."""
    x = Var("x")
    atoms = []
    for _ in range(draw(st.integers(1, 3))):
        degree = draw(st.integers(1, 3))
        term = Const(draw(small_rationals))
        for power in range(1, degree + 1):
            coefficient = draw(small_rationals)
            if coefficient != 0:
                term = term + Const(coefficient) * x**power
        op = draw(st.sampled_from(["<", "<=", "=", ">"]))
        atoms.append(Compare(op, term, Const(Fraction(0))))
    formula = atoms[0]
    for atom in atoms[1:]:
        formula = formula & atom if draw(st.booleans()) else formula | atom
    return formula


@settings(max_examples=40, deadline=None)
@given(univariate_poly_formulas())
def test_cad_decide_agrees_with_onevar(formula):
    """exists x . phi decided by CAD == nonemptiness of the exact solution
    set computed by the one-variable engine."""
    via_cad = decide(Exists("x", formula))
    via_onevar = not solve_univariate(formula, "x").is_empty()
    assert via_cad == via_onevar, formula


@settings(max_examples=40, deadline=None)
@given(univariate_poly_formulas())
def test_find_sample_solutions_verify(formula):
    """Any sample returned by CAD search actually satisfies the formula
    (checked through the exact one-variable engine)."""
    sample = find_sample(formula)
    solution = solve_univariate(formula, "x")
    if sample is None:
        assert solution.is_empty()
    elif "x" in sample:
        value = sample["x"]
        if isinstance(value, Fraction):
            assert solution.contains(value), (formula, value)
        # Algebraic samples are exact by construction of the search.
    else:
        # Degenerate draw: every coefficient was 0, the formula is
        # constant, and the satisfying assignment is empty.
        assert not formula.free_variables()
        assert not solution.is_empty()
