"""Property-based tests: the degradation ladder agrees with exact volume."""

from fractions import Fraction

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.geometry import formula_volume_unit_cube
from repro.guard import Budget, robust_volume, testing
from repro.logic import between, variables

x, y = variables("x y")

unit = st.fractions(
    min_value=Fraction(0), max_value=Fraction(1), max_denominator=8
)


@st.composite
def box_unions(draw):
    """A union of 1-3 axis-aligned boxes inside the unit square."""
    formula = None
    for _ in range(draw(st.integers(1, 3))):
        a, b = sorted((draw(unit), draw(unit)))
        c, d = sorted((draw(unit), draw(unit)))
        box = between(a, x, b) & between(c, y, d)
        formula = box if formula is None else formula | box
    return formula


@settings(max_examples=25, deadline=None)
@given(box_unions())
def test_auto_mode_with_ample_budget_is_exactly_exact(formula):
    exact = formula_volume_unit_cube(formula, ("x", "y"))
    result = robust_volume(
        formula, ("x", "y"), policy="auto",
        budget=Budget(deadline_s=300, max_cells=10**6),
    )
    assert result.mode == "exact"
    assert result.value == exact


@settings(max_examples=15, deadline=None)
@given(box_unions(), st.integers(0, 2**31 - 1))
def test_forced_approximation_agrees_within_epsilon(formula, seed):
    # delta = 1e-6 makes a per-example Hoeffding failure (~1e-6) negligible
    # across the whole hypothesis run; epsilon = 0.25 keeps it to ~116
    # samples per example.
    epsilon, delta = 0.25, 1e-6
    exact = formula_volume_unit_cube(formula, ("x", "y"))
    assume(exact is not None)
    with testing.trip_after(1, resource="deadline", times=2):
        result = robust_volume(
            formula, ("x", "y"), policy="auto", epsilon=epsilon, delta=delta,
            rng=np.random.default_rng(seed),
        )
    assert result.mode == "approximate"
    assert [mode for mode, _ in result.attempts] == ["exact", "exact-coarse"]
    assert abs(result.value - float(exact)) < epsilon
    assert result.confidence_radius <= epsilon
