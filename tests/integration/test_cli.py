"""The ``python -m repro`` command-line interface."""

import io
from contextlib import redirect_stdout

from repro.__main__ import main


def run_cli(*argv: str) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(list(argv))
    assert code == 0
    return buffer.getvalue()


class TestCLI:
    def test_default_demo(self):
        output = run_cli()
        assert "PODS 1999" in output
        assert "7/32" in output

    def test_demo_subcommand(self):
        assert "Theorem 3" in run_cli("demo")

    def test_volume(self):
        output = run_cli("volume", "0 <= y AND y <= x AND x <= 1")
        assert "= 1/2 =" in output

    def test_volume_union(self):
        output = run_cli("volume", "x < 1/4 OR x > 3/4")
        assert "= 1/2 =" in output

    def test_experiments_listing(self):
        output = run_cli("experiments")
        assert "bench_e1_km_blowup.py" in output
        assert "E10" in output
