"""The ``python -m repro`` command-line interface."""

import io
from contextlib import redirect_stdout

from repro.__main__ import main
from repro.obs import SCHEMA, read_jsonl


def run_cli(*argv: str) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(list(argv))
    assert code == 0
    return buffer.getvalue()


class TestCLI:
    def test_default_demo(self):
        output = run_cli()
        assert "PODS 1999" in output
        assert "7/32" in output

    def test_demo_subcommand(self):
        assert "Theorem 3" in run_cli("demo")

    def test_volume(self):
        output = run_cli("volume", "0 <= y AND y <= x AND x <= 1")
        assert "= 1/2 =" in output

    def test_volume_union(self):
        output = run_cli("volume", "x < 1/4 OR x > 3/4")
        assert "= 1/2 =" in output

    def test_experiments_listing(self):
        output = run_cli("experiments")
        assert "bench_e1_km_blowup.py" in output
        assert "E10" in output


class TestCLIObservability:
    def test_demo_stats_prints_span_tree_and_counters(self):
        output = run_cli("demo", "--stats")
        assert "trace 'repro.demo'" in output
        # At least three levels of nesting render as increasing indents.
        assert "\n  - cli.demo" in output
        assert "\n    - " in output
        assert "\n      - " in output
        # The counter table names the headline metrics.
        assert "=== counters ===" in output
        assert "cad.cells" in output
        assert "evaluator.range_candidates" in output
        assert "mc.samples" in output

    def test_stats_before_subcommand_also_works(self):
        output = run_cli("--stats", "demo")
        assert "trace 'repro.demo'" in output

    def test_volume_stats(self):
        output = run_cli("volume", "--stats", "0 <= y AND y <= x AND x <= 1")
        assert "= 1/2 =" in output
        assert "fm.eliminations" in output
        assert "volume.polytopes" in output

    def test_trace_subcommand_forces_stats(self):
        output = run_cli("trace", "volume", "x < 1/4 OR x > 3/4")
        assert "= 1/2 =" in output
        assert "trace 'repro.volume'" in output

    def test_json_export(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        run_cli("demo", "--json", path)
        (record,) = read_jsonl(path)
        assert record["schema"] == SCHEMA
        assert record["experiment"] == "repro.demo"
        assert record["counters"]["cad.cells"] > 0
        assert record["spans"][0]["name"] == "cli.demo"

    def test_seed_reproducibility(self):
        first = run_cli("approx", "--seed", "7", "x*x + y*y < 1")
        second = run_cli("approx", "--seed", "7", "x*x + y*y < 1")
        third = run_cli("approx", "--seed", "8", "x*x + y*y < 1")
        assert first == second
        assert first != third
