"""The ``python -m repro`` command-line interface."""

import io
from contextlib import redirect_stderr, redirect_stdout

from repro.__main__ import main
from repro.obs import SCHEMA, read_jsonl


def run_cli(*argv: str) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(list(argv))
    assert code == 0
    return buffer.getvalue()


def run_cli_raw(*argv: str) -> tuple[int, str, str]:
    """Like :func:`run_cli` but returns (exit code, stdout, stderr)."""
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = main(list(argv))
    return code, out.getvalue(), err.getvalue()


class TestCLI:
    def test_default_demo(self):
        output = run_cli()
        assert "PODS 1999" in output
        assert "7/32" in output

    def test_demo_subcommand(self):
        assert "Theorem 3" in run_cli("demo")

    def test_volume(self):
        output = run_cli("volume", "0 <= y AND y <= x AND x <= 1")
        assert "= 1/2 =" in output

    def test_volume_union(self):
        output = run_cli("volume", "x < 1/4 OR x > 3/4")
        assert "= 1/2 =" in output

    def test_experiments_listing(self):
        output = run_cli("experiments")
        assert "bench_e1_km_blowup.py" in output
        assert "E10" in output


class TestCLIObservability:
    def test_demo_stats_prints_span_tree_and_counters(self):
        output = run_cli("demo", "--stats")
        assert "trace 'repro.demo'" in output
        # At least three levels of nesting render as increasing indents.
        assert "\n  - cli.demo" in output
        assert "\n    - " in output
        assert "\n      - " in output
        # The counter table names the headline metrics.
        assert "=== counters ===" in output
        assert "cad.cells" in output
        assert "evaluator.range_candidates" in output
        assert "mc.samples" in output

    def test_stats_before_subcommand_also_works(self):
        output = run_cli("--stats", "demo")
        assert "trace 'repro.demo'" in output

    def test_volume_stats(self):
        output = run_cli("volume", "--stats", "0 <= y AND y <= x AND x <= 1")
        assert "= 1/2 =" in output
        assert "fm.eliminations" in output
        assert "volume.polytopes" in output

    def test_trace_subcommand_forces_stats(self):
        output = run_cli("trace", "volume", "x < 1/4 OR x > 3/4")
        assert "= 1/2 =" in output
        assert "trace 'repro.volume'" in output

    def test_json_export(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        run_cli("demo", "--json", path)
        (record,) = read_jsonl(path)
        assert record["schema"] == SCHEMA
        assert record["experiment"] == "repro.demo"
        assert record["counters"]["cad.cells"] > 0
        assert record["spans"][0]["name"] == "cli.demo"

    def test_seed_reproducibility(self):
        first = run_cli("approx", "--seed", "7", "x*x + y*y < 1")
        second = run_cli("approx", "--seed", "7", "x*x + y*y < 1")
        third = run_cli("approx", "--seed", "8", "x*x + y*y < 1")
        assert first == second
        assert first != third


FORMULA = "0 <= y AND y <= x AND x <= 1"


class TestCLIGovernance:
    """``--timeout`` / ``--max-cells`` / ``--fallback`` and exit codes 2/3."""

    def test_timeout_without_fallback_exits_3(self):
        code, out, err = run_cli_raw("volume", "--timeout", "0", FORMULA)
        assert code == 3
        assert out == ""
        assert err.startswith("repro: budget exceeded: deadline budget exceeded")
        assert err.count("\n") == 1  # one-line diagnostic

    def test_max_cells_without_fallback_exits_3(self):
        code, _, err = run_cli_raw("volume", "--max-cells", "0", FORMULA)
        assert code == 3
        assert "cells budget exceeded" in err

    def test_timeout_with_auto_fallback_degrades_to_approximate(self):
        code, out, err = run_cli_raw(
            "volume", "--timeout", "0", "--fallback", "auto",
            "--epsilon", "0.1", FORMULA,
        )
        assert code == 0
        assert "mode=approximate" in out
        assert "+-" in out
        assert "[exact abandoned: deadline budget exceeded]" in err
        assert "[exact-coarse abandoned: deadline budget exceeded]" in err

    def test_auto_fallback_with_ample_budget_stays_exact(self):
        code, out, err = run_cli_raw(
            "volume", "--timeout", "60", "--fallback", "auto", FORMULA
        )
        assert code == 0
        assert "= 1/2 = 0.5 (mode=exact)" in out
        assert err == ""

    def test_approx_only_policy_skips_exact(self):
        code, out, _ = run_cli_raw(
            "volume", "--fallback", "approx-only", "--epsilon", "0.1", FORMULA
        )
        assert code == 0
        assert "mode=approximate" in out

    def test_fallback_seed_reproducibility(self):
        runs = {
            run_cli_raw("volume", "--timeout", "0", "--fallback", "auto",
                        "--seed", "7", FORMULA)[1]
            for _ in range(2)
        }
        assert len(runs) == 1

    def test_query_error_exits_2(self):
        code, _, err = run_cli_raw("volume", "S(x, y)")
        assert code == 2
        assert err.startswith("repro: error:")

    def test_parse_error_exits_2(self):
        code, _, err = run_cli_raw("volume", "x <<< y")
        assert code == 2
        assert err == "repro: error: expected a term, got '<'\n"

    def test_demo_under_exhausted_budget_exits_3(self):
        code, _, err = run_cli_raw("demo", "--timeout", "0")
        assert code == 3
        assert "budget exceeded" in err

    def test_trace_passes_governance_flags_through(self):
        code, out, _ = run_cli_raw(
            "--timeout", "0", "--fallback", "auto", "trace", "volume", FORMULA
        )
        assert code == 0
        assert "mode=approximate" in out
        assert "guard.robust_volume" in out
        assert "guard.trips.deadline" in out
