"""The shipped examples must run end-to-end and print sane output."""

import io
import runpy
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return buffer.getvalue()


def test_quickstart():
    output = run_example("quickstart.py")
    assert "exact area of the output: 7/32" in output
    assert "AVG(P)   = 13/24" in output


def test_gis_landuse():
    output = run_example("gis_landuse.py")
    assert "total mapped area:" in output
    assert "overlap area (expect 0): 0" in output
    # Theorem 3 and SUM-term agreement is asserted inside the example.


def test_inexpressibility_demo():
    output = run_example("inexpressibility_demo.py")
    assert "duplicator wins: True" in output
    assert "separates: False" in output


def test_sales_grouping():
    output = run_example("sales_grouping.py")
    assert "region 1: 200" in output
    assert "bag AVG:   200/3" in output
    assert "round-trip: OK" in output


@pytest.mark.slow
def test_approx_volume_sampling():
    output = run_example("approx_volume_sampling.py")
    assert "sup-error over the grid" in output
    assert "Karpinski-Macintyre" in output
