"""Cross-module integration: closure, Theorem 3 agreement, Theorem 4."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core import (
    UniformVolumeApproximator,
    volume_2d_fo_poly_sum,
    volume_of_query,
)
from repro.db import FRInstance, FiniteInstance, Schema, output_formula
from repro.geometry import (
    formula_to_cells,
    formula_volume,
    hit_or_miss_volume,
    polytope_volume,
)
from repro.logic import (
    Relation,
    between,
    evaluate,
    exists,
    is_quantifier_free,
    variables,
)

x, y, z = variables("x y z")
S = Relation("S", 2)


class TestClosureProperty:
    """FO + LIN queries on semi-linear instances stay semi-linear, and the
    output formula can be queried again (Lemma 4 flavour)."""

    def test_closure_composes(self, triangle_instance):
        # First query: shrink the triangle.
        q1 = S(x, y) & (y <= Fraction(1, 2))
        out1 = output_formula(q1, triangle_instance)
        assert is_quantifier_free(out1)
        # Re-wrap the output as a new database and query again.
        schema2 = Schema.make({"T": 2})
        db2 = FRInstance.make(schema2, {"T": ((x, y), out1)})
        T = Relation("T", 2)
        q2 = exists(y, T(x, y))
        out2 = output_formula(q2, db2)
        assert is_quantifier_free(out2)
        # x-projection of the shrunk triangle is [0, 1].
        assert evaluate(out2, {"x": Fraction(1, 2)}) is True
        assert evaluate(out2, {"x": Fraction(3, 2)}) is False

    def test_volume_after_composition(self, triangle_instance):
        q1 = S(x, y) & (y <= Fraction(1, 2))
        out1 = output_formula(q1, triangle_instance)
        vol = formula_volume(out1, ("x", "y"))
        # triangle minus its top: 1/2 - 1/8 = 3/8
        assert vol == Fraction(3, 8)


class TestVolumeAgreement:
    """Three independent volume computations agree: Theorem 3 (exact, two
    implementations) and Monte Carlo (within its Hoeffding radius)."""

    @pytest.fixture
    def bowtie_instance(self):
        schema = Schema.make({"P": 2})
        body = (between(0, x, 1) & between(0, y, x)) | (
            between(0, x, 1) & between(x, y, 1) & (y >= Fraction(3, 4))
        )
        return FRInstance.make(schema, {"P": ((x, y), body)})

    def test_exact_paths_agree(self, bowtie_instance):
        P = Relation("P", 2)
        a = volume_of_query(P(x, y), bowtie_instance, ("x", "y"))
        b = volume_2d_fo_poly_sum(bowtie_instance, P(x, y), "x", "y")
        assert a == b

    def test_monte_carlo_agrees(self, bowtie_instance, rng):
        P = Relation("P", 2)
        exact = float(volume_of_query(P(x, y), bowtie_instance, ("x", "y")))
        expanded = output_formula(P(x, y), bowtie_instance)
        estimate = hit_or_miss_volume(expanded, ("x", "y"), 40_000, rng)
        assert abs(estimate.estimate - exact) < 3 * estimate.confidence_radius


class TestTheorem4EndToEnd:
    def test_uniform_error_over_grid(self, rng):
        """Theorem 4: a single sample approximates VOL_I(phi(a, D))
        uniformly over the parameter a."""
        schema = Schema.make({"U": 1})
        D = FiniteInstance.make(
            schema, {"U": [Fraction(1, 4), Fraction(3, 4)]}
        )
        U = Relation("U", 1)
        a = variables("a")[0]
        from repro.logic import exists_adom

        # phi(a, y): y below a, above the smallest U element.
        q = exists_adom(x, U(x) & (x <= y) & (y <= a))
        approx = UniformVolumeApproximator(
            q, D, ("a",), ("y",), epsilon=0.04, delta=0.05,
            rng=rng, sample_size=8000,
        )
        failures = 0
        for av in np.linspace(0.0, 1.0, 21):
            # the set is [1/4, a] (the 3/4-interval is contained in it)
            truth = max(0.0, min(av, 1.0) - 0.25)
            estimate = approx.estimate([av])
            if abs(estimate - truth) >= 0.04:
                failures += 1
        # sup-error < eps must hold for the whole grid simultaneously.
        assert failures == 0


class TestCellsRoundTrip:
    def test_cells_cover_formula(self, triangle_instance):
        out = output_formula(S(x, y), triangle_instance)
        cells = formula_to_cells(out, ("x", "y"))
        point_in = (Fraction(1, 2), Fraction(1, 4))
        point_out = (Fraction(1, 4), Fraction(1, 2))
        assert any(c.contains(point_in) for c in cells)
        assert not any(c.contains(point_out) for c in cells)
        assert sum((polytope_volume(c) for c in cells), Fraction(0)) >= Fraction(1, 2)
