"""End-to-end reproductions of the paper's worked examples."""

import math
from fractions import Fraction

import pytest

from repro.approx import km_cost_for_query
from repro.core import sum_of_endpoints, volume_2d_fo_poly_sum, polygon_area
from repro.db import FiniteInstance, FRInstance, Schema, output_formula
from repro.geometry import formula_volume_unit_cube, shoelace_area
from repro.logic import Const, Relation, exists_adom, substitute, variables

x1, x2, y1, y2, x, y = variables("x1 x2 y1 y2 x y")
U = Relation("U", 1)


def section3_query():
    """phi(x1, x2; y1, y2) = U(x1) & U(x2) & x1<y1<x2 & 0<=y2<=y1."""
    return (
        U(x1) & U(x2) & (x1 < y1) & (y1 < x2) & (0 <= y2) & (y2 <= y1)
    )


class TestSection3Example:
    """The worked example of Section 3: VOL_I(phi(a, b, U)) = (b^2 - a^2)/2."""

    @pytest.fixture
    def instance(self):
        schema = Schema.make({"U": 1})
        return FiniteInstance.make(
            schema, {"U": [0, Fraction(1, 2), 1]}
        )

    @pytest.mark.parametrize(
        "a,b",
        [
            (Fraction(0), Fraction(1)),
            (Fraction(0), Fraction(1, 2)),
            (Fraction(1, 2), Fraction(1)),
        ],
    )
    def test_volume_formula(self, instance, a, b):
        body = output_formula(section3_query(), instance)
        fixed = substitute(body, {"x1": Const(a), "x2": Const(b)})
        volume = formula_volume_unit_cube(fixed, ("y1", "y2"))
        assert volume == (b**2 - a**2) / 2

    def test_blow_up_estimate(self):
        """The paper: for eps = 1/10 and the plugged query, the KM formula
        has >= 10^9 atoms and >= 10^11 quantifiers."""
        schema = Schema.make({"U": 1})
        D = FiniteInstance.make(
            schema, {"U": [Fraction(i, 101) for i in range(1, 101)]}
        )
        cost = km_cost_for_query(
            section3_query(), D, param_vars=2, point_vars=2, epsilon=0.1
        )
        assert cost.atoms >= 10**9
        assert cost.quantifiers >= 10**11


class TestSection5Examples:
    def test_sum_of_endpoints_example(self):
        """First example: the sum of all endpoints of the intervals of a
        query output."""
        schema = Schema.make({"U": 1})
        D = FiniteInstance.make(schema, {"U": [Fraction(1, 3), Fraction(2, 3)]})
        # phi(w) = exists u in U: 0 < w < u  -> (0, 2/3); endpoints 0 and 2/3.
        phi = exists_adom(y, U(y) & (0 < x) & (x < y))
        assert sum_of_endpoints(D, x, phi) == Fraction(2, 3)

    def test_polygon_area_example(self):
        """Second example: convex polygon area via the fan-triangulation
        summation term."""
        polygon = [
            (Fraction(0), Fraction(0)),
            (Fraction(4), Fraction(0)),
            (Fraction(5), Fraction(3)),
            (Fraction(2), Fraction(5)),
            (Fraction(-1), Fraction(2)),
        ]
        assert polygon_area(polygon) == shoelace_area(polygon)


class TestSection61Proof:
    """The Theorem 3 proof in dimension 2, run as written."""

    def test_triangle_volume(self, triangle_instance):
        S = Relation("S", 2)
        assert volume_2d_fo_poly_sum(
            triangle_instance, S(x, y), "x", "y"
        ) == Fraction(1, 2)

    def test_piecewise_structure_respected(self):
        # A shape whose slice measure has a genuine breakpoint:
        # union of the left unit square and a right triangle.
        from repro.logic import between

        schema = Schema.make({"P": 2})
        P = Relation("P", 2)
        body = (between(0, x, 1) & between(0, y, 1)) | (
            between(1, x, 2) & between(0, y, 2 - x)
        )
        inst = FRInstance.make(schema, {"P": ((x, y), body)})
        assert volume_2d_fo_poly_sum(inst, P(x, y), "x", "y") == Fraction(3, 2)


class TestArctanNonClosure:
    """The paper's non-closure witness: VOL_I of the epigraph of
    1/(y^2+1) is arctan — irrational at x = 1, so FO + POLY cannot close
    under VOL.  We verify the *numeric* fact with Monte Carlo."""

    def test_arctan_value_via_monte_carlo(self, rng):
        from repro.geometry import hit_or_miss_volume

        z = variables("z")[0]
        body = (0 <= y) & (y <= 1) & (0 <= z) & ((z * (y**2 + 1)) <= 1)
        estimate = hit_or_miss_volume(body, ("y", "z"), 60_000, rng)
        assert abs(estimate.estimate - math.atan(1.0)) < 0.01
