"""Intervals and interval unions (the END substrate)."""

from fractions import Fraction

import pytest

from repro.qe import Interval, IntervalUnion, rational_between
from repro.realalg import RealAlgebraic, UPoly


def sqrt2():
    return RealAlgebraic.roots_of(UPoly([-2, 0, 1]))[1]


class TestInterval:
    def test_point(self):
        p = Interval.point(Fraction(1))
        assert p.is_point()
        assert p.measure() == 0
        assert p.contains(Fraction(1))

    def test_open_interval_membership(self):
        i = Interval.open(Fraction(0), Fraction(1))
        assert i.contains(Fraction(1, 2))
        assert not i.contains(Fraction(0))
        assert not i.contains(Fraction(1))

    def test_closed_interval_membership(self):
        i = Interval.closed(Fraction(0), Fraction(1))
        assert i.contains(Fraction(0)) and i.contains(Fraction(1))

    def test_unbounded(self):
        i = Interval.open(None, Fraction(0))
        assert not i.is_bounded()
        assert i.measure() == float("inf")
        assert i.contains(Fraction(-100))
        assert not i.contains(Fraction(0))

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval.open(Fraction(1), Fraction(0))

    def test_degenerate_open_rejected(self):
        with pytest.raises(ValueError):
            Interval.open(Fraction(1), Fraction(1))

    def test_infinite_endpoint_cannot_be_closed(self):
        with pytest.raises(ValueError):
            Interval(None, Fraction(0), closed_low=True)

    def test_measure_exact(self):
        assert Interval.open(Fraction(1, 3), Fraction(1, 2)).measure() == Fraction(1, 6)

    def test_sample_inside(self):
        i = Interval.open(Fraction(0), Fraction(1))
        assert i.contains(i.sample())

    def test_algebraic_endpoint(self):
        i = Interval.open(Fraction(0), sqrt2())
        assert i.contains(Fraction(1))
        assert not i.contains(Fraction(2))


class TestIntervalUnion:
    def test_merging_overlapping(self):
        u = IntervalUnion([
            Interval.open(Fraction(0), Fraction(2)),
            Interval.open(Fraction(1), Fraction(3)),
        ])
        assert len(u) == 1
        assert u.measure() == 3

    def test_touching_merge_needs_closure(self):
        open_pair = IntervalUnion([
            Interval.open(Fraction(0), Fraction(1)),
            Interval.open(Fraction(1), Fraction(2)),
        ])
        assert len(open_pair) == 2  # 1 itself is missing
        closed_join = IntervalUnion([
            Interval.open(Fraction(0), Fraction(1)),
            Interval(Fraction(1), Fraction(2), True, False),
        ])
        assert len(closed_join) == 1

    def test_point_bridges_intervals(self):
        u = IntervalUnion([
            Interval.open(Fraction(0), Fraction(1)),
            Interval.point(Fraction(1)),
            Interval.open(Fraction(1), Fraction(2)),
        ])
        assert len(u) == 1
        assert u.measure() == 2

    def test_endpoints_sorted_distinct(self):
        u = IntervalUnion([
            Interval.open(Fraction(2), Fraction(3)),
            Interval.point(Fraction(1)),
        ])
        assert u.endpoints() == [Fraction(1), Fraction(2), Fraction(3)]

    def test_point_contributes_one_endpoint(self):
        u = IntervalUnion([Interval.point(Fraction(5))])
        assert u.endpoints() == [Fraction(5)]

    def test_clip(self):
        u = IntervalUnion([Interval.open(Fraction(-1), Fraction(2))])
        clipped = u.clip(Fraction(0), Fraction(1))
        assert clipped.measure() == 1
        assert clipped.contains(Fraction(0))

    def test_clip_drops_outside(self):
        u = IntervalUnion([Interval.open(Fraction(5), Fraction(6))])
        assert u.clip(Fraction(0), Fraction(1)).is_empty()

    def test_measure_sums(self):
        u = IntervalUnion([
            Interval.open(Fraction(0), Fraction(1)),
            Interval.open(Fraction(5), Fraction(7)),
        ])
        assert u.measure() == 3

    def test_empty(self):
        assert IntervalUnion.empty().is_empty()
        assert IntervalUnion.empty().measure() == 0
        assert IntervalUnion.empty().endpoints() == []


class TestRationalBetween:
    def test_bounded(self):
        v = rational_between(Fraction(0), Fraction(1))
        assert 0 < v < 1

    def test_unbounded_left(self):
        assert rational_between(None, Fraction(0)) < 0

    def test_unbounded_right(self):
        assert rational_between(Fraction(0), None) > 0

    def test_both_unbounded(self):
        rational_between(None, None)  # any rational

    def test_between_algebraics(self):
        r2 = sqrt2()
        r3 = RealAlgebraic.roots_of(UPoly([-3, 0, 1]))[1]
        v = rational_between(r2, r3)
        assert r2 < v < r3

    def test_between_rational_and_algebraic(self):
        v = rational_between(Fraction(14, 10), sqrt2())
        assert Fraction(14, 10) < v
        assert sqrt2() > v
