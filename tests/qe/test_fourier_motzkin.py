"""Fourier-Motzkin quantifier elimination for FO + LIN."""

from fractions import Fraction

import pytest

from repro.logic import Relation, evaluate, exists, exists_adom, forall, variables
from repro.qe import (
    conjunct_to_constraints,
    decide_linear,
    eliminate_variable,
    is_feasible,
    qe_linear,
    remove_redundant,
)
from repro._errors import QEError

x, y, z = variables("x y z")


def equivalent_on_grid(f, g, names, grid=None):
    """Exact semantic comparison of two quantifier-free formulas on a grid."""
    if grid is None:
        grid = [Fraction(n, 2) for n in range(-4, 5)]
    import itertools

    for point in itertools.product(grid, repeat=len(names)):
        env = dict(zip(names, point))
        if evaluate(f, env) != evaluate(g, env):
            return False, env
    return True, None


class TestEliminateVariable:
    def test_transitivity(self):
        (constraints,) = conjunct_to_constraints([x < y, y < z])
        result = eliminate_variable("y", constraints)
        assert result is not None
        assert len(result) == 1
        assert result[0].op == "<"

    def test_equality_substitution(self):
        (constraints,) = conjunct_to_constraints([y.eq(x + 1), y < 3])
        result = eliminate_variable("y", constraints)
        assert result is not None
        # x + 1 < 3  i.e.  x < 2
        assert result[0].evaluate({"x": Fraction(1)}) is True
        assert result[0].evaluate({"x": Fraction(2)}) is False

    def test_no_bounds_is_vacuous(self):
        (constraints,) = conjunct_to_constraints([y > x])  # only a lower bound
        result = eliminate_variable("y", constraints)
        assert result == []

    def test_infeasible_detected(self):
        (constraints,) = conjunct_to_constraints([y < x, y > x])
        result = eliminate_variable("y", constraints)
        # Combining the bounds gives x - x < 0, a constant-false
        # constraint, so the whole conjunct is reported infeasible.
        assert result is None

    def test_strictness_propagates(self):
        (constraints,) = conjunct_to_constraints([x <= y, y <= z])
        result = eliminate_variable("y", constraints)
        assert result[0].op == "<="


class TestQELinear:
    def test_transitive_closure(self):
        f = exists(y, (x < y) & (y < z))
        g = qe_linear(f)
        ok, witness = equivalent_on_grid(g, x < z, ["x", "z"])
        assert ok, witness

    def test_forall(self):
        f = forall(y, (y > x) | (y < z))
        g = qe_linear(f)
        # holds iff x < z
        ok, witness = equivalent_on_grid(g, x < z, ["x", "z"])
        assert ok, witness

    def test_neq_handled(self):
        f = exists(y, y.ne(0) & (y < x) & (y > -x))
        g = qe_linear(f)
        # exists y != 0 in (-x, x): true iff x > 0
        ok, witness = equivalent_on_grid(g, x > 0, ["x"])
        assert ok, witness

    def test_free_variables_preserved(self):
        f = exists(y, (x < y) & (y < z))
        assert qe_linear(f).free_variables() <= {"x", "z"}

    def test_rejects_relations(self):
        R = Relation("R", 1)
        with pytest.raises(QEError):
            qe_linear(exists(y, R(y)))

    def test_rejects_adom_quantifiers(self):
        with pytest.raises(QEError):
            qe_linear(exists_adom(y, y < x))

    def test_nested_quantifiers(self):
        f = exists(y, (x < y) & exists(z, (y < z) & (z < 1)))
        g = qe_linear(f)
        ok, witness = equivalent_on_grid(g, x < 1, ["x"])
        assert ok, witness

    def test_rational_coefficients(self):
        f = exists(y, (3 * y).eq(x) & (y > Fraction(1, 3)))
        g = qe_linear(f)
        ok, witness = equivalent_on_grid(g, x > 1, ["x"])
        assert ok, witness


class TestDecide:
    def test_density(self):
        assert decide_linear(forall(x, forall(y, (x < y).implies(
            exists(z, (x < z) & (z < y)))))) is True

    def test_unboundedness(self):
        assert decide_linear(forall(x, exists(y, y > x))) is True

    def test_false_sentence(self):
        assert decide_linear(exists(x, (x < 0) & (x > 0))) is False

    def test_rejects_free_variables(self):
        with pytest.raises(QEError):
            decide_linear(x < 1)


class TestFeasibility:
    def test_feasible(self):
        (constraints,) = conjunct_to_constraints([x > 0, x < 1, y > x])
        assert is_feasible(constraints) is True

    def test_infeasible(self):
        (constraints,) = conjunct_to_constraints([x > y, y > z, z > x])
        assert is_feasible(constraints) is False

    def test_tight_equality_feasible(self):
        (constraints,) = conjunct_to_constraints([x.eq(1), x >= 1, x <= 1])
        assert is_feasible(constraints) is True

    def test_empty_is_feasible(self):
        assert is_feasible([]) is True


class TestRedundancy:
    def test_dominated_constraint_removed(self):
        (constraints,) = conjunct_to_constraints([x < 1, x < 2])
        kept = remove_redundant(constraints)
        assert len(kept) == 1
        assert kept[0].evaluate({"x": Fraction(3, 2)}) is False

    def test_non_redundant_kept(self):
        (constraints,) = conjunct_to_constraints([x > 0, x < 1])
        assert len(remove_redundant(constraints)) == 2

    def test_implied_by_combination(self):
        # x < 1, y < 1 imply x + y < 2.
        (constraints,) = conjunct_to_constraints([x < 1, y < 1, x + y < 2])
        kept = remove_redundant(constraints)
        assert len(kept) == 2
