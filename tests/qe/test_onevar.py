"""One-variable exact solving (the 1-D CAD / END engine)."""

from fractions import Fraction

import pytest

from repro.logic import FALSE, TRUE, exists, variables
from repro.qe import solve_univariate
from repro._errors import QEError

x, y = variables("x y")


class TestLinear:
    def test_interval(self):
        sol = solve_univariate((x > 0) & (x < 1), "x")
        assert sol.measure() == 1
        assert sol.endpoints() == [0, 1]

    def test_point(self):
        sol = solve_univariate((2 * x).eq(1), "x")
        assert len(sol) == 1
        assert sol.intervals[0].is_point()
        assert sol.endpoints() == [Fraction(1, 2)]

    def test_union(self):
        sol = solve_univariate((x < 0) | (x > 1), "x")
        assert len(sol) == 2
        assert not sol.is_bounded()

    def test_whole_line(self):
        sol = solve_univariate(TRUE, "x")
        assert len(sol) == 1
        assert sol.endpoints() == []

    def test_empty(self):
        sol = solve_univariate(FALSE, "x")
        assert sol.is_empty()
        sol2 = solve_univariate((x < 0) & (x > 0), "x")
        assert sol2.is_empty()

    def test_neq_punctures(self):
        sol = solve_univariate((x >= 0) & (x <= 2) & x.ne(1), "x")
        assert sol.measure() == 2
        assert len(sol) == 2
        assert sol.endpoints() == [0, 1, 2]

    def test_closed_endpoints(self):
        sol = solve_univariate((x >= 0) & (x <= 1), "x")
        assert sol.contains(Fraction(0)) and sol.contains(Fraction(1))


class TestPolynomial:
    def test_quadratic_inequality(self):
        sol = solve_univariate(x**2 < 2, "x")
        assert len(sol) == 1
        endpoints = sol.endpoints()
        assert len(endpoints) == 2
        assert abs(float(sol.measure()) - 2 * 2**0.5) < 1e-9

    def test_equality_picks_roots(self):
        sol = solve_univariate((x**2).eq(1), "x")
        assert len(sol) == 2
        assert all(i.is_point() for i in sol)
        assert sol.endpoints() == [-1, 1]

    def test_no_real_solutions(self):
        sol = solve_univariate((x**2).eq(-1), "x")
        assert sol.is_empty()

    def test_cubic_sign_alternation(self):
        # x(x-1)(x-2) < 0 on (-inf,0) u (1,2)
        sol = solve_univariate(x * (x - 1) * (x - 2) < 0, "x")
        assert len(sol) == 2
        assert sol.contains(Fraction(-5))
        assert sol.contains(Fraction(3, 2))
        assert not sol.contains(Fraction(1, 2))

    def test_touching_root(self):
        # x^2 <= 0 only at 0
        sol = solve_univariate(x**2 <= 0, "x")
        assert len(sol) == 1
        assert sol.intervals[0].is_point()

    def test_mixed_boolean_structure(self):
        sol = solve_univariate(((x**2 < 1) | (x > 3)) & x.ne(0), "x")
        assert sol.contains(Fraction(1, 2))
        assert not sol.contains(Fraction(0))
        assert sol.contains(Fraction(4))


class TestQuantified:
    def test_linear_quantifier_eliminated(self):
        sol = solve_univariate(exists(y, (y > x) & (y < 1)), "x")
        # exists y in (x, 1): true iff x < 1
        assert sol.contains(Fraction(0))
        assert not sol.contains(Fraction(1))

    def test_nonlinear_quantifier_rejected(self):
        with pytest.raises(QEError):
            solve_univariate(exists(y, (y * y).eq(x)), "x")


class TestValidation:
    def test_extra_free_variables_rejected(self):
        with pytest.raises(QEError):
            solve_univariate(x < y, "x")

    def test_unused_variable_ok(self):
        sol = solve_univariate(TRUE | (x < 1), "x")
        assert not sol.is_empty()
