"""Dense-order QE wrapper and the quantifier-free simplifier."""

import pytest

from repro.logic import FALSE, Relation, TRUE, exists, forall, variables
from repro.qe import (
    check_dense_order,
    decide_dense_order,
    qe_dense_order,
    simplify_qf,
)
from repro._errors import SignatureError

x, y, z = variables("x y z")


class TestDenseOrderSignature:
    def test_accepts_order_atoms(self):
        check_dense_order(exists(y, (x < y) & (y < z)))

    def test_accepts_constants(self):
        check_dense_order((x < 1) & (x > 0))

    def test_rejects_addition(self):
        with pytest.raises(SignatureError):
            check_dense_order(x + y < 1)

    def test_rejects_multiplication(self):
        with pytest.raises(SignatureError):
            check_dense_order(x * x < 1)

    def test_relation_args_checked(self):
        R = Relation("R", 1)
        with pytest.raises(SignatureError):
            check_dense_order(R(x + 1))


class TestDenseOrderQE:
    def test_density_decided(self):
        f = forall(x, forall(y, (x < y).implies(exists(z, (x < z) & (z < y)))))
        assert decide_dense_order(f) is True

    def test_between(self):
        g = qe_dense_order(exists(y, (x < y) & (y < z)))
        assert g.free_variables() <= {"x", "z"}


class TestSimplifier:
    def test_constant_folding(self):
        from repro.logic import Const
        from fractions import Fraction

        f = (Const(Fraction(1)) < Const(Fraction(2))) & (x < 1)
        assert simplify_qf(f) == (x < 1)

    def test_contradiction_detected(self):
        f = (x < 1) & (x >= 1)
        assert simplify_qf(f) == FALSE

    def test_tautology_detected(self):
        f = (x < 1) | (x >= 1)
        assert simplify_qf(f) == TRUE

    def test_duplicates_removed(self):
        f = (x < 1) & (x < 1) & (y < 1)
        simplified = simplify_qf(f)
        from repro.logic import And

        assert isinstance(simplified, And)
        assert len(simplified.args) == 2

    def test_nested_not(self):
        f = ~((x < 1) & TRUE)
        assert simplify_qf(f) == (x >= 1)

    def test_false_conjunct_collapses(self):
        from repro.logic import Const
        from fractions import Fraction

        f = (x < 1) & (Const(Fraction(2)) < Const(Fraction(1)))
        assert simplify_qf(f) == FALSE

    def test_rejects_quantifiers(self):
        with pytest.raises(TypeError):
            simplify_qf(exists(x, x < 1))
