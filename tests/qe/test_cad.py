"""CAD decision procedure for FO + POLY sentences."""

from fractions import Fraction

import pytest

from repro.logic import exists, forall, variables
from repro.qe import decide, find_sample, projection_set, satisfiable
from repro.realalg import term_to_polynomial
from repro._errors import QEError

x, y, z = variables("x y z")


class TestDecideOneVar:
    def test_existential(self):
        assert decide(exists(x, (x**2).eq(2))) is True
        assert decide(exists(x, (x**2).eq(-1))) is False

    def test_universal(self):
        assert decide(forall(x, x**2 >= 0)) is True
        assert decide(forall(x, x**2 > 0)) is False  # fails at 0


class TestDecideTwoVars:
    def test_disk_nonempty(self):
        assert decide(exists([x, y], x**2 + y**2 < 1)) is True

    def test_single_point_set(self):
        assert decide(exists([x, y], (x**2 + y**2).eq(0))) is True

    def test_empty_set(self):
        assert decide(exists([x, y], x**2 + y**2 < -1)) is False

    def test_forall_exists_sqrt(self):
        # Every non-negative x has a square root.
        f = forall(x, (x < 0) | exists(y, (y**2).eq(x)))
        assert decide(f) is True

    def test_forall_exists_sqrt_fails_globally(self):
        f = forall(x, exists(y, (y**2).eq(x)))
        assert decide(f) is False

    def test_circle_line_tangency(self):
        # The line y = 1 touches the unit circle.
        f = exists([x, y], (x**2 + y**2).eq(1) & y.eq(1))
        assert decide(f) is True
        # The line y = 2 misses it.
        g = exists([x, y], (x**2 + y**2).eq(1) & y.eq(2))
        assert decide(g) is False

    def test_parabola_below_line(self):
        # forall x: x^2 + 1 > x
        assert decide(forall(x, x**2 + 1 > x)) is True


class TestDecideThreeVars:
    def test_sphere(self):
        f = exists([x, y, z], (x**2 + y**2 + z**2).eq(1) & (z > Fraction(1, 2)))
        assert decide(f) is True

    def test_empty_intersection(self):
        f = exists(
            [x, y, z],
            (x**2 + y**2 + z**2 < 1) & (x > 2),
        )
        assert decide(f) is False


class TestValidation:
    def test_free_variables_rejected(self):
        with pytest.raises(QEError):
            decide(x**2 < 1)

    def test_relations_rejected(self):
        from repro.logic import Relation

        R = Relation("R", 1)
        with pytest.raises(QEError):
            decide(exists(x, R(x)))


class TestSatisfiability:
    def test_satisfiable_with_sample(self):
        f = (x**2 + y**2 < 1) & (y > x) & (x > 0)
        sample = find_sample(f)
        assert sample is not None
        # The sample must actually satisfy the formula (exact check).
        xx, yy = sample["x"], sample["y"]
        assert xx**2 + yy**2 < 1 and yy > xx and xx > 0

    def test_unsatisfiable(self):
        assert satisfiable((x**2 < 0)) is False
        assert find_sample(x**2 < 0) is None

    def test_closed_formula(self):
        from repro.logic import TRUE, FALSE

        assert find_sample(TRUE) == {}
        assert find_sample(FALSE) is None

    def test_equality_constraint_found(self):
        f = (x**2 + y**2).eq(0)
        sample = find_sample(f)
        assert sample == {"x": 0, "y": 0}


class TestProjection:
    def test_circle_projection_contains_discriminant_zeros(self):
        circle = term_to_polynomial(x**2 + y**2 - 1, ("x", "y"))
        projected = projection_set([circle], "y")
        # x = +-1 (the silhouette) must be roots of some projection poly.
        assert any(
            p.evaluate({"x": Fraction(1)}) == 0 for p in projected
        )
        assert any(
            p.evaluate({"x": Fraction(-1)}) == 0 for p in projected
        )

    def test_projection_keeps_var_free_polys(self):
        p = term_to_polynomial(x - 1, ("x", "y"))
        q = term_to_polynomial(y**2 - x, ("x", "y"))
        projected = projection_set([p, q], "y")
        assert any(pp.degree_in("x") >= 1 for pp in projected)
