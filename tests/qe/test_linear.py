"""Linear constraint normalisation."""

from fractions import Fraction

import pytest

from repro.logic import variables
from repro.qe import LinConstraint, compare_to_constraints, linear_parts
from repro.realalg import term_to_polynomial
from repro._errors import SignatureError

x, y = variables("x y")


class TestLinearParts:
    def test_splits_coeffs_and_constant(self):
        coeffs, constant = linear_parts(term_to_polynomial(2 * x - y + 3))
        assert coeffs == {"x": 2, "y": -1}
        assert constant == 3

    def test_rejects_nonlinear(self):
        with pytest.raises(SignatureError):
            linear_parts(term_to_polynomial(x * y))


class TestNormalisation:
    def test_less_than(self):
        (c,) = compare_to_constraints(x + 1 < y)
        assert c.op == "<"
        assert c.coeff("x") == 1 and c.coeff("y") == -1 and c.constant == 1

    def test_greater_flipped(self):
        (c,) = compare_to_constraints(x > 3)
        assert c.op == "<"
        assert c.coeff("x") == -1 and c.constant == 3

    def test_ge_flipped(self):
        (c,) = compare_to_constraints(x >= 0)
        assert c.op == "<="

    def test_equality(self):
        (c,) = compare_to_constraints(x.eq(y))
        assert c.op == "="

    def test_neq_rejected(self):
        with pytest.raises(ValueError):
            compare_to_constraints(x.ne(y))

    def test_cancellation_gives_constant_constraint(self):
        (c,) = compare_to_constraints(x < x + 1)
        assert c.is_constant()
        assert c.constant_truth() is True


class TestConstraintOperations:
    def test_evaluate(self):
        c = LinConstraint.make({"x": Fraction(1)}, Fraction(-1), "<")  # x - 1 < 0
        assert c.evaluate({"x": Fraction(0)}) is True
        assert c.evaluate({"x": Fraction(1)}) is False

    def test_scale_positive_only(self):
        c = LinConstraint.make({"x": Fraction(2)}, 0, "<")
        assert c.scale(Fraction(1, 2)).coeff("x") == 1
        with pytest.raises(ValueError):
            c.scale(Fraction(-1))

    def test_substitute_var(self):
        # x + y < 0, substitute x := 2y + 1  ->  3y + 1 < 0
        c = LinConstraint.make({"x": Fraction(1), "y": Fraction(1)}, 0, "<")
        s = c.substitute_var("x", {"y": Fraction(2)}, Fraction(1))
        assert s.coeff("y") == 3 and s.constant == 1

    def test_negation_of_strict(self):
        c = LinConstraint.make({"x": Fraction(1)}, 0, "<")
        (negated,) = c.negated_formulas()
        assert negated.op == "<="
        assert negated.coeff("x") == -1

    def test_negation_of_equality_splits(self):
        c = LinConstraint.make({"x": Fraction(1)}, 0, "=")
        branches = c.negated_formulas()
        assert len(branches) == 2
        assert all(b.op == "<" for b in branches)

    def test_to_formula_roundtrip(self):
        (c,) = compare_to_constraints(2 * x - y < 3)
        (c2,) = compare_to_constraints(c.to_formula())
        assert c == c2

    def test_constant_truth_requires_constant(self):
        c = LinConstraint.make({"x": Fraction(1)}, 0, "<")
        with pytest.raises(ValueError):
            c.constant_truth()

    def test_invalid_op(self):
        with pytest.raises(ValueError):
            LinConstraint.make({}, 0, ">")
