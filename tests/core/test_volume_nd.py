"""The dimension-general Theorem 3 induction (volume_nd_fo_poly_sum)."""

from fractions import Fraction

import pytest

from repro.core import volume_nd_fo_poly_sum, volume_of_query
from repro.db import FRInstance, Schema
from repro.logic import Relation, between, variables
from repro._errors import UnboundedSetError

x, y, z, w = variables("x y z w")


def instance_of(body, names, name="P"):
    schema = Schema.make({name: len(names)})
    vars_ = variables(" ".join(names))
    return FRInstance.make(schema, {name: (vars_, body)})


class TestBaseCases:
    def test_1d_interval(self):
        inst = instance_of(between(0, x, Fraction(1, 3)), ("x",))
        P = Relation("P", 1)
        assert volume_nd_fo_poly_sum(inst, P(x), ("x",)) == Fraction(1, 3)

    def test_1d_union(self):
        body = between(0, x, 1) | between(2, x, Fraction(5, 2))
        inst = instance_of(body, ("x",))
        P = Relation("P", 1)
        assert volume_nd_fo_poly_sum(inst, P(x), ("x",)) == Fraction(3, 2)

    def test_1d_unbounded_raises(self):
        inst = instance_of(x > 0, ("x",))
        P = Relation("P", 1)
        with pytest.raises(UnboundedSetError):
            volume_nd_fo_poly_sum(inst, P(x), ("x",))


class TestAgainstProduction:
    @pytest.mark.parametrize(
        "body,names",
        [
            ((0 <= y) & (y <= x) & (x <= 1), ("x", "y")),
            (
                between(0, x, 1) & between(0, y, 1) & between(0, z, 1)
                & (x + y + z <= 1),
                ("x", "y", "z"),
            ),
            (
                between(0, x, 2) & between(0, y, 2) & between(0, z, 2)
                & (x + y + z <= 3),
                ("x", "y", "z"),
            ),
        ],
    )
    def test_convex_cases(self, body, names):
        inst = instance_of(body, names)
        P = Relation("P", len(names))
        args = variables(" ".join(names))
        query = P(*args)
        assert volume_nd_fo_poly_sum(inst, query, names) == volume_of_query(
            query, inst, names
        )

    def test_skew_union_2d(self):
        body = (
            between(0, x, 2) & (0 <= y) & (y <= x)
        ) | (
            between(0, x, Fraction(3, 2)) & (y >= 1 - x) & (0 <= y) & (y <= 1)
        )
        inst = instance_of(body, ("x", "y"))
        P = Relation("P", 2)
        assert volume_nd_fo_poly_sum(inst, P(x, y), ("x", "y")) == volume_of_query(
            P(x, y), inst, ("x", "y")
        )

    def test_union_3d(self):
        body = (
            between(0, x, 1) & between(0, y, 1) & between(0, z, 1)
        ) | (
            between(Fraction(1, 2), x, Fraction(3, 2))
            & between(0, y, 1)
            & between(0, z, Fraction(1, 2))
        )
        inst = instance_of(body, ("x", "y", "z"))
        P = Relation("P", 3)
        assert volume_nd_fo_poly_sum(
            inst, P(x, y, z), ("x", "y", "z")
        ) == volume_of_query(P(x, y, z), inst, ("x", "y", "z"))

    def test_agrees_with_2d_transcription(self):
        from repro.core import volume_2d_fo_poly_sum

        body = (0 <= y) & (y <= x) & (x <= 1) & (y <= Fraction(1, 2))
        inst = instance_of(body, ("x", "y"))
        P = Relation("P", 2)
        assert volume_nd_fo_poly_sum(
            inst, P(x, y), ("x", "y")
        ) == volume_2d_fo_poly_sum(inst, P(x, y), "x", "y")
