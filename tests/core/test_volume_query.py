"""Theorem 3: exact volumes of semi-linear sets via FO + POLY + SUM."""

from fractions import Fraction

import pytest

from repro.core import (
    SumEvaluator,
    maximal_interval_range,
    slice_measure_term,
    volume_2d_fo_poly_sum,
    volume_of_query,
    volume_of_relation,
)
from repro.db import FRInstance, Schema
from repro.logic import Relation, between, exists, variables
from repro._errors import UnboundedSetError

x, y, z = variables("x y z")
S = Relation("S", 2)


class TestSliceMeasure:
    def test_triangle_slices(self, triangle_instance):
        g = slice_measure_term("y", S(x, y))
        evaluator = SumEvaluator(triangle_instance)
        for t in (Fraction(1, 4), Fraction(1, 2), Fraction(9, 10)):
            assert evaluator.term_value(g, {"x": t}) == t

    def test_empty_slice(self, triangle_instance):
        g = slice_measure_term("y", S(x, y))
        evaluator = SumEvaluator(triangle_instance)
        assert evaluator.term_value(g, {"x": Fraction(2)}) == 0

    def test_disconnected_slice(self):
        schema = Schema.make({"T": 2})
        T = Relation("T", 2)
        body = between(0, y, 1) & y.ne(x) & between(0, x, 1)
        # measure is 1 regardless of the puncture
        inst = FRInstance.make(schema, {"T": ((x, y), body)})
        g = slice_measure_term("y", T(x, y))
        assert SumEvaluator(inst).term_value(g, {"x": Fraction(1, 2)}) == 1

    def test_two_intervals(self):
        schema = Schema.make({"T": 2})
        T = Relation("T", 2)
        body = (between(0, y, x) | between(2, y, 2 + x)) & between(0, x, 1)
        inst = FRInstance.make(schema, {"T": ((x, y), body)})
        g = slice_measure_term("y", T(x, y))
        assert SumEvaluator(inst).term_value(g, {"x": Fraction(1, 2)}) == 1


class TestMaximalIntervalRange:
    def test_pairs_are_maximal_intervals(self, triangle_instance):
        rho = maximal_interval_range("l", "u", "y", S(x, y))
        evaluator = SumEvaluator(triangle_instance)
        pairs = evaluator.range_set(rho, {"x": Fraction(1, 2)})
        assert pairs == [(Fraction(0), Fraction(1, 2))]

    def test_no_spanning_of_gaps(self):
        schema = Schema.make({"T": 1})
        T = Relation("T", 1)
        body = between(0, x, 1) | between(2, x, 3)
        inst = FRInstance.make(schema, {"T": ((x,), body)})
        rho = maximal_interval_range("l", "u", "x", T(x))
        pairs = SumEvaluator(inst).range_set(rho)
        assert pairs == [(0, 1), (2, 3)]


class TestVolume2D:
    def test_triangle(self, triangle_instance):
        assert volume_2d_fo_poly_sum(triangle_instance, S(x, y), "x", "y") == Fraction(1, 2)

    def test_square(self, square_instance):
        assert volume_2d_fo_poly_sum(square_instance, S(x, y), "x", "y") == 1

    def test_union_shape(self):
        schema = Schema.make({"T": 2})
        T = Relation("T", 2)
        body = (between(0, x, 1) & between(0, y, 1)) | (
            between(Fraction(1, 2), x, Fraction(3, 2)) & between(0, y, Fraction(1, 2))
        )
        inst = FRInstance.make(schema, {"T": ((x, y), body)})
        assert volume_2d_fo_poly_sum(inst, T(x, y), "x", "y") == Fraction(5, 4)

    def test_query_output_volume(self, triangle_instance):
        # lower half of the triangle: y <= 1/4
        q = S(x, y) & (y <= Fraction(1, 4))
        got = volume_2d_fo_poly_sum(triangle_instance, q, "x", "y")
        # trapezoid: integral of min(x, 1/4) over [0,1] = 1/32 + 3/16
        assert got == Fraction(1, 32) + Fraction(3, 16)

    def test_unbounded_raises(self):
        schema = Schema.make({"T": 2})
        T = Relation("T", 2)
        inst = FRInstance.make(schema, {"T": ((x, y), y > x)})
        with pytest.raises(UnboundedSetError):
            volume_2d_fo_poly_sum(inst, T(x, y), "x", "y")

    def test_crossing_edges_regression(self):
        """The union slice measure kinks where two cells' skew edges cross
        — a breakpoint that is a vertex of the pairwise intersection but
        of neither cell.  Two overlapping 'hourglass-wing' triangles."""
        from repro.core import volume_of_query

        schema = Schema.make({"T": 2})
        T = Relation("T", 2)
        # Triangle A: (0,0), (2,0), (2,2) — below y = x.
        # Triangle B: (0,2), (2,2), (2,0) shifted: use y >= x on [0,2] but
        # clipped to x <= 3/2, so hypotenuses cross at an interior point.
        body = (
            between(0, x, 2) & (0 <= y) & (y <= x)
        ) | (
            between(0, x, Fraction(3, 2)) & (y >= 1 - x) & (0 <= y) & (y <= 1)
        )
        inst = FRInstance.make(schema, {"T": ((x, y), body)})
        via_proof = volume_2d_fo_poly_sum(inst, T(x, y), "x", "y")
        via_production = volume_of_query(T(x, y), inst, ("x", "y"))
        assert via_proof == via_production


class TestVolumeOfQuery:
    def test_matches_2d_path(self, triangle_instance):
        q = S(x, y) & (y <= Fraction(1, 4))
        a = volume_of_query(q, triangle_instance, ("x", "y"))
        b = volume_2d_fo_poly_sum(triangle_instance, q, "x", "y")
        assert a == b

    def test_3d_query(self):
        schema = Schema.make({"C": 3})
        C = Relation("C", 3)
        body = between(0, x, 1) & between(0, y, 1) & between(0, z, 1) & (
            x + y + z <= 1
        )
        inst = FRInstance.make(schema, {"C": ((x, y, z), body)})
        assert volume_of_query(C(x, y, z), inst, ("x", "y", "z")) == Fraction(1, 6)

    def test_volume_of_relation(self, triangle_instance):
        assert volume_of_relation(triangle_instance, "S") == Fraction(1, 2)

    def test_quantified_query(self, triangle_instance):
        # { (x, y) : exists z. S(z, y), x in [0, 1/2] } with y <= z <= 1
        q = exists(z, S(z, y)) & between(0, x, Fraction(1, 2))
        # exists z: 0 <= y <= z <= 1 -> y in [0, 1]; area = 1/2 * 1 = 1/2
        assert volume_of_query(q, triangle_instance, ("x", "y")) == Fraction(1, 2)

    def test_box_clipping(self, triangle_instance):
        q = S(x, y)
        clipped = volume_of_query(
            q, triangle_instance, ("x", "y"),
            box=[(Fraction(0), Fraction(1, 2)), (Fraction(0), Fraction(1))],
        )
        assert clipped == Fraction(1, 8)
