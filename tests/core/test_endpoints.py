"""The END operator: interval endpoints of definable sets."""

from fractions import Fraction

import pytest

from repro.core import definable_set, end_set
from repro.db import FRInstance, Schema
from repro.logic import Relation, exists, exists_adom, variables
from repro._errors import SafetyError

x, y, z = variables("x y z")
U = Relation("U", 1)
S = Relation("S", 2)


class TestFiniteInstances:
    def test_points_are_their_own_endpoints(self, unary_instance):
        ends = end_set(unary_instance, "x", U(x))
        assert ends == [Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)]

    def test_interval_union_endpoints(self, unary_instance):
        # { x : exists u in U, 0 < x < u } = (0, 3/4): endpoints 0, 3/4.
        body = exists_adom(y, U(y) & (0 < x) & (x < y))
        ends = end_set(unary_instance, "x", body)
        assert ends == [0, Fraction(3, 4)]

    def test_parameterised_endpoints(self, unary_instance):
        body = U(x) & (x < z)
        assert end_set(unary_instance, "x", body, {"z": Fraction(1, 2)}) == [
            Fraction(1, 4)
        ]
        assert end_set(unary_instance, "x", body, {"z": Fraction(1)}) == [
            Fraction(1, 4), Fraction(1, 2), Fraction(3, 4)
        ]

    def test_unbound_parameters_rejected(self, unary_instance):
        with pytest.raises(SafetyError):
            end_set(unary_instance, "x", U(x) & (x < z))


class TestFRInstances:
    def test_triangle_slice(self, triangle_instance):
        # { y : S(1/2, y) } = [0, 1/2]
        ends = end_set(
            triangle_instance, "y", S(x, y), {"x": Fraction(1, 2)}
        )
        assert ends == [0, Fraction(1, 2)]

    def test_projection_via_quantifier(self, triangle_instance):
        # { x : exists y S(x, y) } = [0, 1]
        ends = end_set(triangle_instance, "x", exists(y, S(x, y)))
        assert ends == [0, 1]

    def test_unbounded_set_contributes_finite_endpoints(self):
        schema = Schema.make({"H": 1})
        half = FRInstance.make(schema, {"H": ((x,), x > 3)})
        H = Relation("H", 1)
        ends = end_set(half, "x", H(x))
        assert ends == [3]

    def test_whole_line_has_no_endpoints(self):
        schema = Schema.make({"A": 1})
        all_reals = FRInstance.make(schema, {"A": ((x,), x.eq(x))})
        A = Relation("A", 1)
        assert end_set(all_reals, "x", A(x)) == []

    def test_definable_set_structure(self, triangle_instance):
        union = definable_set(
            triangle_instance, "y", S(x, y) & y.ne(Fraction(1, 4)),
            {"x": Fraction(1, 2)},
        )
        assert len(union) == 2
        assert union.measure() == Fraction(1, 2)

    def test_semialgebraic_endpoints(self):
        schema = Schema.make({"D": 2})
        disk = FRInstance.make(schema, {"D": ((x, y), x**2 + y**2 < 1)})
        D = Relation("D", 2)
        ends = end_set(disk, "y", D(x, y), {"x": Fraction(0)})
        assert len(ends) == 2
        assert ends[0] == -1 and ends[1] == 1

    def test_irrational_endpoints(self):
        schema = Schema.make({"D": 2})
        disk = FRInstance.make(schema, {"D": ((x, y), x**2 + y**2 < 2)})
        D = Relation("D", 2)
        ends = end_set(disk, "y", D(x, y), {"x": Fraction(0)})
        assert len(ends) == 2
        assert abs(float(ends[1]) - 2**0.5) < 1e-9
