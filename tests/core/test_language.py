"""FO + POLY + SUM syntax: DetFormula, End, RangeRestricted, SumTerm."""

from fractions import Fraction

import pytest

from repro.core import (
    DetFormula,
    End,
    RangeRestricted,
    SumTerm,
    contains_sum_term,
)
from repro.logic import Relation, TRUE, Var, variables
from repro._errors import SafetyError

x, y, w, u = variables("x y w u")
U = Relation("U", 1)


class TestDetFormula:
    def test_from_term(self):
        gamma = DetFormula.from_term("v", ("a", "b"), Var("a") + Var("b"))
        assert gamma.x == "v"
        assert gamma.w == ("a", "b")
        assert gamma.arity() == 2

    def test_output_cannot_be_parameter(self):
        with pytest.raises(ValueError):
            DetFormula.make("v", ("v",), TRUE)

    def test_duplicate_parameters_rejected(self):
        with pytest.raises(ValueError):
            DetFormula.make("v", ("a", "a"), TRUE)

    def test_relations_rejected(self):
        with pytest.raises(ValueError):
            DetFormula.make("v", ("a",), U(Var("a")))

    def test_stray_variables_rejected(self):
        with pytest.raises(ValueError):
            DetFormula.make("v", ("a",), Var("v").eq(Var("b")))

    def test_accepts_var_objects(self):
        gamma = DetFormula.from_term(x, (w,), w + 1)
        assert gamma.x == "x"


class TestEnd:
    def test_free_variables(self):
        end = End("y", U(y) & (y < x), u)
        assert end.free_variables() == {"x", "u"}

    def test_relation_names(self):
        end = End("y", U(y), u)
        assert end.relation_names() == {"U"}

    def test_str(self):
        end = End("y", U(y), u)
        assert "END" in str(end)


class TestRangeRestricted:
    def test_parameters(self):
        rho = RangeRestricted.make(("w",), Var("w") < x, "y", U(y) & (y < x))
        assert rho.parameters() == {"x"}
        assert rho.arity() == 1

    def test_needs_parameters(self):
        with pytest.raises(ValueError):
            RangeRestricted.make((), TRUE, "y", U(y))

    def test_end_var_disjoint_from_w(self):
        with pytest.raises(ValueError):
            RangeRestricted.make(("y",), TRUE, "y", U(y))

    def test_duplicate_w_rejected(self):
        with pytest.raises(ValueError):
            RangeRestricted.make(("w", "w"), TRUE, "y", U(y))


class TestSumTerm:
    def make_term(self):
        rho = RangeRestricted.make(("w",), TRUE, "y", U(y) & (y < x))
        gamma = DetFormula.from_term("v", ("w",), Var("w"))
        return SumTerm(gamma, rho)

    def test_free_variables_are_parameters(self):
        term = self.make_term()
        assert term.variables() == {"x"}

    def test_arity_mismatch_rejected(self):
        rho = RangeRestricted.make(("w",), TRUE, "y", U(y))
        gamma = DetFormula.from_term("v", ("a", "b"), Var("a"))
        with pytest.raises(SafetyError):
            SumTerm(gamma, rho)

    def test_cannot_evaluate_without_database(self):
        with pytest.raises(SafetyError):
            self.make_term().evaluate({"x": Fraction(1)})

    def test_composes_with_arithmetic(self):
        term = self.make_term()
        composed = 2 * term + 1
        assert contains_sum_term(composed)

    def test_composes_into_formulas(self):
        term = self.make_term()
        formula = term < 5
        assert contains_sum_term(formula)

    def test_contains_sum_term_negative(self):
        assert not contains_sum_term(x + y)
        assert not contains_sum_term(U(x))
