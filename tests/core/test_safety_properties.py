"""Safety and closure properties of FO + POLY + SUM (Lemma 4 flavour).

The language's design guarantee: aggregation can only be applied to sets
that are finite *by construction*.  These tests exercise that guarantee
from several angles, including adversarial ones.
"""

from fractions import Fraction

import pytest

from repro.core import DetFormula, SumEvaluator, SumTerm, end_set, endpoints_range
from repro.db import FRInstance, FiniteInstance, Schema
from repro.logic import Relation, TRUE, Var, variables

x, y, w = variables("x y w")
U = Relation("U", 1)
S = Relation("S", 2)


class TestEndFiniteness:
    """o-minimality in action: END sets are always finite."""

    def test_end_of_unbounded_set_is_finite(self):
        schema = Schema.make({"H": 1})
        H = Relation("H", 1)
        half_line = FRInstance.make(schema, {"H": ((x,), x > 0)})
        assert end_set(half_line, "x", H(x)) == [0]

    def test_end_of_dense_set_is_finite(self):
        # The whole of R has no endpoints at all.
        schema = Schema.make({"A": 1})
        A = Relation("A", 1)
        everything = FRInstance.make(schema, {"A": ((x,), TRUE)})
        assert end_set(everything, "x", A(x)) == []

    def test_end_of_many_intervals(self):
        schema = Schema.make({"U": 1})
        points = [Fraction(i, 10) for i in range(0, 10, 2)]
        D = FiniteInstance.make(schema, {"U": points})
        from repro.logic import exists_adom

        # union over u in U of (u, u + 1/20)
        body = exists_adom(y, U(y) & (y < x) & (x < y + Fraction(1, 20)))
        ends = end_set(D, "x", body)
        assert len(ends) == 2 * len(points)


class TestRangeRestrictionIsTheOnlyDoor:
    """There is no way to sum over a set not given by a range-restricted
    expression: SumTerm's constructor demands one."""

    def test_sum_term_requires_range_restricted(self):
        gamma = DetFormula.from_term("v", ("w",), Var("w"))
        with pytest.raises(AttributeError):
            SumTerm(gamma, U(Var("w")))  # a bare formula is not a range

    def test_guard_cannot_widen_the_range(self):
        # The guard only *filters* END points; a guard true everywhere
        # still yields a finite range.
        schema = Schema.make({"U": 1})
        D = FiniteInstance.make(schema, {"U": [1, 2, 3]})
        rho = endpoints_range("w", U(Var("w")), guard=TRUE)
        evaluator = SumEvaluator(D)
        assert len(evaluator.range_set(rho)) == 3


class TestDeterminismIsVerified:
    def test_partiality_is_allowed(self):
        """f_gamma may be undefined at some tuples — those contribute
        nothing (bag semantics with partial functions)."""
        schema = Schema.make({"U": 1})
        D = FiniteInstance.make(schema, {"U": [-1, 4]})
        rho = endpoints_range("w", U(Var("w")))
        # gamma: v = sqrt(w), undefined for w < 0.
        gamma = DetFormula.make(
            "v", ("w",), (Var("v") ** 2).eq(Var("w")) & (Var("v") >= 0)
        )
        total = Fraction(0)
        evaluator = SumEvaluator(D)
        for args in evaluator.range_set(rho):
            value = evaluator.apply_gamma(gamma, args)
            if value is not None:
                total += value
        assert total == 2  # sqrt(4) only

    def test_cheating_gamma_caught_at_runtime(self):
        """A gamma that claims determinism but is two-valued at an
        evaluated point fails loudly, not silently."""
        from repro._errors import NotDeterministicError

        schema = Schema.make({"U": 1})
        D = FiniteInstance.make(schema, {"U": [4]})
        evaluator = SumEvaluator(D)
        two_valued = DetFormula.make("v", ("w",), (Var("v") ** 2).eq(Var("w")))
        with pytest.raises(NotDeterministicError):
            evaluator.apply_gamma(two_valued, [Fraction(4)])


class TestClosureUnderComposition:
    """Terms compose with +,* and stay evaluable (the Lemma 4 closure)."""

    def test_arithmetic_over_sum_terms(self):
        schema = Schema.make({"U": 1})
        D = FiniteInstance.make(schema, {"U": [1, 2]})
        rho = endpoints_range("w", U(Var("w")))
        total = SumTerm(DetFormula.from_term("v", ("w",), Var("w")), rho)
        count = SumTerm(
            DetFormula.from_term("v", ("w",), Var("w") * 0 + 1), rho
        )
        evaluator = SumEvaluator(D)
        # AVG as a composed term: SUM * (1/COUNT) is not a term (no
        # division), but SUM and COUNT compose with * and +:
        assert evaluator.term_value(total * count) == 6
        assert evaluator.term_value(total + count + 1) == 6
        assert evaluator.term_value(total**2) == 9

    def test_formulas_over_composed_terms(self):
        schema = Schema.make({"U": 1})
        D = FiniteInstance.make(schema, {"U": [1, 2]})
        rho = endpoints_range("w", U(Var("w")))
        total = SumTerm(DetFormula.from_term("v", ("w",), Var("w")), rho)
        evaluator = SumEvaluator(D)
        assert evaluator.formula_truth((2 * total).eq(6))
        assert evaluator.formula_truth((total**2) > 8)
