"""The FO + POLY + SUM evaluator and the classical aggregates."""

from fractions import Fraction

import pytest

from repro.core import (
    DetFormula,
    RangeRestricted,
    SumEvaluator,
    SumTerm,
    aggregate_avg,
    aggregate_count,
    aggregate_max,
    aggregate_min,
    aggregate_sum,
    endpoints_range,
    sum_of_endpoints,
)
from repro.db import FiniteInstance, Schema
from repro.logic import Relation, TRUE, Var, exists, exists_adom, variables
from repro._errors import EvaluationError, NotDeterministicError, SafetyError

x, y, w = variables("x y w")
U = Relation("U", 1)


@pytest.fixture
def numbers_instance():
    schema = Schema.make({"U": 1})
    return FiniteInstance.make(schema, {"U": [1, 2, 3, 4]})


class TestSumTermEvaluation:
    def test_sum_of_relation_elements(self, numbers_instance):
        rho = endpoints_range("w", U(Var("w")))
        assert aggregate_sum(numbers_instance, rho, Var("w")) == 10

    def test_count(self, numbers_instance):
        rho = endpoints_range("w", U(Var("w")))
        assert aggregate_count(numbers_instance, rho) == 4

    def test_avg(self, numbers_instance):
        rho = endpoints_range("w", U(Var("w")))
        assert aggregate_avg(numbers_instance, rho, Var("w")) == Fraction(5, 2)

    def test_min_max(self, numbers_instance):
        rho = endpoints_range("w", U(Var("w")))
        assert aggregate_min(numbers_instance, rho, Var("w")) == 1
        assert aggregate_max(numbers_instance, rho, Var("w")) == 4

    def test_sum_with_guard(self, numbers_instance):
        rho = endpoints_range("w", U(Var("w")), guard=Var("w") > 2)
        assert aggregate_sum(numbers_instance, rho, Var("w")) == 7

    def test_sum_of_function_values(self, numbers_instance):
        rho = endpoints_range("w", U(Var("w")))
        assert aggregate_sum(numbers_instance, rho, Var("w") ** 2) == 30

    def test_avg_empty_raises(self, numbers_instance):
        rho = endpoints_range("w", U(Var("w")), guard=Var("w") > 100)
        with pytest.raises(EvaluationError):
            aggregate_avg(numbers_instance, rho, Var("w"))

    def test_sum_of_endpoints_example(self, unary_instance):
        # The paper's first worked example on { x : exists u. U(u), 0<x<u }.
        body = exists_adom(y, U(y) & (0 < x) & (x < y))
        assert sum_of_endpoints(unary_instance, x, body) == Fraction(3, 4)

    def test_nested_aggregation(self, numbers_instance):
        # Inner sum total = 10; outer sums (w + 10) over 4 elements = 50.
        inner_rho = endpoints_range("v", U(Var("v")))
        inner = SumTerm(
            DetFormula.from_term("_i", ("v",), Var("v")), inner_rho
        )
        outer_rho = endpoints_range("w", U(Var("w")))
        evaluator = SumEvaluator(numbers_instance)
        outer = SumTerm(
            DetFormula.from_term("_o", ("w",), Var("w")), outer_rho
        )
        total = evaluator.term_value(outer + inner)
        assert total == 20


class TestGammaApplication:
    def test_explicit_gamma(self, numbers_instance):
        evaluator = SumEvaluator(numbers_instance)
        gamma = DetFormula.from_term("v", ("w",), 2 * Var("w"))
        assert evaluator.apply_gamma(gamma, [Fraction(3)]) == 6

    def test_implicit_gamma_solved(self, numbers_instance):
        evaluator = SumEvaluator(numbers_instance)
        gamma = DetFormula.make("v", ("w",), (2 * Var("v")).eq(Var("w")))
        assert evaluator.apply_gamma(gamma, [Fraction(3)]) == Fraction(3, 2)

    def test_partial_gamma_returns_none(self, numbers_instance):
        evaluator = SumEvaluator(numbers_instance)
        gamma = DetFormula.make(
            "v", ("w",), (Var("v") ** 2).eq(Var("w")) & (Var("v") >= 0)
        )
        assert evaluator.apply_gamma(gamma, [Fraction(-1)]) is None

    def test_runtime_determinism_violation(self, numbers_instance):
        evaluator = SumEvaluator(numbers_instance)
        gamma = DetFormula.make("v", ("w",), (Var("v") ** 2).eq(Var("w")))
        with pytest.raises(NotDeterministicError):
            evaluator.apply_gamma(gamma, [Fraction(4)])

    def test_interval_gamma_rejected(self, numbers_instance):
        evaluator = SumEvaluator(numbers_instance)
        gamma = DetFormula.make("v", ("w",), (Var("v") > 0) & (Var("v") < Var("w")))
        with pytest.raises(NotDeterministicError):
            evaluator.apply_gamma(gamma, [Fraction(1)])


class TestFormulaTruth:
    def test_comparison_of_sum_terms(self, numbers_instance):
        rho = endpoints_range("w", U(Var("w")))
        total = SumTerm(DetFormula.from_term("v", ("w",), Var("w")), rho)
        evaluator = SumEvaluator(numbers_instance)
        assert evaluator.formula_truth(total < 11)
        assert evaluator.formula_truth(total.eq(10))
        assert not evaluator.formula_truth(total > 10)

    def test_relation_atom_membership(self, numbers_instance):
        evaluator = SumEvaluator(numbers_instance)
        assert evaluator.formula_truth(U(x), {"x": 1})
        assert not evaluator.formula_truth(U(x), {"x": 5})

    def test_quantifier_over_pure_formula(self, numbers_instance):
        evaluator = SumEvaluator(numbers_instance)
        f = exists(y, U(y) & (y > x))
        assert evaluator.formula_truth(f, {"x": Fraction(7, 2)})
        assert not evaluator.formula_truth(f, {"x": Fraction(9, 2)})

    def test_quantifier_over_sum_term_rejected(self, numbers_instance):
        rho = endpoints_range("w", U(Var("w")))
        total = SumTerm(DetFormula.from_term("v", ("w",), Var("w")), rho)
        evaluator = SumEvaluator(numbers_instance)
        with pytest.raises(SafetyError):
            evaluator.formula_truth(exists(x, x.eq(total)))

    def test_end_formula_node(self, numbers_instance):
        from repro.core import End

        evaluator = SumEvaluator(numbers_instance)
        end = End("y", U(Var("y")), x)
        assert evaluator.formula_truth(end, {"x": 2})
        assert not evaluator.formula_truth(end, {"x": 5})


class TestSafetyGuards:
    def test_candidate_explosion_guarded(self, numbers_instance):
        # 4 endpoints, 12 tuple positions -> 4^12 = 16M > guard.
        names = tuple(f"w{i}" for i in range(12))
        rho = RangeRestricted.make(names, TRUE, "y", U(Var("y")))
        gamma = DetFormula.from_term("v", names, Var(names[0]))
        evaluator = SumEvaluator(numbers_instance)
        with pytest.raises(SafetyError):
            evaluator.term_value(SumTerm(gamma, rho))

    def test_unbound_parameters_rejected(self, numbers_instance):
        rho = endpoints_range("w", U(Var("w")) & (Var("w") < x))
        evaluator = SumEvaluator(numbers_instance)
        with pytest.raises(EvaluationError):
            evaluator.range_set(rho)
