"""The polygon-area worked example and the witness extension (Theorem 4)."""

from fractions import Fraction

import pytest

from repro.core import (
    UniformVolumeApproximator,
    polygon_area,
    polygon_area_sum_term,
    polygon_instance,
    signed_area_gamma,
    theorem4_sample_size,
    witness,
)
from repro.db import Schema
from repro.geometry import shoelace_area
from repro.logic import Relation, variables
from repro.vc import goldberg_jerrum_constant_for_query
from repro._errors import ApproximationError, GeometryError

x, y = variables("x y")


def F(*args):
    return Fraction(*args)


class TestPolygonArea:
    def test_unit_square(self):
        square = [(F(0), F(0)), (F(1), F(0)), (F(1), F(1)), (F(0), F(1))]
        assert polygon_area(square) == 1

    def test_triangle(self):
        tri = [(F(0), F(0)), (F(2), F(0)), (F(0), F(2))]
        assert polygon_area(tri) == 2

    def test_matches_shoelace_on_polygons(self):
        shapes = [
            [(F(0), F(0)), (F(3), F(0)), (F(3), F(2)), (F(0), F(2))],
            [(F(0), F(0)), (F(2), F(0)), (F(3), F(1)), (F(2), F(2)), (F(0), F(2)), (F(-1), F(1))],
            [(F(0), F(0)), (F(4), F(1)), (F(5), F(4)), (F(1), F(5)), (F(-2), F(2))],
        ]
        for shape in shapes:
            assert polygon_area(shape) == shoelace_area(shape)

    def test_rational_coordinates(self):
        shape = [(F(0), F(0)), (F(1, 3), F(0)), (F(1, 3), F(1, 7)), (F(0), F(1, 7))]
        assert polygon_area(shape) == F(1, 21)

    def test_input_order_irrelevant(self):
        square = [(F(1), F(1)), (F(0), F(0)), (F(1), F(0)), (F(0), F(1))]
        assert polygon_area(square) == 1

    def test_too_few_vertices(self):
        with pytest.raises(GeometryError):
            polygon_area([(F(0), F(0)), (F(1), F(1))])

    def test_gamma_formulas_deterministic(self):
        from repro.core import is_deterministic

        assert is_deterministic(signed_area_gamma())
        # absolute_area_gamma has 6 parameters (beyond the CAD limit);
        # its determinism is verified pointwise by the evaluator instead.

    def test_sum_term_structure(self):
        term = polygon_area_sum_term()
        assert term.rho.arity() == 6
        assert term.gamma.arity() == 6

    def test_derived_instance(self):
        inst = polygon_instance([(F(0), F(0)), (F(1), F(0)), (F(0), F(1))])
        assert len(inst.relation("VERT")) == 3
        assert len(inst.relation("ADJ")) == 6  # symmetric pairs


class TestWitness:
    def test_witness_selects_member(self, rng):
        candidates = [1, 2, 3]
        assert witness(candidates, rng) in candidates

    def test_witness_empty(self, rng):
        assert witness([], rng) is None

    def test_sample_size_formula(self):
        m = theorem4_sample_size(0.1, 0.1, constant=100.0, database_size=16)
        assert m > 0
        # grows with log|D|
        assert theorem4_sample_size(0.1, 0.1, 100.0, 256) > m
        with pytest.raises(ApproximationError):
            theorem4_sample_size(0.0, 0.1, 100.0, 16)


class TestUniformVolumeApproximator:
    @pytest.fixture
    def strip_instance(self):
        schema = Schema.make({"T": 1})
        from repro.db import FiniteInstance

        return FiniteInstance.make(schema, {"T": [F(1, 2)]})

    def test_uniform_accuracy_over_parameters(self, strip_instance, rng):
        # phi(a, y): 0 <= y <= min(a, t) with t = 1/2 from the database.
        T = Relation("T", 1)
        a, yv, t = variables("a yv t")
        from repro.logic import exists_adom

        q = exists_adom(t, T(t) & (0 <= yv) & (yv <= a) & (yv <= t))
        approx = UniformVolumeApproximator(
            q, strip_instance, ("a",), ("yv",),
            epsilon=0.05, delta=0.05, rng=rng, sample_size=5000,
        )
        grid = [0.1, 0.3, 0.5, 0.7, 0.9]
        estimates = approx.estimate_many([[v] for v in grid])
        for value, estimate in zip(grid, estimates):
            truth = min(value, 0.5)
            assert abs(estimate - truth) < 0.05

    def test_sample_size_from_constant(self, strip_instance, rng):
        T = Relation("T", 1)
        a, yv, t = variables("a yv t")
        from repro.logic import exists_adom

        q = exists_adom(t, T(t) & (0 <= yv) & (yv <= a) & (yv <= t))
        constant = goldberg_jerrum_constant_for_query(
            q, point_arity=1, max_relation_arity=1
        )
        approx = UniformVolumeApproximator(
            q, strip_instance, ("a",), ("yv",),
            epsilon=0.2, delta=0.2, rng=rng, constant=constant,
        )
        assert approx.sample_size == theorem4_sample_size(
            0.2, 0.2, constant, max(2, strip_instance.size())
        )

    def test_requires_constant_or_size(self, strip_instance, rng):
        a, yv = variables("a yv")
        q = (0 <= yv) & (yv <= a)
        with pytest.raises(ApproximationError):
            UniformVolumeApproximator(
                q, strip_instance, ("a",), ("yv",),
                epsilon=0.1, delta=0.1, rng=rng,
            )

    def test_parameter_arity_checked(self, strip_instance, rng):
        a, yv = variables("a yv")
        q = (0 <= yv) & (yv <= a)
        approx = UniformVolumeApproximator(
            q, strip_instance, ("a",), ("yv",),
            epsilon=0.1, delta=0.1, rng=rng, sample_size=100,
        )
        with pytest.raises(ApproximationError):
            approx.estimate([0.1, 0.2])
