"""Determinism checking of formulas (decidable per the paper)."""

import pytest

from repro.core import DetFormula, check_deterministic, explicit_function_term, is_deterministic
from repro.logic import Var, variables
from repro._errors import NotDeterministicError

x, w = variables("x w")


class TestExplicitForm:
    def test_lhs_form(self):
        gamma = DetFormula.make("x", ("w",), x.eq(2 * w + 1))
        term = explicit_function_term(gamma)
        assert term is not None
        assert term.evaluate({"w": 3}) == 7

    def test_rhs_form(self):
        gamma = DetFormula.make("x", ("w",), (2 * w).eq(x))
        assert explicit_function_term(gamma) is not None

    def test_self_referencing_not_explicit(self):
        gamma = DetFormula.make("x", ("w",), x.eq(x + w))
        assert explicit_function_term(gamma) is None

    def test_non_equality_not_explicit(self):
        gamma = DetFormula.make("x", ("w",), x < w)
        assert explicit_function_term(gamma) is None


class TestLinearDecision:
    def test_explicit_is_deterministic(self):
        gamma = DetFormula.make("x", ("w",), x.eq(w + 1))
        assert is_deterministic(gamma) is True

    def test_linear_equation_deterministic(self):
        # 2x + w = 0 determines x.
        gamma = DetFormula.make("x", ("w",), (2 * x + w).eq(0))
        assert is_deterministic(gamma) is True

    def test_interval_not_deterministic(self):
        gamma = DetFormula.make("x", ("w",), (x > w) & (x < w + 1))
        assert is_deterministic(gamma) is False
        with pytest.raises(NotDeterministicError):
            check_deterministic(gamma)

    def test_two_point_disjunction_not_deterministic(self):
        gamma = DetFormula.make("x", ("w",), x.eq(w) | x.eq(w + 1))
        assert is_deterministic(gamma) is False


class TestPolynomialDecision:
    def test_square_not_deterministic(self):
        # x^2 = w has two solutions for w > 0.
        gamma = DetFormula.make("x", ("w",), (x**2).eq(w))
        assert is_deterministic(gamma) is False

    def test_constrained_square_root_deterministic(self):
        # The non-negative square root is unique.
        gamma = DetFormula.make("x", ("w",), (x**2).eq(w) & (x >= 0))
        assert is_deterministic(gamma) is True

    def test_cube_deterministic(self):
        gamma = DetFormula.make("x", ("w",), (x**3).eq(w))
        assert is_deterministic(gamma) is True

    def test_variable_limit(self):
        gamma = DetFormula.make(
            "x", ("a", "b", "c"), (x**2).eq(Var("a") * Var("b") * Var("c"))
        )
        with pytest.raises(NotDeterministicError):
            is_deterministic(gamma)

    def test_absolute_value_form_deterministic(self):
        # v >= 0 and (v = w or v = -w): |w| is a function.
        gamma = DetFormula.make(
            "x", ("w",), (x >= 0) & (x.eq(w) | x.eq(-w))
        )
        assert is_deterministic(gamma) is True
