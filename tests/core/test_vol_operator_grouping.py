"""The VOL term-former (Section 2) and grouping (the conclusion's open
problem), plus the variable-independence baseline of [11]."""

from fractions import Fraction

import pytest

from repro.core import (
    DetFormula,
    GroupedAggregate,
    SumTerm,
    VolTerm,
    endpoints_range,
    evaluate_vol,
    group_by,
)
from repro.db import FiniteInstance, FRInstance, Schema
from repro.geometry import (
    is_variable_independent,
    variable_independent_volume,
)
from repro.logic import Relation, Var, between, variables
from repro._errors import ApproximationError, EvaluationError, GeometryError

x, y, g = variables("x y g")
S = Relation("S", 2)
U = Relation("U", 1)


class TestVolTerm:
    def test_exact_on_semilinear(self, triangle_instance):
        term = VolTerm(("x", "y"), S(x, y))
        assert evaluate_vol(term, triangle_instance) == Fraction(1, 2)

    def test_parameterised(self, triangle_instance):
        # VOL_I { y : S(x0, y) } = x0 for x0 in [0, 1].
        term = VolTerm(("y",), S(x, y))
        assert term.parameters() == {"x"}
        assert evaluate_vol(term, triangle_instance, {"x": Fraction(1, 4)}) == Fraction(1, 4)

    def test_unbound_parameters_rejected(self, triangle_instance):
        term = VolTerm(("y",), S(x, y))
        with pytest.raises(EvaluationError):
            evaluate_vol(term, triangle_instance)

    def test_unbounded_variant(self, triangle_instance):
        term = VolTerm(("x", "y"), S(x, y), bounded=False)
        assert evaluate_vol(term, triangle_instance) == Fraction(1, 2)

    def test_exact_refuses_polynomial(self):
        schema = Schema.make({"D": 2})
        D = Relation("D", 2)
        disk = FRInstance.make(schema, {"D": ((x, y), x**2 + y**2 < 1)})
        term = VolTerm(("x", "y"), D(x, y))
        with pytest.raises(EvaluationError):
            evaluate_vol(term, disk, strategy="exact")

    def test_montecarlo_on_semialgebraic(self, rng):
        schema = Schema.make({"D": 2})
        D = Relation("D", 2)
        disk = FRInstance.make(schema, {"D": ((x, y), x**2 + y**2 < 1)})
        term = VolTerm(("x", "y"), D(x, y))
        import math

        estimate = evaluate_vol(
            term, disk, strategy="montecarlo", epsilon=0.03, delta=0.05, rng=rng
        )
        assert abs(estimate - math.pi / 4) < 0.03

    def test_montecarlo_needs_rng(self, triangle_instance):
        term = VolTerm(("x", "y"), S(x, y))
        with pytest.raises(ApproximationError):
            evaluate_vol(term, triangle_instance, strategy="montecarlo")

    def test_trivial_strategy(self, triangle_instance):
        term = VolTerm(("x", "y"), S(x, y))
        assert evaluate_vol(term, triangle_instance, strategy="trivial") == Fraction(1, 2)

    def test_unknown_strategy(self, triangle_instance):
        term = VolTerm(("x", "y"), S(x, y))
        with pytest.raises(ApproximationError):
            evaluate_vol(term, triangle_instance, strategy="magic")


class TestGrouping:
    @pytest.fixture
    def sales_instance(self):
        # S(region, amount) as a finite relation.
        schema = Schema.make({"S": 2, "U": 1})
        return FiniteInstance.make(
            schema,
            {
                "S": [(1, 10), (1, 20), (2, 5), (3, 7), (3, 8)],
                "U": [1, 2, 3],
            },
        )

    def grouped_sum(self):
        # keys: the END-points of U (= the region ids)
        keys = endpoints_range("g", U(Var("g")))
        # inner: sum amounts of rows whose region equals g
        rho = endpoints_range(
            "w", exists_amount(), guard=S(Var("g"), Var("w"))
        )
        term = SumTerm(DetFormula.from_term("v", ("w",), Var("w")), rho)
        return GroupedAggregate("g", keys, term)

    def test_group_by_sums(self, sales_instance):
        grouped = self.grouped_sum()
        result = group_by(sales_instance, grouped)
        assert result == {
            Fraction(1): Fraction(30),
            Fraction(2): Fraction(5),
            Fraction(3): Fraction(15),
        }

    def test_key_arity_validated(self):
        keys = endpoints_range("g", U(Var("g")))
        rho = endpoints_range("w", U(Var("w")))
        term = SumTerm(DetFormula.from_term("v", ("w",), Var("w")), rho)
        # term does not mention g
        with pytest.raises(EvaluationError):
            GroupedAggregate("g", keys, term)


def exists_amount():
    """{ w : w is an amount value } via the S relation."""
    from repro.logic import exists_adom

    r = Var("_r")
    return exists_adom(r, S(r, Var("w")))


class TestVariableIndependence:
    def test_boxes_are_independent(self):
        f = between(0, x, 1) & between(0, y, Fraction(1, 2))
        assert is_variable_independent(f, ("x", "y"))
        assert variable_independent_volume(f, ("x", "y")) == Fraction(1, 2)

    def test_union_of_boxes(self):
        f = (between(0, x, 1) & between(0, y, 1)) | (
            between(Fraction(1, 2), x, Fraction(3, 2)) & between(0, y, 1)
        )
        assert variable_independent_volume(f, ("x", "y")) == Fraction(3, 2)

    def test_coupled_constraints_rejected(self):
        f = (x >= 0) & (y >= 0) & (x + y <= 1)
        assert not is_variable_independent(f, ("x", "y"))
        with pytest.raises(GeometryError):
            variable_independent_volume(f, ("x", "y"))

    def test_agrees_with_general_volume(self):
        from repro.geometry import formula_volume

        f = (between(0, x, Fraction(2, 3)) & between(Fraction(1, 3), y, 1)) | (
            between(Fraction(1, 2), x, 1) & between(0, y, Fraction(1, 2))
        )
        assert variable_independent_volume(f, ("x", "y")) == formula_volume(
            f, ("x", "y")
        )
