"""PlanCache: LRU semantics, caps, counters, spill/load persistence."""

import json

import pytest

from repro import obs
from repro.engine import PlanCache, prepare
from repro.engine.cache import SPILL_SCHEMA


def plan_for(text: str, **kwargs):
    """Compile a plan without touching any cache."""
    return prepare(text, cache=None, **kwargs)


@pytest.fixture
def triangle():
    return plan_for("0 <= y AND y <= x AND x <= 1")


class TestLRU:
    def test_get_put_roundtrip(self, triangle):
        cache = PlanCache()
        assert cache.get(triangle.key) is None
        cache.put(triangle)
        assert cache.get(triangle.key) is triangle
        assert triangle.key in cache
        assert len(cache) == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_first_insert_wins(self, triangle):
        cache = PlanCache()
        duplicate = plan_for(triangle.text)
        assert duplicate.key == triangle.key
        assert cache.put(triangle) is triangle
        assert cache.put(duplicate) is triangle

    def test_entry_cap_evicts_least_recent(self):
        cache = PlanCache(max_entries=2)
        a = plan_for("x < 1/4")
        b = plan_for("x < 1/2")
        c = plan_for("x < 3/4")
        cache.put(a)
        cache.put(b)
        cache.get(a.key)  # refresh a; b becomes LRU
        cache.put(c)
        assert a.key in cache
        assert b.key not in cache
        assert c.key in cache
        assert cache.stats.evictions == 1

    def test_cell_cap_keeps_at_least_one_plan(self, triangle):
        assert triangle.cell_count() >= 1
        cache = PlanCache(max_cells=0)
        cache.put(triangle)
        # Over the cell cap, but a cache of one plan must not self-empty.
        assert len(cache) == 1
        other = plan_for("x < 1/4 OR x > 3/4")
        cache.put(other)
        assert len(cache) == 1
        assert triangle.key not in cache

    def test_get_or_compile(self, triangle):
        cache = PlanCache()
        calls = []

        def factory():
            calls.append(1)
            return triangle

        assert cache.get_or_compile(triangle.key, factory) is triangle
        assert cache.get_or_compile(triangle.key, factory) is triangle
        assert len(calls) == 1

    def test_clear(self, triangle):
        cache = PlanCache()
        cache.put(triangle)
        cache.clear()
        assert len(cache) == 0
        assert cache.keys() == []


class TestObsCounters:
    def test_hit_miss_eviction_counters(self, triangle):
        obs.enable_counting()
        cache = PlanCache(max_entries=1)
        cache.get(triangle.key)
        cache.put(triangle)
        cache.get(triangle.key)
        cache.put(plan_for("x < 1/4"))
        counts = obs.REGISTRY.as_dict()
        assert counts["engine.cache.miss"] == 1
        assert counts["engine.cache.hit"] == 1
        assert counts["engine.cache.eviction"] == 1
        assert counts["engine.cache.entries"] == 1


class TestSpill:
    def test_spill_load_roundtrip(self, tmp_path, triangle):
        path = str(tmp_path / "plans.jsonl")
        source = PlanCache()
        source.put(triangle)
        source.put(plan_for("EXISTS z . (z < x AND y < z)"))
        assert source.spill(path) == 2

        target = PlanCache()
        assert target.load(path) == 2
        assert set(target.keys()) == set(source.keys())
        loaded = target.get(triangle.key)
        assert loaded.volume() == triangle.volume()
        assert loaded.provenance.source == "spill"

    def test_load_skips_duplicates(self, tmp_path, triangle):
        path = str(tmp_path / "plans.jsonl")
        source = PlanCache()
        source.put(triangle)
        source.spill(path)
        source.spill(path)  # append=True: two copies of the same record

        target = PlanCache()
        assert target.load(path) == 1
        assert len(target) == 1

    def test_spill_truncate(self, tmp_path, triangle):
        path = str(tmp_path / "plans.jsonl")
        cache = PlanCache()
        cache.put(triangle)
        cache.spill(path)
        cache.spill(path, append=False)
        with open(path, encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 1
        assert json.loads(lines[0])["schema"] == SPILL_SCHEMA

    def test_load_skips_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"schema": "repro.engine.plan/v999"}) + "\n")
        cache = PlanCache()
        with pytest.warns(UserWarning, match="unknown plan schema"):
            assert cache.load(str(path)) == 0
        assert cache.stats.skipped == 1

    def test_load_skips_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        cache = PlanCache()
        with pytest.warns(UserWarning, match="malformed plan line"):
            assert cache.load(str(path)) == 0
        assert cache.stats.skipped == 1

    def test_load_skips_corrupt_lines_keeps_good_ones(self, tmp_path, triangle):
        """One corrupt line must not make a whole warm spill unusable."""
        path = tmp_path / "mixed.jsonl"
        source = PlanCache()
        source.put(triangle)
        source.spill(str(path))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{broken json\n")
            handle.write("[1, 2, 3]\n")
            handle.write(json.dumps({"schema": "not/a/plan"}) + "\n")
            handle.write(json.dumps(
                {"schema": SPILL_SCHEMA, "kind": "volume"}) + "\n")
            handle.write("\n")  # blank: ignored, not counted

        target = PlanCache()
        obs.enable_counting()
        with pytest.warns(UserWarning):
            assert target.load(str(path)) == 1
        assert target.get(triangle.key).volume() == triangle.volume()
        assert target.stats.skipped == 4
        assert obs.REGISTRY.as_dict()["engine.cache.load_skipped"] == 4

    def test_load_skips_unrebuildable_record(self, tmp_path):
        """A schema-tagged record the plan cannot be rebuilt from skips too."""
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(
            {"schema": SPILL_SCHEMA, "kind": "volume", "variables": ["x"]}
        ) + "\n")
        cache = PlanCache()
        with pytest.warns(UserWarning, match="unloadable plan record"):
            assert cache.load(str(path)) == 0
        assert cache.stats.skipped == 1
