"""The ``python -m repro batch`` subcommand."""

import io
import json
from contextlib import redirect_stderr, redirect_stdout

import pytest

from repro.__main__ import main
from repro.engine import DEFAULT_CACHE

MANIFEST = """\
# comment lines and blanks are skipped

{"id": "tri", "op": "volume", "formula": "0 <= y AND y <= x AND x <= 1"}
{"id": "clip", "op": "volume", "formula": "0 <= y AND y <= x AND x <= 1", "box": [["0", "1/2"], ["0", "1/2"]]}
{"id": "mc", "op": "approx", "formula": "0 <= y AND y <= x AND x <= 1", "epsilon": 0.2, "delta": 0.2}
{"id": "root2", "op": "decide", "formula": "EXISTS x . (x*x = 2 AND 0 < x AND x < 2)"}
"""


def run_cli(*argv: str) -> tuple[int, str, str]:
    out, err = io.StringIO(), io.StringIO()
    with redirect_stdout(out), redirect_stderr(err):
        code = main(list(argv))
    return code, out.getvalue(), err.getvalue()


@pytest.fixture
def manifest(tmp_path):
    path = tmp_path / "manifest.jsonl"
    path.write_text(MANIFEST)
    return str(path)


@pytest.fixture(autouse=True)
def _fresh_shared_cache():
    """CLI batch runs go through the process-wide cache; isolate them."""
    DEFAULT_CACHE.clear()
    yield
    DEFAULT_CACHE.clear()


class TestBatch:
    def test_results_per_task_on_stdout(self, manifest):
        code, out, err = run_cli("batch", manifest)
        assert code == 0
        records = [json.loads(line) for line in out.splitlines() if line]
        assert [r["id"] for r in records] == ["tri", "clip", "mc", "root2"]
        by_id = {r["id"]: r for r in records}
        assert by_id["tri"]["exact"] == "1/2"
        assert by_id["clip"]["exact"] == "1/8"
        assert by_id["mc"]["mode"] == "approximate"
        assert by_id["root2"]["value"] is True
        assert "batch: 4 tasks" in err
        assert "ok=4" in err

    def test_out_file(self, manifest, tmp_path):
        out_path = tmp_path / "results.jsonl"
        code, out, _ = run_cli("batch", manifest, "--out", str(out_path))
        assert code == 0
        assert out == ""
        records = [
            json.loads(line)
            for line in out_path.read_text().splitlines()
            if line
        ]
        assert len(records) == 4

    def test_workers_flag(self, manifest):
        code, out, _ = run_cli("batch", manifest, "--workers", "2")
        assert code == 0
        assert len(out.splitlines()) == 4

    def test_seed_makes_output_reproducible(self, manifest):
        _, first, _ = run_cli("batch", manifest, "--seed", "9")
        DEFAULT_CACHE.clear()
        _, second, _ = run_cli("batch", manifest, "--seed", "9")

        def stable(text):
            return [
                {k: v for k, v in json.loads(line).items() if k != "elapsed_s"}
                for line in text.splitlines() if line
            ]

        assert stable(first) == stable(second)

    def test_stats_reports_engine_counters(self, manifest):
        code, out, _ = run_cli("batch", manifest, "--stats")
        assert code == 0
        assert "engine.compile" in out
        assert "engine.batch.tasks" in out
        assert "engine.cache." in out

    def test_plan_cache_spill_and_reload(self, manifest, tmp_path):
        spill = str(tmp_path / "plans.jsonl")
        code, _, err = run_cli("batch", manifest, "--plan-cache", spill)
        assert code == 0
        assert "spilled" in err

        DEFAULT_CACHE.clear()
        code, out, err = run_cli("batch", manifest, "--plan-cache", spill)
        assert code == 0
        assert "loaded" in err
        records = [json.loads(line) for line in out.splitlines() if line]
        assert {r["status"] for r in records} == {"ok"}

    def test_plan_store_prewarm_then_warm(self, manifest, tmp_path):
        store = str(tmp_path / "plans.sqlite")
        code, out, err = run_cli(
            "batch", manifest, "--plan-store", store, "--compile-only"
        )
        assert code == 0
        assert "plan store" in err
        records = [json.loads(line) for line in out.splitlines() if line]
        assert all(r["mode"] == "compile-only" for r in records)
        assert all("value" not in r for r in records)

        code, out, err = run_cli(
            "batch", manifest, "--plan-store", store, "--workers", "2"
        )
        assert code == 0
        assert "compiles=0" in err
        records = [json.loads(line) for line in out.splitlines() if line]
        assert {r["status"] for r in records} == {"ok"}
        # tri/clip/mc share one content hash; root2 is the other: the
        # first occurrence of each is a store hit, the rest memory hits.
        assert all(r["cache"]["misses"] == 0 for r in records)
        assert sum(r["cache"]["store_hits"] for r in records) == 2
        assert sum(r["cache"]["hits"] for r in records) == 2

    def test_plan_store_excludes_plan_cache(self, manifest, tmp_path):
        code, _, err = run_cli(
            "batch", manifest,
            "--plan-store", str(tmp_path / "s.sqlite"),
            "--plan-cache", str(tmp_path / "c.jsonl"),
        )
        assert code == 2
        assert "mutually exclusive" in err

    def test_compile_only_needs_a_destination(self, manifest):
        code, _, err = run_cli("batch", manifest, "--compile-only")
        assert code == 2
        assert "--compile-only needs" in err

    def test_trace_out_with_plan_store_warns(self, manifest, tmp_path):
        code, _, err = run_cli(
            "batch", manifest,
            "--plan-store", str(tmp_path / "s.sqlite"),
            "--trace-out", str(tmp_path / "t.jsonl"),
        )
        assert code == 0
        assert "bypassing" in err

    def test_bad_manifest_line_fails_loudly(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"formula": "x < 1"}\n{oops\n')
        code, _, err = run_cli("batch", str(path))
        assert code != 0
        assert "not valid JSON" in err

    def test_missing_manifest_file(self, tmp_path):
        code, _, err = run_cli("batch", str(tmp_path / "nope.jsonl"))
        assert code != 0
        assert "cannot read" in err
        assert "nope.jsonl" in err


class TestFaultTolerance:
    @staticmethod
    def stable(text):
        return [
            {k: v for k, v in json.loads(line).items() if k != "elapsed_s"}
            for line in text.splitlines() if line
        ]

    def test_chaos_kill_output_identical(self, manifest):
        _, clean, _ = run_cli("batch", manifest, "--seed", "5")
        DEFAULT_CACHE.clear()
        code, chaotic, _ = run_cli(
            "batch", manifest, "--seed", "5", "--chaos", "kill:1",
        )
        assert code == 0
        assert self.stable(chaotic) == self.stable(clean)

    def test_chaos_quarantine_reported_in_tally(self, manifest):
        code, out, err = run_cli(
            "batch", manifest, "--seed", "5", "--chaos", "kill:0*4",
        )
        assert code == 0
        assert "quarantined=1" in err
        records = [json.loads(line) for line in out.splitlines() if line]
        assert records[0]["status"] == "quarantined"

    def test_abort_then_resume_round_trip(self, manifest, tmp_path):
        _, clean, _ = run_cli("batch", manifest, "--seed", "5")
        DEFAULT_CACHE.clear()
        journal = str(tmp_path / "journal.jsonl")
        code, _, err = run_cli(
            "batch", manifest, "--seed", "5", "--journal", journal,
            "--chaos", "abort:2",
        )
        assert code == 2
        assert "aborted after 2" in err
        DEFAULT_CACHE.clear()
        code, resumed, err = run_cli(
            "batch", manifest, "--seed", "5", "--journal", journal,
            "--resume",
        )
        assert code == 0
        assert "resuming from journal" in err
        assert self.stable(resumed) == self.stable(clean)

    def test_resume_requires_journal(self, manifest):
        code, _, err = run_cli("batch", manifest, "--resume")
        assert code == 2
        assert "--resume needs --journal" in err

    def test_bad_chaos_spec_fails_loudly(self, manifest):
        code, _, err = run_cli("batch", manifest, "--chaos", "explode:1")
        assert code == 2
        assert "bad chaos spec" in err


class TestTraceOut:
    def _records(self, path):
        return [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line
        ]

    def test_one_record_per_task_plus_summary(self, manifest, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        code, out, err = run_cli(
            "batch", manifest, "--trace-out", str(trace_path)
        )
        assert code == 0
        assert "telemetry records" in err
        records = self._records(trace_path)
        assert len(records) == 5  # 4 tasks + 1 summary
        tasks, summary = records[:4], records[-1]
        assert [r["experiment"] for r in tasks] == ["repro.batch.task"] * 4
        assert [r["task"] for r in tasks] == [0, 1, 2, 3]
        assert [r["id"] for r in tasks] == ["tri", "clip", "mc", "root2"]
        assert all(r["schema"] == "repro.obs/v2" for r in records)
        assert summary["experiment"] == "repro.batch.summary"
        assert summary["tasks"] == 4 and summary["ok"] == 4
        assert summary["workers"] == 1
        assert summary["wall_s"] > 0
        # Timing histograms live in the summary, complete with buckets.
        assert summary["histograms"]["engine.plan.compile_s"]["count"] == 4

    def test_results_do_not_leak_snapshots(self, manifest, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        _, out, _ = run_cli("batch", manifest, "--trace-out", str(trace_path))
        for line in out.splitlines():
            assert "obs" not in json.loads(line)

    def test_task_records_byte_identical_across_worker_counts(
        self, manifest, tmp_path
    ):
        one, four = tmp_path / "w1.jsonl", tmp_path / "w4.jsonl"
        run_cli("batch", manifest, "--seed", "5", "--trace-out", str(one))
        DEFAULT_CACHE.clear()
        run_cli(
            "batch", manifest, "--seed", "5", "--workers", "4",
            "--trace-out", str(four),
        )
        serial_tasks = one.read_text().splitlines()[:4]
        parallel_tasks = four.read_text().splitlines()[:4]
        assert serial_tasks == parallel_tasks  # bytes, not just JSON


class TestShard:
    @staticmethod
    def stable(text):
        return [
            {k: v for k, v in json.loads(line).items() if k != "elapsed_s"}
            for line in text.splitlines() if line
        ]

    def test_shards_concatenate_to_unsharded_run(self, manifest):
        """Contiguous shards keep global task indices (and thus seeds)."""
        _, whole, _ = run_cli("batch", manifest, "--seed", "7")
        parts = []
        for index in range(3):
            DEFAULT_CACHE.clear()
            code, out, err = run_cli(
                "batch", manifest, "--seed", "7", "--shard", f"{index}/3"
            )
            assert code == 0
            assert f"shard {index}/3" in err
            parts.extend(self.stable(out))
        assert parts == self.stable(whole)

    def test_shard_trace_task_records_concatenate_bytewise(
        self, manifest, tmp_path
    ):
        unsharded = tmp_path / "all.jsonl"
        run_cli("batch", manifest, "--seed", "7", "--trace-out", str(unsharded))
        shard_lines = []
        for index in range(2):
            DEFAULT_CACHE.clear()
            path = tmp_path / f"s{index}.jsonl"
            run_cli(
                "batch", manifest, "--seed", "7", "--shard", f"{index}/2",
                "--trace-out", str(path),
            )
            # Last record is the per-shard run summary (not byte-stable).
            shard_lines.extend(path.read_text().splitlines()[:-1])
        assert shard_lines == unsharded.read_text().splitlines()[:-1]

    def test_empty_shard_of_oversplit_manifest(self, manifest):
        # 4 tasks over 6 shards: shard 3 gets the empty slice [2, 2).
        code, out, _ = run_cli("batch", manifest, "--shard", "3/6")
        assert code == 0
        assert out == ""

    @pytest.mark.parametrize("spec", ["2", "a/b", "3/3", "4/3", "1/0"])
    def test_bad_shard_spec(self, manifest, spec):
        code, _, err = run_cli("batch", manifest, "--shard", spec)
        assert code == 2
        assert "--shard" in err


class TestMetricsCommand:
    def test_replay_from_trace_file(self, manifest, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        run_cli("batch", manifest, "--trace-out", str(trace_path))
        code, out, _ = run_cli("metrics", str(trace_path))
        assert code == 0
        assert "# TYPE repro_engine_compile counter" in out
        assert "repro_engine_compile_total 4" in out
        assert "# TYPE repro_engine_plan_compile_s histogram" in out
        assert 'repro_engine_plan_compile_s_bucket{le="+Inf"} 4' in out
        assert "repro_engine_plan_compile_s_count 4" in out
        assert "repro_engine_plan_compile_s_sum" in out

    def test_run_directly_from_manifest(self, manifest):
        code, out, _ = run_cli("metrics", manifest)
        assert code == 0
        assert "repro_engine_compile_total 4" in out
        assert "# TYPE repro_engine_plan_compile_s histogram" in out

    def test_out_file(self, manifest, tmp_path):
        trace_path, prom_path = tmp_path / "t.jsonl", tmp_path / "metrics.prom"
        run_cli("batch", manifest, "--trace-out", str(trace_path))
        code, out, _ = run_cli(
            "metrics", str(trace_path), "--out", str(prom_path)
        )
        assert code == 0
        assert out == ""
        assert "# TYPE repro_engine_compile counter" in prom_path.read_text()

    def test_corrupt_trace_line_reported_not_fatal(self, manifest, tmp_path):
        import warnings

        trace_path = tmp_path / "trace.jsonl"
        run_cli("batch", manifest, "--trace-out", str(trace_path))
        with open(trace_path, "a", encoding="utf-8") as handle:
            handle.write("{corrupt\n")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            code, out, err = run_cli("metrics", str(trace_path))
        assert code == 0
        assert "skipped 1 unreadable record" in err
        assert "repro_engine_compile_total 4" in out

    def test_missing_input_fails_loudly(self, tmp_path):
        code, _, err = run_cli("metrics", str(tmp_path / "nope.jsonl"))
        assert code != 0
        assert "cannot read" in err
        assert "nope.jsonl" in err


class TestMetricsStdin:
    """``repro metrics -`` sniffs and reads either format from stdin."""

    def test_trace_replay_from_stdin(self, manifest, tmp_path, monkeypatch):
        import io as io_module

        trace_path = tmp_path / "trace.jsonl"
        run_cli("batch", manifest, "--trace-out", str(trace_path))
        monkeypatch.setattr(
            "sys.stdin", io_module.StringIO(trace_path.read_text())
        )
        code, out, _ = run_cli("metrics", "-")
        assert code == 0
        assert "repro_engine_compile_total 4" in out
        assert "# TYPE repro_engine_plan_compile_s histogram" in out

    def test_manifest_from_stdin(self, monkeypatch):
        import io as io_module

        monkeypatch.setattr("sys.stdin", io_module.StringIO(MANIFEST))
        code, out, _ = run_cli("metrics", "-")
        assert code == 0
        assert "repro_engine_compile_total 4" in out

    def test_corrupt_stdin_record_named_as_stdin(
        self, manifest, tmp_path, monkeypatch
    ):
        import io as io_module
        import warnings

        trace_path = tmp_path / "trace.jsonl"
        run_cli("batch", manifest, "--trace-out", str(trace_path))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            monkeypatch.setattr(
                "sys.stdin",
                io_module.StringIO(trace_path.read_text() + "{corrupt\n"),
            )
            code, out, err = run_cli("metrics", "-")
        assert code == 0
        assert "skipped 1 unreadable record" in err
        assert "<stdin>" in err
        assert "repro_engine_compile_total 4" in out


class TestBatchJsonStoreDelta:
    """``batch --json`` rows carry the plan-store traffic delta."""

    def test_json_row_includes_store_delta(self, manifest, tmp_path):
        from repro.obs import read_jsonl

        store = tmp_path / "plans.sqlite"
        json_path = tmp_path / "obs.jsonl"
        code, _, err = run_cli(
            "batch", manifest, "--plan-store", str(store),
            "--json", str(json_path),
        )
        assert code == 0
        assert "plan store" in err  # the stderr line is still there
        records = list(read_jsonl(str(json_path)))
        assert len(records) == 1
        delta = records[0]["row"]["plan_store"]
        assert delta["path"] == str(store)
        # 4 tasks, 2 distinct plans (tri/clip/mc share a content hash).
        assert delta["plans"] == 2
        assert delta["compiles"] == 2
        assert delta["misses"] >= 2
        assert set(delta) == {
            "path", "plans", "hits", "misses", "publishes", "compiles",
            "races", "stale_claims",
        }

    def test_json_row_has_no_store_key_without_plan_store(
        self, manifest, tmp_path
    ):
        from repro.obs import read_jsonl

        json_path = tmp_path / "obs.jsonl"
        code, _, _ = run_cli("batch", manifest, "--json", str(json_path))
        assert code == 0
        (record,) = list(read_jsonl(str(json_path)))
        assert "plan_store" not in record["row"]

    def test_warm_store_delta_shows_hits_not_compiles(
        self, manifest, tmp_path
    ):
        from repro.obs import read_jsonl

        store = tmp_path / "plans.sqlite"
        run_cli("batch", manifest, "--plan-store", str(store),
                "--compile-only")
        # Drop the process-local warm caches so the second run must go
        # back to the store (serial batches reuse a per-pid adapter).
        from repro.engine import executor

        executor._ADAPTERS.clear()
        DEFAULT_CACHE.clear()
        json_path = tmp_path / "obs.jsonl"
        code, _, _ = run_cli(
            "batch", manifest, "--plan-store", str(store),
            "--json", str(json_path),
        )
        assert code == 0
        (record,) = list(read_jsonl(str(json_path)))
        delta = record["row"]["plan_store"]
        assert delta["compiles"] == 0
        assert delta["hits"] >= 2
