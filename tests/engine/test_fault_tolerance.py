"""Fault tolerance: crash isolation, retry/quarantine, journal resume, chaos.

Every disruptive scenario here is driven by :mod:`repro.engine.chaos`, so
the "worker died" paths run deterministically in CI: a ``kill`` action is
a real ``SIGKILL`` delivered inside the worker process — the parent sees
exactly what a segfault or the OOM killer would produce.
"""

import json
import os
import signal
import tempfile
import threading
import time

import pytest

from repro import obs
from repro._errors import ReproError
from repro.engine import (
    ChaosAbort,
    ChaosPlan,
    manifest_fingerprint,
    normalize_task,
    parse_chaos,
    run_batch,
)
from repro.engine.chaos import apply_action

TRIANGLE = "0 <= y AND y <= x AND x <= 1"

TASKS = [
    {"id": "tri", "formula": TRIANGLE},
    {"id": "half", "formula": "0 <= x AND x <= 1/2"},
    {"id": "union", "formula": "x < 1/4 OR x > 3/4"},
    {"id": "mc", "op": "approx", "formula": TRIANGLE,
     "epsilon": 0.2, "delta": 0.2},
    {"id": "broken", "formula": "x <"},
]


def stripped(results):
    """Records minus wall-clock — the byte-identity convention."""
    return [{k: v for k, v in r.items() if k != "elapsed_s"} for r in results]


def baseline(**kwargs):
    """The fault-free reference run the chaotic runs must reproduce."""
    return run_batch(TASKS, seed=7, workers=1, **kwargs)


class TestParseChaos:
    def test_round_trip(self):
        plan = parse_chaos("kill:2,hang:3*2,abort:4")
        assert plan.kill == {2: 1}
        assert plan.hang == {3: 2}
        assert plan.abort_after == 4
        assert plan.disruptive()

    def test_take_consumes_one_fault_per_dispatch(self):
        plan = parse_chaos("kill:2*2")
        assert plan.take(2) == "kill"
        assert plan.take(2) == "kill"
        assert plan.take(2) is None
        assert not plan.disruptive()
        assert plan.take(0) is None

    def test_kill_consumed_before_hang(self):
        plan = ChaosPlan(kill={1: 1}, hang={1: 1})
        assert plan.take(1) == "kill"
        assert plan.take(1) == "hang"
        assert plan.take(1) is None

    def test_abort_only_is_not_disruptive(self):
        assert not parse_chaos("abort:3").disruptive()

    @pytest.mark.parametrize(
        "spec",
        ["explode:1", "kill:x", "kill:-1", "kill:1*0", "abort:-1", "kill"],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ReproError, match="bad chaos spec"):
            parse_chaos(spec)

    def test_unknown_action_rejected(self):
        with pytest.raises(ReproError, match="unknown chaos action"):
            apply_action("explode")


class TestCrashIsolation:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_kill_is_byte_identical_to_fault_free(self, workers):
        """A worker SIGKILLed at task 1 changes nothing in the output."""
        reference = baseline()
        chaotic = run_batch(
            TASKS, seed=7, workers=workers, chaos="kill:1",
            retry_backoff_s=0.0,
        )
        assert stripped(chaotic) == stripped(reference)

    def test_externally_sigkilled_worker_is_retried(self, monkeypatch):
        """SIGKILL a real pool worker from outside, mid-batch.

        Chaos parks task 2's worker in an infinite sleep; the test reads
        the worker's pid from its liveness marker and delivers the kill
        itself — an external process death, not a self-inflicted chaos
        one.  The batch must recover and match the fault-free run.
        """
        captured = {}
        real_mkdtemp = tempfile.mkdtemp

        def spy(*args, **kwargs):
            path = real_mkdtemp(*args, **kwargs)
            if kwargs.get("prefix") == "repro-batch-":
                captured["dir"] = path
            return path

        monkeypatch.setattr(tempfile, "mkdtemp", spy)

        outcome = {}

        def run():
            try:
                outcome["results"] = run_batch(
                    TASKS, seed=7, workers=2, chaos="hang:2",
                    retry_backoff_s=0.0,
                )
            except BaseException as error:  # noqa: BLE001 - surfaced below
                outcome["error"] = error

        thread = threading.Thread(target=run)
        thread.start()
        try:
            victim = None
            deadline = time.monotonic() + 60.0
            while victim is None and time.monotonic() < deadline:
                marker = os.path.join(
                    captured.get("dir", ""), "2.live"
                ) if captured else ""
                if marker and os.path.exists(marker):
                    text = open(marker, encoding="utf-8").read().strip()
                    if text:
                        victim = int(text)
                        break
                time.sleep(0.01)
            assert victim is not None, "hung worker never wrote its marker"
            os.kill(victim, signal.SIGKILL)
        finally:
            thread.join(timeout=120.0)
        assert not thread.is_alive(), "batch did not recover from the kill"
        assert "error" not in outcome, outcome.get("error")
        assert stripped(outcome["results"]) == stripped(baseline())


class TestQuarantine:
    def test_poison_task_is_quarantined(self):
        """A task that kills every worker is isolated, not fatal."""
        results = run_batch(
            TASKS, seed=7, workers=1, chaos="kill:0*4", retry_backoff_s=0.0,
        )
        poison = results[0]
        assert poison["status"] == "quarantined"
        assert poison["quarantine"] == {
            "reason": "worker-death", "attempts": 3, "max_retries": 2,
        }
        assert "quarantined" in poison["error"]
        assert "value" not in poison
        # The rest of the batch is untouched by the poison task.  Cache
        # provenance is compared separately: a quarantined task compiles
        # nothing, so a later task sharing its formula legitimately
        # becomes the key's first occurrence.
        def sans_cache(records):
            return [
                {k: v for k, v in r.items() if k != "cache"}
                for r in records
            ]

        assert sans_cache(stripped(results)[1:]) == sans_cache(
            stripped(baseline())[1:]
        )

    def test_quarantine_fallback_answers_in_process(self):
        results = run_batch(
            TASKS, seed=7, workers=1, chaos="kill:0*4", retry_backoff_s=0.0,
            fallback="auto",
        )
        poison = results[0]
        assert poison["status"] == "quarantined"
        assert poison["quarantine"]["fallback"] == "in-process"
        assert poison["mode"] == "approximate"
        assert poison["samples"] > 0
        assert abs(poison["value"] - 0.5) <= 2 * poison["confidence_radius"]

    def test_retry_accounting(self):
        obs.enable_counting()
        run_batch(
            TASKS, seed=7, workers=1, chaos="kill:0*4", retry_backoff_s=0.0,
        )
        counts = obs.REGISTRY.as_dict()
        # max_retries=2: two charged retries, the third charge trips.
        assert counts["engine.retry.attempts"] == 2
        assert counts["engine.retry.exhausted"] == 1
        assert counts["engine.quarantine.tasks"] == 1
        assert counts["engine.batch.quarantined"] == 1
        assert counts["engine.pool.rebuilds"] == 3

    def test_backoff_sleeps_between_rebuilds(self):
        obs.enable_counting()
        run_batch(
            TASKS, seed=7, workers=1, chaos="kill:1", retry_backoff_s=0.001,
        )
        hist = obs.REGISTRY.histogram("engine.retry.backoff_s")
        assert hist.count == 1


class TestHangWatchdog:
    def test_hung_worker_is_shot_and_task_retried(self):
        reference = baseline()
        obs.enable_counting()
        results = run_batch(
            TASKS, seed=7, workers=2, chaos="hang:1", hang_timeout_s=1.0,
            retry_backoff_s=0.0,
        )
        assert stripped(results) == stripped(reference)
        assert obs.REGISTRY.as_dict()["engine.pool.hang_kills"] == 1


class TestJournalResume:
    def test_abort_then_resume_is_byte_identical(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        with pytest.raises(ChaosAbort, match="aborted after 2"):
            run_batch(
                TASKS, seed=7, workers=1, journal=journal, chaos="abort:2",
            )
        resumed = run_batch(
            TASKS, seed=7, workers=1, journal=journal, resume=True,
        )
        assert stripped(resumed) == stripped(baseline())

        lines = [
            json.loads(line)
            for line in open(journal, encoding="utf-8")
            if line.strip()
        ]
        assert [line["kind"] for line in lines] == (
            ["header", "task", "task", "header", "task", "task", "task"]
        )
        assert all(
            line["schema"] == "repro.engine.journal/v1" for line in lines
        )

    def test_resume_skips_finished_tasks(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        with pytest.raises(ChaosAbort):
            run_batch(
                TASKS, seed=7, workers=1, journal=journal, chaos="abort:2",
            )
        obs.enable_counting()
        run_batch(TASKS, seed=7, workers=1, journal=journal, resume=True)
        counts = obs.REGISTRY.as_dict()
        assert counts["engine.journal.resumed"] == 2
        assert counts["engine.journal.records"] == 3

    def test_resume_requires_journal(self):
        with pytest.raises(ReproError, match="requires a journal"):
            run_batch(TASKS, seed=7, resume=True)

    def test_fingerprint_mismatch_is_refused(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        with pytest.raises(ChaosAbort):
            run_batch(
                TASKS, seed=7, workers=1, journal=journal, chaos="abort:2",
            )
        with pytest.raises(ReproError, match="refusing to resume"):
            run_batch(TASKS, seed=8, workers=1, journal=journal, resume=True)

    def test_torn_tail_is_tolerated_and_counted(self, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        run_batch(TASKS, seed=7, workers=1, journal=journal)
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"schema": "repro.engine.journal/v1", "kind": "ta')
        obs.enable_counting()
        resumed = run_batch(
            TASKS, seed=7, workers=1, journal=journal, resume=True,
        )
        assert stripped(resumed) == stripped(baseline())
        counts = obs.REGISTRY.as_dict()
        assert counts["engine.journal.truncated"] == 1
        assert counts["engine.journal.resumed"] == len(TASKS)

    def test_store_provenance_is_resume_invariant(self, tmp_path):
        """Resumed provenance reflects the original run's pre-batch store.

        The interrupted run publishes plans into the store; a naive
        resume would then see them as ``store_hits``.  The journal header
        pins the original prewarmed key set, so the concatenated output
        stays byte-identical to the uninterrupted run.
        """
        tasks = [
            {"id": "a", "formula": TRIANGLE},
            {"id": "b", "formula": "0 <= x AND x <= 1/2"},
            {"id": "c", "formula": TRIANGLE},
            {"id": "d", "formula": "0 <= x AND x <= 1/2"},
        ]
        reference = run_batch(
            tasks, seed=5, workers=1,
            plan_store=str(tmp_path / "ref.sqlite"),
        )
        journal = str(tmp_path / "journal.jsonl")
        store = str(tmp_path / "live.sqlite")
        with pytest.raises(ChaosAbort):
            run_batch(
                tasks, seed=5, workers=1, plan_store=store, journal=journal,
                chaos="abort:2",
            )
        resumed = run_batch(
            tasks, seed=5, workers=1, plan_store=store, journal=journal,
            resume=True,
        )
        assert stripped(resumed) == stripped(reference)
        assert [r["cache"] for r in resumed] == [r["cache"] for r in reference]


class TestFingerprint:
    TASKS = [normalize_task({"formula": TRIANGLE}, 0)]

    def test_stable(self):
        assert manifest_fingerprint(self.TASKS, 7) == manifest_fingerprint(
            self.TASKS, 7
        )

    def test_sensitive_to_seed_config_and_tasks(self):
        base = manifest_fingerprint(self.TASKS, 7)
        assert manifest_fingerprint(self.TASKS, 8) != base
        assert manifest_fingerprint(self.TASKS, 7, {"timeout": 1.0}) != base
        other = [normalize_task({"formula": "0 <= x AND x <= 1/2"}, 0)]
        assert manifest_fingerprint(other, 7) != base
