"""Prepared queries: compile once, evaluate many, agree with cold paths."""

from fractions import Fraction

import numpy as np
import pytest

from repro import obs
from repro._errors import EvaluationError, QEError
from repro.engine import PlanCache, PreparedQuery, prepare
from repro.geometry import formula_volume_unit_cube
from repro.geometry.sampling import hit_or_miss_volume, hoeffding_sample_size
from repro.guard import Budget, BudgetExceeded
from repro.logic import evaluate, parse

TRIANGLE = "0 <= y AND y <= x AND x <= 1"
BAND = "EXISTS z . (y <= z AND z <= x AND 0 <= z AND z <= 1)"


class TestVolume:
    def test_triangle(self):
        plan = prepare(TRIANGLE, cache=None)
        assert plan.volume() == Fraction(1, 2)
        assert plan.variables == ("x", "y")
        assert plan.cell_count() >= 1

    def test_matches_cold_path(self):
        for text in (TRIANGLE, "x < 1/4 OR x > 3/4", BAND):
            plan = prepare(text, cache=None)
            cold = formula_volume_unit_cube(parse(text), plan.variables)
            assert plan.volume() == cold

    def test_box_clipping(self):
        plan = prepare(TRIANGLE, cache=None)
        half = [(Fraction(0), Fraction(1, 2))] * 2
        assert plan.volume(half) == Fraction(1, 8)
        # Memoized per box: both boxes stay resolvable afterwards.
        assert plan.volume() == Fraction(1, 2)
        assert plan.volume(half) == Fraction(1, 8)

    def test_memo_hit_counter(self):
        plan = prepare(TRIANGLE, cache=None)
        obs.enable_counting()
        plan.volume()
        plan.volume()
        plan.volume()
        counts = obs.REGISTRY.as_dict()
        assert counts["engine.eval.volume"] == 1
        assert counts["engine.eval.memo_hit"] == 2

    def test_bad_box_rejected(self):
        plan = prepare(TRIANGLE, cache=None)
        with pytest.raises(EvaluationError, match="bounds for all"):
            plan.volume([(Fraction(0), Fraction(1))])


class TestTruth:
    def test_membership(self):
        plan = prepare(TRIANGLE, cache=None)
        assert plan.truth({"x": Fraction(1, 2), "y": Fraction(1, 4)})
        assert not plan.truth({"x": Fraction(1, 4), "y": Fraction(1, 2)})

    def test_agrees_with_evaluate(self):
        formula = parse(TRIANGLE)
        plan = prepare(formula, cache=None)
        grid = [Fraction(0), Fraction(1, 3), Fraction(1, 2), Fraction(1)]
        for a in grid:
            for b in grid:
                env = {"x": a, "y": b}
                assert plan.truth(env) == evaluate(formula, env)


class TestApprox:
    def test_bitwise_identical_to_cold_run(self):
        plan = prepare(BAND, cache=None)
        epsilon = delta = 0.2
        estimate = plan.approx_volume(
            epsilon, delta, rng=np.random.default_rng(7)
        )
        samples = hoeffding_sample_size(epsilon, delta)
        cold = hit_or_miss_volume(
            plan.qf, plan.variables, samples, np.random.default_rng(7),
            box=[(0.0, 1.0)] * 2, delta=delta,
        )
        assert estimate.estimate == cold.estimate
        assert estimate.samples == cold.samples


class TestRobust:
    def test_exact_mode(self):
        plan = prepare(TRIANGLE, cache=None)
        result = plan.robust_volume()
        assert result.mode == "exact"
        assert result.value == Fraction(1, 2)

    def test_fallback_to_approximate(self):
        plan = prepare(TRIANGLE, cache=None)
        result = plan.robust_volume(
            epsilon=0.2, delta=0.2,
            budget=Budget(deadline_s=0.0),
            policy="auto",
            rng=np.random.default_rng(3),
        )
        assert result.mode == "approximate"
        assert result.attempts and result.attempts[0][0] == "exact"
        assert 0.0 <= result.value <= 1.0

    def test_policy_off_raises(self):
        plan = prepare(TRIANGLE, cache=None)
        with pytest.raises(BudgetExceeded):
            plan.robust_volume(budget=Budget(deadline_s=0.0), policy="off")

    def test_unknown_policy(self):
        plan = prepare(TRIANGLE, cache=None)
        with pytest.raises(EvaluationError, match="policy"):
            plan.robust_volume(policy="sometimes")


class TestDecide:
    def test_sentence_decided_at_compile_time(self):
        plan = prepare(
            "EXISTS x . (x*x = 2 AND 0 < x AND x < 2)", kind="decide", cache=None
        )
        assert plan.decide() is True
        assert prepare(
            "EXISTS x . (x*x = -1)", kind="decide", cache=None
        ).decide() is False

    def test_free_variables_rejected(self):
        with pytest.raises(QEError, match="sentence"):
            prepare("x*x < 2", kind="decide", cache=None)

    def test_kind_mismatch_guards(self):
        decide_plan = prepare("EXISTS x . x*x = 2", kind="decide", cache=None)
        volume_plan = prepare(TRIANGLE, cache=None)
        with pytest.raises(EvaluationError, match="kind='volume'"):
            decide_plan.volume()
        with pytest.raises(EvaluationError, match="kind='decide'"):
            volume_plan.decide()

    def test_unknown_kind(self):
        with pytest.raises(EvaluationError, match="unknown plan kind"):
            prepare(TRIANGLE, kind="integrate", cache=None)


class TestCompile:
    def test_quantified_queries_run_qe(self):
        plan = prepare(BAND, cache=None)
        stage_names = [name for name, _ in plan.provenance.stages]
        assert "qe" in stage_names
        assert "decompose" in stage_names
        assert plan.volume() == Fraction(1, 2)

    def test_provenance_records_stages(self):
        plan = prepare(TRIANGLE, cache=None)
        stage_names = [name for name, _ in plan.provenance.stages]
        assert stage_names[:2] == ["parse", "canonicalize"]
        assert plan.provenance.source == "compiled"
        assert plan.provenance.compile_s >= 0.0

    def test_quantified_nonlinear_rejected(self):
        with pytest.raises(QEError, match="not semi-linear"):
            prepare("EXISTS y . (y*y < x)", cache=None)

    def test_certify_produces_satisfying_witness(self):
        plan = prepare(TRIANGLE, cache=None, certify=True)
        assert plan.witness is not None
        formula = parse(TRIANGLE)
        assert evaluate(formula, plan.witness)

    def test_compile_budget_is_enforced(self):
        with pytest.raises(BudgetExceeded):
            prepare(BAND, cache=None, budget=Budget(deadline_s=0.0))

    def test_cache_hit_skips_compilation(self):
        cache = PlanCache()
        obs.enable_counting()
        prepare(TRIANGLE, cache=cache)
        plan = prepare(TRIANGLE, cache=cache)
        counts = obs.REGISTRY.as_dict()
        assert counts["engine.compile"] == 1
        assert counts["engine.cache.hit"] == 1
        assert plan.volume() == Fraction(1, 2)


class TestCacheIntegration:
    def test_semantic_variants_share_a_plan(self):
        cache = PlanCache()
        first = prepare("0 <= y AND y <= x AND x <= 1", cache=cache)
        second = prepare("x <= 1 AND y <= x AND 0 <= y", cache=cache)
        assert second is first
        assert cache.stats.hits == 1

    def test_cache_none_always_compiles(self):
        first = prepare(TRIANGLE, cache=None)
        second = prepare(TRIANGLE, cache=None)
        assert second is not first


class TestPersistence:
    def test_record_roundtrip_volume(self):
        plan = prepare(BAND, cache=None, certify=True)
        clone = PreparedQuery.from_record(plan.to_record())
        assert clone.key == plan.key
        assert clone.kind == plan.kind
        assert clone.variables == plan.variables
        assert clone.volume() == plan.volume()
        assert clone.witness == plan.witness
        assert clone.provenance.source == "spill"

    def test_record_roundtrip_decide(self):
        plan = prepare("EXISTS x . x*x = 2", kind="decide", cache=None)
        clone = PreparedQuery.from_record(plan.to_record())
        assert clone.decide() == plan.decide()

    def test_record_is_jsonable(self):
        import json

        plan = prepare(TRIANGLE, cache=None)
        text = json.dumps(plan.to_record())
        clone = PreparedQuery.from_record(json.loads(text))
        assert clone.volume() == plan.volume()
