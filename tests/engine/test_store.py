"""The cross-process shared plan store and its executor integration."""

import json
import multiprocessing
import time

import pytest

from repro import guard, obs
from repro._errors import ReproError
from repro.engine import (
    PlanStore,
    StoreBackedCache,
    content_hash,
    prepare,
    run_batch,
)
from repro.engine import executor
from repro.engine.canon import canonical_formula
from repro.guard import Budget, StoreIOBudgetExceeded
from repro.logic.parser import parse

TRIANGLE = "0 <= y AND y <= x AND x <= 1"


def key_of(text: str, kind: str = "volume") -> str:
    """The content hash of *text* without compiling anything."""
    canonical = canonical_formula(parse(text))
    variables = tuple(sorted(canonical.free_variables()))
    return content_hash(canonical, variables, kind)


def compile_plan(text: str):
    return prepare(text, cache=None)


class FakeClock:
    """An injectable wall clock for deterministic lease arithmetic."""

    def __init__(self, now: float = 1_000_000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "plans.sqlite")


class TestPlanStore:
    def test_publish_fetch_roundtrip(self, store_path):
        store = PlanStore(store_path)
        plan = compile_plan(TRIANGLE)
        assert store.fetch(plan.key) is None
        published, won = store.publish(plan)
        assert won and published is plan
        assert plan.key in store
        assert len(store) == 1
        assert store.keys() == [plan.key]

        fetched = PlanStore(store_path).fetch(plan.key)
        assert fetched.key == plan.key
        assert fetched.provenance.source == "store"
        assert fetched.volume() == plan.volume()

    def test_publish_loser_adopts_winner(self, store_path):
        store = PlanStore(store_path)
        winner = compile_plan(TRIANGLE)
        loser = compile_plan(TRIANGLE)
        store.publish(winner)
        adopted, won = store.publish(loser)
        assert not won
        assert adopted.key == winner.key
        assert store.stats_snapshot()["races"] == 1
        # Still exactly one published record.
        assert len(store) == 1

    def test_get_or_compile_outcomes(self, store_path):
        store = PlanStore(store_path)
        key = key_of(TRIANGLE)
        plan, outcome = store.get_or_compile(
            key, lambda: compile_plan(TRIANGLE)
        )
        assert outcome == "miss" and plan.key == key
        again, outcome = store.get_or_compile(
            key, lambda: pytest.fail("must not recompile")
        )
        assert outcome == "store_hit"
        stats = store.stats_snapshot()
        assert stats["compiles"] == 1 and stats["publishes"] == 1

    def test_failed_compile_releases_claim(self, store_path):
        store = PlanStore(store_path)
        key = key_of(TRIANGLE)

        def boom():
            raise ValueError("compile failed")

        with pytest.raises(ValueError):
            store.get_or_compile(key, boom)
        # The claim is gone, so the retry compiles — no stale-claim steal.
        _, outcome = store.get_or_compile(key, lambda: compile_plan(TRIANGLE))
        assert outcome == "miss"
        assert store.stats_snapshot()["stale_claims"] == 0

    def test_dead_local_claim_is_stolen(self, store_path):
        store = PlanStore(store_path, lease_s=10_000)
        key = key_of(TRIANGLE)
        ghost = multiprocessing.Process(target=_noop)
        ghost.start()
        ghost.join()
        with store._write() as con:
            con.execute(
                "INSERT INTO claims (key, pid, host, acquired_s)"
                " VALUES (?, ?, ?, ?)",
                (key, ghost.pid, store._host, time.time()),
            )
        # Owner is dead on this host: the claim is stolen despite the lease.
        _, outcome = store.get_or_compile(key, lambda: compile_plan(TRIANGLE))
        assert outcome == "miss"
        assert store.stats_snapshot()["stale_claims"] == 1

    def test_remote_claim_staleness_is_lease_based(self, store_path):
        """A remote claim is honoured until its lease expires — no pid
        probe is possible across hosts, so expiry is pure clock
        arithmetic, driven here by an injected fake clock (no sleeps)."""
        clock = FakeClock()
        store = PlanStore(store_path, lease_s=60.0, clock=clock)
        key = key_of(TRIANGLE)
        with store._write() as con:
            con.execute(
                "INSERT INTO claims (key, pid, host, acquired_s)"
                " VALUES (?, ?, ?, ?)",
                (key, 1, "another-host", clock()),
            )
        # Within the lease the remote owner keeps the claim.
        assert store._claim(key) == "theirs"
        clock.advance(59.0)
        assert store._claim(key) == "theirs"
        assert store.stats_snapshot()["stale_claims"] == 0
        # One tick past the lease, the claim is stolen and we compile.
        clock.advance(2.0)
        _, outcome = store.get_or_compile(key, lambda: compile_plan(TRIANGLE))
        assert outcome == "miss"
        assert store.stats_snapshot()["stale_claims"] == 1

    def test_transient_lock_contention_is_retried(self, store_path):
        """A ``database is locked`` burst is absorbed, not surfaced.

        A raw connection holds the write lock just long enough for the
        store's own busy timeout to give up; the store's bounded
        lock-retry loop (counted as ``engine.store.lock_retries``) rides
        out the contention and the publish still lands.
        """
        import sqlite3
        import threading

        store = PlanStore(
            store_path, busy_timeout_s=0.005, lock_retries=200,
            lock_retry_s=0.005,
        )
        blocker = sqlite3.connect(
            store_path, timeout=30.0, check_same_thread=False,
        )
        blocker.execute("BEGIN IMMEDIATE")
        release = threading.Timer(0.25, blocker.commit)
        obs.enable_counting()
        release.start()
        try:
            _, won = store.publish(compile_plan(TRIANGLE))
        finally:
            release.join()
            blocker.close()
        assert won
        assert PlanStore(store_path).fetch(key_of(TRIANGLE)) is not None
        assert obs.REGISTRY.as_dict()["engine.store.lock_retries"] >= 1

    def test_unknown_store_schema_rejected(self, store_path):
        store = PlanStore(store_path)
        store._con.execute(
            "UPDATE meta SET value = 'repro.engine.store/v999'"
            " WHERE name = 'schema'"
        )
        with pytest.raises(ReproError, match="unknown plan-store schema"):
            PlanStore(store_path)

    def test_fetch_histogram_merges_across_handles(self, store_path):
        plan = compile_plan(TRIANGLE)
        PlanStore(store_path).publish(plan)
        first, second = PlanStore(store_path), PlanStore(store_path)
        first.fetch(plan.key)
        second.fetch(plan.key)
        first.flush_metrics()
        second.flush_metrics()
        merged = PlanStore(store_path).fetch_hist_snapshot()
        assert merged["count"] == 2
        assert sum(merged["buckets"].values()) == 2


class TestStoreBackedCache:
    def test_read_through_and_write_back(self, store_path):
        first = StoreBackedCache(PlanStore(store_path))
        plan = prepare(TRIANGLE, cache=first)
        assert first.outcomes["misses"] == 1
        # Same adapter again: pure in-memory hit, no store traffic.
        assert prepare(TRIANGLE, cache=first) is plan
        assert first.outcomes["hits"] == 1

        # A different process's adapter falls through to the store.
        second = StoreBackedCache(PlanStore(store_path))
        warm = prepare(TRIANGLE, cache=second)
        assert second.outcomes["store_hits"] == 1
        assert warm.key == plan.key
        assert warm.provenance.source == "store"

    def test_store_io_budget_trips(self, store_path):
        store = PlanStore(store_path)
        key = key_of(TRIANGLE)
        budget = Budget(max_store_ios=1)
        with guard.govern(budget):
            store.fetch(key)
            with pytest.raises(StoreIOBudgetExceeded) as excinfo:
                store.fetch(key)
        assert excinfo.value.resource == "store_ios"
        assert budget.store_ios == 2


FORMULAS = [
    TRIANGLE,
    "0 <= x AND x <= 1/2",
    "0 <= x AND x <= 1/4 AND 0 <= y AND y <= 1/4",
]


def _race_child(store_path, barrier, queue):
    store = PlanStore(store_path, poll_s=0.005)
    key = key_of(TRIANGLE)

    def slow_factory():
        time.sleep(0.2)
        return compile_plan(TRIANGLE)

    barrier.wait()
    plan, outcome = store.get_or_compile(key, slow_factory)
    record = plan.to_record()
    record.pop("provenance")  # timings/source legitimately differ
    queue.put((outcome, json.dumps(record, sort_keys=True)))


def _noop():
    pass


class TestCrossProcess:
    def test_two_processes_racing_compile_once(self, store_path):
        """Two racing processes converge to one byte-identical record."""
        barrier = multiprocessing.Barrier(2)
        queue = multiprocessing.Queue()
        children = [
            multiprocessing.Process(
                target=_race_child, args=(store_path, barrier, queue)
            )
            for _ in range(2)
        ]
        for child in children:
            child.start()
        outcomes = [queue.get(timeout=60) for _ in children]
        for child in children:
            child.join(timeout=60)

        store = PlanStore(store_path)
        stats = store.stats_snapshot()
        assert stats["compiles"] == 1, stats
        assert stats["publishes"] == 1
        assert len(store) == 1
        # Exactly one process compiled; all ended with the same plan bytes.
        assert sorted(o for o, _ in outcomes).count("miss") == 1
        records = {record for _, record in outcomes}
        assert len(records) == 1

    def test_four_workers_compile_each_hash_once(self, store_path):
        tasks = [
            {"id": f"q{i}", "op": "volume", "formula": FORMULAS[i % 3]}
            for i in range(12)
        ]
        results = run_batch(tasks, workers=4, plan_store=store_path)
        assert all(r["status"] == "ok" for r in results)
        stats = PlanStore(store_path).stats_snapshot()
        assert stats["compiles"] == len(FORMULAS)
        assert len(PlanStore(store_path)) == len(FORMULAS)

    def test_results_identical_across_worker_counts(self, tmp_path):
        tasks = [
            {"id": f"q{i}", "op": "volume", "formula": FORMULAS[i % 3]}
            for i in range(8)
        ]

        def run(workers, path):
            results = run_batch(tasks, workers=workers, plan_store=path)
            return [
                {k: v for k, v in r.items() if k != "elapsed_s"}
                for r in results
            ]

        serial = run(1, str(tmp_path / "serial.sqlite"))
        parallel = run(4, str(tmp_path / "parallel.sqlite"))
        assert serial == parallel


class TestBatchIntegration:
    def test_cache_provenance_is_deterministic_one_hot(self, store_path):
        tasks = [
            {"id": i, "op": "volume", "formula": f}
            for i, f in enumerate([TRIANGLE, TRIANGLE, FORMULAS[1]])
        ]
        results = run_batch(tasks, workers=1, plan_store=store_path)
        cache = [r["cache"] for r in results]
        assert all(sum(c.values()) == 1 for c in cache)
        assert cache[0] == {"hits": 0, "misses": 1, "store_hits": 0}
        assert cache[1] == {"hits": 1, "misses": 0, "store_hits": 0}
        assert cache[2] == {"hits": 0, "misses": 1, "store_hits": 0}

    def test_provenance_without_store(self):
        tasks = [
            {"id": i, "op": "volume", "formula": f}
            for i, f in enumerate([TRIANGLE, TRIANGLE])
        ]
        results = run_batch(tasks, workers=1)
        assert results[0]["cache"] == {"hits": 0, "misses": 1, "store_hits": 0}
        assert results[1]["cache"] == {"hits": 1, "misses": 0, "store_hits": 0}

    def test_prewarm_then_warm_run_compiles_nothing(self, store_path):
        tasks = [
            {"id": i, "op": "volume", "formula": f}
            for i, f in enumerate(FORMULAS)
        ]
        prewarm = run_batch(
            tasks, workers=2, plan_store=store_path, compile_only=True
        )
        assert all(r["mode"] == "compile-only" for r in prewarm)
        assert all("value" not in r for r in prewarm)
        compiles_cold = PlanStore(store_path).stats_snapshot()["compiles"]
        assert compiles_cold == len(FORMULAS)

        warm = run_batch(tasks, workers=2, plan_store=store_path)
        assert all(r["status"] == "ok" for r in warm)
        assert [r["cache"]["store_hits"] for r in warm] == [1, 1, 1]
        assert (
            PlanStore(store_path).stats_snapshot()["compiles"] == compiles_cold
        )

    def test_store_traffic_folds_into_obs_registry(self, store_path):
        tasks = [
            {"id": i, "op": "volume", "formula": f}
            for i, f in enumerate(FORMULAS)
        ]
        run_batch(tasks, workers=1, plan_store=store_path, compile_only=True)
        # Drop this process's warm adapter so the second batch re-fetches
        # from the store, as a fresh process would.
        executor._ADAPTERS.clear()
        obs.enable_counting()
        run_batch(tasks, workers=1, plan_store=store_path)
        counts = obs.REGISTRY.as_dict()
        assert counts["engine.store.hit"] == len(FORMULAS)
        assert counts["engine.store.plans"] == len(FORMULAS)
        assert "engine.store.miss" not in counts or not counts[
            "engine.store.miss"
        ]
        hist = obs.REGISTRY.histogram("engine.store.fetch_s", "")
        assert hist.count == len(FORMULAS)
