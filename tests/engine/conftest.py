"""Engine-suite isolation: clean process-wide caches/adapters per test."""

import pytest

from repro.engine import DEFAULT_CACHE, executor


@pytest.fixture(autouse=True)
def _fresh_default_cache():
    DEFAULT_CACHE.clear()
    yield
    DEFAULT_CACHE.clear()


@pytest.fixture(autouse=True)
def _fresh_store_adapters():
    """Store adapters memoize per (path, pid); tests must not share them."""
    executor._ADAPTERS.clear()
    yield
    executor._ADAPTERS.clear()
