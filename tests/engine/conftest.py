"""Engine-suite isolation: a clean process-wide plan cache per test."""

import pytest

from repro.engine import DEFAULT_CACHE


@pytest.fixture(autouse=True)
def _fresh_default_cache():
    DEFAULT_CACHE.clear()
    yield
    DEFAULT_CACHE.clear()
