"""Deterministic per-task trace contexts in batch runs.

Serve requests mint *random* trace ids, but batch task records must stay
byte-comparable across worker counts and re-runs — so batch contexts are
*derived*: ``sha256("repro.batch:<seed>:<index>")``.  Same manifest +
same seed ⇒ same ids, which keeps the byte-stability contract intact
while every task still carries a grep-able trace id.
"""

from repro.engine import run_batch
from repro.engine.executor import batch_trace_ctx

TASKS = [
    {"id": "t0", "op": "volume", "formula": "0 <= x AND x <= 1"},
    {"id": "t1", "op": "volume",
     "formula": "0 <= x AND x <= 1 AND 0 <= y AND y <= 1"},
]


class TestBatchTraceCtx:
    def test_deterministic_for_seed_and_index(self):
        assert batch_trace_ctx(3, 0) == batch_trace_ctx(3, 0)

    def test_well_formed_ids(self):
        ctx = batch_trace_ctx(3, 0)
        assert set(ctx) == {"trace_id", "span_id"}
        assert len(ctx["trace_id"]) == 32
        assert len(ctx["span_id"]) == 16
        int(ctx["trace_id"], 16)
        int(ctx["span_id"], 16)

    def test_distinct_across_index_and_seed(self):
        ids = {
            batch_trace_ctx(seed, index)["trace_id"]
            for seed in (0, 1, 2) for index in (0, 1, 2)
        }
        assert len(ids) == 9


class TestBatchSnapshots:
    def test_observed_tasks_record_their_context(self):
        results = run_batch(TASKS, seed=3, collect_obs=True)
        for index, result in enumerate(results):
            assert result["obs"]["trace"] == batch_trace_ctx(3, index)

    def test_trace_identical_across_worker_counts(self):
        serial = run_batch(TASKS, seed=3, workers=1, collect_obs=True)
        parallel = run_batch(TASKS, seed=3, workers=2, collect_obs=True)
        for left, right in zip(serial, parallel):
            assert left["obs"]["trace"] == right["obs"]["trace"]

    def test_unobserved_tasks_carry_no_trace(self):
        results = run_batch(TASKS, seed=3)
        for result in results:
            assert "obs" not in result

    def test_worker_exemplars_carry_the_task_trace_id(self):
        # The worker ran under the task's context, so its latency
        # histograms picked the trace id up as exemplars automatically.
        (first, _) = run_batch(TASKS, seed=3, collect_obs=True)
        compile_hist = first["obs"]["histograms"]["engine.plan.compile_s"]
        exemplars = compile_hist.get("exemplars") or {}
        trace_ids = {trace_id for _, trace_id in exemplars.values()}
        assert trace_ids == {batch_trace_ctx(3, 0)["trace_id"]}
