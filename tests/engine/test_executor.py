"""Batch executor: validation, isolation, determinism, parallel fan-out."""

from fractions import Fraction

import pytest

from repro import obs
from repro._errors import ReproError
from repro.engine import execute_task, normalize_task, run_batch, task_seed

TRIANGLE = "0 <= y AND y <= x AND x <= 1"


def strip_timing(record: dict) -> dict:
    return {k: v for k, v in record.items() if k != "elapsed_s"}


class TestTaskSeed:
    def test_deterministic(self):
        assert task_seed(42, 3) == task_seed(42, 3)

    def test_distinct_per_task_and_batch(self):
        seeds = {task_seed(42, i) for i in range(100)}
        assert len(seeds) == 100
        assert task_seed(42, 0) != task_seed(43, 0)


class TestNormalize:
    def test_defaults(self):
        task = normalize_task({"formula": TRIANGLE}, 5)
        assert task == {
            "id": 5, "index": 5, "op": "volume", "formula": TRIANGLE,
        }

    def test_box_becomes_exact_rationals(self):
        task = normalize_task(
            {"formula": "x < 1", "box": [["0", "1/2"]]}, 0
        )
        assert task["box"] == [(Fraction(0), Fraction(1, 2))]

    def test_float_epsilon_kept(self):
        task = normalize_task({"formula": "x < 1", "epsilon": 0.1}, 0)
        assert task["epsilon"] == 0.1

    @pytest.mark.parametrize(
        "raw, message",
        [
            (["not", "an", "object"], "JSON object"),
            ({}, "missing 'formula'"),
            ({"formula": "   "}, "missing 'formula'"),
            ({"formula": "x < 1", "op": "integrate"}, "unknown op"),
            ({"formula": "x < 1", "box": [["0"]]}, "bad box"),
        ],
    )
    def test_rejects_bad_entries(self, raw, message):
        with pytest.raises(ReproError, match=message):
            normalize_task(raw, 0)


class TestExecuteTask:
    def test_volume(self):
        task = normalize_task({"id": "t", "formula": TRIANGLE}, 0)
        result = execute_task(task, seed=task_seed(0, 0))
        assert result["status"] == "ok"
        assert result["exact"] == "1/2"
        assert result["value"] == 0.5
        assert result["mode"] == "exact"
        assert result["cells"] >= 1

    def test_decide(self):
        task = normalize_task(
            {"op": "decide", "formula": "EXISTS x . x*x = 2"}, 0
        )
        result = execute_task(task, seed=0)
        assert result["status"] == "ok"
        assert result["value"] is True

    def test_approx_is_seed_deterministic(self):
        task = normalize_task(
            {"op": "approx", "formula": TRIANGLE, "epsilon": 0.2, "delta": 0.2},
            0,
        )
        first = execute_task(task, seed=123)
        second = execute_task(task, seed=123)
        assert strip_timing(first) == strip_timing(second)
        assert first["mode"] == "approximate"
        assert abs(first["value"] - 0.5) <= 2 * first["confidence_radius"]

    def test_parse_error_becomes_result(self):
        task = normalize_task({"formula": "x <"}, 0)
        result = execute_task(task, seed=0)
        assert result["status"] == "error"
        assert "error" in result

    def test_unexpected_exception_keeps_type_and_traceback(self, monkeypatch):
        from repro.engine import executor

        def boom(*args, **kwargs):
            raise KeyError("x")

        monkeypatch.setattr(executor, "prepare", boom)
        task = normalize_task({"formula": TRIANGLE}, 0)
        result = execute_task(task, seed=0)
        assert result["status"] == "error"
        assert result["error"] == "KeyError: 'x'"
        assert result["error_type"] == "KeyError"
        assert "boom" in result["traceback"]
        assert result["traceback"].splitlines()[-1] == "KeyError: 'x'"

    def test_expected_errors_stay_lean(self):
        # Parse/budget errors are deterministic and self-describing; only
        # unexpected exception classes carry the debugging payload.
        task = normalize_task({"formula": "x <"}, 0)
        result = execute_task(task, seed=0)
        assert result["status"] == "error"
        assert "error_type" not in result
        assert "traceback" not in result

    def test_traceback_is_truncated_keeping_the_tail(self):
        from repro.engine.executor import (
            _TRACEBACK_CHARS,
            _truncated_traceback,
        )

        try:
            raise ValueError("x" * (5 * _TRACEBACK_CHARS))
        except ValueError as error:
            text = _truncated_traceback(error)
        assert text.startswith("...")
        assert len(text) == _TRACEBACK_CHARS + 3
        assert text.endswith("x" * 100)

    def test_budget_exceeded_becomes_result(self):
        task = normalize_task({"formula": TRIANGLE}, 0)
        result = execute_task(task, seed=0, timeout=0.0)
        assert result["status"] == "budget-exceeded"
        assert result["resource"]

    def test_budget_exceeded_falls_back_when_allowed(self):
        task = normalize_task(
            {"formula": TRIANGLE, "epsilon": 0.2, "delta": 0.2}, 0
        )
        result = execute_task(task, seed=0, timeout=0.0, fallback="auto")
        assert result["status"] == "ok"
        assert result["mode"] == "approximate"
        assert result["attempts"]


class TestRunBatch:
    TASKS = [
        {"id": "tri", "formula": TRIANGLE},
        {"id": "union", "formula": "x < 1/4 OR x > 3/4"},
        {"id": "band", "formula": "EXISTS z . (y <= z AND z <= x AND 0 <= z AND z <= 1)"},
        {"id": "mc", "op": "approx", "formula": TRIANGLE, "epsilon": 0.2, "delta": 0.2},
        {"id": "broken", "formula": "x <"},
    ]

    def test_results_in_manifest_order(self):
        results = run_batch(self.TASKS, seed=1)
        assert [r["id"] for r in results] == ["tri", "union", "band", "mc", "broken"]

    def test_one_bad_task_does_not_poison_the_batch(self):
        results = run_batch(self.TASKS, seed=1)
        statuses = {r["id"]: r["status"] for r in results}
        assert statuses["broken"] == "error"
        assert all(
            status == "ok" for key, status in statuses.items() if key != "broken"
        )

    def test_worker_count_does_not_change_results(self):
        serial = run_batch(self.TASKS, seed=7, workers=1)
        parallel = run_batch(self.TASKS, seed=7, workers=2)
        assert [strip_timing(r) for r in serial] == [
            strip_timing(r) for r in parallel
        ]

    def test_counters(self):
        obs.enable_counting()
        run_batch(self.TASKS, seed=1, timeout=60.0)
        counts = obs.REGISTRY.as_dict()
        assert counts["engine.batch.runs"] == 1
        assert counts["engine.batch.tasks"] == 5
        assert counts["engine.batch.ok"] == 4
        assert counts["engine.batch.errors"] == 1
        assert counts["engine.batch.wall_s"] > 0


class TestCollectObs:
    TASKS = TestRunBatch.TASKS

    @staticmethod
    def _snapshots(results):
        return [r.get("obs") for r in results]

    def test_every_task_carries_a_snapshot(self):
        results = run_batch(self.TASKS, seed=3, collect_obs=True)
        for result in results:
            assert isinstance(result["obs"], dict)
            assert result["obs"]["worker_pid"] > 0
        # The healthy volume tasks compiled a plan and traced it.
        tri = results[0]["obs"]
        assert tri["counters"]["engine.compile"] == 1
        assert tri["histograms"]["engine.plan.compile_s"]["count"] == 1
        assert any(s["name"] == "engine.compile" for s in tri["spans"])

    def test_per_task_telemetry_identical_serial_vs_parallel(self):
        serial = run_batch(self.TASKS, seed=3, workers=1, collect_obs=True)
        parallel = run_batch(self.TASKS, seed=3, workers=4, collect_obs=True)

        def stable(snapshot):
            from repro.obs.aggregate import stable_span

            out = {
                k: v for k, v in snapshot.items()
                if k not in ("worker_pid", "spans", "histograms")
            }
            out["spans"] = [stable_span(s) for s in snapshot.get("spans", [])]
            # Histogram buckets hold wall-clock; only counts are stable.
            out["histograms"] = {
                name: data["count"]
                for name, data in snapshot.get("histograms", {}).items()
            }
            return out

        for left, right in zip(self._snapshots(serial), self._snapshots(parallel)):
            assert stable(left) == stable(right)

    def test_merged_totals_equal_sum_of_snapshots(self):
        from repro.obs.aggregate import merged_registry

        obs.enable_counting()
        results = run_batch(self.TASKS, seed=3, collect_obs=True)
        merged = merged_registry(results)
        expected = sum(
            snap.get("counters", {}).get("mc.samples", 0)
            for snap in self._snapshots(results)
        )
        assert expected > 0
        assert merged.value("mc.samples") == expected
        # The ambient registry got the same merge (parent-side fold).
        assert obs.REGISTRY.value("mc.samples") == expected
        assert (
            obs.REGISTRY.histogram("engine.plan.compile_s").count
            == merged.histogram("engine.plan.compile_s").count
            == 4  # the broken task never reaches compile
        )

    def test_ambient_merge_independent_of_worker_count(self):
        obs.enable_counting()
        run_batch(self.TASKS, seed=3, workers=1, collect_obs=True)
        serial = obs.REGISTRY.as_dict()
        serial_hist = obs.REGISTRY.histogram("engine.plan.compile_s").count
        obs.reset()
        run_batch(self.TASKS, seed=3, workers=4, collect_obs=True)
        parallel = obs.REGISTRY.as_dict()
        parallel_hist = obs.REGISTRY.histogram("engine.plan.compile_s").count

        def scheduling_free(counts):
            # Batch wall-clock is the one legitimately timing-dependent key.
            return {k: v for k, v in counts.items() if k != "engine.batch.wall_s"}

        assert scheduling_free(serial) == scheduling_free(parallel)
        assert serial_hist == parallel_hist

    def test_task_spans_graft_into_parent_trace(self):
        with obs.observe("batch-run") as trace:
            run_batch(self.TASKS[:2], seed=3, collect_obs=True)
        tagged = [r for r in trace.roots if "task" in r.attrs]
        assert {r.attrs["task"] for r in tagged} == {0, 1}

    def test_results_unchanged_by_collection(self):
        plain = run_batch(self.TASKS, seed=3)
        observed = run_batch(self.TASKS, seed=3, collect_obs=True)
        for left, right in zip(plain, observed):
            right = {k: v for k, v in right.items() if k != "obs"}
            assert strip_timing(left) == strip_timing(right)
