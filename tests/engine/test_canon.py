"""Canonical normal form: invariance, semantics preservation, hashing."""

from fractions import Fraction

from repro.engine import canonical_formula, canonical_text, content_hash
from repro.engine.canon import canonical_term
from repro.logic import (
    Const,
    Exists,
    ExistsAdom,
    FALSE,
    Forall,
    TRUE,
    Var,
    parse,
    variables,
)

x, y, z = variables("x y z")


class TestAtoms:
    def test_polynomial_spelling_coincides(self):
        assert canonical_formula(x * x < 1) == canonical_formula(x**2 < 1)

    def test_moved_to_one_side(self):
        assert canonical_formula(x < y) == canonical_formula(x - y < 0)

    def test_positive_rational_scaling(self):
        half = Const(Fraction(1, 2))
        assert canonical_formula(half * x < y) == canonical_formula(x < 2 * y)

    def test_inequalities_not_scaled_by_negatives(self):
        # x < y and y < x are different atoms and must stay different.
        assert canonical_formula(x < y) != canonical_formula(y < x)

    def test_gt_flips_to_lt(self):
        assert canonical_formula(x > y) == canonical_formula(y < x)
        assert canonical_formula(x >= y) == canonical_formula(y <= x)

    def test_equation_leading_sign_fixed(self):
        assert canonical_formula(x.eq(y)) == canonical_formula(y.eq(x))
        assert canonical_formula((x - y).eq(0)) == canonical_formula((y - x).eq(0))

    def test_constant_atoms_fold(self):
        one, two = Const(1), Const(2)
        assert canonical_formula(one < two) == TRUE
        assert canonical_formula(two < one) == FALSE
        assert canonical_formula(one.eq(1)) == TRUE

    def test_canonical_term_flattens_and_sorts(self):
        assert canonical_term(x + y) == canonical_term(y + x)
        assert canonical_term((x + 1) * (x - 1)) == canonical_term(x**2 - 1)


class TestConnectives:
    def test_commutative_reorder(self):
        assert canonical_formula((x < 1) & (y < 1)) == canonical_formula(
            (y < 1) & (x < 1)
        )
        assert canonical_formula((x < 1) | (y < 1)) == canonical_formula(
            (y < 1) | (x < 1)
        )

    def test_duplicates_dropped(self):
        assert canonical_formula((x < 1) & (x < 1)) == canonical_formula(x < 1)

    def test_nested_flattening(self):
        left = ((x < 1) & (y < 1)) & (z < 1)
        right = (x < 1) & ((y < 1) & (z < 1))
        assert canonical_formula(left) == canonical_formula(right)

    def test_nnf_pushes_negation(self):
        assert canonical_formula(~(x < y)) == canonical_formula(y <= x)


class TestQuantifiers:
    def test_alpha_variants_coincide(self):
        a = parse("EXISTS z . (z < x AND y < z)")
        b = parse("EXISTS w . (w < x AND y < w)")
        assert canonical_formula(a) == canonical_formula(b)
        assert content_hash(a) == content_hash(b)

    def test_nested_alpha_variants(self):
        a = parse("EXISTS u . EXISTS v . (u < v AND v < x)")
        b = parse("EXISTS p . EXISTS q . (p < q AND q < x)")
        assert canonical_formula(a) == canonical_formula(b)

    def test_capture_avoided_against_free_q_names(self):
        # A free variable spelled like a canonical bound name must survive.
        q0 = Var("_q0")
        formula = Exists("t", (Var("t") < q0))
        canon = canonical_formula(formula)
        assert canon.free_variables() == {"_q0"}

    def test_vacuous_natural_quantifier_dropped(self):
        assert canonical_formula(Exists("t", x < 1)) == canonical_formula(x < 1)
        assert canonical_formula(Forall("t", x < 1)) == canonical_formula(x < 1)

    def test_vacuous_adom_quantifier_kept(self):
        # Over an empty active domain EXISTSADOM t . phi is false even for
        # valid phi, so the quantifier is semantically load-bearing.
        canon = canonical_formula(ExistsAdom("t", x < 1))
        assert isinstance(canon, ExistsAdom)


class TestStability:
    def test_idempotent(self):
        for text in (
            "EXISTS z . (z < x AND y < z)",
            "0 <= y AND y <= x AND x <= 1",
            "x < 1/4 OR x > 3/4",
            "FORALL u . (u < x OR x <= u)",
        ):
            once = canonical_formula(parse(text))
            assert canonical_formula(once) == once

    def test_text_reparses_to_same_canonical(self):
        formula = parse("EXISTS z . (z < x AND y < z AND 2*z < x + y)")
        text = canonical_text(formula)
        assert canonical_formula(parse(text)) == canonical_formula(formula)


class TestContentHash:
    def test_hash_is_hex_sha256(self):
        digest = content_hash(x < 1)
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")

    def test_kind_and_variables_distinguish(self):
        formula = (x < 1) & (y < 1)
        base = content_hash(formula, ("x", "y"), "volume")
        assert content_hash(formula, ("x", "y"), "decide") != base
        assert content_hash(formula, ("y", "x"), "volume") != base
        assert content_hash(formula, ("x", "y"), "volume") == base

    def test_semantic_variants_share_hash(self):
        a = content_hash((x < 1) & (y < 1), ("x", "y"))
        b = content_hash((y < 1) & (x < 1), ("x", "y"))
        assert a == b
