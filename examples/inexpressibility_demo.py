"""Why exact/approximate aggregation is NOT definable: Section 4, live.

Run:  python examples/inexpressibility_demo.py

Three demonstrations of the paper's impossibility machinery:

1. **Separating sentences** (Proposition 1): for every quantifier rank r,
   an Ehrenfeucht-Fraisse certificate — two instances on opposite sides
   of the (c1, c2) band that the duplicator equalises in r rounds —
   refutes every rank-r candidate at once.
2. **The AVG reduction** (Theorem 1): approximating AVG within eps < 1/2
   would decide cardinality ratios.  We run the reduction's translation
   and watch the average track the ratio.
3. **Good instances and circuits** (Theorem 2 / Lemma 3): an approximate
   volume operator would yield a cardinality-gap sentence; compiled to
   circuits, fixed sentences visibly fail as n grows.
"""

from fractions import Fraction

from repro.inexpressibility import (
    GoodInstance,
    avg_reduction,
    compile_sentence,
    ef_refutation_pair,
    good_constants,
    interval_sets,
    refute_rank,
    separates_cardinalities,
    separation_constants,
)
from repro.logic import Relation, exists_adom, variables


def demo_ef_games() -> None:
    print("=" * 70)
    print("1. EF-game refutation of separating sentences (c1 = c2 = 2)")
    print("=" * 70)
    for rank in (1, 2, 3, 4):
        a, b = ef_refutation_pair(2.0, 2.0, rank)
        verdict = refute_rank(2.0, 2.0, rank)
        ca, cb = a.cardinalities(), b.cardinalities()
        print(f"  rank {rank}: A = (U1:{ca['U1']}, U2:{ca['U2']}),"
              f" B = (U1:{cb['U1']}, U2:{cb['U2']}) ->"
              f" duplicator wins: {verdict}")
    print("  => no FO sentence of these ranks separates the cardinalities.")


def demo_avg_reduction() -> None:
    print()
    print("=" * 70)
    print("2. Theorem 1: an approximate AVG would decide cardinality ratios")
    print("=" * 70)
    epsilon = Fraction(1, 10)
    c, _ = separation_constants(epsilon)
    print(f"  eps = {epsilon}, derived separation constant c = {c}")
    print(f"  {'card U1':>8} {'card U2':>8} {'AVG(translated)':>16} {'decision':>10}")
    for n1, n2 in ((20, 1), (8, 1), (1, 1), (1, 8), (1, 20)):
        reduction = avg_reduction(list(range(n1)), list(range(n2)), epsilon)
        decision = reduction.decide_ratio(reduction.average, c)
        print(f"  {n1:>8} {n2:>8} {float(reduction.average):>16.4f} {decision:>10}")
    print("  => AVG is monotone in the ratio; an eps-approximation of it")
    print("     would implement a separating sentence, contradicting (1).")


def demo_good_instances() -> None:
    print()
    print("=" * 70)
    print("3. Theorem 2: approximate volume decides card(B)/n; circuits fail")
    print("=" * 70)
    epsilon = Fraction(1, 10)
    c1, c2 = good_constants(epsilon)
    print(f"  eps = {epsilon}: c1 = {c1}, c2 = {c2}")
    n = 20
    for size in (2, 10, 18):
        instance = GoodInstance.make(n, list(range(size)))
        x_set, _ = interval_sets(instance)
        print(f"  n = {n}, card(B) = {size:>2}: VOL(X) = {x_set.measure()} "
              f"(= card(B)/n)")
    print("  an eps-approximation of VOL(X) separates card(B) < c1*n from")
    print("  card(B) > c2*n ... but compiled FO_act circuits cannot:")

    x, y = variables("x y")
    B = Relation("B", 1)
    candidate = exists_adom(x, exists_adom(y, B(x) & B(y) & (x < y)))
    for size in (8, 16, 32):
        circuit = compile_sentence(candidate, size)
        ok = separates_cardinalities(circuit, float(c1), float(c2))
        print(f"  candidate 'B has two elements' at n = {size:>2}: "
              f"depth {circuit.depth()}, size {circuit.size():>5}, "
              f"separates: {ok}")
    print("  => constant depth + polynomial size = AC^0, and AC^0 cannot")
    print("     count — the engine of the paper's Lemma 3.")


def main() -> None:
    demo_ef_games()
    demo_avg_reduction()
    demo_good_instances()


if __name__ == "__main__":
    main()
