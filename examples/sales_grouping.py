"""Grouping, bag semantics, and database serialisation.

Run:  python examples/sales_grouping.py

Exercises the library's extension surface (DESIGN.md section 4b):

* GROUP BY — the paper's concluding open problem, implemented inside the
  range-restriction discipline: group keys come from an END-generated
  finite set, each group's aggregate is an ordinary summation term;
* bag semantics — the paper's footnote notes AVG is "typically defined
  using the bag semantics"; with repeated data values the two semantics
  disagree, and this example shows where;
* the text serialisation format for instances.
"""

from fractions import Fraction

from repro.core import (
    DetFormula,
    GroupedAggregate,
    SumTerm,
    endpoints_range,
    group_by,
)
from repro.db import (
    Bag,
    FiniteInstance,
    Schema,
    bag_avg,
    bag_count,
    bag_sum,
    dumps_instance,
    loads_instance,
)
from repro.logic import Relation, Var, exists_adom, variables


def main() -> None:
    # SALES(region, amount); REGION(id).  The raw feed contains a
    # duplicate row — two separate 75-unit sales in region 3.
    raw_sales = [
        (1, 120), (1, 80), (2, 40),
        (3, 75), (3, 75), (3, 50),
    ]
    schema = Schema.make({"SALES": 2, "REGION": 1})
    database = FiniteInstance.make(
        schema, {"SALES": raw_sales, "REGION": [1, 2, 3]}
    )
    SALES, REGION = Relation("SALES", 2), Relation("REGION", 1)
    g, w, r = Var("g"), Var("w"), Var("r")

    # -- GROUP BY region: total sales per region -----------------------------------
    keys = endpoints_range("g", REGION(g))
    amounts = endpoints_range(
        "w", exists_adom(r, SALES(r, w)), guard=SALES(g, w)
    )
    per_group_total = SumTerm(DetFormula.from_term("v", ("w",), w), amounts)
    grouped = GroupedAggregate("g", keys, per_group_total)
    totals = group_by(database, grouped)
    print("total sales per region (GROUP BY through END ranges, SET semantics):")
    for region, total in sorted(totals.items()):
        print(f"  region {region}: {total}")
    print("  note region 3: the stored relation is a SET, so the duplicate")
    print("  75-unit sale collapsed — its total is 125, not 200.")

    # -- Bag vs set semantics ---------------------------------------------------
    # The raw feed keeps the duplicate; bag semantics (SQL's) weighs it.
    region3 = Bag.make([amount for region, amount in raw_sales if region == 3])
    set_values = sorted(region3.support())
    set_avg = sum(v[0] for v in set_values) / len(set_values)
    print("\nregion 3 raw amounts:", [str(row[0]) for row in region3])
    print("  bag COUNT:", bag_count(region3), " set COUNT:", len(set_values))
    print("  bag SUM:  ", bag_sum(region3), "  set SUM:  ",
          sum(v[0] for v in set_values))
    print("  bag AVG:  ", bag_avg(region3), " set AVG:  ", set_avg)
    print("  (the paper's footnote 2: the set simplification suffices for")
    print("   the impossibility theorems, but real AVG is the bag one)")

    # -- Serialisation round-trip ----------------------------------------------
    text = dumps_instance(database)
    print("\nserialised instance:")
    for line in text.strip().splitlines():
        print("  " + line)
    restored = loads_instance(text)
    assert restored.relation("SALES") == database.relation("SALES")
    print("round-trip: OK")


if __name__ == "__main__":
    main()
