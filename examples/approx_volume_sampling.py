"""Approximate volumes of semi-algebraic sets: Theorem 4 in action.

Run:  python examples/approx_volume_sampling.py

Semi-algebraic sets (here: parameterised disks) have no exact volume
inside the constraint language — the paper proves no well-behaved
first-order language can even *approximate* VOL_I uniformly.  What FO +
POLY + SUM + W offers instead (Theorem 4) is a probabilistic operator:
one witness-drawn sample approximates the volume for *every* parameter
value at once.  This script

1. builds a semi-algebraic query phi(a; y1, y2) over a small database,
2. sizes the sample with the Goldberg-Jerrum constant of Proposition 6,
3. checks the estimates against closed-form truth across a parameter grid,
4. contrasts with the infeasible exact-formula route: the Karpinski-
   Macintyre construction's size for this query (the Section 3 blow-up).
"""

import math
from fractions import Fraction

import numpy as np

from repro.approx import km_cost_for_query
from repro.core import UniformVolumeApproximator, theorem4_sample_size
from repro.db import FiniteInstance, Schema
from repro.logic import Relation, exists_adom, variables
from repro.vc import goldberg_jerrum_constant_for_query


def main() -> None:
    rng = np.random.default_rng(7)
    a, y1, y2, t = variables("a y1 y2 t")
    R = Relation("R", 1)

    # The database stores the available radius factors.
    schema = Schema.make({"R": 1})
    database = FiniteInstance.make(schema, {"R": [Fraction(1, 2)]})

    # phi(a; y1, y2): the disk of radius a*t centred at (1/2, 1/2).
    query = exists_adom(
        t,
        R(t) & ((y1 - Fraction(1, 2)) ** 2 + (y2 - Fraction(1, 2)) ** 2 < (a * t) ** 2),
    )

    epsilon, delta = 0.03, 0.1
    constant = goldberg_jerrum_constant_for_query(
        query, point_arity=2, max_relation_arity=1
    )
    bound = theorem4_sample_size(epsilon, delta, constant, database.size())
    print(f"Proposition 6 constant C = {constant:.1f}")
    print(f"Theorem 4 sample bound M(eps={epsilon}, delta={delta}) = {bound:,}")

    # The bound is worst-case; a smaller sample already illustrates the
    # uniformity. Use the bound if you want the full guarantee.
    sample_size = 20_000
    approx = UniformVolumeApproximator(
        query, database, ("a",), ("y1", "y2"),
        epsilon=epsilon, delta=delta, rng=rng, sample_size=sample_size,
    )
    print(f"\none shared sample of {sample_size:,} witness draws; "
          "estimates for all parameters:")
    print(f"  {'a':>5} {'estimate':>10} {'true pi(a/2)^2':>15} {'error':>8}")
    worst = 0.0
    for value in (0.2, 0.4, 0.6, 0.8, 1.0):
        estimate = approx.estimate([value])
        truth = math.pi * (value / 2) ** 2
        worst = max(worst, abs(estimate - truth))
        print(f"  {value:>5} {estimate:>10.4f} {truth:>15.4f} "
              f"{abs(estimate - truth):>8.4f}")
    print(f"  sup-error over the grid: {worst:.4f} (target eps = {epsilon})")

    # The exact-formula alternative the paper rules out in practice:
    cost = km_cost_for_query(query, database, param_vars=1, point_vars=2,
                             epsilon=epsilon)
    print("\nKarpinski-Macintyre exact-construction size for the same query:")
    print(f"  atoms      >= {cost.atoms:.2e}")
    print(f"  quantifiers>= {cost.quantifiers:.2e}")
    print("  (compare the paper's Section 3 example: >= 1e9 atoms, "
          ">= 1e11 quantifiers)")


if __name__ == "__main__":
    main()
