"""Quickstart: constraint databases, closure, and exact aggregation.

Run:  python examples/quickstart.py

Walks through the library's core loop on a semi-linear database:

1. define a finitely representable (constraint) database,
2. run an FO + LIN query and materialise its output *as constraints*
   (the closure property),
3. compute the exact volume of the output (Theorem 3),
4. apply classical SQL-style aggregates through FO + POLY + SUM.
"""

from fractions import Fraction

from repro.core import (
    aggregate_avg,
    aggregate_count,
    aggregate_sum,
    endpoints_range,
    sum_of_endpoints,
    volume_of_query,
)
from repro.db import FiniteInstance, FRInstance, Schema, output_formula
from repro.logic import Relation, Var, between, exists, exists_adom, variables


def main() -> None:
    x, y = variables("x y")

    # -- 1. a constraint database ------------------------------------------------
    # S is the triangle 0 <= y <= x <= 1, stored as linear constraints.
    schema = Schema.make({"S": 2})
    database = FRInstance.make(
        schema, {"S": ((x, y), (0 <= y) & (y <= x) & (x <= 1))}
    )
    S = Relation("S", 2)
    print("database: S(x, y) :=", database.definition("S")[1])

    # -- 2. an FO + LIN query, closed under constraints ---------------------------
    # "the part of S below the horizontal line y = 1/4"
    query = S(x, y) & (y <= Fraction(1, 4))
    output = output_formula(query, database)
    print("\nquery:   S(x,y) AND y <= 1/4")
    print("output (quantifier-free constraints):", output)

    # Projection with a real quantifier — still closed:
    shadow = output_formula(exists(y, S(x, y) & (y > Fraction(1, 2))), database)
    print("shadow of the top part on x:", shadow)

    # -- 3. exact volume (Theorem 3) -----------------------------------------------
    area = volume_of_query(query, database, ("x", "y"))
    print("\nexact area of the output:", area, "=", float(area))

    # -- 4. classical aggregates over a finite instance ---------------------------
    points_schema = Schema.make({"P": 1})
    points = FiniteInstance.make(
        points_schema, {"P": [Fraction(1, 4), Fraction(1, 2), Fraction(7, 8)]}
    )
    P = Relation("P", 1)
    w = Var("w")
    rho = endpoints_range("w", P(w))
    print("\nfinite instance P =", sorted(points.relation("P")))
    print("COUNT(P) =", aggregate_count(points, rho))
    print("SUM(P)   =", aggregate_sum(points, rho, w))
    print("AVG(P)   =", aggregate_avg(points, rho, w))

    # The paper's first FO + POLY + SUM example: summing interval endpoints.
    body = exists_adom(y, P(y) & (0 < x) & (x < y))
    print(
        "sum of endpoints of { x : exists p in P, 0 < x < p } =",
        sum_of_endpoints(points, x, body),
    )


if __name__ == "__main__":
    main()
