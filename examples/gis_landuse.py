"""GIS land-use scenario: spatial aggregation over a parcel database.

Run:  python examples/gis_landuse.py

The paper motivates constraint-database aggregation with GIS workloads:
parcels stored as constraint relations, queries asking for areas and
classical statistics.  This example builds a small land-use database
(parcels as convex polygons = semi-linear relations), then

* computes each parcel's exact area two ways — the Theorem 3 slicing
  volume and the paper's Section 5 fan-triangulation SUM term,
* answers "total developed area inside the planning window",
* computes AVG/MIN/MAX parcel area with FO + POLY + SUM aggregates.
"""

from fractions import Fraction

from repro.core import polygon_area, volume_of_query, volume_of_relation
from repro.db import FRInstance, Schema
from repro.geometry import shoelace_area
from repro.logic import Relation, between, variables


def F(*args) -> Fraction:
    return Fraction(*args)


#: name -> (land use, CCW vertices)
PARCELS = {
    "riverside":  ("residential", [(F(0), F(0)), (F(4), F(0)), (F(4), F(2)), (F(0), F(3))]),
    "old_mill":   ("industrial",  [(F(4), F(0)), (F(7), F(0)), (F(7), F(2)), (F(4), F(2))]),
    "orchard":    ("agricultural", [(F(0), F(3)), (F(4), F(2)), (F(6), F(5)), (F(1), F(6))]),
    "depot":      ("industrial",  [(F(7), F(0)), (F(9), F(1)), (F(8), F(3)), (F(7), F(2))]),
}


def parcel_database() -> FRInstance:
    """Each parcel as a constraint relation (conjunction of halfplanes)."""
    from repro.geometry import Polyhedron
    from repro.qe.fourier_motzkin import constraints_to_formula

    x, y = variables("x y")
    schema = Schema.make({name.upper(): 2 for name in PARCELS})
    definitions = {}
    for name, (_, vertices) in PARCELS.items():
        polygon = Polyhedron.from_vertices_2d(("x", "y"), vertices)
        definitions[name.upper()] = ((x, y), constraints_to_formula(polygon.constraints))
    return FRInstance.make(schema, definitions)


def main() -> None:
    x, y = variables("x y")
    database = parcel_database()

    print("parcel areas (exact):")
    print(f"  {'parcel':<10} {'use':<12} {'Theorem 3':<10} {'SUM term':<10} {'shoelace':<10}")
    total = Fraction(0)
    areas = {}
    for name, (use, vertices) in PARCELS.items():
        by_volume = volume_of_relation(database, name.upper())
        by_sum_term = polygon_area(vertices)
        by_shoelace = shoelace_area(vertices)
        assert by_volume == by_sum_term == by_shoelace
        areas[name] = by_volume
        total += by_volume
        print(f"  {name:<10} {use:<12} {str(by_volume):<10} "
              f"{str(by_sum_term):<10} {str(by_shoelace):<10}")
    print("  total mapped area:", total)

    # "Developed (industrial) area inside the planning window [3,8]x[0,4]"
    window = between(3, x, 8) & between(0, y, 4)
    OLD_MILL = Relation("OLD_MILL", 2)
    DEPOT = Relation("DEPOT", 2)
    developed = (OLD_MILL(x, y) | DEPOT(x, y)) & window
    developed_area = volume_of_query(developed, database, ("x", "y"))
    print("\nindustrial area inside window [3,8]x[0,4]:",
          developed_area, "=", float(developed_area))

    # Classical statistics over the (finite) area table.
    values = sorted(areas.values())
    average = sum(values, Fraction(0)) / len(values)
    print("\nparcel-area statistics:")
    print("  COUNT =", len(values))
    print("  AVG   =", average, "=", float(average))
    print("  MIN   =", values[0], " MAX =", values[-1])

    # Overlap audit: parcels should tile without double counting.
    RIVERSIDE = Relation("RIVERSIDE", 2)
    ORCHARD = Relation("ORCHARD", 2)
    overlap = volume_of_query(
        RIVERSIDE(x, y) & ORCHARD(x, y), database, ("x", "y")
    )
    print("\nriverside/orchard overlap area (expect 0):", overlap)


if __name__ == "__main__":
    main()
