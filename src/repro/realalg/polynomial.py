"""Sparse multivariate polynomials with exact rational coefficients.

A :class:`Polynomial` is a mapping from exponent vectors (one entry per
variable in a fixed variable tuple) to nonzero ``Fraction`` coefficients.
All arithmetic is exact.  Polynomials over different variable tuples are
aligned automatically by union of variables.

This is the coefficient workhorse behind quantifier elimination
(:mod:`repro.qe`) and the exact geometry code.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

from ..logic.terms import Add, Const, Mul, Neg, Pow, Term, Var

__all__ = ["Polynomial", "term_to_polynomial"]

Monomial = tuple[int, ...]


class Polynomial:
    """An immutable sparse multivariate polynomial over the rationals."""

    __slots__ = ("variables", "coeffs", "_hash")

    def __init__(
        self,
        variables: tuple[str, ...],
        coeffs: Mapping[Monomial, Fraction],
    ):
        cleaned = {
            mono: Fraction(c) for mono, c in coeffs.items() if c != 0
        }
        for mono in cleaned:
            if len(mono) != len(variables):
                raise ValueError(
                    f"monomial {mono} does not match variables {variables}"
                )
        object.__setattr__(self, "variables", tuple(variables))
        object.__setattr__(self, "coeffs", cleaned)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("Polynomial is immutable")

    # -- constructors --------------------------------------------------------
    @staticmethod
    def constant(value, variables: tuple[str, ...] = ()) -> "Polynomial":
        """The constant polynomial *value* over *variables*."""
        value = Fraction(value)
        if value == 0:
            return Polynomial(variables, {})
        zero = (0,) * len(variables)
        return Polynomial(variables, {zero: value})

    @staticmethod
    def variable(name: str, variables: tuple[str, ...] | None = None) -> "Polynomial":
        """The polynomial ``name`` over *variables* (default: just itself)."""
        if variables is None:
            variables = (name,)
        if name not in variables:
            raise ValueError(f"{name!r} not among variables {variables}")
        mono = tuple(1 if v == name else 0 for v in variables)
        return Polynomial(variables, {mono: Fraction(1)})

    # -- basic queries ---------------------------------------------------------
    def is_zero(self) -> bool:
        return not self.coeffs

    def is_constant(self) -> bool:
        return all(all(e == 0 for e in mono) for mono in self.coeffs)

    def constant_value(self) -> Fraction:
        """The value of a constant polynomial (raises otherwise)."""
        if not self.is_constant():
            raise ValueError("polynomial is not constant")
        if not self.coeffs:
            return Fraction(0)
        return next(iter(self.coeffs.values()))

    def total_degree(self) -> int:
        """The total degree (0 for constants, including the zero polynomial)."""
        if not self.coeffs:
            return 0
        return max(sum(mono) for mono in self.coeffs)

    def degree_in(self, var: str) -> int:
        """Degree in a single variable (0 if the variable does not occur)."""
        if var not in self.variables:
            return 0
        index = self.variables.index(var)
        if not self.coeffs:
            return 0
        return max(mono[index] for mono in self.coeffs)

    def used_variables(self) -> frozenset[str]:
        """Variables that actually occur with positive exponent."""
        used = set()
        for mono in self.coeffs:
            for var, exp in zip(self.variables, mono):
                if exp > 0:
                    used.add(var)
        return frozenset(used)

    # -- alignment ---------------------------------------------------------
    def with_variables(self, variables: tuple[str, ...]) -> "Polynomial":
        """Re-express this polynomial over the (super)set *variables*."""
        if variables == self.variables:
            return self
        missing = self.used_variables() - set(variables)
        if missing:
            raise ValueError(f"cannot drop used variables {sorted(missing)}")
        index_map = []
        for var in self.variables:
            index_map.append(variables.index(var) if var in variables else -1)
        coeffs: dict[Monomial, Fraction] = {}
        for mono, coeff in self.coeffs.items():
            new_mono = [0] * len(variables)
            for old_index, exp in enumerate(mono):
                if exp == 0:
                    continue
                new_mono[index_map[old_index]] = exp
            coeffs[tuple(new_mono)] = coeffs.get(tuple(new_mono), Fraction(0)) + coeff
        return Polynomial(variables, coeffs)

    @staticmethod
    def align(left: "Polynomial", right: "Polynomial") -> tuple["Polynomial", "Polynomial"]:
        """Bring two polynomials over the union of their variables."""
        if left.variables == right.variables:
            return left, right
        merged = tuple(
            sorted(set(left.variables) | set(right.variables))
        )
        return left.with_variables(merged), right.with_variables(merged)

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other: "Polynomial | int | Fraction") -> "Polynomial":
        other = self._coerce(other)
        left, right = Polynomial.align(self, other)
        coeffs = dict(left.coeffs)
        for mono, coeff in right.coeffs.items():
            coeffs[mono] = coeffs.get(mono, Fraction(0)) + coeff
        return Polynomial(left.variables, coeffs)

    def __radd__(self, other) -> "Polynomial":
        return self + other

    def __neg__(self) -> "Polynomial":
        return Polynomial(self.variables, {m: -c for m, c in self.coeffs.items()})

    def __sub__(self, other) -> "Polynomial":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Polynomial":
        return self._coerce(other) - self

    def __mul__(self, other) -> "Polynomial":
        other = self._coerce(other)
        left, right = Polynomial.align(self, other)
        coeffs: dict[Monomial, Fraction] = {}
        for mono1, coeff1 in left.coeffs.items():
            for mono2, coeff2 in right.coeffs.items():
                mono = tuple(a + b for a, b in zip(mono1, mono2))
                coeffs[mono] = coeffs.get(mono, Fraction(0)) + coeff1 * coeff2
        return Polynomial(left.variables, coeffs)

    def __rmul__(self, other) -> "Polynomial":
        return self * other

    def __pow__(self, exponent: int) -> "Polynomial":
        if not isinstance(exponent, int) or exponent < 0:
            raise ValueError("exponent must be a non-negative integer")
        result = Polynomial.constant(1, self.variables)
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base * base
            exponent >>= 1
        return result

    def _coerce(self, other) -> "Polynomial":
        if isinstance(other, Polynomial):
            return other
        if isinstance(other, (int, Fraction)):
            return Polynomial.constant(other, self.variables)
        raise TypeError(f"cannot combine Polynomial with {type(other).__name__}")

    # -- evaluation & substitution -------------------------------------------
    def evaluate(self, env: Mapping[str, Fraction]) -> Fraction:
        """Evaluate at a rational point (all used variables must be bound)."""
        total = Fraction(0)
        for mono, coeff in self.coeffs.items():
            value = coeff
            for var, exp in zip(self.variables, mono):
                if exp:
                    value *= Fraction(env[var]) ** exp
            total += value
        return total

    def substitute(self, env: Mapping[str, "Polynomial | Fraction | int"]) -> "Polynomial":
        """Substitute polynomials (or constants) for some variables."""
        remaining = tuple(v for v in self.variables if v not in env)
        result = Polynomial.constant(0, remaining)
        for mono, coeff in self.coeffs.items():
            part = Polynomial.constant(coeff, remaining)
            for var, exp in zip(self.variables, mono):
                if exp == 0:
                    continue
                if var in env:
                    replacement = env[var]
                    if not isinstance(replacement, Polynomial):
                        replacement = Polynomial.constant(replacement)
                    part = part * replacement ** exp
                else:
                    part = part * Polynomial.variable(var, remaining) ** exp
            result = result + part
        return result

    # -- univariate views ---------------------------------------------------
    def as_univariate_in(self, var: str) -> list["Polynomial"]:
        """Coefficients of this polynomial viewed as univariate in *var*.

        Returns ``[c0, c1, ..., cd]`` with each ``ci`` a polynomial in the
        remaining variables, so ``self = sum ci * var**i``.
        """
        if var not in self.variables:
            return [self]
        index = self.variables.index(var)
        rest = tuple(v for v in self.variables if v != var)
        degree = self.degree_in(var)
        buckets: list[dict[Monomial, Fraction]] = [dict() for _ in range(degree + 1)]
        for mono, coeff in self.coeffs.items():
            exp = mono[index]
            rest_mono = tuple(e for i, e in enumerate(mono) if i != index)
            bucket = buckets[exp]
            bucket[rest_mono] = bucket.get(rest_mono, Fraction(0)) + coeff
        return [Polynomial(rest, b) for b in buckets]

    def univariate_coefficients(self) -> list[Fraction]:
        """Dense coefficient list ``[c0, ..., cd]`` of a univariate polynomial.

        Requires at most one used variable; a constant returns ``[c]``.
        """
        used = self.used_variables()
        if len(used) > 1:
            raise ValueError(f"polynomial is multivariate in {sorted(used)}")
        if not used:
            return [self.constant_value()]
        var = next(iter(used))
        coeff_polys = self.as_univariate_in(var)
        return [p.constant_value() for p in coeff_polys]

    # -- equality / display ---------------------------------------------------
    def __eq__(self, other) -> bool:
        if isinstance(other, (int, Fraction)):
            return self.is_constant() and self.constant_value() == other
        if not isinstance(other, Polynomial):
            return NotImplemented
        left, right = Polynomial.align(self, other)
        return left.coeffs == right.coeffs

    def __hash__(self) -> int:
        if self._hash is None:
            used = sorted(self.used_variables())
            canon = self.with_variables(tuple(used)) if tuple(used) != self.variables else self
            value = hash((tuple(used), frozenset(canon.coeffs.items())))
            object.__setattr__(self, "_hash", value)
        return self._hash

    def __str__(self) -> str:
        if not self.coeffs:
            return "0"
        parts = []
        for mono, coeff in sorted(self.coeffs.items(), reverse=True):
            factors = []
            for var, exp in zip(self.variables, mono):
                if exp == 1:
                    factors.append(var)
                elif exp > 1:
                    factors.append(f"{var}^{exp}")
            if not factors:
                parts.append(str(coeff))
            elif coeff == 1:
                parts.append("*".join(factors))
            elif coeff == -1:
                parts.append("-" + "*".join(factors))
            else:
                parts.append(f"{coeff}*" + "*".join(factors))
        return " + ".join(parts).replace("+ -", "- ")

    def __repr__(self) -> str:
        return f"Polynomial({self})"


def term_to_polynomial(term: Term, variables: tuple[str, ...] | None = None) -> Polynomial:
    """Convert a :class:`~repro.logic.terms.Term` to a :class:`Polynomial`."""
    if variables is None:
        variables = tuple(sorted(term.variables()))
    return _convert(term, variables)


def _convert(term: Term, variables: tuple[str, ...]) -> Polynomial:
    if isinstance(term, Var):
        return Polynomial.variable(term.name, variables)
    if isinstance(term, Const):
        return Polynomial.constant(term.value, variables)
    if isinstance(term, Add):
        result = Polynomial.constant(0, variables)
        for arg in term.args:
            result = result + _convert(arg, variables)
        return result
    if isinstance(term, Mul):
        result = Polynomial.constant(1, variables)
        for arg in term.args:
            result = result * _convert(arg, variables)
        return result
    if isinstance(term, Neg):
        return -_convert(term.arg, variables)
    if isinstance(term, Pow):
        return _convert(term.base, variables) ** term.exponent
    raise TypeError(f"unknown term node {type(term).__name__}")
