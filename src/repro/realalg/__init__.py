"""Exact real algebra: the computational substrate for constraint solving.

Everything here is exact over the rationals: multivariate polynomials,
univariate division/GCD, Sturm sequences, root isolation, real algebraic
numbers, and resultants/discriminants.  Floats never appear.
"""

from .polynomial import Polynomial, term_to_polynomial
from .univariate import UPoly
from .sturm import count_real_roots, count_roots, sign_variations_at, sturm_chain
from .roots import Isolation, isolate_real_roots, real_roots_as_fractions, refine
from .algebraic import RealAlgebraic
from .resultant import discriminant, resultant, sylvester_matrix

__all__ = [
    "Polynomial",
    "term_to_polynomial",
    "UPoly",
    "sturm_chain",
    "sign_variations_at",
    "count_roots",
    "count_real_roots",
    "Isolation",
    "isolate_real_roots",
    "refine",
    "real_roots_as_fractions",
    "RealAlgebraic",
    "resultant",
    "discriminant",
    "sylvester_matrix",
]
