"""Resultants and discriminants of multivariate polynomials.

The resultant of two polynomials viewed as univariate in a chosen variable
is computed as the determinant of the Sylvester matrix, whose entries are
polynomials in the remaining variables.  The determinant is expanded by
minors with memoisation over column subsets — exact, and fast enough for
the small degrees (<= ~6) arising in CAD projection.
"""

from __future__ import annotations

from fractions import Fraction

from .polynomial import Polynomial

__all__ = ["sylvester_matrix", "resultant", "discriminant"]


def sylvester_matrix(
    p: Polynomial, q: Polynomial, var: str
) -> list[list[Polynomial]]:
    """The Sylvester matrix of *p* and *q* with respect to *var*.

    Both polynomials must have positive degree in *var*.
    """
    p_coeffs = p.as_univariate_in(var)  # [c0, ..., cm]
    q_coeffs = q.as_univariate_in(var)
    m, n = len(p_coeffs) - 1, len(q_coeffs) - 1
    if m < 1 or n < 1:
        raise ValueError("both polynomials must have positive degree in var")
    size = m + n
    rest_vars = tuple(sorted((set(p.variables) | set(q.variables)) - {var}))
    zero = Polynomial.constant(0, rest_vars)

    def aligned(coeffs: list[Polynomial]) -> list[Polynomial]:
        return [c.with_variables(rest_vars) if c.variables != rest_vars else c
                for c in coeffs]

    p_row = list(reversed(aligned(p_coeffs)))  # [cm, ..., c0]
    q_row = list(reversed(aligned(q_coeffs)))
    matrix: list[list[Polynomial]] = []
    for shift in range(n):
        row = [zero] * shift + p_row + [zero] * (size - shift - len(p_row))
        matrix.append(row)
    for shift in range(m):
        row = [zero] * shift + q_row + [zero] * (size - shift - len(q_row))
        matrix.append(row)
    return matrix


def _determinant(matrix: list[list[Polynomial]]) -> Polynomial:
    """Determinant by expansion over column subsets with memoisation."""
    size = len(matrix)
    if size == 0:
        return Polynomial.constant(1)
    full_mask = (1 << size) - 1

    cache: dict[int, Polynomial] = {}

    def minor(row: int, columns_mask: int) -> Polynomial:
        # Determinant of the submatrix of rows row..size-1 and the columns
        # present in columns_mask.
        if row == size:
            return Polynomial.constant(1)
        cached = cache.get(columns_mask)
        if cached is not None:
            return cached
        total = Polynomial.constant(0)
        sign = 1
        mask = columns_mask
        position = 0
        while mask:
            column = (mask & -mask).bit_length() - 1
            entry = matrix[row][column]
            if not entry.is_zero():
                sub = minor(row + 1, columns_mask & ~(1 << column))
                contribution = entry * sub
                total = total + (contribution if sign > 0 else -contribution)
            sign = -sign
            mask &= mask - 1
            position += 1
        cache[columns_mask] = total
        return total

    # Note: the cache key omits `row`, which is safe because the number of
    # remaining rows always equals the popcount of columns_mask.
    return minor(0, full_mask)


def resultant(p: Polynomial, q: Polynomial, var: str) -> Polynomial:
    """Resultant of *p* and *q* with respect to *var*.

    The resultant vanishes at exactly the points of the remaining variables
    where *p* and *q* have a common root in *var* (or both leading
    coefficients vanish) — the key fact used in CAD projection.
    """
    dp, dq = p.degree_in(var), q.degree_in(var)
    if dp == 0 and dq == 0:
        raise ValueError("at least one polynomial must involve var")
    if dp == 0:
        # res(c, q) = c^deg(q)
        return p ** dq
    if dq == 0:
        return q ** dp
    return _determinant(sylvester_matrix(p, q, var))


def discriminant(p: Polynomial, var: str) -> Polynomial:
    """Discriminant of *p* with respect to *var* (up to leading coefficient).

    We return ``res(p, dp/dvar)`` rather than dividing by the leading
    coefficient; for CAD projection only the *zero set* matters and the two
    agree outside the vanishing of the leading coefficient, which is added
    to the projection set separately.
    """
    degree = p.degree_in(var)
    if degree < 2:
        return Polynomial.constant(1)
    derivative = _derivative_in(p, var)
    if derivative.is_zero():
        return Polynomial.constant(0)
    return resultant(p, derivative, var)


def _derivative_in(p: Polynomial, var: str) -> Polynomial:
    if var not in p.variables:
        return Polynomial.constant(0)
    index = p.variables.index(var)
    coeffs: dict[tuple[int, ...], Fraction] = {}
    for mono, coeff in p.coeffs.items():
        exp = mono[index]
        if exp == 0:
            continue
        new_mono = tuple(
            e - 1 if i == index else e for i, e in enumerate(mono)
        )
        coeffs[new_mono] = coeffs.get(new_mono, Fraction(0)) + coeff * exp
    return Polynomial(p.variables, coeffs)
