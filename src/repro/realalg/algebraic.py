"""Real algebraic numbers represented as (square-free polynomial, isolating
interval) pairs.

Arithmetic on algebraic numbers is deliberately *not* implemented (the
library never needs it); what is needed — and provided exactly — is:

* comparison with rationals and with other algebraic numbers,
* the sign of an arbitrary rational polynomial at the number
  (:meth:`RealAlgebraic.sign_of`), via GCD for the zero test and certified
  interval refinement otherwise,
* conversion to ``Fraction``/``float`` approximations of any requested
  accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import total_ordering

from .roots import Isolation, isolate_real_roots, refine
from .sturm import count_roots
from .univariate import UPoly

__all__ = ["RealAlgebraic"]


@total_ordering
@dataclass(frozen=True)
class RealAlgebraic:
    """A real algebraic number: the unique root of ``poly`` in ``isolation``.

    ``poly`` is square-free and monic.  Construct via :meth:`from_rational`
    or :meth:`roots_of`; the raw constructor trusts its arguments.
    """

    poly: UPoly
    isolation: Isolation

    # -- constructors --------------------------------------------------------
    @staticmethod
    def from_rational(value: Fraction | int) -> "RealAlgebraic":
        value = Fraction(value)
        return RealAlgebraic(
            UPoly([-value, 1]), Isolation(value, value, exact=value)
        )

    @staticmethod
    def roots_of(poly: UPoly) -> list["RealAlgebraic"]:
        """All real roots of *poly* as algebraic numbers, sorted increasingly."""
        squarefree = poly.squarefree_part()
        return [
            RealAlgebraic(squarefree, isolation)
            for isolation in isolate_real_roots(squarefree)
        ]

    # -- queries ---------------------------------------------------------------
    def is_rational(self) -> bool:
        return self.isolation.is_exact()

    def as_fraction(self) -> Fraction:
        """Exact value if rational; raises otherwise."""
        if self.isolation.exact is None:
            raise ValueError("number is irrational; use approximate() instead")
        return self.isolation.exact

    def approximate(self, max_width: Fraction = Fraction(1, 10**15)) -> Fraction:
        """A rational approximation within *max_width* of the true value."""
        refined = refine(self.poly, self.isolation, max_width)
        return refined.exact if refined.is_exact() else refined.midpoint()

    def __float__(self) -> float:
        return float(self.approximate(Fraction(1, 10**18)))

    def _refined(self, max_width: Fraction) -> Isolation:
        return refine(self.poly, self.isolation, max_width)

    def bounds(self, max_width: Fraction = Fraction(1, 2**20)) -> tuple[Fraction, Fraction]:
        """A rational enclosure ``low <= self <= high`` of width < *max_width*.

        For a rational value both bounds equal the value itself.
        """
        refined = self._refined(max_width)
        if refined.is_exact():
            return refined.exact, refined.exact
        return refined.low, refined.high

    # -- sign of a polynomial at this number -----------------------------------
    #: Cheap refinement rounds tried before falling back to a GCD zero-test
    #: (polynomial GCD over Q is expensive for large coefficients).
    _QUICK_ROUNDS = 6

    def sign_of(self, other: UPoly, max_iterations: int = 256) -> int:
        """Exact sign of ``other`` evaluated at this algebraic number."""
        if self.isolation.is_exact():
            return other.sign_at(self.isolation.exact)
        if other.is_zero():
            return 0
        # Fast path: a nonzero sign is usually certified by a few rounds of
        # interval refinement, with no GCD needed.
        isolation = self.isolation
        width = isolation.width()
        for round_index in range(max_iterations):
            low_bound, high_bound = other.evaluate_interval(
                isolation.low, isolation.high
            )
            if low_bound > 0:
                return 1
            if high_bound < 0:
                return -1
            if round_index == self._QUICK_ROUNDS:
                # Zero test: this number is a root of `other` iff
                # gcd(poly, other) has a root in the isolating interval
                # (gcd's roots are exactly the common roots, and `poly`
                # has a single root there).
                common = self.poly.gcd(other)
                if common.degree() > 0 and count_roots(
                    common, isolation.low, isolation.high
                ) == 1:
                    return 0
            width /= 2
            isolation = refine(self.poly, isolation, width)
            if isolation.is_exact():
                return other.sign_at(isolation.exact)
        raise ArithmeticError(
            "sign determination did not converge (ill-conditioned input?)"
        )

    # -- comparisons ---------------------------------------------------------
    def compare_rational(self, value: Fraction | int) -> int:
        """Return -1, 0 or 1 for self <, =, > value."""
        value = Fraction(value)
        if self.isolation.is_exact():
            diff = self.isolation.exact - value
            return (diff > 0) - (diff < 0)
        if self.poly(value) == 0:
            # Is that root *our* root?
            if self.isolation.low < value < self.isolation.high:
                return 0
        isolation = self.isolation
        while isolation.low < value < isolation.high:
            isolation = refine(self.poly, isolation, isolation.width() / 4)
            if isolation.is_exact():
                diff = isolation.exact - value
                return (diff > 0) - (diff < 0)
        if isolation.high <= value:
            return -1
        return 1

    def _compare_algebraic(self, other: "RealAlgebraic") -> int:
        if self.isolation.is_exact():
            return -other.compare_rational(self.isolation.exact)
        if other.isolation.is_exact():
            return self.compare_rational(other.isolation.exact)
        # Try to separate the intervals cheaply before paying for a GCD.
        mine, theirs = self.isolation, other.isolation
        for _ in range(self._QUICK_ROUNDS):
            if mine.high <= theirs.low:
                return -1
            if theirs.high <= mine.low:
                return 1
            mine = refine(self.poly, mine, mine.width() / 4)
            theirs = refine(other.poly, theirs, theirs.width() / 4)
            if mine.is_exact():
                return -other.compare_rational(mine.exact)
            if theirs.is_exact():
                return self.compare_rational(theirs.exact)
        common = self.poly.gcd(other.poly)
        while True:
            if mine.high <= theirs.low:
                return -1
            if theirs.high <= mine.low:
                return 1
            if common.degree() > 0:
                union_low = min(mine.low, theirs.low)
                union_high = max(mine.high, theirs.high)
                if (
                    count_roots(common, mine.low, mine.high) == 1
                    and count_roots(common, theirs.low, theirs.high) == 1
                    and count_roots(common, union_low, union_high) == 1
                ):
                    return 0
            mine = refine(self.poly, mine, mine.width() / 4)
            theirs = refine(other.poly, theirs, theirs.width() / 4)
            if mine.is_exact():
                return -other.compare_rational(mine.exact)
            if theirs.is_exact():
                return self.compare_rational(theirs.exact)

    def __eq__(self, other) -> bool:
        if isinstance(other, (int, Fraction)):
            return self.compare_rational(other) == 0
        if isinstance(other, RealAlgebraic):
            return self._compare_algebraic(other) == 0
        return NotImplemented

    def __lt__(self, other) -> bool:
        if isinstance(other, (int, Fraction)):
            return self.compare_rational(other) < 0
        if isinstance(other, RealAlgebraic):
            return self._compare_algebraic(other) < 0
        return NotImplemented

    def __hash__(self) -> int:
        # Equal algebraic numbers need not share a defining polynomial or an
        # isolating interval, and we do not compute minimal polynomials, so
        # there is no cheap canonical form to hash.  A constant hash keeps
        # set/dict semantics correct (equality does the real work); the sets
        # of algebraic numbers the library builds are always small.
        return 0x5EA1

    def __str__(self) -> str:
        if self.isolation.is_exact():
            return str(self.isolation.exact)
        return f"AlgebraicRoot({self.poly}, ({self.isolation.low}, {self.isolation.high}))"

    def __repr__(self) -> str:
        return str(self)
