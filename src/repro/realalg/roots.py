"""Exact isolation and refinement of real roots of rational polynomials.

Roots are isolated by bisection driven by Sturm counts.  Each root is
reported as an :class:`Isolation`: either an exact rational root or an open
interval with rational endpoints containing exactly one root of the
(square-free part of the) polynomial.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from .sturm import count_roots, sturm_chain
from .univariate import UPoly

__all__ = ["Isolation", "isolate_real_roots", "refine", "real_roots_as_fractions"]


@dataclass(frozen=True)
class Isolation:
    """An isolated real root.

    If ``exact`` is not None the root is the rational number ``exact`` and
    ``low == high == exact``.  Otherwise the (square-free) polynomial has
    exactly one root in the open interval ``(low, high)`` and no root at
    either endpoint.
    """

    low: Fraction
    high: Fraction
    exact: Fraction | None = None

    def is_exact(self) -> bool:
        return self.exact is not None

    def width(self) -> Fraction:
        return self.high - self.low

    def midpoint(self) -> Fraction:
        if self.exact is not None:
            return self.exact
        return (self.low + self.high) / 2


def isolate_real_roots(poly: UPoly) -> list[Isolation]:
    """Isolate all distinct real roots of *poly*, sorted increasingly."""
    if poly.is_zero():
        raise ValueError("the zero polynomial has infinitely many roots")
    if poly.degree() <= 0:
        return []
    squarefree = poly.squarefree_part()
    chain = sturm_chain(squarefree)
    bound = squarefree.cauchy_root_bound()
    low, high = -bound, bound
    # Ensure endpoints are not roots (Cauchy bound is strict, but be safe).
    while squarefree(low) == 0:
        low -= 1
    while squarefree(high) == 0:
        high += 1
    total = count_roots(squarefree, low, high, chain=chain)
    results: list[Isolation] = []
    _isolate(squarefree, chain, low, high, total, results)
    results = [_recognise_rational(squarefree, iso) for iso in results]
    results.sort(key=lambda iso: (iso.low, iso.high))
    return results


#: Skip rational-root search when the coefficient integers have more
#: divisors than this (the search would cost more than it saves).
_MAX_DIVISORS = 64


#: Trial-division budget: give up on integers whose square root exceeds
#: this many candidate divisors (rational-root recognition is an
#: optimisation, never a correctness requirement).
_MAX_TRIAL_DIVISIONS = 50_000


def _divisors(n: int) -> list[int] | None:
    n = abs(n)
    if n == 0:
        return None
    if n > _MAX_TRIAL_DIVISIONS**2:
        return None
    found = []
    d = 1
    while d * d <= n:
        if n % d == 0:
            found.append(d)
            if d != n // d:
                found.append(n // d)
            if len(found) > _MAX_DIVISORS:
                return None
        d += 1
    return found


def _recognise_rational(poly: UPoly, isolation: Isolation) -> Isolation:
    """Replace an interval isolation by an exact one when the root is a
    recognisable rational (degree 1, or by the rational root theorem)."""
    if isolation.is_exact():
        return isolation
    if poly.degree() == 1:
        root = -poly.coeffs[0] / poly.coeffs[1]
        return Isolation(root, root, exact=root)
    # Clear denominators to an integer polynomial and apply the rational
    # root theorem: any rational root p/q has p | constant, q | leading.
    denominators = 1
    for coeff in poly.coeffs:
        denominators = denominators * coeff.denominator // _gcd(
            denominators, coeff.denominator
        )
    ints = [int(c * denominators) for c in poly.coeffs]
    # Strip powers of x dividing the polynomial (root 0 handled separately).
    shift = 0
    while shift < len(ints) and ints[shift] == 0:
        shift += 1
    if shift and isolation.low < 0 < isolation.high:
        zero = Fraction(0)
        return Isolation(zero, zero, exact=zero)
    constant, leading = ints[shift], ints[-1]
    numerators = _divisors(constant)
    denominators_list = _divisors(leading)
    if numerators is None or denominators_list is None:
        return isolation
    if len(numerators) * len(denominators_list) > _MAX_DIVISORS * 4:
        return isolation
    for p in numerators:
        for q in denominators_list:
            for candidate in (Fraction(p, q), Fraction(-p, q)):
                if isolation.low < candidate < isolation.high and poly(candidate) == 0:
                    return Isolation(candidate, candidate, exact=candidate)
    return isolation


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


def _isolate(
    poly: UPoly,
    chain: list[UPoly],
    low: Fraction,
    high: Fraction,
    count: int,
    out: list[Isolation],
) -> None:
    """Recursively isolate *count* roots known to lie in (low, high).

    Invariant: the endpoints are never roots of *poly*.
    """
    if count == 0:
        return
    if count == 1:
        out.append(Isolation(low, high))
        return
    mid = (low + high) / 2
    if poly(mid) == 0:
        out.append(Isolation(mid, mid, exact=mid))
        # Shrink away from the exact root so the sub-interval endpoints are
        # not roots; the gap (eps) is halved until it excludes other roots.
        eps = (high - low) / 4
        while poly(mid - eps) == 0 or poly(mid + eps) == 0 or count_roots(
            poly, mid - eps, mid + eps, chain=chain
        ) > 1:
            eps /= 2
        left_count = count_roots(poly, low, mid - eps, chain=chain)
        right_count = count_roots(poly, mid + eps, high, chain=chain)
        _isolate(poly, chain, low, mid - eps, left_count, out)
        _isolate(poly, chain, mid + eps, high, right_count, out)
        return
    left_count = count_roots(poly, low, mid, chain=chain)
    _isolate(poly, chain, low, mid, left_count, out)
    _isolate(poly, chain, mid, high, count - left_count, out)


def refine(poly: UPoly, isolation: Isolation, max_width: Fraction) -> Isolation:
    """Shrink an isolating interval to width < *max_width* by bisection.

    If the bisection lands exactly on the root, an exact isolation is
    returned.  The polynomial should be the same (square-free) polynomial
    the isolation was produced for.
    """
    if isolation.is_exact():
        return isolation
    squarefree = poly.squarefree_part()
    low, high = isolation.low, isolation.high
    sign_low = squarefree.sign_at(low)
    while high - low >= max_width:
        mid = (low + high) / 2
        value = squarefree(mid)
        if value == 0:
            return Isolation(mid, mid, exact=mid)
        if ((value > 0) - (value < 0)) == sign_low:
            low = mid
        else:
            high = mid
    return Isolation(low, high)


def real_roots_as_fractions(
    poly: UPoly, precision: Fraction = Fraction(1, 10**12)
) -> list[Fraction]:
    """All distinct real roots as rationals: exact where rational, otherwise
    the midpoint of an isolating interval refined to *precision*.

    Useful when downstream code only needs numeric approximations with a
    controlled error (e.g. plotting or Monte Carlo seeding); exact
    comparisons should use :class:`~repro.realalg.algebraic.RealAlgebraic`.
    """
    results = []
    for isolation in isolate_real_roots(poly):
        refined = refine(poly, isolation, precision)
        results.append(refined.exact if refined.is_exact() else refined.midpoint())
    return results
