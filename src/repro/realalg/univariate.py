"""Dense univariate polynomials over the rationals.

Coefficients are stored low-degree first: ``UPoly([c0, c1, c2])`` is
``c0 + c1*x + c2*x^2``.  This module provides the exact arithmetic needed
by Sturm sequences and root isolation: division with remainder, GCD,
derivative, square-free part, and evaluation (including interval
evaluation for algebraic-number sign determination).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

__all__ = ["UPoly"]


class UPoly:
    """An immutable dense univariate polynomial over Q."""

    __slots__ = ("coeffs",)

    def __init__(self, coeffs: Iterable[Fraction | int]):
        values = [Fraction(c) for c in coeffs]
        while values and values[-1] == 0:
            values.pop()
        object.__setattr__(self, "coeffs", tuple(values))

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("UPoly is immutable")

    # -- constructors --------------------------------------------------------
    @staticmethod
    def zero() -> "UPoly":
        return UPoly([])

    @staticmethod
    def constant(value) -> "UPoly":
        return UPoly([Fraction(value)])

    @staticmethod
    def x() -> "UPoly":
        return UPoly([0, 1])

    @staticmethod
    def from_roots(roots: Sequence[Fraction | int]) -> "UPoly":
        """The monic polynomial with the given rational roots."""
        result = UPoly([1])
        for root in roots:
            result = result * UPoly([-Fraction(root), 1])
        return result

    # -- queries ---------------------------------------------------------------
    def is_zero(self) -> bool:
        return not self.coeffs

    def degree(self) -> int:
        """Degree; the zero polynomial has degree -1 by convention."""
        return len(self.coeffs) - 1

    def leading_coefficient(self) -> Fraction:
        if not self.coeffs:
            return Fraction(0)
        return self.coeffs[-1]

    def monic(self) -> "UPoly":
        """Divide by the leading coefficient (zero polynomial unchanged)."""
        if not self.coeffs:
            return self
        lead = self.coeffs[-1]
        return UPoly([c / lead for c in self.coeffs])

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other: "UPoly") -> "UPoly":
        other = self._coerce(other)
        size = max(len(self.coeffs), len(other.coeffs))
        return UPoly(
            [
                (self.coeffs[i] if i < len(self.coeffs) else Fraction(0))
                + (other.coeffs[i] if i < len(other.coeffs) else Fraction(0))
                for i in range(size)
            ]
        )

    def __radd__(self, other) -> "UPoly":
        return self + other

    def __neg__(self) -> "UPoly":
        return UPoly([-c for c in self.coeffs])

    def __sub__(self, other) -> "UPoly":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "UPoly":
        return self._coerce(other) - self

    def __mul__(self, other) -> "UPoly":
        other = self._coerce(other)
        if self.is_zero() or other.is_zero():
            return UPoly.zero()
        result = [Fraction(0)] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other.coeffs):
                result[i + j] += a * b
        return UPoly(result)

    def __rmul__(self, other) -> "UPoly":
        return self * other

    def __pow__(self, exponent: int) -> "UPoly":
        if not isinstance(exponent, int) or exponent < 0:
            raise ValueError("exponent must be a non-negative integer")
        result = UPoly([1])
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base * base
            exponent >>= 1
        return result

    def _coerce(self, other) -> "UPoly":
        if isinstance(other, UPoly):
            return other
        if isinstance(other, (int, Fraction)):
            return UPoly.constant(other)
        raise TypeError(f"cannot combine UPoly with {type(other).__name__}")

    def divmod(self, divisor: "UPoly") -> tuple["UPoly", "UPoly"]:
        """Exact polynomial division with remainder over Q."""
        if divisor.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        remainder = list(self.coeffs)
        quotient = [Fraction(0)] * max(0, len(remainder) - len(divisor.coeffs) + 1)
        divisor_lead = divisor.coeffs[-1]
        divisor_deg = divisor.degree()
        for i in range(len(remainder) - 1, divisor_deg - 1, -1):
            if remainder[i] == 0:
                continue
            factor = remainder[i] / divisor_lead
            quotient[i - divisor_deg] = factor
            for j, c in enumerate(divisor.coeffs):
                remainder[i - divisor_deg + j] -= factor * c
        return UPoly(quotient), UPoly(remainder)

    def __mod__(self, divisor: "UPoly") -> "UPoly":
        return self.divmod(divisor)[1]

    def __floordiv__(self, divisor: "UPoly") -> "UPoly":
        return self.divmod(divisor)[0]

    def gcd(self, other: "UPoly") -> "UPoly":
        """Monic greatest common divisor."""
        a, b = self, other
        while not b.is_zero():
            a, b = b, a % b
        return a.monic()

    def derivative(self) -> "UPoly":
        return UPoly([i * c for i, c in enumerate(self.coeffs)][1:])

    def squarefree_part(self) -> "UPoly":
        """The square-free part ``p / gcd(p, p')`` (monic).

        Cached: polynomials are immutable and this is recomputed heavily by
        root isolation and algebraic-number comparisons.  Cache efficacy is
        reported under the ``realalg.cache.*`` counters while observability
        is on.
        """
        from ..obs import add as _obs_add, counting_enabled as _counting

        if not _counting():
            return _squarefree_part_cached(self)
        misses = _squarefree_part_cached.cache_info().misses
        part = _squarefree_part_cached(self)
        if _squarefree_part_cached.cache_info().misses > misses:
            _obs_add("realalg.cache.miss")
        else:
            _obs_add("realalg.cache.hit")
        return part

    # -- evaluation ---------------------------------------------------------
    def __call__(self, point: Fraction | int) -> Fraction:
        """Evaluate via Horner's rule."""
        point = Fraction(point)
        total = Fraction(0)
        for coeff in reversed(self.coeffs):
            total = total * point + coeff
        return total

    def sign_at(self, point: Fraction | int) -> int:
        value = self(point)
        return (value > 0) - (value < 0)

    def evaluate_interval(
        self, low: Fraction, high: Fraction
    ) -> tuple[Fraction, Fraction]:
        """Outward interval evaluation: bounds on p([low, high]).

        Uses a straightforward power-basis interval Horner; bounds are valid
        (conservative) though not tight.
        """
        lo, hi = Fraction(0), Fraction(0)
        for coeff in reversed(self.coeffs):
            # interval multiply (lo, hi) * (low, high)
            candidates = (lo * low, lo * high, hi * low, hi * high)
            lo, hi = min(candidates), max(candidates)
            lo, hi = lo + coeff, hi + coeff
        return lo, hi

    # -- misc ------------------------------------------------------------------
    def cauchy_root_bound(self) -> Fraction:
        """A bound B with all real roots in (-B, B) (Cauchy's bound)."""
        if self.degree() <= 0:
            return Fraction(1)
        lead = abs(self.coeffs[-1])
        return 1 + max(abs(c) for c in self.coeffs[:-1]) / lead

    def __eq__(self, other) -> bool:
        if isinstance(other, (int, Fraction)):
            other = UPoly.constant(other)
        if not isinstance(other, UPoly):
            return NotImplemented
        return self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash(self.coeffs)

    def __str__(self) -> str:
        if not self.coeffs:
            return "0"
        parts = []
        for i, c in enumerate(self.coeffs):
            if c == 0:
                continue
            if i == 0:
                parts.append(str(c))
            elif i == 1:
                parts.append(f"{c}*x" if c != 1 else "x")
            else:
                parts.append(f"{c}*x^{i}" if c != 1 else f"x^{i}")
        return " + ".join(reversed(parts))

    def __repr__(self) -> str:
        return f"UPoly({self})"


from functools import lru_cache


@lru_cache(maxsize=8192)
def _squarefree_part_cached(poly: UPoly) -> UPoly:
    if poly.degree() <= 0:
        return poly.monic() if not poly.is_zero() else poly
    g = poly.gcd(poly.derivative())
    if g.degree() == 0:
        return poly.monic()
    return (poly // g).monic()
