"""Sturm sequences and exact real-root counting.

The Sturm chain of a square-free polynomial p is

    p0 = p,  p1 = p',  p_{i+1} = -rem(p_{i-1}, p_i)

and the number of distinct real roots of p in a half-open interval
``(a, b]`` equals ``V(a) - V(b)`` where ``V(t)`` counts sign changes in the
chain evaluated at ``t``.  We use the standard convention and expose
counting over open intervals and the whole line.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache

from .univariate import UPoly
from ..obs import add as _obs_add, counting_enabled as _obs_counting

__all__ = ["sturm_chain", "sign_variations_at", "count_roots", "count_real_roots"]


def sturm_chain(poly: UPoly) -> list[UPoly]:
    """Return the Sturm chain of *poly* (which should be square-free).

    Cached: chains are requested repeatedly for the same polynomial during
    root isolation, refinement, and algebraic-number comparison.  Cache
    efficacy is reported under the ``realalg.cache.*`` counters while
    observability is on.
    """
    if not _obs_counting():
        return list(_sturm_chain_cached(poly))
    misses = _sturm_chain_cached.cache_info().misses
    chain = _sturm_chain_cached(poly)
    if _sturm_chain_cached.cache_info().misses > misses:
        _obs_add("realalg.cache.miss")
    else:
        _obs_add("realalg.cache.hit")
    return list(chain)


@lru_cache(maxsize=8192)
def _sturm_chain_cached(poly: UPoly) -> tuple[UPoly, ...]:
    if poly.is_zero():
        return (poly,)
    chain = [poly, poly.derivative()]
    while not chain[-1].is_zero() and chain[-1].degree() > 0:
        chain.append(-(chain[-2] % chain[-1]))
    if chain[-1].is_zero():
        chain.pop()
    return tuple(chain)


def sign_variations_at(chain: list[UPoly], point: Fraction) -> int:
    """Count sign changes of the chain at a rational point (zeros skipped)."""
    signs = []
    for poly in chain:
        sign = poly.sign_at(point)
        if sign != 0:
            signs.append(sign)
    variations = _variations(signs)
    _obs_add("sturm.evaluations")
    _obs_add("sturm.sign_changes", variations)
    return variations


def _sign_variations_at_infinity(chain: list[UPoly], positive: bool) -> int:
    signs = []
    for poly in chain:
        if poly.is_zero():
            continue
        lead = poly.leading_coefficient()
        sign = (lead > 0) - (lead < 0)
        if not positive and poly.degree() % 2 == 1:
            sign = -sign
        if sign != 0:
            signs.append(sign)
    return _variations(signs)


def _variations(signs: list[int]) -> int:
    count = 0
    for previous, current in zip(signs, signs[1:]):
        if previous != current:
            count += 1
    return count


def count_roots(
    poly: UPoly,
    low: Fraction | None = None,
    high: Fraction | None = None,
    chain: list[UPoly] | None = None,
) -> int:
    """Number of distinct real roots of *poly* in the open interval (low, high).

    ``None`` endpoints mean -infinity / +infinity.  Roots exactly at a
    finite endpoint are *excluded*.  The polynomial is replaced by its
    square-free part, so multiplicities are ignored.
    """
    if poly.is_zero():
        raise ValueError("the zero polynomial has infinitely many roots")
    if poly.degree() == 0:
        return 0
    squarefree = poly.squarefree_part()
    if chain is None:
        chain = sturm_chain(squarefree)

    if low is None:
        at_low = _sign_variations_at_infinity(chain, positive=False)
    else:
        at_low = sign_variations_at(chain, Fraction(low))
    if high is None:
        at_high = _sign_variations_at_infinity(chain, positive=True)
    else:
        at_high = sign_variations_at(chain, Fraction(high))
    count = at_low - at_high
    # Sturm counts roots in (low, high]; exclude a root at the right endpoint.
    if high is not None and squarefree(Fraction(high)) == 0:
        count -= 1
    return count


def count_real_roots(poly: UPoly) -> int:
    """Number of distinct real roots of *poly* over the whole line."""
    return count_roots(poly)
