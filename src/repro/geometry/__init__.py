"""Polyhedral geometry: semi-linear sets, exact volumes, sampling, ellipsoids.

The exact pipeline (all rational arithmetic):
formula -> DNF cells -> convex polyhedra -> Theorem-3 slicing volume.
Floating-point enters only in the Monte Carlo estimators and the
Loewner-John / Qhull baselines.
"""

from .polyhedron import Point, Polyhedron
from .linalg import determinant, gaussian_elimination_rank, solve_linear_system
from .volume import (
    integrate_upoly,
    interval_length,
    lagrange_interpolate,
    polytope_volume,
    union_volume,
)
from .decomposition import formula_to_cells, formula_volume, formula_volume_unit_cube
from .sampling import (
    MonteCarloEstimate,
    compile_formula_numpy,
    compile_term_numpy,
    exact_membership,
    hit_or_miss_volume,
    hoeffding_sample_size,
)
from .triangulate import (
    convex_hull_volume_float,
    fan_triangulation_area,
    shoelace_area,
    simplex_volume,
    sort_ccw,
    triangle_area,
)
from .ellipsoid import Ellipsoid, john_volume_estimate, mvee, unit_ball_volume
from .variable_independence import (
    cell_is_variable_independent,
    is_variable_independent,
    variable_independent_volume,
)

__all__ = [
    "Polyhedron",
    "Point",
    "solve_linear_system",
    "determinant",
    "gaussian_elimination_rank",
    "polytope_volume",
    "union_volume",
    "interval_length",
    "lagrange_interpolate",
    "integrate_upoly",
    "formula_to_cells",
    "formula_volume",
    "formula_volume_unit_cube",
    "compile_formula_numpy",
    "compile_term_numpy",
    "exact_membership",
    "hit_or_miss_volume",
    "hoeffding_sample_size",
    "MonteCarloEstimate",
    "triangle_area",
    "simplex_volume",
    "fan_triangulation_area",
    "shoelace_area",
    "convex_hull_volume_float",
    "sort_ccw",
    "Ellipsoid",
    "mvee",
    "unit_ball_volume",
    "john_volume_estimate",
    "cell_is_variable_independent",
    "is_variable_independent",
    "variable_independent_volume",
]
