"""From linear constraint formulas to unions of convex cells, and volumes.

A quantifier-free FO + LIN formula denotes a semi-linear set; its DNF gives
a representation as a finite union of convex cells
(:class:`~repro.geometry.polyhedron.Polyhedron`).  Combined with the exact
union volume this yields the volume of any bounded semi-linear set — the
semantic content of the paper's Theorem 3.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from ..logic.formulas import Formula
from ..logic.metrics import max_degree
from ..logic.normalform import is_quantifier_free, qf_to_dnf
from ..qe.fourier_motzkin import conjunct_to_constraints, qe_linear
from .. import guard, obs
from .._errors import GeometryError, QEError
from .polyhedron import Polyhedron
from .volume import union_volume

__all__ = [
    "formula_to_cells",
    "clip_cells",
    "formula_volume",
    "formula_volume_unit_cube",
]


def formula_to_cells(
    formula: Formula, variables: Sequence[str], prune: bool = True
) -> list[Polyhedron]:
    """Decompose a linear formula into convex cells whose union it denotes.

    Quantifiers are eliminated first (Fourier-Motzkin); ``!=`` atoms are
    split.  Infeasible cells are dropped.  ``prune=False`` skips the
    feasibility pruning of intermediate QE results — cheaper per step,
    still exact; the degradation ladder's "coarse" rung uses it.
    """
    variables = tuple(variables)
    free = formula.free_variables()
    if not free <= set(variables):
        raise GeometryError(
            f"formula has free variables {sorted(free)} outside {variables}"
        )
    if formula.relation_names():
        raise QEError("expand schema relations before decomposing")
    with obs.span("volume.decompose", variables=len(variables)):
        if not is_quantifier_free(formula):
            if max_degree(formula) > 1:
                raise QEError("quantified nonlinear formulas are not semi-linear")
            formula = qe_linear(formula, prune=prune)
        cells: list[Polyhedron] = []
        for conjunct in qf_to_dnf(formula):
            for constraints in conjunct_to_constraints(conjunct):
                guard.checkpoint()
                cell = Polyhedron.make(variables, constraints)
                if not cell.is_empty():
                    cells.append(cell)
        obs.add("volume.cells", len(cells))
        guard.charge("cells", len(cells))
        return cells


def formula_volume(
    formula: Formula,
    variables: Sequence[str],
    box: Sequence[tuple[Fraction, Fraction]] | None = None,
    prune: bool = True,
) -> Fraction:
    """Exact volume of the semi-linear set denoted by *formula*.

    ``box`` optionally clips to an axis-aligned box (list of per-variable
    ``(low, high)`` bounds).  Without a box the set must be bounded.
    ``prune`` is threaded to :func:`formula_to_cells`.
    """
    variables = tuple(variables)
    with obs.span("volume.formula_volume", variables=len(variables)):
        return _formula_volume(formula, variables, box, prune)


def clip_cells(
    cells: Sequence[Polyhedron],
    variables: Sequence[str],
    box: Sequence[tuple[Fraction, Fraction]],
) -> list[Polyhedron]:
    """Intersect every cell with the axis-aligned *box*.

    The box is given as per-variable ``(low, high)`` bounds in the order
    of *variables*.  This is the evaluation-time half of the volume
    pipeline: a compiled cell decomposition (:func:`formula_to_cells`,
    cached by :mod:`repro.engine`) can be clipped to many different
    regions without re-running quantifier elimination.
    """
    variables = tuple(variables)
    if len(box) != len(variables):
        raise GeometryError("box must give bounds for every variable")
    from ..qe.linear import LinConstraint

    clip = []
    for var, (low, high) in zip(variables, box):
        clip.append(LinConstraint.make({var: Fraction(-1)}, Fraction(low), "<="))
        clip.append(LinConstraint.make({var: Fraction(1)}, -Fraction(high), "<="))
    clipper = Polyhedron.make(variables, clip)
    return [cell.intersect(clipper) for cell in cells]


def _formula_volume(
    formula: Formula,
    variables: tuple[str, ...],
    box: Sequence[tuple[Fraction, Fraction]] | None,
    prune: bool = True,
) -> Fraction:
    cells = formula_to_cells(formula, variables, prune=prune)
    if box is not None:
        cells = clip_cells(cells, variables, box)
    return union_volume(cells)


def formula_volume_unit_cube(
    formula: Formula, variables: Sequence[str]
) -> Fraction:
    """The paper's VOL_I: volume of the set intersected with the unit cube."""
    box = [(Fraction(0), Fraction(1))] * len(variables)
    return formula_volume(formula, variables, box=box)
