"""Triangulation-based volume baselines.

Two baselines complement the exact slicing algorithm of
:mod:`repro.geometry.volume`:

* an **exact** shoelace/fan computation for convex polygons (this is the
  paper's Section 5 worked example: fan triangulation from the
  lexicographically least vertex, triangle areas by determinant), and
* a **floating-point** convex-hull volume via scipy's Qhull, used as an
  independent cross-check in tests and benchmarks.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

import numpy as np
from scipy.spatial import ConvexHull

from .. import guard, obs
from .._errors import GeometryError
from .linalg import determinant
from .polyhedron import Point

__all__ = [
    "triangle_area",
    "simplex_volume",
    "fan_triangulation_area",
    "shoelace_area",
    "convex_hull_volume_float",
    "sort_ccw",
]


def triangle_area(a: Point, b: Point, c: Point) -> Fraction:
    """Exact (unsigned) area of a triangle in R^2.

    This is the paper's deterministic formula gamma:
    ``(a1 b2 - a2 b1 + a2 c1 - a1 c2 + b1 c2 - b2 c1) / 2`` in absolute value.
    """
    signed = (
        a[0] * b[1] - a[1] * b[0]
        + a[1] * c[0] - a[0] * c[1]
        + b[0] * c[1] - b[1] * c[0]
    )
    return abs(signed) / 2


def simplex_volume(vertices: Sequence[Point]) -> Fraction:
    """Exact volume of a d-simplex from its d+1 vertices: |det| / d!."""
    if not vertices:
        raise GeometryError("a simplex needs vertices")
    d = len(vertices[0])
    if len(vertices) != d + 1:
        raise GeometryError(f"a {d}-simplex needs exactly {d + 1} vertices")
    obs.add("triangulate.simplices")
    guard.checkpoint()
    base = vertices[0]
    matrix = [
        [Fraction(v[i]) - Fraction(base[i]) for i in range(d)]
        for v in vertices[1:]
    ]
    det = determinant(matrix)
    factorial = 1
    for k in range(2, d + 1):
        factorial *= k
    return abs(det) / factorial


def sort_ccw(vertices: Sequence[Point]) -> list[Point]:
    """Sort the vertices of a convex polygon counter-clockwise.

    Uses the exact centroid as pivot and exact cross-product comparisons
    within float-bucketed angular pre-sorting.
    """
    if len(vertices) < 3:
        return list(vertices)
    cx = sum((Fraction(v[0]) for v in vertices), Fraction(0)) / len(vertices)
    cy = sum((Fraction(v[1]) for v in vertices), Fraction(0)) / len(vertices)
    import math

    def angle(v: Point) -> float:
        return math.atan2(float(v[1] - cy), float(v[0] - cx))

    return sorted(vertices, key=angle)


def fan_triangulation_area(vertices: Sequence[Point]) -> Fraction:
    """Exact area of a convex polygon by fan triangulation.

    Mirrors the paper's FO + POLY + SUM example: triangulate from the
    lexicographically minimal vertex and sum exact triangle areas.
    """
    if len(vertices) < 3:
        return Fraction(0)
    ordered = sort_ccw(vertices)
    # Rotate so the fan apex is the lexicographically minimal vertex,
    # exactly as in the paper's range-restricted expression.
    apex_index = min(range(len(ordered)), key=lambda i: ordered[i])
    ordered = ordered[apex_index:] + ordered[:apex_index]
    apex = ordered[0]
    total = Fraction(0)
    with obs.span("geometry.fan_triangulation", vertices=len(ordered)):
        for left, right in zip(ordered[1:], ordered[2:]):
            obs.add("triangulate.simplices")
            guard.checkpoint()
            total += triangle_area(apex, left, right)
    return total


def shoelace_area(vertices: Sequence[Point]) -> Fraction:
    """Exact polygon area by the shoelace formula (vertices in CCW order)."""
    if len(vertices) < 3:
        return Fraction(0)
    total = Fraction(0)
    count = len(vertices)
    for i in range(count):
        x1, y1 = vertices[i]
        x2, y2 = vertices[(i + 1) % count]
        total += Fraction(x1) * Fraction(y2) - Fraction(x2) * Fraction(y1)
    return abs(total) / 2


def convex_hull_volume_float(points: Sequence[Sequence[float]]) -> float:
    """Floating-point convex hull volume via Qhull (independent baseline)."""
    array = np.asarray(points, dtype=float)
    if array.shape[0] < array.shape[1] + 1:
        raise GeometryError("not enough points for a full-dimensional hull")
    return float(ConvexHull(array).volume)
