"""Monte Carlo volume estimation and fast membership testing.

Hit-or-miss sampling in the unit cube (or an arbitrary box) estimates
VOL_I of any definable set.  Error control comes from the Hoeffding bound;
the VC-based *uniform* error control of the paper's Theorem 4 lives in
:mod:`repro.core.witness`, which builds on the sampling primitives here.

Formulas are compiled to vectorised NumPy predicates for speed; an exact
rational membership test is also provided.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Callable, Sequence

import numpy as np

from ..logic.evaluate import evaluate
from ..logic.formulas import (
    And,
    Compare,
    FalseFormula,
    Formula,
    Not,
    Or,
    TrueFormula,
)
from ..logic.terms import Add, Const, Mul, Neg, Pow, Term, Var
from .. import guard, obs
from .._errors import ApproximationError

__all__ = [
    "compile_term_numpy",
    "compile_formula_numpy",
    "exact_membership",
    "hit_or_miss_volume",
    "hoeffding_sample_size",
    "MonteCarloEstimate",
]


def compile_term_numpy(
    term: Term, variables: Sequence[str]
) -> Callable[[np.ndarray], np.ndarray]:
    """Compile a term to a function of an ``(m, n)`` array of points."""
    index = {name: i for i, name in enumerate(variables)}

    def build(node: Term) -> Callable[[np.ndarray], np.ndarray]:
        if isinstance(node, Var):
            column = index[node.name]
            return lambda pts: pts[:, column]
        if isinstance(node, Const):
            value = float(node.value)
            return lambda pts: np.full(pts.shape[0], value)
        if isinstance(node, Add):
            parts = [build(a) for a in node.args]
            return lambda pts: sum(p(pts) for p in parts)
        if isinstance(node, Mul):
            parts = [build(a) for a in node.args]

            def product(pts: np.ndarray) -> np.ndarray:
                out = parts[0](pts)
                for p in parts[1:]:
                    out = out * p(pts)
                return out

            return product
        if isinstance(node, Neg):
            inner = build(node.arg)
            return lambda pts: -inner(pts)
        if isinstance(node, Pow):
            inner = build(node.base)
            exponent = node.exponent
            return lambda pts: inner(pts) ** exponent
        raise TypeError(f"unknown term node {type(node).__name__}")

    return build(term)


def compile_formula_numpy(
    formula: Formula, variables: Sequence[str]
) -> Callable[[np.ndarray], np.ndarray]:
    """Compile a quantifier-free formula to a vectorised boolean predicate.

    Floating-point evaluation: adequate for Monte Carlo estimation, not for
    exact decisions on boundary points.
    """
    if formula.relation_names():
        raise ApproximationError(
            "expand schema relations before compiling for sampling"
        )

    def build(node: Formula) -> Callable[[np.ndarray], np.ndarray]:
        if isinstance(node, TrueFormula):
            return lambda pts: np.ones(pts.shape[0], dtype=bool)
        if isinstance(node, FalseFormula):
            return lambda pts: np.zeros(pts.shape[0], dtype=bool)
        if isinstance(node, Compare):
            lhs = compile_term_numpy(node.lhs, variables)
            rhs = compile_term_numpy(node.rhs, variables)
            op = node.op
            if op == "<":
                return lambda pts: lhs(pts) < rhs(pts)
            if op == "<=":
                return lambda pts: lhs(pts) <= rhs(pts)
            if op == "=":
                return lambda pts: lhs(pts) == rhs(pts)
            if op == "!=":
                return lambda pts: lhs(pts) != rhs(pts)
            if op == ">=":
                return lambda pts: lhs(pts) >= rhs(pts)
            return lambda pts: lhs(pts) > rhs(pts)
        if isinstance(node, And):
            parts = [build(a) for a in node.args]

            def conj(pts: np.ndarray) -> np.ndarray:
                out = parts[0](pts)
                for p in parts[1:]:
                    out = out & p(pts)
                return out

            return conj
        if isinstance(node, Or):
            parts = [build(a) for a in node.args]

            def disj(pts: np.ndarray) -> np.ndarray:
                out = parts[0](pts)
                for p in parts[1:]:
                    out = out | p(pts)
                return out

            return disj
        if isinstance(node, Not):
            inner = build(node.arg)
            return lambda pts: ~inner(pts)
        raise ApproximationError(
            f"cannot compile node {type(node).__name__}; formulas must be "
            "quantifier-free (eliminate quantifiers first)"
        )

    return build(formula)


def exact_membership(
    formula: Formula, variables: Sequence[str]
) -> Callable[[Sequence[Fraction]], bool]:
    """An exact rational membership test for a quantifier-free formula."""

    def member(point: Sequence[Fraction]) -> bool:
        env = {v: Fraction(c) for v, c in zip(variables, point)}
        return evaluate(formula, env)

    return member


class MonteCarloEstimate:
    """Result of a hit-or-miss volume estimation."""

    __slots__ = ("estimate", "hits", "samples", "confidence_radius")

    def __init__(self, estimate: float, hits: int, samples: int, confidence_radius: float):
        self.estimate = estimate
        self.hits = hits
        self.samples = samples
        #: Hoeffding radius: |estimate - truth| < radius w.p. >= the
        #: confidence the radius was computed for.
        self.confidence_radius = confidence_radius

    def __repr__(self) -> str:
        return (
            f"MonteCarloEstimate({self.estimate:.6f} +- "
            f"{self.confidence_radius:.6f}, {self.hits}/{self.samples})"
        )


def hoeffding_sample_size(epsilon: float, delta: float) -> int:
    """Samples needed so a single mean estimate errs < epsilon w.p. >= 1-delta."""
    if not (0 < epsilon < 1) or not (0 < delta < 1):
        raise ApproximationError("epsilon and delta must lie in (0, 1)")
    return math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon))


#: Points drawn per batch between budget checkpoints.
_SAMPLE_CHUNK = 65_536


def hit_or_miss_volume(
    formula: Formula,
    variables: Sequence[str],
    samples: int,
    rng: np.random.Generator,
    box: Sequence[tuple[float, float]] | None = None,
    delta: float = 0.05,
) -> MonteCarloEstimate:
    """Estimate the volume of ``formula`` inside ``box`` (default I^n).

    The estimate is the hit fraction scaled by the box volume; the reported
    confidence radius is the Hoeffding bound at confidence ``1 - delta``.
    """
    if samples <= 0:
        raise ApproximationError("samples must be positive")
    dims = len(variables)
    if box is None:
        box = [(0.0, 1.0)] * dims
    with obs.span("mc.hit_or_miss", samples=samples, dims=dims):
        lows = np.array([b[0] for b in box])
        highs = np.array([b[1] for b in box])
        box_volume = float(np.prod(highs - lows))
        predicate = compile_formula_numpy(formula, variables)
        # Sampling is chunked so a wall-clock budget can cancel mid-run;
        # sequential chunked draws consume the generator's stream exactly
        # like one big draw, so results are unchanged.
        hits = 0
        remaining = samples
        while remaining:
            guard.checkpoint()
            chunk = min(remaining, _SAMPLE_CHUNK)
            points = rng.random((chunk, dims)) * (highs - lows) + lows
            hits += int(np.count_nonzero(predicate(points)))
            remaining -= chunk
    obs.add("mc.samples", samples)
    obs.add("mc.hits", hits)
    fraction = hits / samples
    radius = math.sqrt(math.log(2.0 / delta) / (2.0 * samples)) * box_volume
    return MonteCarloEstimate(fraction * box_volume, hits, samples, radius)
