"""Convex polyhedra in H-representation with exact rational arithmetic.

A :class:`Polyhedron` is the solution set of a conjunction of linear
constraints over an ordered tuple of variables.  These are the *cells* of
semi-linear sets: every semi-linear set is a finite union of such cells
(via DNF).  All predicates — emptiness, boundedness, membership — and the
vertex enumeration are exact.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

from ..qe.fourier_motzkin import eliminate_variable, is_feasible, remove_redundant
from ..qe.linear import LinConstraint
from .._errors import GeometryError, UnboundedSetError
from .linalg import solve_linear_system

__all__ = ["Polyhedron", "Point"]

Point = tuple[Fraction, ...]


@dataclass(frozen=True)
class Polyhedron:
    """The set of points satisfying ``constraints`` in ``R^len(variables)``.

    Constraints may be strict; most volume computations work with the
    closure (see :meth:`closure`), which differs only on a measure-zero set.
    """

    variables: tuple[str, ...]
    constraints: tuple[LinConstraint, ...]

    @staticmethod
    def make(
        variables: Sequence[str], constraints: Iterable[LinConstraint]
    ) -> "Polyhedron":
        variables = tuple(variables)
        allowed = set(variables)
        constraints = tuple(constraints)
        for constraint in constraints:
            extra = constraint.variables() - allowed
            if extra:
                raise GeometryError(
                    f"constraint {constraint} uses unknown variables {sorted(extra)}"
                )
        return Polyhedron(variables, constraints)

    @staticmethod
    def unit_cube(variables: Sequence[str]) -> "Polyhedron":
        """The unit cube I^n = [0,1]^n (the paper's bounding set)."""
        constraints = []
        for var in variables:
            constraints.append(LinConstraint.make({var: Fraction(-1)}, 0, "<="))
            constraints.append(LinConstraint.make({var: Fraction(1)}, -1, "<="))
        return Polyhedron.make(variables, constraints)

    @staticmethod
    def from_vertices_2d(
        variables: Sequence[str], vertices: Sequence[Point]
    ) -> "Polyhedron":
        """Convex polygon in R^2 from vertices in counter-clockwise order."""
        if len(variables) != 2:
            raise GeometryError("from_vertices_2d requires exactly two variables")
        if len(vertices) < 3:
            raise GeometryError("a polygon needs at least three vertices")
        x_name, y_name = variables
        constraints = []
        count = len(vertices)
        for i in range(count):
            (x1, y1), (x2, y2) = vertices[i], vertices[(i + 1) % count]
            # Inward side of the directed edge (CCW): cross product >= 0.
            a = -(y2 - y1)
            b = x2 - x1
            c = -(a * x1 + b * y1)
            # a*x + b*y + c >= 0  ->  -a*x - b*y - c <= 0
            constraints.append(
                LinConstraint.make({x_name: -a, y_name: -b}, -c, "<=")
            )
        return Polyhedron.make(variables, constraints)

    # -- basic predicates -----------------------------------------------------
    @property
    def dimension(self) -> int:
        return len(self.variables)

    def is_empty(self) -> bool:
        return not is_feasible(list(self.constraints))

    def contains(self, point: Sequence[Fraction]) -> bool:
        if len(point) != len(self.variables):
            raise GeometryError("point dimension mismatch")
        env = {v: Fraction(c) for v, c in zip(self.variables, point)}
        return all(c.evaluate(env) for c in self.constraints)

    def closure(self) -> "Polyhedron":
        """Replace strict inequalities by non-strict ones.

        The closure of the *set* can be smaller than this polyhedron only
        in degenerate (lower-dimensional) situations; for volume purposes
        the two always agree.
        """
        closed = tuple(
            LinConstraint(c.coeffs, c.constant, "<=") if c.op == "<" else c
            for c in self.constraints
        )
        return Polyhedron(self.variables, closed)

    def intersect(self, other: "Polyhedron") -> "Polyhedron":
        if other.variables != self.variables:
            raise GeometryError("cannot intersect polyhedra over different variables")
        return Polyhedron(self.variables, self.constraints + other.constraints)

    def simplified(self) -> "Polyhedron":
        """Remove redundant constraints (exact, possibly slow for many)."""
        return Polyhedron(
            self.variables, tuple(remove_redundant(list(self.constraints)))
        )

    # -- projections and bounds ------------------------------------------------
    def project_to(self, var: str) -> list[LinConstraint]:
        """Fourier-Motzkin projection onto a single coordinate."""
        if var not in self.variables:
            raise GeometryError(f"unknown variable {var!r}")
        current: list[LinConstraint] | None = list(self.constraints)
        for other in self.variables:
            if other == var:
                continue
            current = eliminate_variable(other, current)
            if current is None:
                return [LinConstraint.make({}, 1, "<")]  # infeasible marker
        return current or []

    def coordinate_bounds(
        self, var: str
    ) -> tuple[Fraction | None, Fraction | None]:
        """(min, max) of coordinate *var* over the closure; ``None`` = unbounded.

        Raises :class:`GeometryError` on an empty polyhedron.
        """
        shadow = self.project_to(var)
        low: Fraction | None = None
        high: Fraction | None = None
        feasible = True
        for constraint in shadow:
            if constraint.is_constant():
                if not constraint.constant_truth():
                    feasible = False
                continue
            coeff = constraint.coeff(var)
            bound = -constraint.constant / coeff
            if constraint.op == "=":
                low = bound if low is None else max(low, bound)
                high = bound if high is None else min(high, bound)
            elif coeff > 0:  # var <= bound
                high = bound if high is None else min(high, bound)
            else:  # var >= bound
                low = bound if low is None else max(low, bound)
        if not feasible:
            raise GeometryError("empty polyhedron has no coordinate bounds")
        return low, high

    def is_bounded(self) -> bool:
        """Exact boundedness test (empty polyhedra count as bounded)."""
        if self.is_empty():
            return True
        for var in self.variables:
            low, high = self.coordinate_bounds(var)
            if low is None or high is None:
                return False
        return True

    def bounding_box(self) -> list[tuple[Fraction, Fraction]]:
        """Tight axis-aligned bounding box of a nonempty bounded polyhedron."""
        box = []
        for var in self.variables:
            low, high = self.coordinate_bounds(var)
            if low is None or high is None:
                raise UnboundedSetError(f"polyhedron unbounded in {var!r}")
            box.append((low, high))
        return box

    # -- substitution ----------------------------------------------------------
    def fix_variable(self, var: str, value: Fraction) -> "Polyhedron":
        """The slice obtained by fixing one coordinate (drops the variable)."""
        if var not in self.variables:
            raise GeometryError(f"unknown variable {var!r}")
        value = Fraction(value)
        remaining = tuple(v for v in self.variables if v != var)
        new_constraints = []
        for constraint in self.constraints:
            coeff = constraint.coeff(var)
            if coeff == 0:
                new_constraints.append(constraint)
                continue
            coeffs = {n: c for n, c in constraint.coeffs if n != var}
            new_constraints.append(
                LinConstraint.make(
                    coeffs, constraint.constant + coeff * value, constraint.op
                )
            )
        return Polyhedron(remaining, tuple(new_constraints))

    # -- vertex enumeration ------------------------------------------------------
    def vertices(self) -> list[Point]:
        """All vertices of the *closure*, exactly.

        Combinatorial enumeration: every vertex is the unique solution of
        some ``d`` constraints taken as equalities that also satisfies all
        remaining (closed) constraints.  Exponential in ``d`` but exact;
        intended for the small dimensions of the paper's examples.
        """
        d = len(self.variables)
        if d == 0:
            return []
        closed = self.closure()
        vertices: list[Point] = []
        seen: set[Point] = set()
        constraints = closed.constraints
        for subset in itertools.combinations(range(len(constraints)), d):
            matrix = []
            rhs = []
            for index in subset:
                constraint = constraints[index]
                matrix.append([constraint.coeff(v) for v in self.variables])
                rhs.append(-constraint.constant)
            solution = solve_linear_system(matrix, rhs)
            if solution is None:
                continue
            if solution in seen:
                continue
            if closed.contains(solution):
                seen.add(solution)
                vertices.append(solution)
        return vertices

    def __str__(self) -> str:
        if not self.constraints:
            return f"R^{len(self.variables)}"
        return " AND ".join(str(c) for c in self.constraints)
