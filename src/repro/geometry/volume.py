"""Exact volume of semi-linear sets — the algorithm behind Theorem 3.

The paper proves FO + POLY + SUM expresses volumes of semi-linear sets by
induction on dimension: slice along the first coordinate, observe that the
(d-1)-dimensional slice volume is piecewise polynomial of degree <= d-1
between breakpoints, and integrate each piece.  This module implements
exactly that computation with rational arithmetic:

* breakpoints are the first coordinates of the polytope's vertices,
* on each open interval between breakpoints the slice-volume function is a
  polynomial of degree <= d-1, recovered exactly by Lagrange interpolation
  through d interior sample slices,
* each piece is integrated in closed form.

Unions of cells (general semi-linear sets) are handled by
inclusion-exclusion over intersections, which are again convex cells.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Sequence

from ..realalg.univariate import UPoly
from .. import guard, obs
from .._errors import GeometryError, UnboundedSetError
from .polyhedron import Polyhedron

__all__ = [
    "polytope_volume",
    "union_volume",
    "interval_length",
    "lagrange_interpolate",
    "integrate_upoly",
]

#: Guard for the 2^n blow-up of inclusion-exclusion.
MAX_UNION_CELLS = 20


def lagrange_interpolate(
    points: Sequence[tuple[Fraction, Fraction]]
) -> UPoly:
    """The unique polynomial of degree < len(points) through *points*."""
    result = UPoly.zero()
    for i, (xi, yi) in enumerate(points):
        if yi == 0:
            continue
        basis = UPoly.constant(1)
        denominator = Fraction(1)
        for j, (xj, _) in enumerate(points):
            if i == j:
                continue
            basis = basis * UPoly([-xj, 1])
            denominator *= xi - xj
        result = result + basis * (yi / denominator)
    return result


def integrate_upoly(poly: UPoly, low: Fraction, high: Fraction) -> Fraction:
    """Definite integral of a rational polynomial over [low, high]."""
    antiderivative = UPoly(
        [Fraction(0)] + [c / (i + 1) for i, c in enumerate(poly.coeffs)]
    )
    return antiderivative(high) - antiderivative(low)


def interval_length(polyhedron: Polyhedron) -> Fraction:
    """Volume in dimension 1: the length of the solution interval."""
    if polyhedron.is_empty():
        return Fraction(0)
    var = polyhedron.variables[0]
    low, high = polyhedron.coordinate_bounds(var)
    if low is None or high is None:
        raise UnboundedSetError(f"unbounded in {var!r}; volume is infinite")
    return max(Fraction(0), high - low)


def polytope_volume(polyhedron: Polyhedron) -> Fraction:
    """Exact d-dimensional volume of a bounded convex polyhedron.

    Strict constraints are closed first (equal volume).  Raises
    :class:`UnboundedSetError` for unbounded inputs.
    """
    d = polyhedron.dimension
    if d == 0:
        raise GeometryError("volume undefined in dimension 0")
    obs.add("volume.polytopes")
    closed = polyhedron.closure()
    if closed.is_empty():
        return Fraction(0)
    if d == 1:
        return interval_length(closed)

    var = closed.variables[0]
    vertices = closed.vertices()
    if not vertices:
        # No vertices with a nonempty closed polyhedron means it is
        # unbounded (or degenerate without corners, also unbounded).
        raise UnboundedSetError("polyhedron has no vertices; it is unbounded")
    low, high = closed.coordinate_bounds(var)
    if low is None or high is None:
        raise UnboundedSetError(f"unbounded in {var!r}; volume is infinite")

    breakpoints = sorted({v[0] for v in vertices} | {low, high})
    total = Fraction(0)
    for left, right in zip(breakpoints, breakpoints[1:]):
        guard.checkpoint()
        if right <= left:
            continue
        width = right - left
        # d interior samples recover the degree-(d-1) slice-volume polynomial.
        samples: list[tuple[Fraction, Fraction]] = []
        for k in range(1, d + 1):
            t = left + width * Fraction(k, d + 1)
            obs.add("volume.slices")
            slice_volume = polytope_volume(closed.fix_variable(var, t))
            samples.append((t, slice_volume))
        piece = lagrange_interpolate(samples)
        total += integrate_upoly(piece, left, right)
    return total


def union_volume(cells: Sequence[Polyhedron]) -> Fraction:
    """Exact volume of a union of convex cells by inclusion-exclusion.

    All cells must share the same variable tuple.  Intersections of cells
    are again convex, so each term reduces to :func:`polytope_volume`.
    """
    cells = [c for c in cells if not c.is_empty()]
    if not cells:
        return Fraction(0)
    variables = cells[0].variables
    for cell in cells:
        if cell.variables != variables:
            raise GeometryError("all cells must share the same variables")
    if len(cells) > MAX_UNION_CELLS:
        raise GeometryError(
            f"inclusion-exclusion over {len(cells)} cells is infeasible "
            f"(limit {MAX_UNION_CELLS})"
        )
    total = Fraction(0)
    with obs.span("volume.union", cells=len(cells)):
        for size in range(1, len(cells) + 1):
            sign = 1 if size % 2 == 1 else -1
            for subset in itertools.combinations(cells, size):
                guard.checkpoint()
                intersection = subset[0]
                for cell in subset[1:]:
                    intersection = intersection.intersect(cell)
                if size > 1:
                    obs.add("volume.intersections")
                if intersection.is_empty():
                    continue
                total += sign * polytope_volume(intersection)
    return total
