"""Exact rational linear algebra helpers for polyhedral geometry."""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

__all__ = ["solve_linear_system", "determinant", "gaussian_elimination_rank"]


def solve_linear_system(
    matrix: Sequence[Sequence[Fraction]], rhs: Sequence[Fraction]
) -> tuple[Fraction, ...] | None:
    """Solve ``matrix @ x = rhs`` exactly.

    Returns the unique solution, or ``None`` if the system is singular
    (no solution or infinitely many).
    """
    n = len(matrix)
    if n == 0:
        return ()
    if any(len(row) != n for row in matrix) or len(rhs) != n:
        raise ValueError("square system required")
    # Augmented matrix, Gaussian elimination with partial (nonzero) pivoting.
    aug = [[Fraction(v) for v in row] + [Fraction(rhs[i])] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot_row = next((r for r in range(col, n) if aug[r][col] != 0), None)
        if pivot_row is None:
            return None
        aug[col], aug[pivot_row] = aug[pivot_row], aug[col]
        pivot = aug[col][col]
        for r in range(n):
            if r == col or aug[r][col] == 0:
                continue
            factor = aug[r][col] / pivot
            for c in range(col, n + 1):
                aug[r][c] -= factor * aug[col][c]
    return tuple(aug[i][n] / aug[i][i] for i in range(n))


def determinant(matrix: Sequence[Sequence[Fraction]]) -> Fraction:
    """Exact determinant by fraction Gaussian elimination."""
    n = len(matrix)
    if n == 0:
        return Fraction(1)
    work = [[Fraction(v) for v in row] for row in matrix]
    sign = 1
    det = Fraction(1)
    for col in range(n):
        pivot_row = next((r for r in range(col, n) if work[r][col] != 0), None)
        if pivot_row is None:
            return Fraction(0)
        if pivot_row != col:
            work[col], work[pivot_row] = work[pivot_row], work[col]
            sign = -sign
        pivot = work[col][col]
        det *= pivot
        for r in range(col + 1, n):
            if work[r][col] == 0:
                continue
            factor = work[r][col] / pivot
            for c in range(col, n):
                work[r][c] -= factor * work[col][c]
    return det * sign


def gaussian_elimination_rank(matrix: Sequence[Sequence[Fraction]]) -> int:
    """Exact rank of a rational matrix."""
    if not matrix:
        return 0
    rows = [list(map(Fraction, row)) for row in matrix]
    cols = len(rows[0])
    rank = 0
    for col in range(cols):
        pivot_row = next(
            (r for r in range(rank, len(rows)) if rows[r][col] != 0), None
        )
        if pivot_row is None:
            continue
        rows[rank], rows[pivot_row] = rows[pivot_row], rows[rank]
        pivot = rows[rank][col]
        for r in range(len(rows)):
            if r == rank or rows[r][col] == 0:
                continue
            factor = rows[r][col] / pivot
            for c in range(col, cols):
                rows[r][c] -= factor * rows[rank][c]
        rank += 1
        if rank == len(rows):
            break
    return rank
