"""Loewner-John ellipsoids and the convex-body volume bracket.

Section 4.3 of the paper remarks that for *convex* query outputs a
relative ``(c1, c2)``-approximation of the volume is obtainable with
Loewner-John ellipsoids: with ``k`` the dimension,

    c1 = (k^k + 1) / (2 k^k) - eps,      c2 = (k^k + 1) / 2 + eps.

The bracket comes from John's theorem: if E is the minimum-volume
enclosing ellipsoid (MVEE) of a convex body P, then ``E/k subseteq P
subseteq E`` (shrinking about the centre), hence

    vol(E) / k^k  <=  vol(P)  <=  vol(E),

and the estimator ``v = vol(E) * (1 + k^-k) / 2`` satisfies
``v / vol(P) in [(k^k+1)/(2 k^k), (k^k+1)/2]``.

The MVEE is computed with Khachiyan's barycentric coordinate-descent
algorithm (floating point; the guarantee is inflated by the requested
tolerance).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._errors import GeometryError

__all__ = ["Ellipsoid", "mvee", "unit_ball_volume", "john_volume_estimate"]


@dataclass(frozen=True)
class Ellipsoid:
    """The ellipsoid ``{x : (x - center)^T shape (x - center) <= 1}``."""

    center: np.ndarray
    shape: np.ndarray

    def volume(self) -> float:
        dims = self.center.shape[0]
        det = np.linalg.det(self.shape)
        if det <= 0:
            raise GeometryError("degenerate ellipsoid (non-positive determinant)")
        return unit_ball_volume(dims) / math.sqrt(det)

    def contains(self, point: np.ndarray, slack: float = 1e-9) -> bool:
        diff = np.asarray(point, dtype=float) - self.center
        return float(diff @ self.shape @ diff) <= 1.0 + slack

    def scaled(self, factor: float) -> "Ellipsoid":
        """Scale about the centre by *factor* (> 0)."""
        if factor <= 0:
            raise GeometryError("scale factor must be positive")
        return Ellipsoid(self.center, self.shape / (factor * factor))


def unit_ball_volume(dims: int) -> float:
    """Volume of the unit ball in R^dims."""
    return math.pi ** (dims / 2.0) / math.gamma(dims / 2.0 + 1.0)


def mvee(
    points: Sequence[Sequence[float]],
    tolerance: float = 1e-7,
    max_iterations: int = 100_000,
) -> Ellipsoid:
    """Minimum-volume enclosing ellipsoid of a full-dimensional point set.

    Khachiyan's algorithm on the lifted points; the returned ellipsoid
    contains all points up to the requested tolerance.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2:
        raise GeometryError("points must be a 2-D array-like")
    count, dims = pts.shape
    if count < dims + 1:
        raise GeometryError(
            f"need at least {dims + 1} points for a full-dimensional MVEE"
        )
    lifted = np.hstack([pts, np.ones((count, 1))]).T  # (d+1, m)
    weights = np.full(count, 1.0 / count)
    for _ in range(max_iterations):
        scatter = lifted @ np.diag(weights) @ lifted.T  # (d+1, d+1)
        try:
            inverse = np.linalg.inv(scatter)
        except np.linalg.LinAlgError as error:
            raise GeometryError(
                "degenerate point configuration for MVEE"
            ) from error
        distances = np.einsum("ij,jk,ki->i", lifted.T, inverse, lifted)
        worst = int(np.argmax(distances))
        maximum = float(distances[worst])
        step = (maximum - dims - 1.0) / ((dims + 1.0) * (maximum - 1.0))
        if step <= tolerance:
            break
        weights = weights * (1.0 - step)
        weights[worst] += step
    center = pts.T @ weights
    covariance = pts.T @ np.diag(weights) @ pts - np.outer(center, center)
    shape = np.linalg.inv(covariance) / dims
    # Khachiyan stops when the worst violation is below `tolerance`; inflate
    # slightly so the returned ellipsoid provably contains all points.
    shape = shape / (1.0 + 10_000.0 * dims * tolerance)
    return Ellipsoid(center, shape)


def john_volume_estimate(
    points: Sequence[Sequence[float]], tolerance: float = 1e-7
) -> tuple[float, float, float]:
    """(estimate, lower bound, upper bound) for the volume of conv(points).

    The bounds bracket the true volume by John's theorem; the estimate is
    the paper's midpoint estimator ``vol(E) * (1 + k^-k) / 2``.
    """
    pts = np.asarray(points, dtype=float)
    dims = pts.shape[1]
    ellipsoid = mvee(pts, tolerance=tolerance)
    outer = ellipsoid.volume()
    lower = outer / (float(dims) ** dims)
    estimate = outer * (1.0 + float(dims) ** (-dims)) / 2.0
    return estimate, lower, outer
