"""Variable independence and aggregation closure (Chomicki-Goldin-Kuper).

The paper's introduction discusses [11]: polynomial constraint languages
express *exact* volumes for sets satisfying **variable independence** —
informally, no constraint couples different coordinates — but the
condition "excludes many of the sets that arise most often in spatial
applications".  This module implements the checker and the product-volume
fast path, both to reproduce that prior-work baseline and as an ablation
against the paper's Theorem 3 (which needs no such condition).

A DNF cell is variable-independent when every constraint mentions at most
one variable; the cell is then an axis-aligned box and its volume a
product of interval lengths.  A formula is handled if all its cells are.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from ..logic.formulas import Formula
from .._errors import GeometryError, UnboundedSetError
from .decomposition import formula_to_cells
from .polyhedron import Polyhedron

__all__ = [
    "cell_is_variable_independent",
    "is_variable_independent",
    "variable_independent_volume",
]


def cell_is_variable_independent(cell: Polyhedron) -> bool:
    """True iff every constraint of the cell mentions at most one variable."""
    return all(len(constraint.variables()) <= 1 for constraint in cell.constraints)


def is_variable_independent(formula: Formula, variables: Sequence[str]) -> bool:
    """The [11] condition, checked on the DNF cell decomposition."""
    cells = formula_to_cells(formula, variables)
    return all(cell_is_variable_independent(cell) for cell in cells)


def _box_volume(cell: Polyhedron) -> Fraction:
    """Product of the per-coordinate interval lengths (the fast path)."""
    total = Fraction(1)
    for var in cell.variables:
        low, high = cell.coordinate_bounds(var)
        if low is None or high is None:
            raise UnboundedSetError(f"cell unbounded in {var!r}")
        length = high - low
        if length <= 0:
            return Fraction(0)
        total *= length
    return total


def variable_independent_volume(
    formula: Formula, variables: Sequence[str]
) -> Fraction:
    """Exact volume of a variable-independent set by the product rule.

    Raises :class:`GeometryError` when the condition fails — the situation
    the paper's Theorem 3 was designed to escape.  Overlapping boxes are
    handled by the same inclusion-exclusion as the general path (the
    intersections of boxes are boxes, so the fast path applies throughout).
    """
    cells = formula_to_cells(formula, tuple(variables))
    for cell in cells:
        if not cell_is_variable_independent(cell):
            raise GeometryError(
                "the set is not variable-independent; use the general "
                "Theorem 3 volume (repro.geometry.volume) instead"
            )
    # All cells are boxes; inclusion-exclusion over boxes stays exact and
    # cheap.  Reuse the generic union machinery but with the product rule
    # for each intersection.
    import itertools

    cells = [c for c in cells if not c.is_empty()]
    total = Fraction(0)
    for size in range(1, len(cells) + 1):
        sign = 1 if size % 2 == 1 else -1
        for subset in itertools.combinations(cells, size):
            intersection = subset[0]
            for cell in subset[1:]:
                intersection = intersection.intersect(cell)
            if intersection.is_empty():
                continue
            total += sign * _box_volume(intersection.closure())
    return total
