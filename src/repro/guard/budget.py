"""Cooperative resource budgets, carried in a context variable.

A :class:`Budget` caps the resources the exact pipeline may consume:

* ``deadline_s`` — wall-clock seconds from activation,
* ``max_cells`` — CAD stack cells + convex decomposition cells,
* ``max_constraints`` — linear constraints produced by Fourier-Motzkin,
* ``max_size`` — intermediate formula size (DNF conjuncts),
* ``max_depth`` — recursion depth of the lifting/search recursions,
* ``max_store_ios`` — shared-plan-store round trips (fetch/publish/poll),
* ``max_retries`` — transient-failure retries (worker death, lock
  contention) the batch executor may spend on one task before
  quarantining it.

Enforcement is cooperative: the hot loops of the evaluator, both QE
engines, and the geometry pipeline call :func:`checkpoint` (deadline) and
:func:`charge` / :func:`check_size` / :func:`check_depth` (countable
resources).  When no budget is active every helper is a near-free no-op —
one context-variable read — mirroring the disabled-by-default contract of
:mod:`repro.obs` (``benchmarks/bench_guard_overhead.py`` asserts the
budget for this).

Exhaustion raises the structured :class:`~repro.guard.errors.BudgetExceeded`
family and increments the ``guard.trips*`` counters; checkpoint counts are
flushed to ``guard.checkpoints`` when a budget deactivates.

Deterministic fault injection for tests lives in
:mod:`repro.guard.testing`; its hook is serviced here so an injected trip
fires at exactly the *n*-th checkpoint regardless of real elapsed time.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator

from .. import obs
from .errors import (
    BudgetExceeded,
    CellBudgetExceeded,
    ConstraintBudgetExceeded,
    DeadlineExceeded,
    DepthBudgetExceeded,
    RESOURCE_ERRORS,
    RetryBudgetExceeded,
    SizeBudgetExceeded,
    StoreIOBudgetExceeded,
)

__all__ = [
    "Budget",
    "active",
    "activate",
    "govern",
    "suspend",
    "checkpoint",
    "charge",
    "check_size",
    "check_depth",
]

_ACTIVE: ContextVar["Budget | None"] = ContextVar("repro_guard_budget", default=None)

#: Fault-injection spec installed by :func:`repro.guard.testing.trip_after`;
#: ``None`` in production.  Serviced by :func:`checkpoint`.
_INJECTION: dict[str, Any] | None = None


class Budget:
    """A set of resource caps plus the consumption accumulated against them.

    All caps are optional (``None`` = unlimited).  The wall clock starts at
    first activation; re-activating the same budget (the fallback ladder
    does this between rungs) does *not* restart it, so a deadline is
    absolute across retries.  Countable consumption can be zeroed between
    retries with :meth:`reset_consumed`.
    """

    __slots__ = (
        "deadline_s", "max_cells", "max_constraints", "max_size", "max_depth",
        "max_store_ios", "max_retries", "cells", "constraints", "store_ios",
        "retries", "peak_size", "peak_depth", "checkpoints", "started_s",
        "_deadline_at", "_flushed_checkpoints",
    )

    def __init__(
        self,
        *,
        deadline_s: float | None = None,
        max_cells: int | None = None,
        max_constraints: int | None = None,
        max_size: int | None = None,
        max_depth: int | None = None,
        max_store_ios: int | None = None,
        max_retries: int | None = None,
    ):
        for name, value in (
            ("deadline_s", deadline_s), ("max_cells", max_cells),
            ("max_constraints", max_constraints), ("max_size", max_size),
            ("max_depth", max_depth), ("max_store_ios", max_store_ios),
            ("max_retries", max_retries),
        ):
            if value is not None and value < 0:
                raise ValueError(f"{name} must be None or >= 0, got {value!r}")
        self.deadline_s = deadline_s
        self.max_cells = max_cells
        self.max_constraints = max_constraints
        self.max_size = max_size
        self.max_depth = max_depth
        self.max_store_ios = max_store_ios
        self.max_retries = max_retries
        self.cells = 0
        self.constraints = 0
        self.store_ios = 0
        self.retries = 0
        self.peak_size = 0
        self.peak_depth = 0
        self.checkpoints = 0
        self.started_s: float | None = None
        self._deadline_at: float | None = None
        self._flushed_checkpoints = 0

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Start the wall clock (idempotent; first call wins)."""
        if self.started_s is None:
            self.started_s = time.monotonic()
            if self.deadline_s is not None:
                self._deadline_at = self.started_s + self.deadline_s

    def elapsed_s(self) -> float:
        return 0.0 if self.started_s is None else time.monotonic() - self.started_s

    def remaining_s(self) -> float | None:
        """Wall-clock seconds left before the deadline trips.

        ``None`` when no deadline is configured.  Before the clock starts
        the full allowance remains; after exhaustion the value clamps to
        ``0.0`` rather than going negative.  Serving front-ends use this
        to derive the budget of work dispatched *on behalf of* a request
        — e.g. the time a query spent in an admission queue is charged
        against the deadline handed to the worker, so a request's
        end-to-end deadline is honored across the queue/execute split.
        """
        if self.deadline_s is None:
            return None
        if self._deadline_at is None:
            return float(self.deadline_s)
        return max(0.0, self._deadline_at - time.monotonic())

    def reset_consumed(self) -> None:
        """Zero the countable consumption (cells, constraints, size, depth).

        The wall clock, checkpoint tally, and retry count are *not* reset: a
        deadline is absolute, not per-attempt, and retry history is exactly
        the thing a per-attempt reset must never erase.
        """
        self.cells = 0
        self.constraints = 0
        self.store_ios = 0
        self.peak_size = 0
        self.peak_depth = 0

    def snapshot(self) -> dict[str, Any]:
        """Partial-progress snapshot, embedded in exhaustion errors."""
        return {
            "cells": self.cells,
            "constraints": self.constraints,
            "store_ios": self.store_ios,
            "retries": self.retries,
            "peak_size": self.peak_size,
            "peak_depth": self.peak_depth,
            "checkpoints": self.checkpoints,
            "elapsed_s": round(self.elapsed_s(), 6),
        }

    def limits(self) -> dict[str, Any]:
        """The configured caps (``None`` entries omitted); span annotations."""
        pairs = (
            ("deadline_s", self.deadline_s), ("max_cells", self.max_cells),
            ("max_constraints", self.max_constraints),
            ("max_size", self.max_size), ("max_depth", self.max_depth),
            ("max_store_ios", self.max_store_ios),
            ("max_retries", self.max_retries),
        )
        return {name: value for name, value in pairs if value is not None}

    # -- enforcement -------------------------------------------------------
    def checkpoint(self) -> None:
        """Deadline check; called from the hot loops via :func:`checkpoint`."""
        self.checkpoints += 1
        if self._deadline_at is not None and time.monotonic() > self._deadline_at:
            self._trip(
                DeadlineExceeded, "deadline", self.deadline_s,
                round(self.elapsed_s(), 6), unit="s",
            )

    def charge(self, resource: str, amount: int = 1) -> None:
        """Consume *amount* of a countable resource; trips when over cap."""
        if resource == "cells":
            self.cells += amount
            if self.max_cells is not None and self.cells > self.max_cells:
                self._trip(CellBudgetExceeded, "cells", self.max_cells, self.cells)
        elif resource == "constraints":
            self.constraints += amount
            if (self.max_constraints is not None
                    and self.constraints > self.max_constraints):
                self._trip(
                    ConstraintBudgetExceeded, "constraints",
                    self.max_constraints, self.constraints,
                )
        elif resource == "store_ios":
            self.store_ios += amount
            if (self.max_store_ios is not None
                    and self.store_ios > self.max_store_ios):
                self._trip(
                    StoreIOBudgetExceeded, "store_ios",
                    self.max_store_ios, self.store_ios,
                )
        elif resource == "retries":
            self.retries += amount
            if self.max_retries is not None and self.retries > self.max_retries:
                self._trip(
                    RetryBudgetExceeded, "retries",
                    self.max_retries, self.retries,
                )
        else:
            raise ValueError(f"unknown chargeable resource {resource!r}")

    def check_size(self, size: int) -> None:
        """Record an observed formula size; trips when over the size cap."""
        if size > self.peak_size:
            self.peak_size = size
        if self.max_size is not None and size > self.max_size:
            self._trip(SizeBudgetExceeded, "size", self.max_size, size)

    def check_depth(self, depth: int) -> None:
        """Record an observed recursion depth; trips when over the cap."""
        if depth > self.peak_depth:
            self.peak_depth = depth
        if self.max_depth is not None and depth > self.max_depth:
            self._trip(DepthBudgetExceeded, "depth", self.max_depth, depth)

    def _trip(
        self,
        error: type[BudgetExceeded],
        resource: str,
        limit: Any,
        consumed: Any,
        unit: str = "",
    ) -> None:
        obs.add("guard.trips")
        obs.add(f"guard.trips.{resource}")
        progress = self.snapshot()
        raise error(
            f"{resource} budget exceeded: consumed {consumed}{unit} "
            f"of {limit}{unit} allowed "
            f"(progress: cells={progress['cells']}, "
            f"constraints={progress['constraints']}, "
            f"checkpoints={progress['checkpoints']}, "
            f"elapsed={progress['elapsed_s']}s)",
            resource=resource,
            limit=limit,
            consumed=consumed,
            elapsed_s=progress["elapsed_s"],
            progress=progress,
        )

    def __repr__(self) -> str:
        caps = ", ".join(f"{k}={v}" for k, v in self.limits().items()) or "unlimited"
        return f"Budget({caps})"


# ---------------------------------------------------------------------------
# Module-level helpers: the API the instrumented hot loops call.
# ---------------------------------------------------------------------------

def active() -> Budget | None:
    """The budget governing this context, if any."""
    return _ACTIVE.get()


def checkpoint() -> None:
    """Cooperative cancellation point: a near-free no-op when ungoverned.

    Placed in every loop of the pipeline that can run for more than a few
    milliseconds (see docs/ROBUSTNESS.md for the placement rules).
    """
    budget = _ACTIVE.get()
    if budget is None and _INJECTION is None:
        return
    if _INJECTION is not None:
        _tick_injection()
    if budget is not None:
        budget.checkpoint()


def charge(resource: str, amount: int = 1) -> None:
    """Charge a countable resource against the active budget, if any."""
    budget = _ACTIVE.get()
    if budget is not None:
        budget.charge(resource, amount)


def check_size(size: int) -> None:
    """Check an intermediate formula size against the active budget."""
    budget = _ACTIVE.get()
    if budget is not None:
        budget.check_size(size)


def check_depth(depth: int) -> None:
    """Check a recursion depth against the active budget."""
    budget = _ACTIVE.get()
    if budget is not None:
        budget.check_depth(depth)


@contextmanager
def activate(budget: Budget) -> Iterator[Budget]:
    """Install *budget* for the block; starts its wall clock on first use."""
    budget.start()
    token = _ACTIVE.set(budget)
    try:
        yield budget
    finally:
        _ACTIVE.reset(token)
        fresh = budget.checkpoints - budget._flushed_checkpoints
        if fresh:
            obs.add("guard.checkpoints", fresh)
            budget._flushed_checkpoints = budget.checkpoints


@contextmanager
def govern(budget: Budget | None) -> Iterator[Budget | None]:
    """Like :func:`activate`, but a no-op when *budget* is ``None``."""
    if budget is None:
        yield None
    else:
        with activate(budget):
            yield budget


@contextmanager
def suspend() -> Iterator[None]:
    """Run a block outside any budget (and outside fault injection).

    The degradation ladder uses this for its approximate rung: the Monte
    Carlo fallback has a fixed, (epsilon, delta)-determined cost and must
    not be killed by the very deadline that forced the fallback.
    """
    global _INJECTION
    token = _ACTIVE.set(None)
    saved, _INJECTION = _INJECTION, None
    try:
        yield
    finally:
        _ACTIVE.reset(token)
        _INJECTION = saved


def _tick_injection() -> None:
    """Service the fault-injection spec (see :mod:`repro.guard.testing`)."""
    spec = _INJECTION
    assert spec is not None
    spec["count"] += 1
    if spec["times"] > 0 and spec["count"] % spec["period"] == 0:
        spec["times"] -= 1
        resource = spec["resource"]
        error = RESOURCE_ERRORS[resource]
        obs.add("guard.trips")
        obs.add(f"guard.trips.{resource}")
        budget = _ACTIVE.get()
        progress = budget.snapshot() if budget is not None else {}
        raise error(
            f"{resource} budget exceeded (fault injection after "
            f"{spec['count']} checkpoints)",
            resource=resource,
            limit=0,
            consumed=spec["count"],
            elapsed_s=progress.get("elapsed_s"),
            progress=progress,
        )
