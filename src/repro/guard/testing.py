"""Deterministic fault injection for the resource governor.

Real exhaustion requires real multi-second runs; tests and benchmarks
instead *inject* exhaustion at an exact cooperative checkpoint::

    from repro.guard import testing

    with testing.trip_after(3, resource="cells"):
        robust_volume(...)        # the 3rd checkpoint raises CellBudgetExceeded

Injection rides the same :func:`repro.guard.budget.checkpoint` hook the
production deadline check uses, so every code path that can trip for real
can be tripped deterministically.  :func:`repro.guard.budget.suspend`
pauses injection along with the budget, which is what lets the ladder's
approximate rung complete while the exact rungs are being killed.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from . import budget as _budget
from .errors import RESOURCE_ERRORS

__all__ = ["trip_after"]


@contextmanager
def trip_after(
    n: int, resource: str = "deadline", times: int = 1
) -> Iterator[dict[str, Any]]:
    """Force a :class:`BudgetExceeded` at every *n*-th checkpoint.

    ``resource`` picks the exception class (``deadline``, ``cells``,
    ``constraints``, ``size``, ``depth``, ``store_ios``, ``retries``);
    ``times`` bounds how many trips
    fire before the injector goes inert (so a ladder test can kill exactly
    one rung, or two, and let the rest run).  Yields the live spec; its
    ``"count"`` entry reports how many checkpoints were seen.
    """
    if n < 1:
        raise ValueError("trip_after needs n >= 1")
    if resource not in RESOURCE_ERRORS:
        raise ValueError(
            f"unknown resource {resource!r}; one of {sorted(RESOURCE_ERRORS)}"
        )
    spec: dict[str, Any] = {
        "period": n, "resource": resource, "times": times, "count": 0,
    }
    saved = _budget._INJECTION
    _budget._INJECTION = spec
    try:
        yield spec
    finally:
        _budget._INJECTION = saved
