"""The exact -> approximate degradation ladder for volume queries.

The paper's Section 3 lesson is that exact aggregation can be astronomically
expensive while approximation stays cheap; this module operationalises it.
:func:`robust_volume` tries, in order:

1. **exact** — the Theorem-3 pipeline (QE with feasibility pruning, convex
   decomposition, exact union volume);
2. **exact-coarse** — the same exact pipeline with the Fourier-Motzkin
   feasibility prune disabled (cheaper per step, still exact; the A1
   ablation benchmark measures this trade);
3. **approximate** — Monte Carlo hit-or-miss sampling sized from
   ``(epsilon, delta)`` by the Hoeffding bound, with a reported confidence
   radius.

Rungs 1 and 2 run under the given :class:`~repro.guard.budget.Budget`
(countable consumption is reset between rungs; the wall-clock deadline is
absolute).  Rung 3 runs with the budget *suspended*: its cost is fixed by
``(epsilon, delta)``, and it must not be killed by the deadline that
forced the fallback.  The result carries ``mode`` in ``{"exact",
"exact-coarse", "approximate"}`` plus the exhaustion errors of the rungs
that failed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Sequence

from .. import obs
from .._errors import ApproximationError
from .budget import Budget, active, govern, suspend
from .errors import BudgetExceeded

__all__ = ["POLICIES", "RobustResult", "robust_volume"]

#: Degradation policies: ``off`` = exact only (exhaustion propagates),
#: ``auto`` = full ladder, ``approx-only`` = skip the exact rungs.
POLICIES = ("off", "auto", "approx-only")


@dataclass
class RobustResult:
    """Outcome of :func:`robust_volume`.

    ``value`` is an exact :class:`~fractions.Fraction` when ``mode`` is
    ``exact`` or ``exact-coarse`` and a float estimate when ``mode`` is
    ``approximate``; ``confidence_radius`` is ``None`` for exact modes.
    ``attempts`` lists ``(mode, error)`` for every rung that exhausted its
    budget before the returned one succeeded.
    """

    value: "Fraction | float"
    mode: str
    confidence_radius: float | None = None
    samples: int | None = None
    epsilon: float | None = None
    delta: float | None = None
    attempts: list[tuple[str, BudgetExceeded]] = field(default_factory=list)

    def __float__(self) -> float:
        return float(self.value)


def robust_volume(
    formula,
    variables: Sequence[str] | None = None,
    *,
    epsilon: float = 0.05,
    delta: float = 0.05,
    budget: Budget | None = None,
    policy: str = "auto",
    box: Sequence[tuple[Fraction, Fraction]] | None = None,
    rng=None,
) -> RobustResult:
    """VOL of *formula* over *box* (default: the unit cube, i.e. VOL_I),
    degrading from exact to approximate as the budget allows.

    ``budget=None`` uses the budget already active in this context, if
    any; with no budget at all the exact rung runs ungoverned (and the
    ladder only matters for ``policy="approx-only"``).
    """
    if policy not in POLICIES:
        raise ApproximationError(
            f"unknown fallback policy {policy!r}; one of {POLICIES}"
        )
    if variables is None:
        variables = sorted(formula.free_variables())
    variables = tuple(variables)
    if box is None:
        box = [(Fraction(0), Fraction(1))] * len(variables)

    budget = budget if budget is not None else active()
    attempts: list[tuple[str, BudgetExceeded]] = []

    with obs.span(
        "guard.robust_volume", policy=policy,
        **(budget.limits() if budget is not None else {}),
    ) as span:
        if policy != "approx-only":
            for mode, prune in (("exact", True), ("exact-coarse", False)):
                try:
                    value = _exact_volume(formula, variables, box, budget, prune)
                except BudgetExceeded as error:
                    attempts.append((mode, error))
                    if policy == "off":
                        raise
                    obs.add("guard.fallback_transitions")
                    continue
                span.set(mode=mode)
                obs.observe_value("guard.fallback.attempts", len(attempts))
                return RobustResult(value, mode, attempts=attempts)

        result = _approximate_volume(
            formula, variables, box, budget, epsilon, delta, rng
        )
        result.attempts = attempts
        span.set(mode="approximate")
        obs.observe_value("guard.fallback.attempts", len(attempts))
        return result


def _exact_volume(formula, variables, box, budget, prune: bool) -> Fraction:
    from ..geometry.decomposition import formula_volume

    if budget is not None:
        budget.reset_consumed()
    with govern(budget):
        return formula_volume(formula, variables, box=box, prune=prune)


def _approximate_volume(
    formula, variables, box, budget, epsilon, delta, rng
) -> RobustResult:
    from ..geometry.sampling import hit_or_miss_volume, hoeffding_sample_size
    from ..logic.normalform import is_quantifier_free

    # The sampler needs a quantifier-free formula.  Quantifier elimination
    # is exact work, so it stays *under* the budget (a query whose QE alone
    # exhausts the budget cannot be approximated by this ladder either).
    if not is_quantifier_free(formula):
        from ..qe.fourier_motzkin import qe_linear

        if budget is not None:
            budget.reset_consumed()
        with govern(budget):
            formula = qe_linear(formula)

    samples = hoeffding_sample_size(epsilon, delta)
    if rng is None:
        import numpy as np

        rng = np.random.default_rng(0)
    float_box = [(float(low), float(high)) for low, high in box]
    with suspend():
        estimate = hit_or_miss_volume(
            formula, variables, samples, rng, box=float_box, delta=delta
        )
    return RobustResult(
        estimate.estimate,
        "approximate",
        confidence_radius=estimate.confidence_radius,
        samples=estimate.samples,
        epsilon=epsilon,
        delta=delta,
    )
