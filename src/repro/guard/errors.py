"""The structured budget-exhaustion error family.

Every exhaustion raised by the resource governor derives from
:class:`BudgetExceeded`, which itself derives from
:class:`~repro._errors.ReproError` so existing ``except ReproError``
handlers keep working.  Each subclass names the resource that tripped and
carries how much was consumed, the configured limit, and a snapshot of
partial progress (cells lifted, constraints produced, checkpoints passed)
at the moment of the trip.

:class:`DepthBudgetExceeded` additionally derives from
:class:`~repro._errors.QEError`: recursion-depth exhaustion historically
surfaced as an uncaught ``RecursionError`` inside the CAD lifting
recursion, and callers that catch ``QEError`` around ``decide`` /
``find_sample`` must keep seeing a QE-flavoured failure.
"""

from __future__ import annotations

from typing import Any, Mapping

from .._errors import QEError, ReproError

__all__ = [
    "BudgetExceeded",
    "DeadlineExceeded",
    "CellBudgetExceeded",
    "ConstraintBudgetExceeded",
    "SizeBudgetExceeded",
    "DepthBudgetExceeded",
    "StoreIOBudgetExceeded",
    "RetryBudgetExceeded",
    "RESOURCE_ERRORS",
]


class BudgetExceeded(ReproError):
    """A cooperative resource budget was exhausted.

    Attributes
    ----------
    resource
        Which budgeted resource tripped: ``"deadline"``, ``"cells"``,
        ``"constraints"``, ``"size"``, or ``"depth"``.
    limit
        The configured cap for that resource.
    consumed
        How much had been consumed when the trip fired.
    elapsed_s
        Wall-clock seconds since the budget was activated.
    progress
        Snapshot of all consumption counters at trip time (partial
        progress, useful for sizing a retry).
    """

    resource = "budget"

    def __init__(
        self,
        message: str,
        *,
        resource: str | None = None,
        limit: Any = None,
        consumed: Any = None,
        elapsed_s: float | None = None,
        progress: Mapping[str, Any] | None = None,
    ):
        super().__init__(message)
        if resource is not None:
            self.resource = resource
        self.limit = limit
        self.consumed = consumed
        self.elapsed_s = elapsed_s
        self.progress = dict(progress or {})


class DeadlineExceeded(BudgetExceeded):
    """The wall-clock deadline passed before the computation finished."""

    resource = "deadline"


class CellBudgetExceeded(BudgetExceeded):
    """More cells (CAD stack cells / convex decomposition cells) than allowed."""

    resource = "cells"


class ConstraintBudgetExceeded(BudgetExceeded):
    """Fourier-Motzkin produced more linear constraints than allowed."""

    resource = "constraints"


class SizeBudgetExceeded(BudgetExceeded):
    """An intermediate formula (e.g. a DNF) grew past the size cap."""

    resource = "size"


class DepthBudgetExceeded(BudgetExceeded, QEError):
    """Recursion went deeper than the depth cap (or the interpreter limit)."""

    resource = "depth"


class StoreIOBudgetExceeded(BudgetExceeded):
    """More shared-plan-store round trips (fetch/publish) than allowed."""

    resource = "store_ios"


class RetryBudgetExceeded(BudgetExceeded):
    """A transient failure was retried more times than allowed.

    Raised by the batch executor's fault-tolerance layer when a task keeps
    killing its worker (or its store access keeps hitting transient
    contention) past ``max_retries`` attempts; the task is then
    quarantined rather than retried forever.
    """

    resource = "retries"


#: Resource name -> exception class, used by budgets and fault injection.
RESOURCE_ERRORS: dict[str, type[BudgetExceeded]] = {
    "deadline": DeadlineExceeded,
    "cells": CellBudgetExceeded,
    "constraints": ConstraintBudgetExceeded,
    "size": SizeBudgetExceeded,
    "depth": DepthBudgetExceeded,
    "store_ios": StoreIOBudgetExceeded,
    "retries": RetryBudgetExceeded,
}
