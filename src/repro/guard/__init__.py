"""Resource governance: budgets, cooperative cancellation, degradation.

The paper's central contrast — exact aggregation blows up (the KM
construction needs >= 10^9 atomic subformulae for a toy query) while
approximation stays cheap — is an operational problem for this codebase:
CAD, Fourier-Motzkin, and exact volume can run for minutes on small
inputs.  This subsystem makes every such path *governable*:

* :class:`Budget` (:mod:`repro.guard.budget`) caps wall-clock time, CAD /
  decomposition cells, FM constraints, formula size, and recursion depth;
  it is carried in a context variable and enforced cooperatively by a
  cheap :func:`checkpoint` in the pipeline's hot loops.
* :class:`BudgetExceeded` (:mod:`repro.guard.errors`) and its per-resource
  subclasses report which resource tripped, how much was consumed, and the
  partial progress at that point.
* :func:`robust_volume` (:mod:`repro.guard.fallback`) is the degradation
  ladder: exact, then coarser exact, then Monte Carlo with a confidence
  interval — so no volume query can wedge the process.
* :mod:`repro.guard.testing` injects exhaustion deterministically so every
  path is testable without real multi-minute runs.

See docs/ROBUSTNESS.md for budget semantics, checkpoint placement rules,
and the CLI surface (``--timeout`` / ``--max-cells`` / ``--fallback``).
"""

from __future__ import annotations

from .budget import (
    Budget,
    activate,
    active,
    charge,
    check_depth,
    check_size,
    checkpoint,
    govern,
    suspend,
)
from .errors import (
    BudgetExceeded,
    CellBudgetExceeded,
    ConstraintBudgetExceeded,
    DeadlineExceeded,
    DepthBudgetExceeded,
    RetryBudgetExceeded,
    SizeBudgetExceeded,
    StoreIOBudgetExceeded,
)

__all__ = [
    "Budget",
    "activate",
    "active",
    "charge",
    "check_depth",
    "check_size",
    "checkpoint",
    "govern",
    "suspend",
    "BudgetExceeded",
    "DeadlineExceeded",
    "CellBudgetExceeded",
    "ConstraintBudgetExceeded",
    "SizeBudgetExceeded",
    "DepthBudgetExceeded",
    "StoreIOBudgetExceeded",
    "RetryBudgetExceeded",
    "POLICIES",
    "RobustResult",
    "robust_volume",
    "testing",
]

_LAZY = {"POLICIES", "RobustResult", "robust_volume", "testing"}


def __getattr__(name: str):
    # The ladder pulls in geometry/approx (numpy, scipy); load it lazily so
    # `import repro.guard` from the logic/QE layers stays light.
    import importlib

    if name in ("POLICIES", "RobustResult", "robust_volume"):
        return getattr(importlib.import_module(".fallback", __name__), name)
    if name == "testing":
        return importlib.import_module(".testing", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
