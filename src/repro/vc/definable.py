"""Definable families F_phi(D) = { phi(a, D) : a } and their traces.

Section 4's Remark and Section 6.2 both hinge on the VC dimension of the
family of sets cut out by a parameterised query over a fixed database.
This module materialises the *trace* of such a family on a finite ground
set of points, producing input for the exact shattering search.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from ..db.evaluation import expand_relations, resolve_adom_quantifiers
from ..db.instance import FiniteInstance
from ..logic.evaluate import evaluate
from ..logic.formulas import Formula
from ..logic.metrics import max_degree
from ..logic.normalform import is_quantifier_free
from ..logic.substitution import substitute
from ..logic.terms import Const
from ..qe.fourier_motzkin import qe_linear
from .._errors import EvaluationError
from .shatter import vc_dimension

__all__ = ["family_trace", "family_vc_dimension"]


def family_trace(
    query: Formula,
    instance,
    param_vars: Sequence[str],
    point_vars: Sequence[str],
    parameters: Sequence[Sequence[Fraction]],
    ground_points: Sequence[Sequence[Fraction]],
) -> list[frozenset[int]]:
    """Trace of the definable family on *ground_points*.

    For each parameter tuple ``a`` the set
    ``{ i : D |= query(a, ground_points[i]) }`` is computed exactly.
    The query (after expanding relations) must be quantifier-free or
    linear; arbitrary quantified polynomial queries would require a CAD
    decision per (parameter, point) pair.
    """
    if isinstance(instance, FiniteInstance):
        query = resolve_adom_quantifiers(query, instance)
    expanded = expand_relations(query, instance)
    if not is_quantifier_free(expanded):
        if max_degree(expanded) > 1:
            raise EvaluationError(
                "family_trace supports quantifier-free or linear queries"
            )
        expanded = qe_linear(expanded)

    trace: list[frozenset[int]] = []
    for parameter in parameters:
        bound = substitute(
            expanded,
            {v: Const(Fraction(c)) for v, c in zip(param_vars, parameter)},
        )
        members = set()
        for index, point in enumerate(ground_points):
            env = {v: Fraction(c) for v, c in zip(point_vars, point)}
            if evaluate(bound, env):
                members.add(index)
        trace.append(frozenset(members))
    return trace


def family_vc_dimension(
    query: Formula,
    instance,
    param_vars: Sequence[str],
    point_vars: Sequence[str],
    parameters: Sequence[Sequence[Fraction]],
    ground_points: Sequence[Sequence[Fraction]],
) -> int:
    """VC dimension of the family's trace on the given ground points.

    This is a *lower bound* on VCdim(F_phi(D)) (the true dimension takes a
    supremum over all ground sets); equality holds when the ground set is
    chosen to witness shattering, as in the Proposition 5 construction.
    """
    trace = family_trace(
        query, instance, param_vars, point_vars, parameters, ground_points
    )
    return vc_dimension(trace, len(ground_points))
