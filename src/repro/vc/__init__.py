"""VC dimension: exact shattering, definable families, and the paper's bounds."""

from .shatter import family_to_masks, is_shattered, vc_dimension
from .definable import family_trace, family_vc_dimension
from .bounds import (
    blumer_sample_size,
    goldberg_jerrum_constant,
    goldberg_jerrum_constant_for_query,
    vc_dimension_bound,
)
from .prop5 import prop5_instance, prop5_measured_vc_dimension, prop5_query

__all__ = [
    "vc_dimension",
    "is_shattered",
    "family_to_masks",
    "family_trace",
    "family_vc_dimension",
    "blumer_sample_size",
    "goldberg_jerrum_constant",
    "goldberg_jerrum_constant_for_query",
    "vc_dimension_bound",
    "prop5_instance",
    "prop5_query",
    "prop5_measured_vc_dimension",
]
