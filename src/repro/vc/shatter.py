"""Exact Vapnik-Chervonenkis dimension by shattering search.

A family of sets over a finite ground set is represented as bitmasks.  The
VC dimension is the largest d such that some d-element subset of the
ground set is shattered; we search subsets in increasing size with early
termination.  Exponential, as it must be — intended for the small ground
sets of the experiments (|ground| <= ~20).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

__all__ = ["family_to_masks", "is_shattered", "vc_dimension"]


def family_to_masks(
    family: Iterable[frozenset[int] | set[int]], ground_size: int
) -> list[int]:
    """Convert sets of ground-point indices into bitmasks."""
    masks = set()
    for members in family:
        mask = 0
        for index in members:
            if not 0 <= index < ground_size:
                raise ValueError(f"index {index} outside ground set")
            mask |= 1 << index
        masks.add(mask)
    return sorted(masks)


def is_shattered(subset: Sequence[int], masks: Sequence[int]) -> bool:
    """Is the given index subset shattered by the family of masks?"""
    subset_mask = 0
    for index in subset:
        subset_mask |= 1 << index
    traces = set()
    target = 1 << len(subset)
    # Compress each trace to a small integer over the subset's positions.
    positions = {index: i for i, index in enumerate(subset)}
    for mask in masks:
        trace = mask & subset_mask
        compressed = 0
        remaining = trace
        while remaining:
            bit = (remaining & -remaining).bit_length() - 1
            compressed |= 1 << positions[bit]
            remaining &= remaining - 1
        traces.add(compressed)
        if len(traces) == target:
            return True
    return False


def vc_dimension(
    family: Iterable[frozenset[int] | set[int]], ground_size: int
) -> int:
    """Exact VC dimension of *family* over ``range(ground_size)``."""
    masks = family_to_masks(family, ground_size)
    if not masks:
        return 0
    # |family| >= 2^d is necessary for shattering a d-set (Sauer-Shelah).
    max_possible = min(ground_size, len(masks).bit_length() - 1)
    best = 0
    for d in range(1, max_possible + 1):
        if any(
            is_shattered(subset, masks)
            for subset in itertools.combinations(range(ground_size), d)
        ):
            best = d
        else:
            break
    return best
