"""The paper's quantitative VC bounds.

* **Sample complexity** (Blumer-Ehrenfeucht-Haussler-Warmuth, as quoted in
  Section 3): for a family of VC dimension d and accuracy/confidence
  ``(epsilon, delta)``, a random sample of size

      M > max( (4/eps) log(2/delta), (8 d/eps) log(13/eps) )

  is an epsilon-net/epsilon-approximation with probability >= 1 - delta,
  uniformly over the family.

* **Goldberg-Jerrum constant** (end of Section 6.2): for an active-
  semantics FO + POLY query with ``k = |y|``, quantifier rank ``q``,
  maximal schema arity ``p``, maximal constraint degree ``d`` and ``s``
  atomic subformulae, ``VCdim(F_phi(D)) < C log |D|`` with

      C = 16 k (p + q) (log(8 e d p s) + 1).

Logarithms are base 2, following the learning-theory sources.
"""

from __future__ import annotations

import math

from ..logic.formulas import Formula
from ..logic.metrics import count_atoms, max_degree, quantifier_rank
from .._errors import ApproximationError

__all__ = [
    "blumer_sample_size",
    "goldberg_jerrum_constant",
    "goldberg_jerrum_constant_for_query",
    "vc_dimension_bound",
]


def blumer_sample_size(epsilon: float, delta: float, vc_dim: float) -> int:
    """The paper's sample size M(epsilon, delta, d) (Section 3)."""
    if not (0 < epsilon < 1) or not (0 < delta < 1):
        raise ApproximationError("epsilon and delta must lie in (0, 1)")
    if vc_dim < 0:
        raise ApproximationError("VC dimension must be non-negative")
    first = (4.0 / epsilon) * math.log2(2.0 / delta)
    second = (8.0 * vc_dim / epsilon) * math.log2(13.0 / epsilon)
    return math.floor(max(first, second)) + 1


def goldberg_jerrum_constant(k: int, p: int, q: int, d: int, s: int) -> float:
    """C = 16 k (p + q) (log2(8 e d p s) + 1).

    Parameters follow the paper: k = number of point variables, p = maximal
    relation arity, q = quantifier rank, d = maximal polynomial degree
    (>= 1), s = number of atomic subformulae.
    """
    if min(k, p, d, s) < 1 or q < 0:
        raise ApproximationError("parameters out of range for the GJ constant")
    return 16.0 * k * (p + q) * (math.log2(8.0 * math.e * d * p * s) + 1.0)


def goldberg_jerrum_constant_for_query(
    query: Formula, point_arity: int, max_relation_arity: int
) -> float:
    """Instantiate the Goldberg-Jerrum constant from a query's syntax."""
    return goldberg_jerrum_constant(
        k=point_arity,
        p=max_relation_arity,
        q=quantifier_rank(query),
        d=max(1, max_degree(query)),
        s=max(1, count_atoms(query)),
    )


def vc_dimension_bound(constant: float, database_size: int) -> float:
    """Proposition 6's bound ``VCdim(F_phi(D)) < C log |D|`` (base-2 log)."""
    if database_size < 2:
        return constant  # log kicks in from size 2; keep the bound positive
    return constant * math.log2(database_size)
