"""Proposition 5: a quantifier-free query whose definable families have
VC dimension >= log |D|.

The construction: the database stores the bit-graph of all subsets of a
k-element ground set — S(a, j) holds iff bit j of the subset code a is
set.  The quantifier-free query ``phi(x, y) = S(x, y)`` then cuts out, as
x ranges over the codes, *every* subset of the ground points {0..k-1}:
the family shatters all k points, so

    VCdim(F_phi(D_k)) >= k  >=  log2 |D_k|,

while |D_k| <= 2^k + k.  This is the obstruction to making the
Karpinski-Macintyre approximation uniform: the quantifier prefix of their
construction grows with the VC dimension, hence with log of the database.
"""

from __future__ import annotations

from fractions import Fraction

from ..db.instance import FiniteInstance
from ..db.schema import Schema
from ..logic.builders import Relation, variables
from ..logic.formulas import Formula
from .definable import family_vc_dimension

__all__ = ["prop5_instance", "prop5_query", "prop5_measured_vc_dimension"]


def prop5_instance(k: int) -> FiniteInstance:
    """The database D_k: bit-graph of all subsets of {0, ..., k-1}."""
    if k < 1:
        raise ValueError("k must be positive")
    schema = Schema.make({"S": 2})
    rows = []
    for code in range(2**k):
        for bit in range(k):
            if code >> bit & 1:
                rows.append((Fraction(code), Fraction(bit)))
    return FiniteInstance.make(schema, {"S": rows})


def prop5_query() -> Formula:
    """The quantifier-free query phi(x, y) = S(x, y)."""
    x, y = variables("x y")
    S = Relation("S", 2)
    return S(x, y)


def prop5_measured_vc_dimension(k: int) -> tuple[int, int]:
    """(measured VC dimension, |D_k|) for the Proposition 5 family."""
    instance = prop5_instance(k)
    parameters = [(Fraction(code),) for code in range(2**k)]
    ground = [(Fraction(bit),) for bit in range(k)]
    dimension = family_vc_dimension(
        prop5_query(), instance, ("x",), ("y",), parameters, ground
    )
    return dimension, instance.size()
