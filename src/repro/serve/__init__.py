"""Async query service over the prepared-plan engine.

``repro serve`` turns the batch executor's machinery — prepared plans,
the cross-process plan store, process workers, per-task budgets, and
telemetry harvesting — into a long-running HTTP service with admission
control.  The layering (one module per concern, event loop admits /
workers compute):

``http``         minimal asyncio HTTP/1.1 framing, transport only
``admission``    bounded FIFO queue + load shedding (429)
``coalesce``     single-flight compile deduplication per content hash
``service``      the pool bridge: determinism, provenance, telemetry
``server``       routes, deadlines, access log, graceful drain

Start one with ``python -m repro serve --port 8080 --workers 4`` and see
docs/SERVING.md for the protocol, the byte-identity contract with
``repro batch``, and the backpressure semantics.
"""

from .admission import AdmissionGate, RequestShed
from .coalesce import SingleFlight
from .http import HttpError, HttpRequest, read_request, response_bytes
from .server import SCHEMA, ServeConfig, Server, run_server
from .service import QueryService, ServiceConfig

__all__ = [
    "SCHEMA",
    "AdmissionGate",
    "RequestShed",
    "SingleFlight",
    "HttpError",
    "HttpRequest",
    "read_request",
    "response_bytes",
    "ServeConfig",
    "Server",
    "run_server",
    "QueryService",
    "ServiceConfig",
]
