"""Minimal asyncio HTTP/1.1 framing for the query service.

The standard library has no *async* HTTP server (``http.server`` is
thread-per-connection and would defeat the admission-control design, see
:mod:`repro.serve.server`), so this module implements the small slice of
HTTP/1.1 the service needs on top of ``asyncio`` streams: request-line +
header parsing, ``Content-Length`` bodies, keep-alive, and response
serialization.  Deliberately out of scope: chunked transfer encoding
(rejected with 501), multipart, TLS, and HTTP/2 — a reverse proxy
terminates those in any real deployment.

Everything here is transport-shaped and pure: no metrics, no routing, no
query knowledge.  Errors raise :class:`HttpError`, which carries the
status code the connection handler should answer with before (usually)
closing the connection.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

__all__ = [
    "HttpError",
    "HttpRequest",
    "REASONS",
    "read_request",
    "response_bytes",
]

#: Reason phrases for every status the service emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Methods the parser accepts; anything else is a 405 at routing time,
#: but a token that is not even method-shaped is a 400 here.
_METHODS = frozenset({
    "GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS", "PATCH",
})

#: Hard cap on the header block, independent of the stream limit.
MAX_HEADER_LINES = 100


class HttpError(Exception):
    """A malformed or unserviceable request; *status* answers it."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request: line, headers (lower-cased names), raw body."""

    method: str
    target: str
    version: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def path(self) -> str:
        """The target without its query string."""
        return self.target.split("?", 1)[0]

    @property
    def keep_alive(self) -> bool:
        """Whether the connection should survive this exchange."""
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


async def read_request(
    reader: asyncio.StreamReader, max_body: int
) -> HttpRequest | None:
    """Parse one request off *reader*; ``None`` on clean EOF between requests.

    Raises :class:`HttpError` for anything malformed, oversized, or
    unsupported, and ``asyncio.IncompleteReadError`` /
    ``ConnectionError`` when the peer vanishes mid-request.
    """
    try:
        line = await reader.readline()
    except ValueError as error:  # stream limit overrun
        raise HttpError(431, "request line too long") from error
    if not line:
        return None
    try:
        text = line.decode("ascii").strip()
    except UnicodeDecodeError as error:
        raise HttpError(400, "request line is not ASCII") from error
    parts = text.split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {text!r}")
    method, target, version = parts
    if method not in _METHODS:
        raise HttpError(400, f"unknown method {method!r}")
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise HttpError(400, f"unsupported protocol {version!r}")

    headers: dict[str, str] = {}
    for _ in range(MAX_HEADER_LINES):
        try:
            raw = await reader.readline()
        except ValueError as error:
            raise HttpError(431, "header line too long") from error
        if raw in (b"\r\n", b"\n", b""):
            break
        try:
            name, _, value = raw.decode("latin-1").partition(":")
        except UnicodeDecodeError as error:
            raise HttpError(400, "undecodable header line") from error
        if not _ or not name.strip():
            raise HttpError(400, f"malformed header line: {raw!r}")
        name = name.strip().lower()
        value = value.strip()
        if name in headers:
            # RFC 9112 §6.3: a message with multiple differing
            # Content-Length values must be rejected; behind a proxy,
            # last-wins overwriting is a request-smuggling vector.  The
            # framing headers are rejected outright, any other repeat
            # only when the values disagree.
            if name in ("content-length", "transfer-encoding"):
                raise HttpError(400, f"duplicate {name} header")
            if headers[name] != value:
                raise HttpError(
                    400, f"conflicting values for repeated header {name!r}"
                )
        else:
            headers[name] = value
    else:
        raise HttpError(431, f"more than {MAX_HEADER_LINES} header lines")

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(501, "chunked transfer encoding is not supported")
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError as error:
            raise HttpError(
                400, f"bad Content-Length: {length_text!r}"
            ) from error
        if length < 0:
            raise HttpError(400, f"bad Content-Length: {length_text!r}")
        if length > max_body:
            raise HttpError(
                413, f"body of {length} bytes exceeds the {max_body} cap"
            )
        body = await reader.readexactly(length)
    elif method in ("POST", "PUT", "PATCH"):
        raise HttpError(411, f"{method} requires Content-Length")
    return HttpRequest(
        method=method, target=target, version=version,
        headers=headers, body=body,
    )


def response_bytes(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: dict[str, str] | None = None,
    head_only: bool = False,
) -> bytes:
    """Serialize one HTTP/1.1 response with an explicit Content-Length.

    ``head_only`` answers a HEAD request: the full header block —
    including the Content-Length the body *would* have — with the body
    omitted (RFC 9110 §9.3.2).  Sending the body on a HEAD response
    desyncs keep-alive framing: the client would parse the unread bytes
    as the start of the next response.
    """
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + (b"" if head_only else body)
