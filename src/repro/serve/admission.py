"""Admission control: a bounded FIFO queue with load shedding.

The event loop admits work through one :class:`AdmissionGate`:

* up to ``max_inflight`` tasks are dispatched to the worker pool at a
  time — the pool is the CPU; letting more in would only grow an
  invisible queue inside ``ProcessPoolExecutor``, where requests cannot
  be timed, shed, or accounted;
* up to ``queue_depth`` requests may *wait* for a slot; the request that
  would be waiter ``queue_depth + 1`` is **shed** with
  :class:`RequestShed` (the server answers 429 + ``Retry-After``) rather
  than queued — bounded queues are what keep p99 latency and memory flat
  when offered load exceeds capacity;
* FIFO order: slots are granted strictly in arrival order, so a burst
  cannot starve an earlier request.

Batches that must be admitted **as a unit** (the inline ``/v1/batch``
endpoint) go through :meth:`AdmissionGate.try_reserve`: the headroom
check — against *combined* slot + queue capacity, inflight work
included — and the reservation happen in one synchronous step, so two
concurrent batches can never both pass on the same headroom, and a
batch can never push the queue past ``queue_depth``.  Each reserved
task's :meth:`acquire` consumes one unit of the reservation; whatever
the batch never consumed is returned by :meth:`Reservation.cancel`.

The gate also owns the admission metrics: ``serve.queue.depth`` /
``serve.inflight`` gauges, the ``serve.queue_wait_s`` histogram, and the
``serve.shed`` counter.  It is single-loop code — no locks — which is
exactly why admission stays in the event loop while CPU work leaves it.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque

from .. import obs

__all__ = ["AdmissionGate", "RequestShed", "Reservation"]


class RequestShed(Exception):
    """The admission queue is full; the caller should answer 429."""

    def __init__(self, retry_after_s: float):
        super().__init__(
            f"admission queue full; retry after {retry_after_s:g}s"
        )
        self.retry_after_s = retry_after_s


class Reservation:
    """Capacity set aside by :meth:`AdmissionGate.try_reserve`.

    One unit per task of a batch admitted as a unit: each task's
    :meth:`AdmissionGate.acquire` consumes one, and :meth:`cancel`
    (call it in a ``finally``) returns whatever was never consumed —
    a cancelled batch must not strand capacity.
    """

    def __init__(self, gate: AdmissionGate, count: int):
        self._gate = gate
        self.count = count

    def consume_one(self) -> None:
        """Convert one reserved unit into this task's admission."""
        if self.count > 0:
            self.count -= 1
            self._gate.reserved -= 1

    def cancel(self) -> None:
        """Return every unconsumed unit to the gate."""
        self._gate.reserved -= self.count
        self.count = 0


class AdmissionGate:
    """A bounded, FIFO, metric-reporting admission gate (see module doc)."""

    def __init__(
        self,
        max_inflight: int,
        queue_depth: int,
        retry_after_s: float = 1.0,
    ):
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {queue_depth}")
        self.max_inflight = max_inflight
        self.queue_depth = queue_depth
        self.retry_after_s = retry_after_s
        self.inflight = 0
        self.reserved = 0
        self._waiters: deque[asyncio.Future] = deque()

    # -- introspection -----------------------------------------------------
    @property
    def queued(self) -> int:
        """Requests currently waiting for a slot."""
        return len(self._waiters)

    def room(self) -> int:
        """How many more requests could be queued before shedding."""
        return self.queue_depth - len(self._waiters) - self.reserved

    def idle(self) -> bool:
        """True when nothing is inflight and nothing is queued."""
        return self.inflight == 0 and not self._waiters

    def _used(self) -> int:
        """Admitted-or-promised work counted against total capacity."""
        return self.inflight + len(self._waiters) + self.reserved

    # -- the gate ----------------------------------------------------------
    def try_reserve(self, count: int) -> Reservation | None:
        """Atomically reserve *count* units of slot + queue capacity.

        Returns ``None`` — the caller should shed the whole batch —
        when inflight + queued + already-reserved work plus *count*
        would exceed ``max_inflight + queue_depth``.  The check and the
        reservation are one synchronous step on the event loop, so
        concurrent batches cannot both pass on the same headroom.
        """
        if self._used() + count > self.max_inflight + self.queue_depth:
            return None
        self.reserved += count
        return Reservation(self, count)

    async def acquire(
        self,
        shed: bool = True,
        reservation: Reservation | None = None,
        trace_id: str | None = None,
    ) -> float:
        """Wait for a dispatch slot; returns the seconds spent queued.

        ``shed=False`` waits unconditionally even when the queue is over
        ``queue_depth``; *reservation* marks a task whose capacity was
        already set aside by :meth:`try_reserve` — it consumes one unit
        instead of re-testing headroom.  Both are used by inline-batch
        tasks, whose *request* was admitted as a unit up front and must
        not be dropped halfway through.  *trace_id* tags the queue-wait
        observation with an OpenMetrics exemplar, so a bad
        ``serve.queue_wait_s`` bucket names a request that sat in it.
        """
        if reservation is not None:
            reservation.consume_one()
        elif shed and self._used() >= self.max_inflight + self.queue_depth:
            obs.add("serve.shed")
            raise RequestShed(self.retry_after_s)
        if self.inflight < self.max_inflight and not self._waiters:
            self.inflight += 1
            self._report()
            return 0.0
        waiter: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters.append(waiter)
        self._report()
        started = time.perf_counter()
        try:
            await waiter
        except asyncio.CancelledError:
            if waiter.done() and not waiter.cancelled():
                # The slot was granted in the same tick the request was
                # cancelled; hand it to the next waiter instead of
                # leaking it.
                self.release()
            else:
                self._waiters.remove(waiter)
                self._report()
            raise
        waited = time.perf_counter() - started
        obs.observe_value("serve.queue_wait_s", waited, trace_id=trace_id)
        return waited

    def release(self) -> None:
        """Return a slot; grants it to the oldest live waiter, if any."""
        self.inflight -= 1
        while self._waiters and self.inflight < self.max_inflight:
            waiter = self._waiters.popleft()
            if waiter.cancelled():
                continue
            self.inflight += 1
            waiter.set_result(None)
            break
        self._report()

    def _report(self) -> None:
        obs.set_gauge("serve.queue.depth", len(self._waiters))
        obs.set_gauge("serve.inflight", self.inflight)
