"""Single-flight compile coalescing, keyed by plan content hash.

A thundering herd of requests for the same query *shape* (alpha-variants
included — the content hash canonicalizes them together) must not
dispatch N simultaneous compiles.  The shared plan store already
guarantees one *winning* compile cross-process via its claim protocol,
but the N - 1 losers would still occupy worker-pool slots polling for
the winner's publication — under load, the whole pool can wedge on one
hot key.  This in-process layer keeps the redundancy out of the pool
entirely: the first request for a cold key becomes the **leader** and
dispatches normally (its evaluation compiles and publishes the plan);
every concurrent duplicate parks on an ``asyncio.Future`` *in the event
loop* — costing no pool slot — and dispatches its own evaluation only
after the leader finishes, by which point the plan is a warm store hit.

The flight always lands: the leader resolves its future in a
``finally``, and failures resolve (not reject) it — each waiter then
runs its own evaluation and produces its own structured error record,
exactly as the same tasks would in a batch.
"""

from __future__ import annotations

import asyncio
from typing import Any

__all__ = ["SingleFlight"]


class SingleFlight:
    """At most one in-flight computation per key; event-loop-only state."""

    def __init__(self) -> None:
        self._inflight: dict[str, asyncio.Future] = {}
        self._leaders: dict[str, Any] = {}

    def begin(self, key: str, ctx: Any = None) -> asyncio.Future | None:
        """Join the flight for *key*.

        Returns ``None`` when the caller becomes the leader (it must call
        :meth:`finish` when done, success or not), or the future to await
        when another request already leads the key.  *ctx* is the
        caller's trace context; the leader's is retained for the flight's
        lifetime so waiters can record whose compile they rode
        (:meth:`leader`).
        """
        waiter = self._inflight.get(key)
        if waiter is not None:
            return waiter
        self._inflight[key] = asyncio.get_running_loop().create_future()
        if ctx is not None:
            self._leaders[key] = ctx
        return None

    def leader(self, key: str) -> Any:
        """The in-flight leader's trace context for *key*, if recorded."""
        return self._leaders.get(key)

    def finish(self, key: str) -> None:
        """Land the flight for *key*, releasing every waiter."""
        self._leaders.pop(key, None)
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_result(None)

    def inflight(self) -> int:
        """How many keys currently have a flight in progress."""
        return len(self._inflight)
