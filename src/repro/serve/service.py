"""The pool bridge: async facade over the engine's process workers.

:class:`QueryService` owns the CPU side of the server — the
``ProcessPoolExecutor`` running :func:`repro.engine.worker_entry` (the
same worker entry the batch executor submits, so worker-process state:
the per-pid plan-store adapter and warm in-memory caches, behaves
identically under both front-ends) — and everything that must stay
consistent across requests:

* **determinism** — a request's result record is computed exactly like
  the same row of a batch manifest: the per-task seed is
  ``task_seed(seed, index)``, the budget comes from the request's
  (queue-adjusted) deadline, and the cache-provenance dict follows the
  batch rule via :func:`repro.engine.cache_outcome`, accumulated over
  the server's lifetime in completion order;
* **compile coalescing** — concurrent requests for one cold content
  hash ride a :class:`~repro.serve.coalesce.SingleFlight`; only the
  leader's evaluation compiles (and publishes, when a plan store is
  configured), waiters dispatch after it lands;
* **telemetry** — each task runs with ``collect_obs=True`` +
  ``obs_shared_cache=True``: the worker's counter/histogram delta comes
  back in the result record and is folded into this process's registry,
  so ``/metrics`` shows live engine internals (compile times, cache
  traffic, CAD cells) without a scrape agent in every worker.  The
  shared store's cross-process stats are folded incrementally on demand
  (each ``/metrics`` scrape, and once at drain).

A broken pool (a worker died mid-task) is rebuilt once per failure and
the victim request gets a structured error record — the server keeps
serving; it does not inherit the batch executor's retry/quarantine
ladder because an interactive client re-sends for itself.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Mapping

from .. import obs
from ..engine import cache_outcome, task_key, task_seed, worker_entry
from ..engine.executor import _fold_store_delta
from ..engine.store import PlanStore
from ..obs.aggregate import merge_snapshot_into
from .coalesce import SingleFlight

__all__ = ["ServiceConfig", "QueryService"]


@dataclass
class ServiceConfig:
    """Execution knobs shared by every request (CLI flags, mostly)."""

    workers: int = 2
    seed: int = 0
    plan_store: str | None = None
    max_cells: int | None = None
    fallback: str = "off"
    epsilon: float = 0.05
    delta: float = 0.05
    collect_obs: bool = True


class QueryService:
    """Async query execution with coalescing, provenance, and telemetry."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self._pool = ProcessPoolExecutor(max_workers=max(1, config.workers))
        self._flights = SingleFlight()
        self.store: PlanStore | None = (
            PlanStore(config.plan_store) if config.plan_store else None
        )
        #: Content hashes published to the store before the server started
        #: — the batch executor's ``prewarmed`` set, frozen at startup.
        self.prewarmed: frozenset[str] = (
            frozenset(self.store.keys()) if self.store is not None
            else frozenset()
        )
        #: Hashes known to be compiled *somewhere* reachable (prewarmed or
        #: published since startup); gates the coalescing fast path.
        self.known: set[str] = set(self.prewarmed)
        #: Hashes whose plans this server has already served — the batch
        #: executor's ``seen`` set, accumulated for the server's lifetime.
        self.seen: set[str] = set()
        self._stats_last = (
            self.store.stats_snapshot() if self.store is not None else None
        )
        self._hist_last = (
            self.store.fetch_hist_snapshot() if self.store is not None
            else None
        )

    # -- execution ---------------------------------------------------------
    async def execute(
        self,
        task: Mapping[str, Any],
        *,
        index: int = 0,
        seed: int | None = None,
        timeout: float | None = None,
        provenance: bool = True,
        trace_ctx: Mapping[str, Any] | None = None,
        obs_out: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Run one normalized task on the pool; returns its result record.

        *timeout* is the seconds of budget left for this request — the
        caller has already subtracted queue wait from the request
        deadline (see :meth:`repro.guard.Budget.remaining_s` for the
        contract).  ``provenance=False`` skips attaching the
        server-lifetime ``"cache"`` dict (the inline-batch endpoint
        attaches request-local provenance instead) but still registers
        the compiled key, so later requests observe it as known.

        *trace_ctx* is the request's trace-context dict; it crosses the
        pool boundary inside the worker config so the worker's span
        forest is recorded under the request's ``trace_id``.  When
        *obs_out* is given, the worker's telemetry snapshot is retained
        under ``obs_out["snapshot"]`` after being folded into the live
        registry, and a coalescing waiter records the leader's trace
        context under ``obs_out["coalesced_with"]`` — the slow-query log
        uses both.
        """
        key = task_key(task)
        lead = False
        if (key is not None and self.store is not None
                and key not in self.known):
            waiter = self._flights.begin(key, ctx=trace_ctx)
            if waiter is not None:
                obs.add("serve.coalesce.waits")
                if obs_out is not None:
                    leader_ctx = self._flights.leader(key)
                    if leader_ctx:
                        obs_out["coalesced_with"] = dict(leader_ctx)
                await waiter
            else:
                lead = True
                obs.add("serve.coalesce.leads")
        try:
            record = await self._dispatch(
                dict(task), index, seed, timeout, trace_ctx=trace_ctx
            )
        finally:
            if lead:
                self._flights.finish(key)
        snapshot = record.pop("obs", None)
        if snapshot:
            merge_snapshot_into(obs.REGISTRY, snapshot)
            if obs_out is not None:
                obs_out["snapshot"] = snapshot
        cached_key = record.get("cached_key")
        if cached_key is not None:
            outcome = cache_outcome(cached_key, self.prewarmed, self.seen)
            if provenance:
                record["cache"] = outcome
            self.known.add(cached_key)
        status = record.get("status")
        if status == "ok":
            obs.add("serve.ok")
        elif status == "budget-exceeded":
            obs.add("serve.budget_exceeded")
        else:
            obs.add("serve.errors")
        return record

    async def _dispatch(
        self,
        task: dict[str, Any],
        index: int,
        seed: int | None,
        timeout: float | None,
        trace_ctx: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """One pool round trip; rebuilds the pool if a worker died on it."""
        base_seed = self.config.seed if seed is None else seed
        config = {
            "seed": task_seed(base_seed, index),
            "timeout": timeout,
            "max_cells": self.config.max_cells,
            "fallback": self.config.fallback,
            "epsilon": self.config.epsilon,
            "delta": self.config.delta,
            "collect_obs": self.config.collect_obs,
            "obs_shared_cache": True,
            "plan_store": self.config.plan_store,
        }
        if trace_ctx is not None:
            config["trace_ctx"] = dict(trace_ctx)
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        pool = self._pool
        try:
            return await loop.run_in_executor(
                pool, worker_entry, (task, config)
            )
        except BrokenExecutor:
            # The worker serving this task died (OOM kill, segfault).
            # Rebuild the pool so the server keeps serving, and answer
            # this request with a structured error — interactive clients
            # own their retries, unlike batch tasks.  Every request in
            # flight on the dead pool raises BrokenExecutor; only the
            # first one to get here rebuilds — the `self._pool is pool`
            # check keeps the later ones from shutting down the freshly
            # rebuilt healthy pool and cancelling the innocent requests
            # already dispatched to it.
            if self._pool is pool:
                obs.add("engine.pool.rebuilds")
                self._pool = ProcessPoolExecutor(
                    max_workers=max(1, self.config.workers)
                )
                pool.shutdown(wait=False, cancel_futures=True)
            return self._pool_death_record(task, config, started)
        except asyncio.CancelledError:
            # The rebuild's shutdown(cancel_futures=True) cancels work
            # still queued on the dead pool; those requests land here
            # rather than in the BrokenExecutor arm and get the same
            # structured error (CancelledError would otherwise escape
            # _route's `except Exception` and kill the connection).  A
            # cancellation from anywhere else — the pool was never
            # swapped out under us — is not ours to swallow.
            if self._pool is pool:
                raise
            return self._pool_death_record(task, config, started)

    @staticmethod
    def _pool_death_record(
        task: Mapping[str, Any], config: Mapping[str, Any], started: float
    ) -> dict[str, Any]:
        return {
            "id": task.get("id"),
            "op": task.get("op"),
            "seed": config["seed"],
            "status": "error",
            "error": "worker process died while serving this request",
            "error_type": "BrokenExecutor",
            "elapsed_s": round(time.perf_counter() - started, 6),
        }

    # -- telemetry ---------------------------------------------------------
    def fold_store_metrics(self) -> None:
        """Fold the store's cross-process traffic delta into the registry.

        Incremental: each call applies only what happened since the last
        one, so scraping ``/metrics`` repeatedly never double-counts.
        """
        if self.store is None:
            return
        self._stats_last, self._hist_last = _fold_store_delta(
            self.store, self._stats_last, self._hist_last
        )

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)
        if self.store is not None:
            self.store.close()
