"""The asyncio front-end: routing, deadlines, drain — admission only.

Design rule: **the event loop never computes**.  It parses requests,
decides admission (:mod:`repro.serve.admission`), coalesces duplicate
compiles (:mod:`repro.serve.coalesce`), maps each request's deadline
onto the :class:`~repro.guard.Budget` handed to a worker, and writes
responses and access-log lines.  Everything CPU-bound — parsing the
formula, QE, CAD, sampling — happens in the worker pool behind
:class:`~repro.serve.service.QueryService`.  That split is what makes
the server's behavior under overload *boring*: queue depth and inflight
count are bounded and observable, excess load is shed with 429 +
``Retry-After`` in microseconds, and a request that waited too long in
the queue is answered with the same structured ``budget-exceeded``
record a worker would have produced — without spending a pool slot on
work whose deadline already passed.

Routes
------
``POST /v1/query``   one task (same JSON schema as one manifest line,
                     plus optional ``index``, ``seed``, ``timeout``);
                     answers a ``repro.serve/v1`` envelope whose
                     ``result`` is byte-identical (modulo ``elapsed_s``)
                     to the same row of a ``repro batch`` run
``POST /v1/batch``   a small inline manifest: ``{"tasks": [...]}`` with
                     optional ``seed`` / ``timeout``; results come back
                     in manifest order with batch-rule cache provenance
``GET  /healthz``    liveness — 200 as long as the process serves
``GET  /readyz``     readiness — 503 once draining
``GET  /metrics``    live Prometheus exposition of this process's
                     registry (worker telemetry folded in as results
                     complete; store traffic folded at scrape time)

Shutdown: SIGTERM/SIGINT stops the listener, fails readiness, lets
in-flight work finish under ``--drain-timeout``, then emits one final
summary JSON record on stderr and exits 0.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import re
import signal
import sys
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Any

from .. import obs
from .._errors import ReproError
from ..engine import cache_outcome, normalize_task, task_seed
from ..guard.budget import Budget
from ..obs.aggregate import request_trace
from ..obs.export import SCHEMA_SLOWQUERY, span_to_dict
from ..obs.trace import SpanRecord, TraceContext
from .admission import AdmissionGate, RequestShed, Reservation
from .http import HttpError, HttpRequest, read_request, response_bytes
from .service import QueryService, ServiceConfig

__all__ = ["ServeConfig", "Server", "run_server"]

#: Response envelope schema version.
SCHEMA = "repro.serve/v1"

#: Tasks accepted per inline /v1/batch request; bigger manifests belong
#: in ``repro batch``, which has journaling and fault tolerance.
MAX_BATCH_TASKS = 64

#: Client-supplied ``X-Request-Id`` values must match this or be
#: replaced: bounded length and a conservative charset, so a hostile
#: header cannot smuggle newlines into access logs, slow-query records,
#: or the echoed response header.
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,128}$")


def _rfc3339_now() -> str:
    """Wall-clock UTC timestamp, RFC3339 with millisecond precision."""
    return (
        datetime.now(timezone.utc)
        .isoformat(timespec="milliseconds")
        .replace("+00:00", "Z")
    )


@dataclass
class ServeConfig:
    """Everything ``repro serve`` configures, with the CLI defaults."""

    host: str = "127.0.0.1"
    port: int = 8080
    workers: int = 2
    seed: int = 0
    plan_store: str | None = None
    max_inflight: int = 4
    queue_depth: int = 16
    request_timeout: float | None = 30.0
    drain_timeout: float = 10.0
    max_body: int = 1 << 20
    max_cells: int | None = None
    fallback: str = "off"
    epsilon: float = 0.05
    delta: float = 0.05
    access_log: bool = True
    #: Requests whose end-to-end latency meets this threshold (seconds)
    #: emit one ``repro.slowquery/v1`` JSONL record; ``None`` disables.
    slow_query_s: float | None = None
    #: Where slow-query records are appended; ``None`` means stderr.
    slow_query_log: str | None = None
    #: Attach OpenMetrics exemplars (``# {trace_id="..."} value``) to
    #: histogram bucket series on ``/metrics``.
    exemplars: bool = True


class Server:
    """One serving process: listener, gate, service, drain state."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.service = QueryService(ServiceConfig(
            workers=config.workers, seed=config.seed,
            plan_store=config.plan_store, max_cells=config.max_cells,
            fallback=config.fallback, epsilon=config.epsilon,
            delta=config.delta,
        ))
        self.gate = AdmissionGate(
            max_inflight=max(1, config.max_inflight),
            queue_depth=max(0, config.queue_depth),
        )
        self.draining = False
        self._request_ids = itertools.count(1)
        self._task_indexes = itertools.count(0)
        self._shutdown = asyncio.Event()
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._busy: set[asyncio.StreamWriter] = set()
        self._started = time.monotonic()
        self.served = 0

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=max(self.config.max_body, 1 << 16),
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        obs.set_gauge("serve.draining", 0)
        return host, port

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, self._begin_drain, signum)

    def _begin_drain(self, signum: int) -> None:
        if self.draining:
            return
        self.draining = True
        obs.set_gauge("serve.draining", 1)
        print(f"serve: received {signal.Signals(signum).name}, draining "
              f"({self.gate.inflight} inflight, {self.gate.queued} queued)",
              file=sys.stderr)
        self._shutdown.set()

    async def run_until_drained(self) -> int:
        """Serve until a drain signal, then drain; returns the exit code."""
        assert self._server is not None
        await self._server.start_serving()
        await self._shutdown.wait()
        # Stop accepting: close the listening sockets but keep
        # established connections alive for their final responses.
        # wait_closed() is deliberately NOT awaited yet — on Python
        # >= 3.12 (gh-79033) it blocks until every connection handler
        # returns, and an idle keep-alive client parked in
        # read_request() would stall the drain (and the --drain-timeout
        # with it) forever.  Finish the in-flight work first, then
        # force-close whatever connections survive.
        self._server.close()
        aborted = await self._drain()
        self._abort_connections()
        try:
            await asyncio.wait_for(self._server.wait_closed(), timeout=1.0)
        except (asyncio.TimeoutError, TimeoutError):
            pass
        self.service.fold_store_metrics()
        self.service.close()
        summary = {
            "event": "serve.drain",
            "ts": _rfc3339_now(),
            "served": self.served,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "aborted_inflight": aborted,
            "drain_timeout_s": self.config.drain_timeout,
        }
        print(json.dumps(summary, sort_keys=True), file=sys.stderr)
        return 0

    async def _drain(self) -> int:
        """Wait for in-flight work under the drain timeout; count leftovers.

        "In flight" covers both the admission gate and connections still
        writing a response — a request releases its gate slot just
        before its handler serializes the reply, so the gate going idle
        alone would race the final writes.
        """
        deadline = time.monotonic() + self.config.drain_timeout
        while ((not self.gate.idle() or self._busy)
               and time.monotonic() < deadline):
            await asyncio.sleep(0.02)
        leftover = self.gate.inflight + self.gate.queued
        if leftover:
            obs.add("serve.drain.aborted", leftover)
        return leftover

    def _abort_connections(self) -> None:
        """Force-close every surviving connection transport.

        After the drain these are idle keep-alive clients (which would
        otherwise hold ``Server.wait_closed()`` open forever on Python
        >= 3.12) plus any request the drain timeout abandoned; closing
        the transport feeds their handlers EOF and lets them exit.
        """
        for writer in list(self._connections):
            writer.close()

    # -- connection handling -----------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await read_request(reader, self.config.max_body)
                except HttpError as error:
                    writer.write(response_bytes(
                        error.status,
                        _json_body({"error": error.message}),
                        keep_alive=False,
                    ))
                    await writer.drain()
                    return
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                if request is None:
                    return
                self._busy.add(writer)
                try:
                    keep_alive = request.keep_alive and not self.draining
                    status, body, extra = await self._route(request)
                    content_type = extra.pop(
                        "_content_type", "application/json"
                    )
                    writer.write(response_bytes(
                        status, body, content_type=content_type,
                        keep_alive=keep_alive, extra_headers=extra or None,
                        head_only=request.method == "HEAD",
                    ))
                    await writer.drain()
                finally:
                    self._busy.discard(writer)
                if not keep_alive:
                    return
        except (ConnectionError, OSError):
            # The peer vanished mid-exchange, or the drain force-closed
            # this transport under us; either way the connection is done.
            return
        finally:
            self._connections.discard(writer)
            self._busy.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _request_identity(
        self, request: HttpRequest
    ) -> tuple[str, TraceContext]:
        """Sanitized request id + per-request trace context.

        A client ``X-Request-Id`` outside the allowlist (length cap,
        conservative charset) is *replaced* with a generated one, never
        echoed.  A valid ``traceparent`` header continues the caller's
        trace (this request becomes a child span); otherwise a fresh
        trace is minted.
        """
        supplied = request.headers.get("x-request-id")
        if supplied is not None and _REQUEST_ID_RE.match(supplied):
            request_id = supplied
        else:
            request_id = f"req-{next(self._request_ids)}"
        parent = TraceContext.parse_traceparent(
            request.headers.get("traceparent")
        )
        ctx = parent.child() if parent is not None else TraceContext.mint()
        return request_id, ctx

    async def _route(
        self, request: HttpRequest
    ) -> tuple[int, bytes, dict[str, str]]:
        """Dispatch one request; returns (status, body, extra headers)."""
        obs.add("serve.requests")
        request_id, ctx = self._request_identity(request)
        req_obs: dict[str, Any] = {}
        started = time.perf_counter()
        try:
            status, body, extra = await self._route_inner(
                request, request_id, ctx, req_obs
            )
        except RequestShed as shed:
            status = 429
            body = _json_body({
                "schema": SCHEMA, "request_id": request_id,
                "error": str(shed),
                "retry_after_s": shed.retry_after_s,
            })
            extra = {"Retry-After": f"{shed.retry_after_s:g}"}
        except HttpError as error:
            status = error.status
            body = _json_body({
                "schema": SCHEMA, "request_id": request_id,
                "error": error.message,
            })
            extra = {}
        except Exception as error:  # noqa: BLE001 - a request must not kill the server
            status = 500
            body = _json_body({
                "schema": SCHEMA, "request_id": request_id,
                "error": f"{type(error).__name__}: {error}",
            })
            extra = {}
        elapsed = time.perf_counter() - started
        obs.observe_value("serve.latency_s", elapsed, trace_id=ctx.trace_id)
        threshold = self.config.slow_query_s
        if threshold is not None and elapsed >= threshold:
            self._log_slow_query(
                request, request_id, ctx, status, elapsed, req_obs
            )
        extra.setdefault("X-Request-Id", request_id)
        if self.config.access_log:
            print(json.dumps({
                "event": "serve.access", "ts": _rfc3339_now(),
                "request_id": request_id, "trace_id": ctx.trace_id,
                "method": request.method, "path": request.path,
                "status": status, "elapsed_ms": round(elapsed * 1e3, 3),
            }, sort_keys=True), file=sys.stderr)
        return status, body, extra

    def _log_slow_query(
        self,
        request: HttpRequest,
        request_id: str,
        ctx: TraceContext,
        status: int,
        elapsed: float,
        req_obs: dict[str, Any],
    ) -> None:
        """Emit one ``repro.slowquery/v1`` record for an over-threshold request.

        Forensic, not byte-stable: carries wall-clock ``ts``, the full
        span tree (queue wait + the worker's harvested forest reparented
        under a ``serve.request`` root), budget-relevant counters, and
        cache provenance, so a slow trace can be explained after the
        fact without re-running it.  Never raises — a broken log sink
        must not fail the request it describes.
        """
        obs.add("serve.slow_queries")
        record: dict[str, Any] = {
            "schema": SCHEMA_SLOWQUERY,
            "ts": _rfc3339_now(),
            "trace_id": ctx.trace_id,
            "span_id": ctx.span_id,
            "request_id": request_id,
            "method": request.method,
            "path": request.path,
            "status": status,
            "elapsed_s": round(elapsed, 6),
            "threshold_s": self.config.slow_query_s,
        }
        queue_wait = req_obs.get("queue_wait_s")
        if queue_wait is not None:
            record["queue_wait_s"] = round(queue_wait, 6)
        result = req_obs.get("record")
        if isinstance(result, dict):
            record["result_status"] = result.get("status")
            if "cache" in result:
                record["cache"] = result["cache"]
        if "coalesced_with" in req_obs:
            record["coalesced_with"] = req_obs["coalesced_with"]
        snapshot = req_obs.get("snapshot") or {}
        if snapshot.get("counters"):
            record["counters"] = snapshot["counters"]
        root = request_trace(
            snapshot, ctx,
            attrs={"request_id": request_id, "path": request.path},
        )
        root.duration_s = elapsed
        if queue_wait is not None:
            root.children.insert(0, SpanRecord(
                name="serve.queue_wait", duration_s=queue_wait,
            ))
        record["spans"] = [span_to_dict(root)]
        line = json.dumps(record, sort_keys=True)
        try:
            if self.config.slow_query_log:
                with open(
                    self.config.slow_query_log, "a", encoding="utf-8"
                ) as handle:
                    handle.write(line + "\n")
            else:
                print(line, file=sys.stderr)
        except OSError as error:
            print(f"serve: slow-query log write failed: {error}",
                  file=sys.stderr)

    async def _route_inner(
        self,
        request: HttpRequest,
        request_id: str,
        ctx: TraceContext,
        req_obs: dict[str, Any],
    ) -> tuple[int, bytes, dict[str, str]]:
        path, method = request.path, request.method
        if path == "/healthz":
            if method not in ("GET", "HEAD"):
                raise HttpError(405, f"{method} not allowed on {path}")
            return 200, _json_body({"status": "ok"}), {}
        if path == "/readyz":
            if method not in ("GET", "HEAD"):
                raise HttpError(405, f"{method} not allowed on {path}")
            if self.draining:
                return 503, _json_body({"status": "draining"}), {}
            return 200, _json_body({"status": "ready"}), {}
        if path == "/metrics":
            if method not in ("GET", "HEAD"):
                raise HttpError(405, f"{method} not allowed on {path}")
            self.service.fold_store_metrics()
            text = obs.render_prometheus(
                obs.REGISTRY, exemplars=self.config.exemplars
            )
            return 200, text.encode("utf-8"), {
                "_content_type": "text/plain; version=0.0.4; charset=utf-8",
            }
        if path == "/v1/query":
            if method != "POST":
                raise HttpError(405, f"{method} not allowed on {path}")
            if self.draining:
                raise HttpError(503, "server is draining")
            return await self._handle_query(request, request_id, ctx, req_obs)
        if path == "/v1/batch":
            if method != "POST":
                raise HttpError(405, f"{method} not allowed on {path}")
            if self.draining:
                raise HttpError(503, "server is draining")
            return await self._handle_batch(request, request_id, ctx)
        raise HttpError(404, f"no route for {path}")

    # -- query endpoints ----------------------------------------------------
    async def _handle_query(
        self,
        request: HttpRequest,
        request_id: str,
        ctx: TraceContext,
        req_obs: dict[str, Any],
    ) -> tuple[int, bytes, dict[str, str]]:
        payload = _parse_json_object(request.body)
        index = payload.get("index")
        if index is None:
            index = next(self._task_indexes)
        elif not isinstance(index, int) or index < 0:
            raise HttpError(400, f"'index' must be an int >= 0, got {index!r}")
        try:
            task = normalize_task(payload, index)
        except ReproError as error:
            raise HttpError(422, str(error)) from error
        seed = _optional_int(payload, "seed", self.config.seed)
        obs.add("serve.queries")
        record = await self._admit_and_execute(
            task, index=index, seed=seed,
            deadline=self._effective_timeout(payload),
            trace_ctx=ctx.to_dict(), obs_out=req_obs,
        )
        req_obs["record"] = record
        status = _record_status(record)
        envelope = {"schema": SCHEMA, "request_id": request_id,
                    "result": record}
        return status, _json_body(envelope), {}

    async def _handle_batch(
        self, request: HttpRequest, request_id: str, ctx: TraceContext
    ) -> tuple[int, bytes, dict[str, str]]:
        payload = _parse_json_object(request.body)
        raw_tasks = payload.get("tasks")
        if not isinstance(raw_tasks, list) or not raw_tasks:
            raise HttpError(400, "'tasks' must be a non-empty JSON array")
        if len(raw_tasks) > MAX_BATCH_TASKS:
            raise HttpError(
                413,
                f"{len(raw_tasks)} tasks exceed the inline-batch cap of "
                f"{MAX_BATCH_TASKS}; use `repro batch` for large manifests",
            )
        try:
            tasks = [normalize_task(raw, i) for i, raw in enumerate(raw_tasks)]
        except ReproError as error:
            raise HttpError(422, str(error)) from error
        # The whole manifest is admitted (or shed) as a unit: the gate
        # reserves combined slot + queue capacity for every task in one
        # synchronous step (inflight work counted, concurrent batches
        # serialized) or the batch is shed now, rather than stranding a
        # half-run batch behind the gate or overflowing the bounded
        # queue with shed=False waiters.
        reservation = self.gate.try_reserve(len(tasks))
        if reservation is None:
            obs.add("serve.shed")
            raise RequestShed(self.gate.retry_after_s)
        seed = _optional_int(payload, "seed", self.config.seed)
        deadline = self._effective_timeout(payload)
        obs.add("serve.queries", len(tasks))
        # Batch-rule cache provenance is request-local: the plans known
        # compiled *at request start* play the prewarmed set (snapshotted
        # now, before any of these tasks publishes), and first/later
        # occurrences within the manifest split miss/hit — exactly the
        # rule `run_batch` applies, so this response matches the JSONL a
        # `repro batch` of the same manifest would emit.
        prewarmed = frozenset(self.service.known)
        try:
            # Every task of the batch is a child span of the request's
            # trace — one trace_id across the manifest, one span per task.
            records = await asyncio.gather(*(
                self._admit_and_execute(
                    task, index=task["index"], seed=seed, deadline=deadline,
                    shed=False, provenance=False, reservation=reservation,
                    trace_ctx=ctx.child().to_dict(),
                )
                for task in tasks
            ))
        finally:
            reservation.cancel()
        seen: set[str] = set()
        for record in records:
            key = record.get("cached_key")
            if key is not None:
                record["cache"] = cache_outcome(key, prewarmed, seen)
        tally: dict[str, int] = {}
        for record in records:
            status = record.get("status", "error")
            tally[status] = tally.get(status, 0) + 1
        envelope = {
            "schema": SCHEMA, "request_id": request_id,
            "results": records, "summary": tally,
        }
        return 200, _json_body(envelope), {}

    async def _admit_and_execute(
        self,
        task: dict[str, Any],
        *,
        index: int,
        seed: int,
        deadline: float | None,
        shed: bool = True,
        provenance: bool = True,
        reservation: Reservation | None = None,
        trace_ctx: dict[str, Any] | None = None,
        obs_out: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Gate, charge queue time against the deadline, dispatch, release.

        The request's end-to-end deadline is mapped onto a
        :class:`~repro.guard.Budget` whose clock starts *before* the
        admission queue, so time spent queued is charged against the
        budget eventually handed to the worker
        (:meth:`~repro.guard.Budget.remaining_s`).  A request whose
        deadline expires while still queued is answered with a synthetic
        ``budget-exceeded`` record — same shape a worker produces — and
        never costs a pool slot.
        """
        budget = Budget(deadline_s=deadline) if deadline is not None else None
        if budget is not None:
            budget.start()
        waited = await self.gate.acquire(
            shed=shed, reservation=reservation,
            trace_id=trace_ctx.get("trace_id") if trace_ctx else None,
        )
        if obs_out is not None:
            obs_out["queue_wait_s"] = waited
        try:
            remaining = budget.remaining_s() if budget is not None else None
            if remaining is not None and remaining <= 0.0:
                obs.add("serve.timeouts")
                obs.add("serve.budget_exceeded")
                return {
                    "id": task["id"], "op": task["op"],
                    "seed": task_seed(seed, index),
                    "status": "budget-exceeded",
                    "resource": "deadline",
                    "error": (
                        f"deadline budget exceeded: request spent its "
                        f"{deadline:g}s allowance in the admission queue"
                    ),
                    "elapsed_s": round(budget.elapsed_s(), 6),
                }
            record = await self.service.execute(
                task, index=index, seed=seed, timeout=remaining,
                provenance=provenance, trace_ctx=trace_ctx, obs_out=obs_out,
            )
            self.served += 1
            return record
        finally:
            self.gate.release()

    def _effective_timeout(self, payload: dict[str, Any]) -> float | None:
        """min(request ``timeout``, server ``--request-timeout``)."""
        requested = payload.get("timeout")
        if requested is not None:
            try:
                requested = float(requested)
            except (TypeError, ValueError):
                raise HttpError(
                    400, f"'timeout' must be a number, got {requested!r}"
                ) from None
            if requested <= 0:
                raise HttpError(400, "'timeout' must be > 0")
        cap = self.config.request_timeout
        if requested is None:
            return cap
        if cap is None:
            return requested
        return min(requested, cap)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _json_body(payload: dict[str, Any]) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def _parse_json_object(body: bytes) -> dict[str, Any]:
    try:
        payload = json.loads(body)
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise HttpError(400, f"body is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise HttpError(400, "body must be a JSON object")
    return payload


def _optional_int(payload: dict[str, Any], name: str, default: int) -> int:
    value = payload.get(name)
    if value is None:
        return default
    if not isinstance(value, int) or isinstance(value, bool):
        raise HttpError(400, f"{name!r} must be an integer, got {value!r}")
    return value


def _record_status(record: dict[str, Any]) -> int:
    """The HTTP status a single-query result record maps to."""
    status = record.get("status")
    if status == "ok":
        return 200
    if status == "budget-exceeded":
        return 504
    return 422


async def _serve(config: ServeConfig) -> int:
    server = Server(config)
    host, port = await server.start()
    server.install_signal_handlers()
    print(f"serve: listening on {host}:{port} "
          f"({config.workers} workers, max_inflight={config.max_inflight}, "
          f"queue_depth={config.queue_depth})", file=sys.stderr)
    return await server.run_until_drained()


def run_server(config: ServeConfig) -> int:
    """Blocking entry point for ``repro serve``; returns the exit code."""
    return asyncio.run(_serve(config))
