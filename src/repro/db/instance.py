"""Finite database instances with rational entries.

A finite instance interprets every schema relation as a finite set of
tuples over Q (a dense subset of the paper's universe R that suffices for
every finite construction in the paper).  The *active domain* adom(D) is
the set of all field values occurring anywhere in the instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from .schema import Schema

__all__ = ["FiniteInstance"]


@dataclass(frozen=True)
class FiniteInstance:
    """A finite instance of a schema."""

    schema: Schema
    relations: tuple[tuple[str, frozenset[tuple[Fraction, ...]]], ...]

    @staticmethod
    def make(
        schema: Schema,
        relations: Mapping[str, Iterable[Sequence[Fraction | int] | Fraction | int]],
    ) -> "FiniteInstance":
        """Build an instance; unary tuples may be given as bare numbers."""
        normalised: list[tuple[str, frozenset[tuple[Fraction, ...]]]] = []
        for name in schema.names():
            arity = schema.arity(name)
            rows: set[tuple[Fraction, ...]] = set()
            for row in relations.get(name, ()):
                if isinstance(row, (int, Fraction)):
                    row = (row,)
                values = tuple(Fraction(v) for v in row)
                if len(values) != arity:
                    raise ValueError(
                        f"tuple {values} has arity {len(values)}, "
                        f"but {name!r} has arity {arity}"
                    )
                rows.add(values)
            normalised.append((name, frozenset(rows)))
        unknown = set(relations) - set(schema.names())
        if unknown:
            raise ValueError(f"relations not in schema: {sorted(unknown)}")
        return FiniteInstance(schema, tuple(normalised))

    def relation(self, name: str) -> frozenset[tuple[Fraction, ...]]:
        for rel_name, rows in self.relations:
            if rel_name == name:
                return rows
        raise KeyError(f"unknown relation {name!r}")

    def as_dict(self) -> dict[str, frozenset[tuple[Fraction, ...]]]:
        return dict(self.relations)

    def active_domain(self) -> frozenset[Fraction]:
        """adom(D): all values occurring in any relation."""
        values: set[Fraction] = set()
        for _, rows in self.relations:
            for row in rows:
                values.update(row)
        return frozenset(values)

    def size(self) -> int:
        """|D| = card(adom(D)), the paper's notion of database size."""
        return len(self.active_domain())

    def total_tuples(self) -> int:
        return sum(len(rows) for _, rows in self.relations)
