"""Serialisation of constraint databases to a small text format.

Databases round-trip through the library's own formula syntax
(:mod:`repro.logic.parser` / :mod:`repro.logic.printer`), giving a
human-editable on-disk representation::

    # a finitely representable instance
    FR
    S/2 (x, y): 0 <= y AND y <= x AND x <= 1

    # a finite instance
    FINITE
    U/1: 1/4; 1/2; 3/4
    S/2: 0, 1; 1, 0

Lines starting with ``#`` and blank lines are ignored.
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import TextIO

from ..logic.parser import ParseError, parse
from .fr_instance import FRInstance
from .instance import FiniteInstance
from .schema import Schema

__all__ = ["dump_instance", "load_instance", "dumps_instance", "loads_instance"]

_FR_LINE = re.compile(
    r"^(?P<name>[A-Za-z_][A-Za-z_0-9]*)/(?P<arity>\d+)\s*"
    r"\((?P<params>[^)]*)\)\s*:\s*(?P<body>.+)$"
)
_FINITE_LINE = re.compile(
    r"^(?P<name>[A-Za-z_][A-Za-z_0-9]*)/(?P<arity>\d+)\s*:\s*(?P<rows>.*)$"
)


def dumps_instance(instance: "FiniteInstance | FRInstance") -> str:
    """Serialise an instance to the text format."""
    lines: list[str] = []
    if isinstance(instance, FRInstance):
        lines.append("FR")
        for name, (params, body) in instance.definitions:
            lines.append(f"{name}/{len(params)} ({', '.join(params)}): {body}")
    elif isinstance(instance, FiniteInstance):
        lines.append("FINITE")
        for name, rows in instance.relations:
            rendered = "; ".join(
                ", ".join(str(value) for value in row) for row in sorted(rows)
            )
            lines.append(f"{name}/{len(next(iter(rows), ()))or instance.schema.arity(name)}: {rendered}")
    else:
        raise TypeError(f"cannot serialise {type(instance).__name__}")
    return "\n".join(lines) + "\n"


def loads_instance(text: str) -> "FiniteInstance | FRInstance":
    """Parse an instance from the text format."""
    lines = [
        line.strip()
        for line in text.splitlines()
        if line.strip() and not line.strip().startswith("#")
    ]
    if not lines:
        raise ParseError("empty instance file")
    kind = lines[0].upper()
    if kind == "FR":
        return _load_fr(lines[1:])
    if kind == "FINITE":
        return _load_finite(lines[1:])
    raise ParseError(f"unknown instance kind {lines[0]!r} (expected FR or FINITE)")


def _load_fr(lines: list[str]) -> FRInstance:
    arities: dict[str, int] = {}
    definitions = {}
    for line in lines:
        match = _FR_LINE.match(line)
        if match is None:
            raise ParseError(f"malformed FR relation line: {line!r}")
        name = match.group("name")
        arity = int(match.group("arity"))
        params = tuple(p.strip() for p in match.group("params").split(",") if p.strip())
        if len(params) != arity:
            raise ParseError(
                f"relation {name!r}: {len(params)} parameters for arity {arity}"
            )
        body = parse(match.group("body"))
        arities[name] = arity
        definitions[name] = (params, body)
    return FRInstance.make(Schema.make(arities), definitions)


def _load_finite(lines: list[str]) -> FiniteInstance:
    arities: dict[str, int] = {}
    relations: dict[str, list[tuple[Fraction, ...]]] = {}
    for line in lines:
        match = _FINITE_LINE.match(line)
        if match is None:
            raise ParseError(f"malformed finite relation line: {line!r}")
        name = match.group("name")
        arity = int(match.group("arity"))
        arities[name] = arity
        rows: list[tuple[Fraction, ...]] = []
        row_text = match.group("rows").strip()
        if row_text:
            for chunk in row_text.split(";"):
                values = tuple(
                    Fraction(part.strip()) for part in chunk.split(",") if part.strip()
                )
                if len(values) != arity:
                    raise ParseError(
                        f"relation {name!r}: row {chunk.strip()!r} has arity "
                        f"{len(values)}, expected {arity}"
                    )
                rows.append(values)
        relations[name] = rows
    return FiniteInstance.make(Schema.make(arities), relations)


def dump_instance(instance, stream: TextIO) -> None:
    """Write an instance to an open text stream."""
    stream.write(dumps_instance(instance))


def load_instance(stream: TextIO) -> "FiniteInstance | FRInstance":
    """Read an instance from an open text stream."""
    return loads_instance(stream.read())
