"""Constraint databases: schemas, finite and finitely representable instances,
FO query evaluation in active and natural semantics, bag semantics, and a
text serialisation format."""

from .schema import Schema
from .instance import FiniteInstance
from .fr_instance import FRInstance
from .evaluation import (
    evaluate_active,
    evaluate_natural,
    expand_relations,
    output_formula,
    query_output_tuples,
    resolve_adom_quantifiers,
)
from .bags import Bag, bag_avg, bag_count, bag_max, bag_min, bag_sum
from .io import dump_instance, dumps_instance, load_instance, loads_instance
from .collapse import collapse_dense_order, evaluate_collapsed

__all__ = [
    "Schema",
    "FiniteInstance",
    "FRInstance",
    "expand_relations",
    "evaluate_active",
    "evaluate_natural",
    "output_formula",
    "query_output_tuples",
    "resolve_adom_quantifiers",
    "Bag",
    "bag_count",
    "bag_sum",
    "bag_avg",
    "bag_min",
    "bag_max",
    "dump_instance",
    "dumps_instance",
    "load_instance",
    "loads_instance",
    "collapse_dense_order",
    "evaluate_collapsed",
]
