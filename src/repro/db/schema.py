"""Relational database schemas.

A schema SC is a nonempty collection of relation names with positive
arities (Section 2 of the paper).  Instances over a schema are either
finite (:class:`~repro.db.instance.FiniteInstance`) or finitely
representable (:class:`~repro.db.fr_instance.FRInstance`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..logic.builders import Relation

__all__ = ["Schema"]


@dataclass(frozen=True)
class Schema:
    """A database schema: relation names with their arities."""

    relations: tuple[tuple[str, int], ...]

    @staticmethod
    def make(relations: Mapping[str, int]) -> "Schema":
        if not relations:
            raise ValueError("a schema must contain at least one relation")
        items = tuple(sorted(relations.items()))
        for name, arity in items:
            if arity < 1:
                raise ValueError(f"relation {name!r} must have positive arity")
        return Schema(items)

    def arity(self, name: str) -> int:
        for rel_name, arity in self.relations:
            if rel_name == name:
                return arity
        raise KeyError(f"unknown relation {name!r}")

    def names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.relations)

    def __contains__(self, name: str) -> bool:
        return any(rel_name == name for rel_name, _ in self.relations)

    def symbols(self) -> dict[str, Relation]:
        """Relation-atom builders for every schema relation."""
        return {name: Relation(name, arity) for name, arity in self.relations}
