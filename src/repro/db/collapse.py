"""The natural-active collapse for dense-order queries (Benedikt-Libkin [6]).

Lemma 2 of the paper invokes the natural-active collapse: over well-behaved
structures, every FO sentence under the *natural* interpretation
(quantifiers over all of R) is equivalent, on finite instances, to an
*active-semantics* sentence — possibly over a definably extended signature.

This module implements the collapse constructively for the dense-order
fragment ``FO(SC, <)``: by o-minimality, the truth of a formula at a point
x depends only on x's position relative to the active domain, so a natural
quantifier can be replaced by a disjunction over *cell representatives*:

* each active-domain element itself,
* a midpoint between consecutive elements — expressible with the extended
  signature operations (+, /2), which is exactly the paper's "definable
  extension M'",
* a point below the minimum and a point above the maximum.

The collapsed formula uses only active-domain quantification plus the
sampled terms, and agrees with the natural semantics on every finite
instance.  (For the full linear/polynomial signatures the library decides
natural semantics by quantifier elimination instead —
:func:`repro.db.evaluation.evaluate_natural`.)
"""

from __future__ import annotations

from fractions import Fraction

from ..logic.formulas import (
    And,
    Compare,
    Exists,
    ExistsAdom,
    FalseFormula,
    Forall,
    ForallAdom,
    Formula,
    Not,
    Or,
    RelAtom,
    TrueFormula,
    conjunction,
    disjunction,
)
from ..logic.substitution import fresh_variable, substitute
from ..logic.terms import Add, Const, Mul, Term, Var
from ..qe.dense_order import check_dense_order
from .evaluation import evaluate_active
from .instance import FiniteInstance

__all__ = ["collapse_dense_order", "evaluate_collapsed"]


def _formula_constants(formula: Formula) -> list[Fraction]:
    """All rational constants occurring in comparison/relation atoms."""
    values: set[Fraction] = set()

    def from_term(term: Term) -> None:
        if isinstance(term, Const):
            values.add(term.value)
        elif isinstance(term, (Add, Mul)):
            for arg in term.args:
                from_term(arg)
        elif isinstance(term, Var):
            pass
        else:  # Neg/Pow do not occur in dense-order formulas
            for attr in ("arg", "base"):
                inner = getattr(term, attr, None)
                if inner is not None:
                    from_term(inner)

    def walk(node: Formula) -> None:
        if isinstance(node, Compare):
            from_term(node.lhs)
            from_term(node.rhs)
        elif isinstance(node, RelAtom):
            for arg in node.args:
                from_term(arg)
        elif isinstance(node, (And, Or)):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, Not):
            walk(node.arg)
        elif isinstance(node, (Exists, Forall, ExistsAdom, ForallAdom)):
            walk(node.body)

    walk(formula)
    return sorted(values)


def _cell_representatives(
    adom_vars: list[str], constants: list[Fraction]
) -> list[Term]:
    """Sample terms covering every order-cell induced by the active domain
    together with the formula's constants.

    With b1 < ... < bk the base points (active elements and constants),
    the cells of R are the points bi, the open intervals between them, and
    the two unbounded ends; a point of an interval is represented by a
    midpoint (bi + bj)/2 — the extended-signature operation of the paper's
    definable extension M' — and the ends by each base point +- 1.
    Midpoints of *all* pairs are included (a harmless superset of the
    consecutive-pair representatives)."""
    base: list[Term] = [Var(a) for a in adom_vars]
    base.extend(Const(c) for c in constants)
    if not base:
        return [Const(Fraction(0))]
    representatives: list[Term] = list(base)
    half = Const(Fraction(1, 2))
    for i, left in enumerate(base):
        for right in base[i:]:
            representatives.append((left + right) * half)
        representatives.append(left - Const(Fraction(1)))
        representatives.append(left + Const(Fraction(1)))
    return representatives


def collapse_dense_order(formula: Formula, width_hint: int = 2) -> Formula:
    """Collapse natural quantifiers of a dense-order formula to active ones.

    Returns an equivalent (on every finite instance) formula whose
    quantifiers are all active-domain, over the extended signature with
    +, -, and division by 2 in terms — the paper's definable extension.
    ``width_hint`` active-domain variables are sampled per natural
    quantifier; 2 suffices for midpoints of consecutive pairs.
    """
    check_dense_order(formula)
    return _collapse(formula)


def _collapse(formula: Formula) -> Formula:
    if isinstance(formula, (TrueFormula, FalseFormula, Compare, RelAtom)):
        return formula
    if isinstance(formula, And):
        return conjunction(*(_collapse(a) for a in formula.args))
    if isinstance(formula, Or):
        return disjunction(*(_collapse(a) for a in formula.args))
    if isinstance(formula, Not):
        return ~_collapse(formula.arg)
    if isinstance(formula, (ExistsAdom, ForallAdom)):
        return type(formula)(formula.var, _collapse(formula.body))
    if isinstance(formula, (Exists, Forall)):
        body = _collapse(formula.body)
        constants = _formula_constants(body)
        taken = set(body.free_variables()) | {formula.var}
        a_name = fresh_variable(taken, formula.var + "_a")
        b_name = fresh_variable(taken | {a_name}, formula.var + "_b")
        adom_vars = [a_name, b_name]
        branches = [
            substitute(body, {formula.var: rep})
            for rep in _cell_representatives(adom_vars, constants)
        ]
        # Constant-only representatives keep the collapse correct on empty
        # instances, where active-domain quantifiers are vacuous.
        constant_branches = [
            substitute(body, {formula.var: rep})
            for rep in _cell_representatives([], constants)
        ]
        if isinstance(formula, Exists):
            wrapped: Formula = ExistsAdom(
                a_name, ExistsAdom(b_name, disjunction(*branches))
            )
            return wrapped | disjunction(*constant_branches)
        wrapped = ForallAdom(a_name, ForallAdom(b_name, conjunction(*branches)))
        return wrapped & conjunction(*constant_branches)
    raise TypeError(f"unknown formula node {type(formula).__name__}")


def evaluate_collapsed(
    formula: Formula, instance: FiniteInstance, env=None
) -> bool:
    """Collapse a dense-order sentence and evaluate it actively.

    The correctness statement of the collapse: for every finite instance,
    this equals the natural-semantics truth value.
    """
    return evaluate_active(collapse_dense_order(formula), instance, env)
