"""Finitely representable (constraint) database instances.

An f.r. instance interprets each schema relation by a quantifier-free
formula over the chosen signature: semi-linear sets over R_lin, semi-
algebraic sets over R (Section 2 of the paper).  This is the constraint
database model of Kanellakis-Kuper-Revesz.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..logic.formulas import Formula
from ..logic.metrics import max_degree
from ..logic.normalform import is_quantifier_free
from ..logic.substitution import substitute
from ..logic.terms import Term, Var, as_term
from .._errors import SignatureError
from .schema import Schema

__all__ = ["FRInstance"]


@dataclass(frozen=True)
class FRInstance:
    """An f.r. instance: each relation given by (parameter variables, body).

    ``definitions[name] = (vars, body)`` means the relation denotes
    ``{ a : body[vars := a] }``; ``body`` must be quantifier-free and must
    not mention schema relations.
    """

    schema: Schema
    definitions: tuple[tuple[str, tuple[tuple[str, ...], Formula]], ...]

    @staticmethod
    def make(
        schema: Schema,
        definitions: Mapping[str, tuple[Sequence[Var | str], Formula]],
    ) -> "FRInstance":
        items: list[tuple[str, tuple[tuple[str, ...], Formula]]] = []
        for name in schema.names():
            if name not in definitions:
                raise ValueError(f"missing definition for relation {name!r}")
            variables, body = definitions[name]
            names = tuple(v.name if isinstance(v, Var) else v for v in variables)
            if len(names) != schema.arity(name):
                raise ValueError(
                    f"definition of {name!r} has {len(names)} parameters, "
                    f"arity is {schema.arity(name)}"
                )
            if len(set(names)) != len(names):
                raise ValueError(f"duplicate parameters in definition of {name!r}")
            if not is_quantifier_free(body):
                raise ValueError(
                    f"definition of {name!r} must be quantifier-free"
                )
            if body.relation_names():
                raise ValueError(
                    f"definition of {name!r} mentions schema relations"
                )
            if not body.free_variables() <= set(names):
                raise ValueError(
                    f"definition of {name!r} has stray free variables "
                    f"{sorted(body.free_variables() - set(names))}"
                )
            items.append((name, (names, body)))
        unknown = set(definitions) - set(schema.names())
        if unknown:
            raise ValueError(f"definitions not in schema: {sorted(unknown)}")
        return FRInstance(schema, tuple(items))

    def definition(self, name: str) -> tuple[tuple[str, ...], Formula]:
        for rel_name, payload in self.definitions:
            if rel_name == name:
                return payload
        raise KeyError(f"unknown relation {name!r}")

    def instantiate(self, name: str, args: Sequence[Term]) -> Formula:
        """The defining formula with *args* substituted for the parameters."""
        variables, body = self.definition(name)
        if len(args) != len(variables):
            raise ValueError(
                f"relation {name!r} applied to {len(args)} arguments, "
                f"arity is {len(variables)}"
            )
        mapping = {v: as_term(a) for v, a in zip(variables, args)}
        return substitute(body, mapping)

    def is_semilinear(self) -> bool:
        """True when every definition is linear (a semi-linear instance)."""
        return all(
            max_degree(body) <= 1 for _, (_, body) in self.definitions
        )

    def check_semilinear(self) -> None:
        if not self.is_semilinear():
            raise SignatureError(
                "instance uses polynomial constraints; a semi-linear "
                "instance was required"
            )
