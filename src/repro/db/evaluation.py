"""Query evaluation over finite and finitely representable instances.

Three evaluation modes, matching the paper's Section 2:

* **active-domain semantics** over finite instances — quantifiers range
  over adom(D); this is FO_act and is evaluated directly;
* **natural semantics** over finite or f.r. instances — quantifiers range
  over all of R; relation atoms are *expanded* into their constraint
  definitions and the resulting pure formula is handled by quantifier
  elimination (linear) or CAD (polynomial);
* **closure**: applying an FO + LIN query to a semi-linear instance yields
  a quantifier-free linear formula for the output — the constraint-database
  closure property the paper builds on.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, Sequence

from ..logic.evaluate import evaluate
from ..logic.formulas import (
    And,
    Compare,
    Exists,
    ExistsAdom,
    FalseFormula,
    Forall,
    ForallAdom,
    Formula,
    Not,
    Or,
    RelAtom,
    TrueFormula,
    conjunction,
    disjunction,
)
from ..logic.metrics import max_degree
from ..logic.normalform import is_quantifier_free
from ..logic.substitution import substitute
from ..logic.terms import Const, Term
from ..qe.cad import decide as cad_decide
from ..qe.fourier_motzkin import decide_linear, qe_linear
from ..qe.simplify import simplify_qf
from .._errors import EvaluationError
from .fr_instance import FRInstance
from .instance import FiniteInstance

__all__ = [
    "expand_relations",
    "evaluate_active",
    "evaluate_natural",
    "output_formula",
    "query_output_tuples",
    "resolve_adom_quantifiers",
]

Instance = "FiniteInstance | FRInstance"


def _finite_relation_formula(
    rows: frozenset[tuple[Fraction, ...]], args: Sequence[Term]
) -> Formula:
    """Encode membership of *args* in a finite relation as equalities."""
    disjuncts = []
    for row in sorted(rows):
        disjuncts.append(
            conjunction(
                *(arg.eq(Const(value)) for arg, value in zip(args, row))
            )
        )
    return disjunction(*disjuncts)


def expand_relations(formula: Formula, instance) -> Formula:
    """Replace every relation atom by the instance's definition.

    For f.r. instances the constraint definition is substituted; for finite
    instances the relation is encoded as a disjunction of equalities.  The
    result mentions no schema relations, so quantifier elimination applies.
    """
    if isinstance(formula, (TrueFormula, FalseFormula, Compare)):
        return formula
    if isinstance(formula, RelAtom):
        if isinstance(instance, FRInstance):
            return instance.instantiate(formula.name, formula.args)
        if isinstance(instance, FiniteInstance):
            return _finite_relation_formula(
                instance.relation(formula.name), formula.args
            )
        raise EvaluationError(f"unsupported instance type {type(instance).__name__}")
    if isinstance(formula, And):
        return conjunction(*(expand_relations(a, instance) for a in formula.args))
    if isinstance(formula, Or):
        return disjunction(*(expand_relations(a, instance) for a in formula.args))
    if isinstance(formula, Not):
        return ~expand_relations(formula.arg, instance)
    if isinstance(formula, (Exists, Forall, ExistsAdom, ForallAdom)):
        return type(formula)(formula.var, expand_relations(formula.body, instance))
    raise TypeError(f"unknown formula node {type(formula).__name__}")


def evaluate_active(
    formula: Formula,
    instance: FiniteInstance,
    env: Mapping[str, Fraction] | None = None,
) -> bool:
    """Active-domain (FO_act) evaluation over a finite instance.

    Both quantifier kinds range over adom(D) — this is the active
    interpretation of the query, as used for the generic-query machinery of
    Section 4.
    """
    adom = instance.active_domain()
    return evaluate(
        formula,
        env=env,
        relations=instance.as_dict(),
        adom=adom,
        domain=adom,
    )


def evaluate_natural(
    sentence: Formula,
    instance,
    env: Mapping[str, Fraction] | None = None,
) -> bool:
    """Natural-semantics evaluation (quantifiers over all of R).

    The sentence (after substituting *env* for its free variables) is
    expanded and decided by linear QE when linear, by CAD otherwise.
    Active-domain quantifiers are resolved against adom(D) first for
    finite instances.
    """
    formula = sentence
    if env:
        formula = substitute(
            formula, {name: Const(Fraction(value)) for name, value in env.items()}
        )
    if isinstance(instance, FiniteInstance):
        formula = _resolve_adom_quantifiers(formula, instance)
    expanded = expand_relations(formula, instance)
    if expanded.free_variables():
        raise EvaluationError(
            f"unbound variables {sorted(expanded.free_variables())}; "
            "bind them via env"
        )
    if max_degree(expanded) <= 1:
        return decide_linear(expanded)
    return cad_decide(expanded)


def resolve_adom_quantifiers(formula: Formula, instance: FiniteInstance) -> Formula:
    """Expand active-domain quantifiers into finite boolean combinations."""
    return _resolve_adom_quantifiers(formula, instance)


def _resolve_adom_quantifiers(formula: Formula, instance: FiniteInstance) -> Formula:
    """Expand active-domain quantifiers into finite boolean combinations."""
    if isinstance(formula, (TrueFormula, FalseFormula, Compare, RelAtom)):
        return formula
    if isinstance(formula, And):
        return conjunction(
            *(_resolve_adom_quantifiers(a, instance) for a in formula.args)
        )
    if isinstance(formula, Or):
        return disjunction(
            *(_resolve_adom_quantifiers(a, instance) for a in formula.args)
        )
    if isinstance(formula, Not):
        return ~_resolve_adom_quantifiers(formula.arg, instance)
    if isinstance(formula, (Exists, Forall)):
        return type(formula)(
            formula.var, _resolve_adom_quantifiers(formula.body, instance)
        )
    if isinstance(formula, (ExistsAdom, ForallAdom)):
        body = _resolve_adom_quantifiers(formula.body, instance)
        branches = [
            substitute(body, {formula.var: Const(value)})
            for value in sorted(instance.active_domain())
        ]
        if isinstance(formula, ExistsAdom):
            return disjunction(*branches)
        return conjunction(*branches)
    raise TypeError(f"unknown formula node {type(formula).__name__}")


def output_formula(
    query: Formula,
    instance,
    simplify: bool = True,
) -> Formula:
    """Quantifier-free formula defining the query output (closure property).

    Requires the expanded query to be linear (FO + LIN on a semi-linear or
    finite instance); the result is a quantifier-free linear formula in the
    query's free variables — a constraint representation of the output,
    witnessing closure.
    """
    formula = query
    if isinstance(instance, FiniteInstance):
        formula = _resolve_adom_quantifiers(formula, instance)
    expanded = expand_relations(formula, instance)
    if max_degree(expanded) > 1:
        raise EvaluationError(
            "output_formula supports the linear fragment; polynomial "
            "closure requires CAD-based QE which this library scopes to "
            "decision problems (see repro.qe.cad)"
        )
    result = expanded if is_quantifier_free(expanded) else qe_linear(expanded)
    return simplify_qf(result) if simplify else result


def query_output_tuples(
    query: Formula,
    instance: FiniteInstance,
    variables: Sequence[str],
) -> set[tuple[Fraction, ...]]:
    """Evaluate a query with active-domain semantics to a finite relation.

    The output is ``{ a in adom^k : D |= query(a) }`` — the classical
    relational-calculus result set.
    """
    adom = sorted(instance.active_domain())
    variables = tuple(variables)
    free = query.free_variables()
    if not free <= set(variables):
        raise EvaluationError(
            f"query has free variables {sorted(free)} outside {variables}"
        )
    results: set[tuple[Fraction, ...]] = set()

    def assign(index: int, env: dict[str, Fraction]) -> None:
        if index == len(variables):
            if evaluate_active(query, instance, env):
                results.add(tuple(env[v] for v in variables))
            return
        for value in adom:
            env[variables[index]] = value
            assign(index + 1, env)
        env.pop(variables[index], None)

    assign(0, {})
    return results
