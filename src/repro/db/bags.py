"""Bag (multiset) semantics for finite relations and aggregates.

Footnote 2 of the paper: "the aggregate AVG is typically defined using the
bag semantics; however, as we show inexpressibility results, dealing with
this simplified [set] version will suffice.  ...  We shall come back to
the multiset semantics later."  The positive language also sums *bags*:
``gamma(A)`` is defined as the bag ``⊎_{a in A} f_gamma(a)``.

This module supplies the bag side of the story: finite relations with
multiplicities and the bag versions of COUNT/SUM/AVG, so duplicate data
values (two parcels with the same area, two sensors with the same reading)
weigh as many times as they occur — where the set semantics would collapse
them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from .._errors import EvaluationError

__all__ = ["Bag", "bag_count", "bag_sum", "bag_avg", "bag_min", "bag_max"]


@dataclass(frozen=True)
class Bag:
    """A finite multiset of tuples over Q."""

    multiplicities: tuple[tuple[tuple[Fraction, ...], int], ...]

    @staticmethod
    def make(
        rows: Iterable[Sequence[Fraction | int] | Fraction | int],
    ) -> "Bag":
        counter: Counter = Counter()
        for row in rows:
            if isinstance(row, (int, Fraction)):
                row = (row,)
            counter[tuple(Fraction(v) for v in row)] += 1
        return Bag(tuple(sorted(counter.items())))

    @staticmethod
    def from_counts(
        counts: Mapping[tuple[Fraction, ...], int]
    ) -> "Bag":
        for row, count in counts.items():
            if count < 0:
                raise ValueError("multiplicities must be non-negative")
        return Bag(tuple(sorted((tuple(map(Fraction, r)), c)
                                for r, c in counts.items() if c > 0)))

    def multiplicity(self, row: Sequence[Fraction]) -> int:
        target = tuple(Fraction(v) for v in row)
        for existing, count in self.multiplicities:
            if existing == target:
                return count
        return 0

    def cardinality(self) -> int:
        """Total number of elements, counting multiplicity."""
        return sum(count for _, count in self.multiplicities)

    def support(self) -> frozenset[tuple[Fraction, ...]]:
        """The underlying set (the paper's simplified semantics)."""
        return frozenset(row for row, _ in self.multiplicities)

    def union(self, other: "Bag") -> "Bag":
        """Additive bag union (the paper's ⊎)."""
        counter: Counter = Counter(dict(self.multiplicities))
        for row, count in other.multiplicities:
            counter[row] += count
        return Bag(tuple(sorted(counter.items())))

    def map_values(self, function) -> "Bag":
        """Apply a function to each tuple, keeping multiplicities (the bag
        image ``⊎ f(a)``; tuples where *function* returns None drop out,
        matching the partial-function semantics of gamma)."""
        counter: Counter = Counter()
        for row, count in self.multiplicities:
            value = function(row)
            if value is None:
                continue
            if isinstance(value, (int, Fraction)):
                value = (Fraction(value),)
            counter[tuple(Fraction(v) for v in value)] += count
        return Bag(tuple(sorted(counter.items())))

    def __iter__(self):
        for row, count in self.multiplicities:
            for _ in range(count):
                yield row

    def __len__(self) -> int:
        return self.cardinality()


def _scalars(bag: Bag) -> list[tuple[Fraction, int]]:
    values = []
    for row, count in bag.multiplicities:
        if len(row) != 1:
            raise EvaluationError("scalar aggregate over a non-unary bag")
        values.append((row[0], count))
    return values


def bag_count(bag: Bag) -> int:
    """COUNT with duplicates (SQL's COUNT(*) over the bag)."""
    return bag.cardinality()


def bag_sum(bag: Bag) -> Fraction:
    """SUM with multiplicities."""
    total = Fraction(0)
    for value, count in _scalars(bag):
        total += value * count
    return total


def bag_avg(bag: Bag) -> Fraction:
    """AVG under bag semantics: SUM / COUNT including duplicates.

    This differs from the paper's simplified set-AVG exactly when the bag
    has repeated values — see the unit tests for a witnessing instance.
    """
    cardinality = bag.cardinality()
    if cardinality == 0:
        raise EvaluationError("AVG of an empty bag")
    return bag_sum(bag) / cardinality


def bag_min(bag: Bag) -> Fraction:
    values = _scalars(bag)
    if not values:
        raise EvaluationError("MIN of an empty bag")
    return min(v for v, _ in values)


def bag_max(bag: Bag) -> Fraction:
    values = _scalars(bag)
    if not values:
        raise EvaluationError("MAX of an empty bag")
    return max(v for v, _ in values)
