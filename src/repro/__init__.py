"""repro: a reproduction of Benedikt & Libkin, "Exact and Approximate
Aggregation in Constraint Query Languages" (PODS 1999).

Subpackages
-----------
``repro.logic``
    First-order logic over real signatures (FO + LIN, FO + POLY): terms,
    formulas, normal forms, parser/printer, metrics.
``repro.realalg``
    Exact real algebra: rational polynomials, Sturm sequences, root
    isolation, real algebraic numbers, resultants.
``repro.qe``
    Quantifier elimination: Fourier-Motzkin (linear), one-variable exact
    solving (the END engine), CAD decision for FO + POLY.
``repro.geometry``
    Semi-linear sets as unions of convex cells; exact volumes by the
    Theorem-3 slicing algorithm; Monte Carlo sampling; Loewner-John
    ellipsoids.
``repro.db``
    Constraint databases: finite and finitely representable instances,
    active/natural query semantics, the FO + LIN closure property.
``repro.core``
    **The paper's contribution**: FO + POLY + SUM — deterministic
    formulae, the END operator, range-restricted expressions, summation
    terms, classical aggregates, exact semi-linear volumes (Theorem 3),
    the polygon-area worked example, and the witness extension with
    Theorem 4's uniform probabilistic volume approximation.
``repro.vc``
    VC dimension: exact shattering, definable families, the Blumer and
    Goldberg-Jerrum bounds, the Proposition 5 construction.
``repro.approx``
    Approximate volume operators: the trivial 1/2-approximation
    (Proposition 4), Monte Carlo, relative/convex approximations, and the
    Karpinski-Macintyre blow-up cost model (Section 3's example).
``repro.inexpressibility``
    Executable Section 4: separating sentences, EF games, the AVG and
    good-instance reductions, FO_act-to-AC0 circuit compilation.
``repro.obs``
    Observability: nested spans, counter/gauge registries, and JSON-lines
    trace export across the evaluator / QE / volume pipeline.  Disabled
    by default with a sub-microsecond fast path.
``repro.guard``
    Resource governance: cooperative budgets (deadline, cells,
    constraints, size, depth), the structured ``BudgetExceeded`` family,
    and the exact -> approximate degradation ladder (``robust_volume``).
``repro.engine``
    The query engine: canonical formula hashing, prepared queries
    (compile once, evaluate many times), a content-addressed LRU plan
    cache with JSONL spill/load, and a process-pool batch executor
    (``python -m repro batch``).
"""

__version__ = "0.1.0"

from . import obs, guard, logic, realalg, qe, geometry, db, core, vc, approx, inexpressibility
from . import engine
from .guard.errors import BudgetExceeded
from ._errors import (
    ApproximationError,
    EvaluationError,
    GeometryError,
    NotDeterministicError,
    NotQuantifierFree,
    QEError,
    ReproError,
    SafetyError,
    SignatureError,
    UnboundedSetError,
)

__all__ = [
    "obs",
    "guard",
    "logic",
    "realalg",
    "qe",
    "geometry",
    "db",
    "core",
    "vc",
    "approx",
    "inexpressibility",
    "engine",
    "ReproError",
    "BudgetExceeded",
    "SignatureError",
    "NotQuantifierFree",
    "UnboundedSetError",
    "NotDeterministicError",
    "SafetyError",
    "EvaluationError",
    "QEError",
    "GeometryError",
    "ApproximationError",
    "__version__",
]
