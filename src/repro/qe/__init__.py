"""Quantifier elimination: the engine behind constraint-database closure.

* Fourier-Motzkin elimination gives full QE for FO + LIN (and the
  dense-order fragment).
* One-variable solving (:func:`solve_univariate`) computes the exact
  solution set — a finite union of points and intervals — of any
  one-variable polynomial formula; this realises o-minimality computationally
  and powers the paper's END operator.
* Cylindrical algebraic decomposition decides FO + POLY sentences and finds
  sample points of quantifier-free polynomial formulas.
"""

from .linear import LinConstraint, compare_to_constraints, linear_parts
from .fourier_motzkin import (
    conjunct_to_constraints,
    constraints_to_formula,
    decide_linear,
    eliminate_variable,
    is_feasible,
    qe_linear,
    remove_redundant,
)
from .dense_order import check_dense_order, decide_dense_order, qe_dense_order
from .intervals import Endpoint, Interval, IntervalUnion, rational_between
from .onevar import atom_polynomials, formula_truth_at, solve_univariate
from .cad import decide, find_sample, projection_set, satisfiable
from .simplify import simplify_qf

__all__ = [
    "LinConstraint",
    "compare_to_constraints",
    "linear_parts",
    "qe_linear",
    "decide_linear",
    "eliminate_variable",
    "conjunct_to_constraints",
    "constraints_to_formula",
    "is_feasible",
    "remove_redundant",
    "check_dense_order",
    "qe_dense_order",
    "decide_dense_order",
    "Endpoint",
    "Interval",
    "IntervalUnion",
    "rational_between",
    "solve_univariate",
    "formula_truth_at",
    "atom_polynomials",
    "decide",
    "satisfiable",
    "find_sample",
    "projection_set",
    "simplify_qf",
]
