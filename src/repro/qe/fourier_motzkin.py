"""Fourier-Motzkin quantifier elimination for FO + LIN.

This gives the closure property of linear constraint databases used
throughout the paper: applying an FO + LIN query to a semi-linear set
yields another semi-linear set.  The eliminator works on disjunctive
normal form; each conjunction of linear constraints has one variable
eliminated by combining lower and upper bounds (or by substituting an
equality).  ``Forall`` is handled by dualisation.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

from ..logic.formulas import (
    Compare,
    Exists,
    ExistsAdom,
    ForallAdom,
    Formula,
    conjunction,
    disjunction,
)
from ..logic.normalform import qf_to_dnf, to_nnf, to_prenex
from .. import guard, obs
from .._errors import QEError
from .linear import LinConstraint, compare_to_constraints

__all__ = [
    "eliminate_variable",
    "qe_linear",
    "decide_linear",
    "conjunct_to_constraints",
    "constraints_to_formula",
    "is_feasible",
    "remove_redundant",
]


def conjunct_to_constraints(literals: Iterable[Formula]) -> list[list[LinConstraint]]:
    """Normalise a conjunction of comparison literals into constraint lists.

    ``!=`` atoms are split, so the result is a *list of alternative
    conjunctions* (a small DNF) whose disjunction is equivalent to the input
    conjunction.  Relation atoms are rejected — substitute database
    definitions first.
    """
    alternatives: list[list[LinConstraint]] = [[]]
    for literal in literals:
        if not isinstance(literal, Compare):
            raise QEError(
                f"non-comparison literal in linear QE: {literal} "
                "(substitute relation definitions before eliminating)"
            )
        if literal.op == "!=":
            branches = compare_to_constraints(
                Compare("<", literal.lhs, literal.rhs)
            ) + compare_to_constraints(Compare(">", literal.lhs, literal.rhs))
            alternatives = [
                existing + [branch]
                for existing in alternatives
                for branch in branches
            ]
        else:
            extra = compare_to_constraints(literal)
            alternatives = [existing + extra for existing in alternatives]
    return alternatives


def eliminate_variable(
    var: str, constraints: Sequence[LinConstraint]
) -> list[LinConstraint] | None:
    """Eliminate ``exists var`` from a conjunction of constraints.

    Returns the resulting conjunction, or ``None`` if the conjunction is
    detected to be infeasible (a constant constraint evaluated false).
    """
    obs.add("fm.eliminations")
    guard.checkpoint()
    equalities: list[LinConstraint] = []
    lowers: list[LinConstraint] = []   # coeff of var < 0: var >= bound
    uppers: list[LinConstraint] = []   # coeff of var > 0: var <= bound
    rest: list[LinConstraint] = []
    for constraint in constraints:
        coeff = constraint.coeff(var)
        if coeff == 0:
            rest.append(constraint)
        elif constraint.op == "=":
            equalities.append(constraint)
        elif coeff > 0:
            uppers.append(constraint)
        else:
            lowers.append(constraint)

    if equalities:
        # Solve the first equality for var and substitute everywhere.
        eq = equalities[0]
        coeff = eq.coeff(var)
        replacement = {
            name: -c / coeff for name, c in eq.coeffs if name != var
        }
        replacement_const = -eq.constant / coeff
        substituted = [
            c.substitute_var(var, replacement, replacement_const)
            for c in equalities[1:] + lowers + uppers
        ] + rest
        guard.charge("constraints", len(substituted))
        return _clean(substituted)

    combined: list[LinConstraint] = list(rest)
    for lower in lowers:
        lower_scaled = lower.scale(Fraction(-1) / lower.coeff(var))
        # lower_scaled: -var + L  op  0,  i.e.  var >= L (strict if op is <)
        for upper in uppers:
            upper_scaled = upper.scale(Fraction(1) / upper.coeff(var))
            # upper_scaled: var + U  op  0,  i.e.  var <= -U
            coeffs: dict[str, Fraction] = {}
            for name, c in lower_scaled.coeffs:
                if name != var:
                    coeffs[name] = coeffs.get(name, Fraction(0)) + c
            for name, c in upper_scaled.coeffs:
                if name != var:
                    coeffs[name] = coeffs.get(name, Fraction(0)) + c
            constant = lower_scaled.constant + upper_scaled.constant
            op = "<" if (lower.op == "<" or upper.op == "<") else "<="
            combined.append(LinConstraint.make(coeffs, constant, op))
    guard.charge("constraints", len(combined))
    return _clean(combined)


def _clean(constraints: Iterable[LinConstraint]) -> list[LinConstraint] | None:
    """Drop constant-true constraints and duplicates; None if constant-false."""
    seen = set()
    result: list[LinConstraint] = []
    dropped = 0
    for constraint in constraints:
        if constraint.is_constant():
            if not constraint.constant_truth():
                return None
            dropped += 1
            continue
        if constraint in seen:
            dropped += 1
            continue
        seen.add(constraint)
        result.append(constraint)
    if dropped:
        obs.add("fm.constraints_pruned", dropped)
    return result


def is_feasible(constraints: Sequence[LinConstraint]) -> bool:
    """Exact feasibility of a conjunction of linear constraints over R.

    Decided by eliminating every variable with Fourier-Motzkin.
    """
    current = _clean(constraints)
    if current is None:
        return False
    while current:
        guard.checkpoint()
        remaining_vars = sorted(set().union(*(c.variables() for c in current)))
        if not remaining_vars:
            break
        current = eliminate_variable(remaining_vars[0], current)
        if current is None:
            return False
    return True


def remove_redundant(constraints: Sequence[LinConstraint]) -> list[LinConstraint]:
    """Remove constraints implied by the rest (exact, via feasibility tests).

    A constraint c is redundant iff (rest AND not-c) is infeasible.  Since
    ``not c`` can be a disjunction (for equalities), every branch must be
    infeasible.
    """
    kept = list(constraints)
    index = 0
    while index < len(kept):
        guard.checkpoint()
        candidate = kept[index]
        rest = kept[:index] + kept[index + 1:]
        negation_branches = candidate.negated_formulas()
        if all(not is_feasible(rest + [branch]) for branch in negation_branches):
            kept.pop(index)
            obs.add("fm.constraints_pruned")
        else:
            index += 1
    return kept


def constraints_to_formula(constraints: Sequence[LinConstraint]) -> Formula:
    """Conjunction formula of a constraint list (TRUE when empty)."""
    return conjunction(*(c.to_formula() for c in constraints))


def _eliminate_exists(var: str, matrix: Formula, prune: bool) -> Formula:
    """Quantifier-free equivalent of ``exists var . matrix`` (matrix QF)."""
    disjuncts: list[Formula] = []
    with obs.span("qe.fm.eliminate", var=var):
        for conjunct in qf_to_dnf(matrix):
            for constraints in conjunct_to_constraints(conjunct):
                obs.add("fm.disjuncts")
                guard.checkpoint()
                result = eliminate_variable(var, constraints)
                if result is None:
                    continue
                if prune and not is_feasible(result):
                    obs.add("fm.disjuncts_pruned")
                    continue
                disjuncts.append(constraints_to_formula(result))
    return disjunction(*disjuncts)


def qe_linear(formula: Formula, prune: bool = True) -> Formula:
    """Eliminate all (natural) quantifiers from an FO + LIN formula.

    The result is a quantifier-free formula with the same free variables,
    equivalent over the reals.  Relation atoms are not allowed — substitute
    the database's constraint definitions first
    (:func:`repro.db.evaluation.expand_relations`).

    ``prune`` additionally removes infeasible disjuncts from intermediate
    results, which combats the DNF blow-up at some extra cost.
    """
    if formula.relation_names():
        raise QEError(
            "formula mentions schema relations "
            f"{sorted(formula.relation_names())}; expand them first"
        )
    prenex = to_prenex(formula)
    for kind, _ in prenex.prefix:
        if kind in (ExistsAdom, ForallAdom):
            raise QEError("active-domain quantifiers have no meaning over R; "
                          "evaluate them against a finite instance instead")
    matrix = prenex.matrix
    with obs.span("qe.fm.qe_linear", quantifiers=len(prenex.prefix)):
        for kind, var in reversed(prenex.prefix):
            if kind is Exists:
                matrix = _eliminate_exists(var, matrix, prune)
            else:  # Forall
                matrix = to_nnf(~_eliminate_exists(var, to_nnf(~matrix), prune))
    return matrix


def decide_linear(sentence: Formula) -> bool:
    """Decide a closed FO + LIN sentence over the reals."""
    if sentence.free_variables():
        raise QEError(
            f"sentence has free variables {sorted(sentence.free_variables())}"
        )
    matrix = qe_linear(sentence)
    # A closed quantifier-free formula: every atom is a constant comparison.
    for conjunct in qf_to_dnf(matrix):
        for constraints in conjunct_to_constraints(conjunct):
            cleaned = _clean(constraints)
            if cleaned == []:
                return True
            # Non-constant constraints cannot appear in a closed formula.
            if cleaned:
                raise QEError("internal error: free variables after QE")
    return False
