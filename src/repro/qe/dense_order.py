"""Quantifier elimination for dense order constraints ``(R, <)``.

Dense-order formulas are the degree-one, coefficient-(+1/-1) fragment of
FO + LIN, so elimination is delegated to Fourier-Motzkin after a signature
check.  The class of f.r. instances definable with dense-order constraints
is exactly the finite unions of points and intervals with rational
endpoints — the inputs of Corollary 2(b) in the paper.
"""

from __future__ import annotations

from ..logic.formulas import (
    And,
    Compare,
    Exists,
    ExistsAdom,
    FalseFormula,
    Forall,
    ForallAdom,
    Formula,
    Not,
    Or,
    RelAtom,
    TrueFormula,
)
from ..logic.terms import Const, Term, Var
from .._errors import SignatureError
from .fourier_motzkin import decide_linear, qe_linear

__all__ = ["check_dense_order", "qe_dense_order", "decide_dense_order"]


def _check_term(term: Term) -> None:
    if not isinstance(term, (Var, Const)):
        raise SignatureError(
            f"term {term} is not allowed in dense-order constraints "
            "(only variables and constants)"
        )


def check_dense_order(formula: Formula) -> None:
    """Raise :class:`SignatureError` unless *formula* is a dense-order formula."""
    if isinstance(formula, Compare):
        _check_term(formula.lhs)
        _check_term(formula.rhs)
    elif isinstance(formula, RelAtom):
        for arg in formula.args:
            _check_term(arg)
    elif isinstance(formula, (And, Or)):
        for arg in formula.args:
            check_dense_order(arg)
    elif isinstance(formula, Not):
        check_dense_order(formula.arg)
    elif isinstance(formula, (Exists, Forall, ExistsAdom, ForallAdom)):
        check_dense_order(formula.body)
    elif isinstance(formula, (TrueFormula, FalseFormula)):
        pass
    else:
        raise TypeError(f"unknown formula node {type(formula).__name__}")


def qe_dense_order(formula: Formula) -> Formula:
    """Quantifier elimination for dense-order formulas (via Fourier-Motzkin)."""
    check_dense_order(formula)
    return qe_linear(formula)


def decide_dense_order(sentence: Formula) -> bool:
    """Decide a closed dense-order sentence."""
    check_dense_order(sentence)
    return decide_linear(sentence)
