"""Canonical linear constraints over the ordered group of the reals.

A :class:`LinConstraint` is ``sum_i coeff_i * x_i + constant OP 0`` with
``OP`` one of ``<``, ``<=``, ``=``.  Comparison atoms of FO + LIN formulas
are normalised to this form (``>``/``>=`` are flipped, ``!=`` must be split
into a disjunction by the caller).  These constraints are shared between
the Fourier-Motzkin eliminator and the polyhedral geometry code.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

from ..logic.formulas import Compare, Formula
from ..logic.terms import Add, Const, Term, Var
from ..realalg.polynomial import Polynomial, term_to_polynomial
from .._errors import SignatureError

__all__ = ["LinConstraint", "compare_to_constraints", "linear_parts"]


@dataclass(frozen=True)
class LinConstraint:
    """A normalised linear constraint ``sum coeffs[v]*v + constant OP 0``.

    ``coeffs`` holds only nonzero coefficients.  ``op`` is ``<``, ``<=`` or
    ``=``.
    """

    coeffs: tuple[tuple[str, Fraction], ...]
    constant: Fraction
    op: str

    @staticmethod
    def make(
        coeffs: Mapping[str, Fraction], constant: Fraction | int, op: str
    ) -> "LinConstraint":
        if op not in ("<", "<=", "="):
            raise ValueError(f"unsupported constraint operator {op!r}")
        items = tuple(
            sorted((v, Fraction(c)) for v, c in coeffs.items() if c != 0)
        )
        return LinConstraint(items, Fraction(constant), op)

    # -- queries ---------------------------------------------------------------
    def coeff_map(self) -> dict[str, Fraction]:
        return dict(self.coeffs)

    def coeff(self, var: str) -> Fraction:
        for name, value in self.coeffs:
            if name == var:
                return value
        return Fraction(0)

    def variables(self) -> frozenset[str]:
        return frozenset(name for name, _ in self.coeffs)

    def is_constant(self) -> bool:
        return not self.coeffs

    def constant_truth(self) -> bool:
        """Truth value of a constraint with no variables."""
        if self.coeffs:
            raise ValueError("constraint is not constant")
        if self.op == "<":
            return self.constant < 0
        if self.op == "<=":
            return self.constant <= 0
        return self.constant == 0

    def evaluate(self, env: Mapping[str, Fraction]) -> bool:
        value = self.constant
        for name, coeff in self.coeffs:
            value += coeff * Fraction(env[name])
        if self.op == "<":
            return value < 0
        if self.op == "<=":
            return value <= 0
        return value == 0

    def lhs_value(self, env: Mapping[str, Fraction]) -> Fraction:
        """Value of the linear form (including the constant) at *env*."""
        value = self.constant
        for name, coeff in self.coeffs:
            value += coeff * Fraction(env[name])
        return value

    # -- transformations ---------------------------------------------------
    def scale(self, factor: Fraction) -> "LinConstraint":
        """Multiply by a *positive* rational factor (keeps the operator)."""
        factor = Fraction(factor)
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return LinConstraint(
            tuple((v, c * factor) for v, c in self.coeffs),
            self.constant * factor,
            self.op,
        )

    def substitute_var(
        self, var: str, replacement_coeffs: Mapping[str, Fraction], replacement_const: Fraction
    ) -> "LinConstraint":
        """Substitute ``var := sum replacement_coeffs + replacement_const``."""
        own = self.coeff_map()
        factor = own.pop(var, Fraction(0))
        if factor == 0:
            return self
        for name, coeff in replacement_coeffs.items():
            own[name] = own.get(name, Fraction(0)) + factor * coeff
        return LinConstraint.make(
            own, self.constant + factor * Fraction(replacement_const), self.op
        )

    def negated_formulas(self) -> list["LinConstraint"]:
        """Constraints whose disjunction is the negation of this constraint.

        ``< -> >=`` gives one constraint; ``= -> !=`` gives two.
        """
        flipped = tuple((v, -c) for v, c in self.coeffs)
        if self.op == "<":
            return [LinConstraint(flipped, -self.constant, "<=")]
        if self.op == "<=":
            return [LinConstraint(flipped, -self.constant, "<")]
        return [
            LinConstraint(self.coeffs, self.constant, "<"),
            LinConstraint(flipped, -self.constant, "<"),
        ]

    def to_formula(self) -> Formula:
        """Rebuild a :class:`~repro.logic.formulas.Compare` atom."""
        parts: list[Term] = []
        for name, coeff in self.coeffs:
            if coeff == 1:
                parts.append(Var(name))
            else:
                parts.append(Const(coeff) * Var(name))
        if self.constant != 0 or not parts:
            parts.append(Const(self.constant))
        lhs = parts[0] if len(parts) == 1 else Add(tuple(parts))
        return Compare(self.op, lhs, Const(Fraction(0)))

    def __str__(self) -> str:
        return str(self.to_formula())


def linear_parts(polynomial: Polynomial) -> tuple[dict[str, Fraction], Fraction]:
    """Split a degree-<=1 polynomial into (coefficients, constant).

    Raises :class:`SignatureError` if the polynomial has degree > 1.
    """
    coeffs: dict[str, Fraction] = {}
    constant = Fraction(0)
    for mono, coeff in polynomial.coeffs.items():
        degree = sum(mono)
        if degree == 0:
            constant += coeff
        elif degree == 1:
            index = next(i for i, e in enumerate(mono) if e == 1)
            name = polynomial.variables[index]
            coeffs[name] = coeffs.get(name, Fraction(0)) + coeff
        else:
            raise SignatureError(
                f"nonlinear monomial in a linear context: {polynomial}"
            )
    return coeffs, constant


def compare_to_constraints(atom: Compare) -> list[LinConstraint]:
    """Normalise a comparison atom into constraints whose *conjunction* is
    equivalent to the atom.

    ``<, <=, =`` produce a single constraint; ``>=, >`` are flipped;
    ``!=`` raises (the caller must split it into a disjunction first, e.g.
    via :func:`repro.logic.normalform.to_nnf` followed by explicit
    handling, or by using :func:`repro.qe.fourier_motzkin.atoms_to_dnf`).
    """
    if atom.op == "!=":
        raise ValueError("'!=' atoms must be split into < OR > before normalising")
    diff = term_to_polynomial(atom.lhs) - term_to_polynomial(atom.rhs)
    coeffs, constant = linear_parts(diff)
    op = atom.op
    if op in (">", ">="):
        coeffs = {v: -c for v, c in coeffs.items()}
        constant = -constant
        op = "<" if op == ">" else "<="
    return [LinConstraint.make(coeffs, constant, op)]
