"""Intervals and finite unions of intervals on the real line.

These are the one-dimensional o-minimal definable sets: by o-minimality
every set definable over the structures of the paper is a finite union of
points and open intervals.  Endpoints may be rational
(:class:`~fractions.Fraction`) or real algebraic
(:class:`~repro.realalg.algebraic.RealAlgebraic`); ``None`` encodes an
infinite endpoint.  This module is the substrate of the paper's END
operator: the endpoints of the intervals composing a definable set.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Union

from ..realalg.algebraic import RealAlgebraic

__all__ = ["Endpoint", "Interval", "IntervalUnion", "endpoint_key", "rational_between"]

#: A finite endpoint value.
Endpoint = Union[Fraction, RealAlgebraic]


def endpoint_key(value: Endpoint) -> float:
    """A float sort key for endpoints (ties broken by exact comparison)."""
    if isinstance(value, Fraction):
        return float(value)
    return float(value)


def _eq(a: Endpoint, b: Endpoint) -> bool:
    return a == b


def _lt(a: Endpoint, b: Endpoint) -> bool:
    return a < b


def rational_between(
    low: Endpoint | None, high: Endpoint | None
) -> Fraction:
    """An exact rational strictly between *low* and *high* (None = infinite).

    Requires ``low < high``.
    """
    if low is None and high is None:
        return Fraction(0)
    if low is None:
        if isinstance(high, Fraction):
            return high - 1
        return high.bounds()[0] - 1
    if high is None:
        if isinstance(low, Fraction):
            return low + 1
        return low.bounds()[1] + 1

    width = Fraction(1, 2**10)
    while True:
        low_hi = low if isinstance(low, Fraction) else low.bounds(width)[1]
        high_lo = high if isinstance(high, Fraction) else high.bounds(width)[0]
        if low_hi < high_lo:
            return (low_hi + high_lo) / 2
        # Handle a rational endpoint sitting inside the other's enclosure.
        if isinstance(low, Fraction) and not isinstance(high, Fraction):
            enclosure_low = high.bounds(width)[0]
            if low < enclosure_low:
                return (low + enclosure_low) / 2
        if isinstance(high, Fraction) and not isinstance(low, Fraction):
            enclosure_high = low.bounds(width)[1]
            if enclosure_high < high:
                return (enclosure_high + high) / 2
        width /= 2**4
        if width < Fraction(1, 2**2000):  # pragma: no cover - defensive
            raise ArithmeticError("endpoints appear equal; no rational between")


@dataclass(frozen=True)
class Interval:
    """A nonempty interval of the real line.

    ``low``/``high`` of ``None`` mean unbounded.  A single point is the
    closed interval ``[v, v]``.
    """

    low: Endpoint | None
    high: Endpoint | None
    closed_low: bool = False
    closed_high: bool = False

    def __post_init__(self) -> None:
        if self.low is None and self.closed_low:
            raise ValueError("an infinite endpoint cannot be closed")
        if self.high is None and self.closed_high:
            raise ValueError("an infinite endpoint cannot be closed")
        if self.low is not None and self.high is not None:
            if _lt(self.high, self.low):
                raise ValueError(f"empty interval ({self.low}, {self.high})")
            if _eq(self.low, self.high) and not (self.closed_low and self.closed_high):
                raise ValueError("a degenerate interval must be closed on both sides")

    @staticmethod
    def point(value: Endpoint) -> "Interval":
        return Interval(value, value, True, True)

    @staticmethod
    def open(low: Endpoint | None, high: Endpoint | None) -> "Interval":
        return Interval(low, high, False, False)

    @staticmethod
    def closed(low: Endpoint, high: Endpoint) -> "Interval":
        return Interval(low, high, True, True)

    def is_point(self) -> bool:
        return (
            self.low is not None
            and self.high is not None
            and _eq(self.low, self.high)
        )

    def is_bounded(self) -> bool:
        return self.low is not None and self.high is not None

    def contains(self, value: Endpoint) -> bool:
        if self.low is not None:
            if _lt(value, self.low):
                return False
            if _eq(value, self.low):
                return self.closed_low
        if self.high is not None:
            if _lt(self.high, value):
                return False
            if _eq(value, self.high):
                return self.closed_high
        return True

    def measure(self) -> Fraction | float:
        """Lebesgue measure; ``inf`` for unbounded intervals.

        Exact when both endpoints are rational; otherwise a float computed
        from tight algebraic enclosures.
        """
        if not self.is_bounded():
            return float("inf")
        if isinstance(self.low, Fraction) and isinstance(self.high, Fraction):
            return self.high - self.low
        return float(self.high) - float(self.low)  # type: ignore[arg-type]

    def sample(self) -> Fraction:
        """A rational point inside the interval (exact for point intervals
        with rational value; raises for irrational point intervals)."""
        if self.is_point():
            if isinstance(self.low, Fraction):
                return self.low
            raise ValueError("cannot produce a rational sample of an irrational point")
        return rational_between(self.low, self.high)

    def __str__(self) -> str:
        left = "[" if self.closed_low else "("
        right = "]" if self.closed_high else ")"
        low = "-inf" if self.low is None else str(self.low)
        high = "+inf" if self.high is None else str(self.high)
        return f"{left}{low}, {high}{right}"


class IntervalUnion:
    """A finite union of pairwise disjoint intervals, sorted increasingly.

    Overlapping or touching input intervals are merged on construction, so
    the representation is canonical for rational endpoints.
    """

    __slots__ = ("intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()):
        merged = _merge(list(intervals))
        object.__setattr__(self, "intervals", tuple(merged))

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("IntervalUnion is immutable")

    @staticmethod
    def empty() -> "IntervalUnion":
        return IntervalUnion(())

    def is_empty(self) -> bool:
        return not self.intervals

    def is_bounded(self) -> bool:
        return all(i.is_bounded() for i in self.intervals)

    def endpoints(self) -> list[Endpoint]:
        """All finite endpoints of the component intervals, sorted, distinct.

        This realises the paper's END operator applied to a definable
        subset of R.
        """
        out: list[Endpoint] = []
        for interval in self.intervals:
            for value in (interval.low, interval.high):
                if value is None:
                    continue
                if out and _eq(out[-1], value):
                    continue
                out.append(value)
        return out

    def measure(self) -> Fraction | float:
        """Total Lebesgue measure (inf if unbounded; exact if all rational)."""
        total: Fraction | float = Fraction(0)
        for interval in self.intervals:
            part = interval.measure()
            if part == float("inf"):
                return float("inf")
            total = total + part
        return total

    def contains(self, value: Endpoint) -> bool:
        return any(interval.contains(value) for interval in self.intervals)

    def clip(self, low: Fraction, high: Fraction) -> "IntervalUnion":
        """Intersect with the closed interval [low, high]."""
        clipped: list[Interval] = []
        for interval in self.intervals:
            new_low, new_closed_low = interval.low, interval.closed_low
            new_high, new_closed_high = interval.high, interval.closed_high
            if new_low is None or _lt(new_low, low):
                new_low, new_closed_low = low, True
            if new_high is None or _lt(high, new_high):
                new_high, new_closed_high = high, True
            if _lt(new_high, new_low):
                continue
            if _eq(new_low, new_high) and not (new_closed_low and new_closed_high):
                continue
            clipped.append(Interval(new_low, new_high, new_closed_low, new_closed_high))
        return IntervalUnion(clipped)

    def __iter__(self):
        return iter(self.intervals)

    def __len__(self) -> int:
        return len(self.intervals)

    def __eq__(self, other) -> bool:
        if not isinstance(other, IntervalUnion):
            return NotImplemented
        return self.intervals == other.intervals

    def __str__(self) -> str:
        if not self.intervals:
            return "{}"
        return " u ".join(str(i) for i in self.intervals)

    def __repr__(self) -> str:
        return f"IntervalUnion({self})"


def _sort_key(interval: Interval):
    if interval.low is None:
        return (0, 0.0)
    return (1, endpoint_key(interval.low))


def _merge(intervals: list[Interval]) -> list[Interval]:
    if not intervals:
        return []
    intervals = sorted(intervals, key=_sort_key)
    # Float keys can mis-order nearly-equal algebraic endpoints; fix up with
    # exact comparisons via insertion since the list is almost sorted.
    for i in range(1, len(intervals)):
        j = i
        while j > 0 and _exactly_before(intervals[j], intervals[j - 1]):
            intervals[j], intervals[j - 1] = intervals[j - 1], intervals[j]
            j -= 1
    merged = [intervals[0]]
    for interval in intervals[1:]:
        previous = merged[-1]
        joined = _try_join(previous, interval)
        if joined is not None:
            merged[-1] = joined
        else:
            merged.append(interval)
    return merged


def _exactly_before(a: Interval, b: Interval) -> bool:
    if a.low is None:
        return b.low is not None
    if b.low is None:
        return False
    return _lt(a.low, b.low)


def _try_join(left: Interval, right: Interval) -> Interval | None:
    """Join two intervals with left.low <= right.low if they overlap/touch."""
    if left.high is None:
        high, closed_high = None, False
    else:
        if right.low is not None:
            if _lt(left.high, right.low):
                return None
            if _eq(left.high, right.low) and not (
                left.closed_high or right.closed_low
            ):
                return None
        if right.high is None:
            high, closed_high = None, False
        elif _lt(left.high, right.high):
            high, closed_high = right.high, right.closed_high
        elif _eq(left.high, right.high):
            high, closed_high = left.high, left.closed_high or right.closed_high
        else:
            high, closed_high = left.high, left.closed_high
    closed_low = left.closed_low
    if right.low is not None and left.low is not None and _eq(left.low, right.low):
        closed_low = left.closed_low or right.closed_low
    return Interval(left.low, high, closed_low, closed_high)
