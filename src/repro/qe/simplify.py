"""Light-weight logical simplification of quantifier-free formulas.

Constant atoms are folded, duplicate literals removed, and trivially
contradictory / tautological conjunctions and disjunctions collapsed.
Used to keep quantifier-elimination outputs readable; it is sound but not
a decision procedure.
"""

from __future__ import annotations

from ..logic.evaluate import evaluate_compare
from ..logic.formulas import (
    And,
    Compare,
    FALSE,
    FalseFormula,
    Formula,
    Not,
    Or,
    RelAtom,
    TRUE,
    TrueFormula,
    conjunction,
    disjunction,
)

__all__ = ["simplify_qf"]


def simplify_qf(formula: Formula) -> Formula:
    """Simplify a quantifier-free formula (sound, syntax-level)."""
    if isinstance(formula, Compare):
        if not formula.free_variables():
            return TRUE if evaluate_compare(formula, {}) else FALSE
        return formula
    if isinstance(formula, (TrueFormula, FalseFormula, RelAtom)):
        return formula
    if isinstance(formula, Not):
        inner = simplify_qf(formula.arg)
        if isinstance(inner, Compare):
            return inner.negated()
        return ~inner
    if isinstance(formula, And):
        parts: list[Formula] = []
        seen: set[Formula] = set()
        for arg in formula.args:
            simplified = simplify_qf(arg)
            if isinstance(simplified, FalseFormula):
                return FALSE
            if isinstance(simplified, TrueFormula) or simplified in seen:
                continue
            if isinstance(simplified, Compare) and simplified.negated() in seen:
                return FALSE
            seen.add(simplified)
            parts.append(simplified)
        return conjunction(*parts)
    if isinstance(formula, Or):
        parts = []
        seen = set()
        for arg in formula.args:
            simplified = simplify_qf(arg)
            if isinstance(simplified, TrueFormula):
                return TRUE
            if isinstance(simplified, FalseFormula) or simplified in seen:
                continue
            if isinstance(simplified, Compare) and simplified.negated() in seen:
                return TRUE
            seen.add(simplified)
            parts.append(simplified)
        return disjunction(*parts)
    raise TypeError(f"formula is not quantifier-free: {type(formula).__name__}")
