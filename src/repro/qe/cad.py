"""Cylindrical algebraic decomposition (CAD) for the polynomial signature.

Provides a decision procedure for prenex FO + POLY sentences and a
satisfiability check / sample-point generator for quantifier-free
formulas, by the classical project-and-lift construction:

* **projection** (Collins-style, conservative): discriminants, pairwise
  resultants, and all coefficients with respect to the eliminated variable;
* **lifting**: at each level the real line is decomposed into
  sign-invariant cells by the roots of the level's polynomials
  (specialised at the sample point built so far); one sample per cell is
  recursed into.

Exactness contract
------------------
Sector (open-cell) samples are exact rationals throughout.  Section
(root-cell) samples are exact when the root is rational; irrational
section roots are replaced by rational approximations certified to width
``2**-SECTION_PRECISION_BITS`` before further substitution.  Consequently
:func:`decide` is exact for all inputs whose section coordinates are
rational, and for other inputs it is reliable up to configurations
degenerate at scale ``2**-SECTION_PRECISION_BITS`` (far below anything the
paper's constructions produce).  One-variable formulas are always handled
exactly — use :mod:`repro.qe.onevar`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from ..logic.formulas import (
    And,
    Compare,
    Exists,
    ExistsAdom,
    FalseFormula,
    ForallAdom,
    Formula,
    Not,
    Or,
    TrueFormula,
)
from ..logic.normalform import is_quantifier_free, to_prenex
from ..realalg.algebraic import RealAlgebraic
from ..realalg.polynomial import Polynomial, term_to_polynomial
from ..realalg.resultant import discriminant, resultant
from ..realalg.univariate import UPoly
from .. import guard, obs
from .._errors import QEError
from ..guard.errors import DepthBudgetExceeded
from .intervals import rational_between

__all__ = ["decide", "satisfiable", "find_sample", "projection_set"]

#: Bits of certified precision used to rationalise irrational section roots.
SECTION_PRECISION_BITS = 80


# ---------------------------------------------------------------------------
# Projection
# ---------------------------------------------------------------------------

def projection_set(polys: Sequence[Polynomial], var: str) -> list[Polynomial]:
    """The Collins-style projection of *polys* with respect to *var*.

    The zero sets of the returned polynomials (in the remaining variables)
    contain all points above which the real roots of *polys* (in *var*) can
    change in number or order, so sign-invariant cells of the projection
    lift to a delineable stack.  We use the conservative projection:
    all coefficients, discriminants, and pairwise resultants.
    """
    result: list[Polynomial] = []

    def add(poly: Polynomial) -> None:
        if poly.is_zero() or poly.is_constant():
            return
        normal = _normalise(poly)
        if normal not in seen:
            seen.add(normal)
            result.append(normal)

    seen: set[Polynomial] = set()
    relevant = [p for p in polys if p.degree_in(var) >= 1]
    for poly in relevant:
        guard.checkpoint()
        # Coefficient chain, leading first; once a coefficient is a nonzero
        # constant the polynomial cannot vanish identically below it, so
        # lower coefficients are irrelevant to delineability.
        for coeff in reversed(poly.as_univariate_in(var)):
            if coeff.is_constant():
                if not coeff.is_zero():
                    break
                continue
            add(coeff)
        add(discriminant(poly, var))
    for i, p in enumerate(relevant):
        for q in relevant[i + 1:]:
            guard.checkpoint()
            add(resultant(p, q, var))
    # Polynomials not involving var survive the projection unchanged.
    for poly in polys:
        if poly.degree_in(var) == 0:
            add(poly)
    obs.add("cad.projection_polys", len(result))
    return result


def _normalise(poly: Polynomial) -> Polynomial:
    """Canonical scaling for deduplication (divide by leading coefficient)."""
    used = tuple(sorted(poly.used_variables()))
    poly = poly.with_variables(used)
    if not poly.coeffs:
        return poly
    lead_mono = max(poly.coeffs)
    lead = poly.coeffs[lead_mono]
    if lead == 1:
        return poly
    return Polynomial(poly.variables, {m: c / lead for m, c in poly.coeffs.items()})


# ---------------------------------------------------------------------------
# Lifting
# ---------------------------------------------------------------------------

def _specialise(poly: Polynomial, assignment: dict[str, Fraction], var: str) -> UPoly:
    """Substitute *assignment* and view the result as univariate in *var*."""
    substituted = poly.substitute(assignment)
    extra = substituted.used_variables() - {var}
    if extra:
        raise QEError(
            f"polynomial {poly} still involves {sorted(extra)} after substitution"
        )
    if var in substituted.variables:
        coeffs = [p.constant_value() for p in substituted.as_univariate_in(var)]
    else:
        coeffs = [substituted.constant_value()]
    return UPoly(coeffs)


#: A sample coordinate: exact rational, or an exact algebraic section value.
Sample = "Fraction | RealAlgebraic"


def _stack_samples(
    level_polys: Sequence[Polynomial],
    assignment: dict[str, Fraction],
    var: str,
) -> list["Fraction | RealAlgebraic"]:
    """Sample points, one per cell of the stack over *assignment*.

    Sector samples are rational; section samples are exact
    :class:`RealAlgebraic` values (rationalised by the caller when they
    must be substituted into deeper levels).
    """
    guard.checkpoint()
    specialised = [
        upoly
        for poly in level_polys
        for upoly in [_specialise(poly, assignment, var)]
        if upoly.degree() >= 1
    ]
    roots: list[RealAlgebraic] = []
    floats: list[float] = []
    for upoly in specialised:
        guard.checkpoint()
        for root in RealAlgebraic.roots_of(upoly):
            approx = float(root.approximate(Fraction(1, 2**40)))
            # Exact equality checks are expensive; only compare against
            # candidates that are numerically indistinguishable.
            duplicate = any(
                abs(approx - existing_float) < 1e-9 and root == existing
                for existing, existing_float in zip(roots, floats)
            )
            if not duplicate:
                roots.append(root)
                floats.append(approx)
    roots.sort()
    obs.add("cad.section_roots", len(roots))

    if not roots:
        obs.add("cad.cells")
        guard.charge("cells")
        return [Fraction(0)]
    samples: list[Fraction | RealAlgebraic] = []
    first = roots[0].as_fraction() if roots[0].is_rational() else roots[0]
    samples.append(rational_between(None, first))
    for i, root in enumerate(roots):
        if root.is_rational():
            samples.append(root.as_fraction())
        else:
            samples.append(root)
        here = root.as_fraction() if root.is_rational() else root
        after = roots[i + 1] if i + 1 < len(roots) else None
        if after is not None:
            after = after.as_fraction() if after.is_rational() else after
        samples.append(rational_between(here, after))
    obs.add("cad.cells", len(samples))
    guard.charge("cells", len(samples))
    return samples


def _rationalised(value: "Fraction | RealAlgebraic") -> Fraction:
    if isinstance(value, Fraction):
        return value
    return value.approximate(Fraction(1, 2**SECTION_PRECISION_BITS))


def _atom_sign(
    diff: Polynomial, assignment: dict[str, "Fraction | RealAlgebraic"]
) -> int:
    """Exact sign of a polynomial at an assignment with at most one
    algebraic coordinate (the innermost section)."""
    rational = {
        name: value
        for name, value in assignment.items()
        if isinstance(value, Fraction)
    }
    algebraic = {
        name: value
        for name, value in assignment.items()
        if not isinstance(value, Fraction)
    }
    if not algebraic:
        value = diff.evaluate(rational)
        return (value > 0) - (value < 0)
    if len(algebraic) > 1:  # pragma: no cover - lifting rationalises earlier levels
        raise QEError("more than one algebraic coordinate in matrix evaluation")
    (var, root), = algebraic.items()
    specialised = diff.substitute(rational)
    extra = specialised.used_variables() - {var}
    if extra:
        raise QEError(f"unbound variables {sorted(extra)} in matrix evaluation")
    if var in specialised.variables:
        coeffs = [p.constant_value() for p in specialised.as_univariate_in(var)]
    else:
        coeffs = [specialised.constant_value()]
    return root.sign_of(UPoly(coeffs))


def _evaluate_matrix(
    formula: Formula, assignment: dict[str, "Fraction | RealAlgebraic"]
) -> bool:
    if isinstance(formula, TrueFormula):
        return True
    if isinstance(formula, FalseFormula):
        return False
    if isinstance(formula, Compare):
        diff = term_to_polynomial(formula.lhs) - term_to_polynomial(formula.rhs)
        sign = _atom_sign(diff, assignment)
        if formula.op == "<":
            return sign < 0
        if formula.op == "<=":
            return sign <= 0
        if formula.op == "=":
            return sign == 0
        if formula.op == "!=":
            return sign != 0
        if formula.op == ">=":
            return sign >= 0
        return sign > 0
    if isinstance(formula, And):
        return all(_evaluate_matrix(a, assignment) for a in formula.args)
    if isinstance(formula, Or):
        return any(_evaluate_matrix(a, assignment) for a in formula.args)
    if isinstance(formula, Not):
        return not _evaluate_matrix(formula.arg, assignment)
    raise QEError(f"unexpected node in matrix evaluation: {formula!r}")


def _matrix_polynomials(formula: Formula, out: list[Polynomial]) -> None:
    if isinstance(formula, Compare):
        out.append(term_to_polynomial(formula.lhs) - term_to_polynomial(formula.rhs))
    elif isinstance(formula, (And, Or)):
        for arg in formula.args:
            _matrix_polynomials(arg, out)
    elif isinstance(formula, Not):
        _matrix_polynomials(formula.arg, out)
    elif isinstance(formula, (TrueFormula, FalseFormula)):
        pass
    else:
        raise QEError(f"unexpected node in CAD matrix: {formula!r}")


# ---------------------------------------------------------------------------
# Public interface
# ---------------------------------------------------------------------------

def _depth_exhausted(
    operation: str, variables: Sequence[str]
) -> DepthBudgetExceeded:
    """Structured replacement for a raw ``RecursionError`` during lifting."""
    return DepthBudgetExceeded(
        f"CAD {operation} recursion exceeded the interpreter limit "
        f"(variable order: {', '.join(variables)})",
        resource="depth",
        consumed=len(tuple(variables)),
    )


def decide(sentence: Formula) -> bool:
    """Decide a closed prenex-able FO + POLY sentence over the real field."""
    if sentence.free_variables():
        raise QEError(
            f"sentence has free variables {sorted(sentence.free_variables())}"
        )
    if sentence.relation_names():
        raise QEError("expand schema relations before deciding")
    prenex = to_prenex(sentence)
    for kind, _ in prenex.prefix:
        if kind in (ExistsAdom, ForallAdom):
            raise QEError("active-domain quantifiers require a finite instance")
    variables = [var for _, var in prenex.prefix]
    obs.add("cad.decisions")

    with obs.span("qe.cad.decide", variables=len(variables)):
        polys: list[Polynomial] = []
        _matrix_polynomials(prenex.matrix, polys)
        all_vars = tuple(sorted(set(variables)))
        polys = [p.with_variables(all_vars) for p in polys]

        # Projection levels: level[i] holds the polynomials relevant to
        # variables[i], obtained by projecting away variables[i+1:].
        levels: list[list[Polynomial]] = [[] for _ in variables]
        current = list(polys)
        with obs.span("qe.cad.project"):
            for i in range(len(variables) - 1, 0, -1):
                levels[i] = [p for p in current]
                current = projection_set(current, variables[i])
            if variables:
                levels[0] = current

        last = len(variables) - 1

        def recurse(index: int, assignment: dict) -> bool:
            if index == len(variables):
                return _evaluate_matrix(prenex.matrix, assignment)
            guard.check_depth(index + 1)
            kind, var = prenex.prefix[index]
            samples = _stack_samples(levels[index], assignment, var)
            if index < last:
                # Deeper levels substitute this coordinate into polynomials,
                # so algebraic sections are rationalised here (module
                # contract).
                samples = [_rationalised(s) for s in samples]
            if kind is Exists:
                return any(
                    recurse(index + 1, {**assignment, var: s}) for s in samples
                )
            return all(recurse(index + 1, {**assignment, var: s}) for s in samples)

        with obs.span("qe.cad.lift"):
            # Per-decision cell distribution: the running `cad.cells`
            # counter aggregates across decisions, so the per-run cost is
            # recovered as a before/after delta while counting is on.
            cells_before = (
                obs.REGISTRY.value("cad.cells") if obs.counting_enabled() else 0
            )
            try:
                return recurse(0, {})
            except RecursionError:
                raise _depth_exhausted("decide", variables) from None
            finally:
                if obs.counting_enabled():
                    obs.observe_value(
                        "cad.cells_per_decision",
                        obs.REGISTRY.value("cad.cells") - cells_before,
                    )


def satisfiable(formula: Formula) -> bool:
    """Satisfiability of a quantifier-free FO + POLY formula over R.

    Exact at the innermost level even for irrational section coordinates
    (equality constraints like ``x^2 = 2`` are handled algebraically).
    """
    return _search(formula, want_witness=False) is not None


def find_sample(formula: Formula) -> dict[str, "Fraction | RealAlgebraic"] | None:
    """A satisfying assignment of a quantifier-free formula, or ``None``.

    Coordinates are exact rationals, except that the innermost coordinate
    may be an exact :class:`RealAlgebraic` section value when the formula
    forces irrationality (e.g. ``x^2 = 2``).
    """
    return _search(formula, want_witness=True)


def _search(formula: Formula, want_witness: bool):
    if not is_quantifier_free(formula):
        raise QEError("expected a quantifier-free formula")
    if formula.relation_names():
        raise QEError("expand schema relations before sampling")
    variables = sorted(formula.free_variables())
    if not variables:
        return {} if _evaluate_matrix(formula, {}) else None

    with obs.span("qe.cad.search", variables=len(variables)):
        polys: list[Polynomial] = []
        _matrix_polynomials(formula, polys)
        levels: list[list[Polynomial]] = [[] for _ in variables]
        current = list(polys)
        for i in range(len(variables) - 1, 0, -1):
            levels[i] = list(current)
            current = projection_set(current, variables[i])
        levels[0] = current
        last = len(variables) - 1

        def search(index: int, assignment: dict):
            if index == len(variables):
                return (
                    dict(assignment)
                    if _evaluate_matrix(formula, assignment)
                    else None
                )
            guard.check_depth(index + 1)
            var = variables[index]
            samples = _stack_samples(levels[index], assignment, var)
            if index < last:
                samples = [_rationalised(s) for s in samples]
            for sample in samples:
                found = search(index + 1, {**assignment, var: sample})
                if found is not None:
                    return found
            return None

        try:
            result = search(0, {})
        except RecursionError:
            raise _depth_exhausted("sample search", variables) from None
        if result is None or want_witness:
            return result
        return result
