"""Exact solution sets of one-variable constraint formulas.

Given a quantifier-free formula with (at most) one free variable over the
polynomial signature, :func:`solve_univariate` returns the solution set as
an :class:`~repro.qe.intervals.IntervalUnion` — a finite union of points
and intervals, as guaranteed by o-minimality of the real field.  This is
the one-dimensional cylindrical algebraic decomposition, and it is the
computational heart of the paper's END operator (Section 5).

Formulas with quantifiers are accepted when linear (they are eliminated by
Fourier-Motzkin first).
"""

from __future__ import annotations

from fractions import Fraction

from ..logic.formulas import (
    And,
    Compare,
    FalseFormula,
    Formula,
    Not,
    Or,
    TrueFormula,
)
from ..logic.metrics import max_degree
from ..logic.normalform import is_quantifier_free
from ..realalg.algebraic import RealAlgebraic
from ..realalg.polynomial import term_to_polynomial
from ..realalg.univariate import UPoly
from .._errors import QEError
from .fourier_motzkin import qe_linear
from .intervals import Endpoint, Interval, IntervalUnion, rational_between

__all__ = ["solve_univariate", "formula_truth_at", "atom_polynomials"]


def atom_polynomials(formula: Formula, var: str) -> list[UPoly]:
    """The univariate polynomials ``lhs - rhs`` of all comparison atoms."""
    polys: list[UPoly] = []
    _collect(formula, var, polys)
    return polys


def _collect(formula: Formula, var: str, out: list[UPoly]) -> None:
    if isinstance(formula, Compare):
        diff = term_to_polynomial(formula.lhs) - term_to_polynomial(formula.rhs)
        extra = diff.used_variables() - {var}
        if extra:
            raise QEError(
                f"atom {formula} involves variables {sorted(extra)} besides {var!r}"
            )
        out.append(UPoly(_dense(diff, var)))
    elif isinstance(formula, (And, Or)):
        for arg in formula.args:
            _collect(arg, var, out)
    elif isinstance(formula, Not):
        _collect(formula.arg, var, out)
    elif isinstance(formula, (TrueFormula, FalseFormula)):
        pass
    else:
        raise QEError(f"unsupported node in one-variable solving: {formula!r}")


def _dense(poly, var: str) -> list[Fraction]:
    coeff_polys = poly.as_univariate_in(var) if var in poly.variables else [poly]
    return [p.constant_value() for p in coeff_polys]


def formula_truth_at(formula: Formula, var: str, value: Endpoint) -> bool:
    """Exact truth of a quantifier-free one-variable formula at a point.

    The point may be rational or real algebraic.
    """
    if isinstance(formula, TrueFormula):
        return True
    if isinstance(formula, FalseFormula):
        return False
    if isinstance(formula, Compare):
        diff = term_to_polynomial(formula.lhs) - term_to_polynomial(formula.rhs)
        upoly = UPoly(_dense(diff, var))
        if isinstance(value, Fraction):
            sign = upoly.sign_at(value)
        else:
            sign = value.sign_of(upoly)
        if formula.op == "<":
            return sign < 0
        if formula.op == "<=":
            return sign <= 0
        if formula.op == "=":
            return sign == 0
        if formula.op == "!=":
            return sign != 0
        if formula.op == ">=":
            return sign >= 0
        return sign > 0
    if isinstance(formula, And):
        return all(formula_truth_at(a, var, value) for a in formula.args)
    if isinstance(formula, Or):
        return any(formula_truth_at(a, var, value) for a in formula.args)
    if isinstance(formula, Not):
        return not formula_truth_at(formula.arg, var, value)
    raise QEError(f"unsupported node in one-variable evaluation: {formula!r}")


def solve_univariate(formula: Formula, var: str) -> IntervalUnion:
    """Solution set ``{ value : formula[var := value] }`` over the reals.

    *formula* must have free variables contained in ``{var}``.  Quantified
    linear formulas are eliminated first; quantified nonlinear formulas are
    rejected (use :mod:`repro.qe.cad` to decide sentences instead).
    """
    free = formula.free_variables()
    if not free <= {var}:
        raise QEError(
            f"formula has free variables {sorted(free)}, expected only {var!r}"
        )
    if not is_quantifier_free(formula):
        if max_degree(formula) <= 1:
            formula = qe_linear(formula)
        else:
            raise QEError(
                "quantified nonlinear one-variable formulas are not supported; "
                "eliminate quantifiers first"
            )

    polys = [p for p in atom_polynomials(formula, var) if p.degree() >= 1]
    # Distinct real roots of all atom polynomials, sorted.
    roots: list[Endpoint] = []
    for poly in polys:
        for root in RealAlgebraic.roots_of(poly):
            value: Endpoint = root.as_fraction() if root.is_rational() else root
            if not any(_equal(value, existing) for existing in roots):
                roots.append(value)
    roots.sort(key=_float_key)
    roots = _exact_sort(roots)

    # Build the sign-invariant cell decomposition and test each cell.
    cells: list[tuple[Interval, Endpoint]] = []  # (cell, sample point)
    if not roots:
        cells.append((Interval.open(None, None), Fraction(0)))
    else:
        cells.append(
            (Interval.open(None, roots[0]), rational_between(None, roots[0]))
        )
        for i, root in enumerate(roots):
            cells.append((Interval.point(root), root))
            next_root = roots[i + 1] if i + 1 < len(roots) else None
            sample = rational_between(root, next_root)
            cells.append((Interval.open(root, next_root), sample))

    true_intervals = [
        cell for cell, sample in cells if formula_truth_at(formula, var, sample)
    ]
    return IntervalUnion(true_intervals)


def _equal(a: Endpoint, b: Endpoint) -> bool:
    return a == b


def _float_key(value: Endpoint) -> float:
    return float(value)


def _exact_sort(values: list[Endpoint]) -> list[Endpoint]:
    """Insertion fix-up after float pre-sorting (exact comparisons)."""
    for i in range(1, len(values)):
        j = i
        while j > 0 and values[j] < values[j - 1]:
            values[j], values[j - 1] = values[j - 1], values[j]
            j -= 1
    return values
