"""Theorem 3: exact volumes of semi-linear sets in FO + POLY + SUM.

Two implementations are provided.

:func:`volume_of_query` is the production path: the FO + LIN query is
evaluated to a quantifier-free constraint representation (closure), which
is decomposed into convex cells and measured by the exact slicing
algorithm of :mod:`repro.geometry.volume` — the very algorithm the paper's
induction describes (slice; the slice measure is piecewise polynomial of
degree d-1 between breakpoints; integrate each piece).

:func:`volume_2d_fo_poly_sum` is a faithful executable transcription of the
paper's proof for d = 2, built from genuine language constructs:

* the inner integral ``g(x) = measure{ y : S(x, y) }`` is the summation
  term ``[sum_{rho1(l,u,x)} (u - l)](x)`` where ``rho1`` selects the
  (lower, upper) endpoint pairs of the maximal intervals of the slice —
  a real :class:`~repro.core.language.RangeRestricted` + SumTerm evaluated
  by :class:`~repro.core.evaluator.SumEvaluator`;
* ``g`` is piecewise linear; between consecutive breakpoints we recover
  ``g(x) = m x + b`` from two interior samples and add
  ``(m u^2 - m l^2)/2 + b (u - l)`` — the paper's deterministic formula
  gamma(w, l, u, m, b) — summed over the pieces.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from ..db.evaluation import output_formula
from ..geometry.decomposition import formula_to_cells, formula_volume
from ..logic.builders import forall
from ..logic.formulas import Formula, conjunction
from ..logic.substitution import substitute
from ..logic.terms import Const, Var
from .. import guard, obs
from .._errors import UnboundedSetError
from .evaluator import SumEvaluator
from .language import DetFormula, RangeRestricted, SumTerm

__all__ = [
    "volume_of_query",
    "volume_of_relation",
    "maximal_interval_range",
    "slice_measure_term",
    "volume_2d_fo_poly_sum",
    "volume_nd_fo_poly_sum",
]


def volume_of_query(
    query: Formula,
    instance,
    variables: Sequence[str],
    box: Sequence[tuple[Fraction, Fraction]] | None = None,
) -> Fraction:
    """Exact volume of the output of an FO + LIN query on a semi-linear
    database (Theorem 3, second bullet).

    ``box`` optionally clips (e.g. the unit cube for VOL_I); without it the
    output set must be bounded.
    """
    with obs.span("core.volume_of_query", variables=len(tuple(variables))):
        output = output_formula(query, instance)
        return formula_volume(output, variables, box=box)


def volume_of_relation(
    instance,
    name: str,
    box: Sequence[tuple[Fraction, Fraction]] | None = None,
) -> Fraction:
    """Exact volume of a schema predicate (Theorem 3, first bullet)."""
    with obs.span("core.volume_of_relation", relation=name):
        parameters, body = instance.definition(name)
        return formula_volume(body, parameters, box=box)


def maximal_interval_range(
    lower: str, upper: str, slice_var: str, body: Formula
) -> RangeRestricted:
    """The paper's ``rho1(l, u, x)``: (l, u) are the lower and upper
    endpoints of a maximal interval of ``{ y : body(y, ...) }``.

    The guard states ``l < u`` and ``forall t (l < t < u -> body(t))``.
    Because l and u are drawn from the END set of *body*, the pairs
    satisfying the guard are exactly the maximal intervals: endpoints of
    maximal intervals are END-points, and a pair of END-points spanning any
    gap fails the guard.  Degenerate point-intervals contribute length 0
    and are irrelevant to the measure.
    """
    t = Var("_t_interior")
    l, u = Var(lower), Var(upper)
    interior = substitute(body, {slice_var: t})
    guard = conjunction(
        l < u,
        forall(t, ((l < t) & (t < u)).implies(interior)),
    )
    return RangeRestricted.make((lower, upper), guard, slice_var, body)


def slice_measure_term(slice_var: str, body: Formula) -> SumTerm:
    """``[sum_{rho1(l,u)} (u - l)]``: the measure of a definable subset of R.

    This is the innermost integral of the paper's Theorem 3 proof as a
    genuine FO + POLY + SUM term.
    """
    rho = maximal_interval_range("_l", "_u", slice_var, body)
    gamma = DetFormula.from_term("_len", ("_l", "_u"), Var("_u") - Var("_l"))
    return SumTerm(gamma, rho)


def volume_2d_fo_poly_sum(
    instance,
    body: Formula,
    x_var: str,
    y_var: str,
) -> Fraction:
    """Exact area of a bounded semi-linear set S(x, y), following the
    paper's Theorem 3 proof for dimension 2 step by step.

    *body* is a formula over the instance's schema with free variables
    ``x_var, y_var``, linear after expansion.
    """
    with obs.span("core.volume_2d_fo_poly_sum"):
        return _volume_2d_fo_poly_sum(instance, body, x_var, y_var)


def _volume_2d_fo_poly_sum(
    instance,
    body: Formula,
    x_var: str,
    y_var: str,
) -> Fraction:
    evaluator = SumEvaluator(instance)

    # The inner integral g(x), as a SumTerm with x free.
    g = slice_measure_term(y_var, body)

    # Breakpoints of non-smoothness of g: the x-coordinates of the cell
    # vertices of the output's constraint representation (a superset of the
    # true non-smoothness points, which is harmless).
    output = output_formula(body, instance)
    cells = formula_to_cells(output, (x_var, y_var))
    if not cells:
        return Fraction(0)
    breaks: set[Fraction] = set()
    for cell in cells:
        if not cell.is_bounded():
            raise UnboundedSetError("volume requires a bounded set")
        for vertex in cell.vertices():
            breaks.add(vertex[0])
    # The union's slice measure can also change slope where the boundary
    # edges of two different cells cross; those crossings are vertices of
    # the pairwise intersections (triple-and-higher kinks reduce to
    # pairwise crossings), so include them among the breakpoints.
    for i, left_cell in enumerate(cells):
        for right_cell in cells[i + 1:]:
            overlap = left_cell.intersect(right_cell)
            if not overlap.is_empty():
                for vertex in overlap.vertices():
                    breaks.add(vertex[0])
    breakpoints = sorted(breaks)

    total = Fraction(0)
    for left, right in zip(breakpoints, breakpoints[1:]):
        guard.checkpoint()
        if right <= left:
            continue
        width = right - left
        # Two interior samples determine the linear piece g(x) = m x + b.
        s1 = left + width / 3
        s2 = left + 2 * width / 3
        g1 = evaluator.term_value(g, {x_var: s1})
        g2 = evaluator.term_value(g, {x_var: s2})
        m = (g2 - g1) / (s2 - s1)
        b = g1 - m * s1
        # The paper's deterministic formula:
        #   w = (m u^2 - m l^2)/2 + b (u - l)
        gamma = DetFormula.from_term(
            "_piece",
            ("_pl", "_pu", "_pm", "_pb"),
            (Var("_pm") * Var("_pu") ** 2 - Var("_pm") * Var("_pl") ** 2)
            * Const(Fraction(1, 2))
            + Var("_pb") * (Var("_pu") - Var("_pl")),
        )
        piece = evaluator.apply_gamma(gamma, (left, right, m, b))
        assert piece is not None
        total += piece
    return total


def volume_nd_fo_poly_sum(
    instance,
    body: Formula,
    variables: Sequence[str],
) -> Fraction:
    """Theorem 3's full induction on dimension, run literally in any d.

    The proof: slice along the first coordinate; by induction the slice
    volume ``g(t)`` is computable, and between breakpoints it is a
    polynomial of degree <= d-1, recovered exactly from d interior samples
    (Lagrange) and integrated in closed form (the paper's deterministic
    piece formula, generalised from the d = 2 case's
    ``(m u^2 - m l^2)/2 + b (u - l)``).

    Breakpoints: the slice-volume of a *union* of cells can change its
    polynomial piece wherever the facial structure above the first
    coordinate changes — at first coordinates of vertices of intersections
    of up to d cells (pairwise crossings generalised).  The base case
    d = 1 is the interval-measure summation term of
    :func:`slice_measure_term`.
    """
    from itertools import combinations

    from ..geometry.volume import lagrange_interpolate, integrate_upoly
    from ..logic.substitution import substitute as _substitute

    variables = tuple(variables)
    d = len(variables)
    if d == 0:
        raise UnboundedSetError("volume needs at least one coordinate")

    output = output_formula(body, instance)

    def recurse(formula: Formula, names: tuple[str, ...]) -> Fraction:
        dims = len(names)
        if dims == 1:
            from ..qe.onevar import solve_univariate

            solution = solve_univariate(formula, names[0])
            measure = solution.measure()
            if measure == float("inf"):
                raise UnboundedSetError("volume requires a bounded set")
            return Fraction(measure)

        cells = formula_to_cells(formula, names)
        if not cells:
            return Fraction(0)
        breaks: set[Fraction] = set()
        max_subset = min(len(cells), dims)
        for size in range(1, max_subset + 1):
            for subset in combinations(cells, size):
                guard.checkpoint()
                intersection = subset[0]
                for cell in subset[1:]:
                    intersection = intersection.intersect(cell)
                if intersection.is_empty():
                    continue
                if not intersection.is_bounded():
                    raise UnboundedSetError("volume requires a bounded set")
                for vertex in intersection.vertices():
                    breaks.add(vertex[0])
        breakpoints = sorted(breaks)
        first, rest = names[0], names[1:]

        total = Fraction(0)
        for left, right in zip(breakpoints, breakpoints[1:]):
            guard.checkpoint()
            if right <= left:
                continue
            width = right - left
            samples: list[tuple[Fraction, Fraction]] = []
            for k in range(1, dims + 1):
                t = left + width * Fraction(k, dims + 1)
                sliced = _substitute(formula, {first: Const(t)})
                samples.append((t, recurse(sliced, rest)))
            piece = lagrange_interpolate(samples)
            total += integrate_upoly(piece, left, right)
        return total

    return recurse(output, variables)
