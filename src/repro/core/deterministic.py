"""Deciding determinism of formulae (Section 5).

The paper notes "it is decidable if a formula is deterministic": determinism
of ``gamma(x, w)`` is the real-field sentence

    forall w forall x forall x' . gamma(x, w) and gamma(x', w)  ->  x = x'.

We decide it in three tiers, cheapest first:

1. **structural**: bodies of the shape ``x = t(w)`` (the form used by every
   example in the paper) are deterministic by construction;
2. **linear**: the determinism sentence of a linear body is decided by
   Fourier-Motzkin;
3. **polynomial**: the sentence is decided by CAD (practical for small
   variable counts).
"""

from __future__ import annotations

from ..logic.formulas import Compare, Formula, Forall
from ..logic.metrics import max_degree
from ..logic.substitution import fresh_variable, substitute
from ..logic.terms import Term, Var
from ..qe.cad import decide as cad_decide
from ..qe.fourier_motzkin import decide_linear
from .._errors import NotDeterministicError
from .language import DetFormula

__all__ = [
    "explicit_function_term",
    "is_deterministic",
    "check_deterministic",
    "CAD_VARIABLE_LIMIT",
]

#: CAD decision is doubly exponential; refuse beyond this many variables.
CAD_VARIABLE_LIMIT = 4


def explicit_function_term(gamma: DetFormula) -> Term | None:
    """If ``gamma`` has the explicit shape ``x = t(w)``, return ``t``.

    Explicit deterministic formulae admit direct evaluation with no
    root-solving; all of the paper's worked examples are of this shape.
    """
    body = gamma.body
    if not isinstance(body, Compare) or body.op != "=":
        return None
    x = gamma.x
    if isinstance(body.lhs, Var) and body.lhs.name == x and x not in body.rhs.variables():
        return body.rhs
    if isinstance(body.rhs, Var) and body.rhs.name == x and x not in body.lhs.variables():
        return body.lhs
    return None


def _determinism_sentence(gamma: DetFormula) -> Formula:
    taken = {gamma.x, *gamma.w} | gamma.body.free_variables()
    x_primed = fresh_variable(taken, gamma.x + "_p")
    body_primed = substitute(gamma.body, {gamma.x: Var(x_primed)})
    implication = (gamma.body & body_primed).implies(
        Var(gamma.x).eq(Var(x_primed))
    )
    sentence: Formula = implication
    for var in (x_primed, gamma.x, *reversed(gamma.w)):
        sentence = Forall(var, sentence)
    return sentence


def is_deterministic(gamma: DetFormula) -> bool:
    """Decide whether *gamma* defines at most one ``x`` for every ``w``."""
    if explicit_function_term(gamma) is not None:
        return True
    sentence = _determinism_sentence(gamma)
    if max_degree(gamma.body) <= 1:
        return decide_linear(sentence)
    total_vars = 2 + len(gamma.w)
    if total_vars > CAD_VARIABLE_LIMIT:
        raise NotDeterministicError(
            f"cannot decide determinism of a degree-{max_degree(gamma.body)} "
            f"formula in {total_vars} variables (CAD limit "
            f"{CAD_VARIABLE_LIMIT}); use an explicit 'x = t(w)' form"
        )
    return cad_decide(sentence)


def check_deterministic(gamma: DetFormula) -> None:
    """Raise :class:`NotDeterministicError` unless *gamma* is deterministic."""
    if not is_deterministic(gamma):
        raise NotDeterministicError(
            f"formula is not deterministic: {gamma.body}"
        )
