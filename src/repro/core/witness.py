"""FO + POLY + SUM + W: the witness operator and Theorem 4.

Section 6.2 extends FO + POLY + SUM with the witness (choice) operator W
of Abiteboul-Vianu: ``W y . phi`` randomly selects one tuple from the
denotation of ``phi``.  With W one can draw a random sample, and the
VC-dimension bound of Proposition 6 (``VCdim(F_phi(D)) < C log |D|``)
makes a *single* sample of size

    M = max( (4/eps) log(2/delta), (C log|D| / eps) log(13/eps) )

suffice to approximate ``VOL_I(phi(a, D))`` within eps *simultaneously for
every parameter a*, with probability >= 1 - delta (Theorem 4).  The
estimator for each a is the sample fraction falling in ``phi(a, D)`` —
computable in FO + POLY + SUM because the language counts.

The random sample is the only random ingredient; it is drawn through an
injected :class:`numpy.random.Generator`, so runs are reproducible.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..db.evaluation import expand_relations, resolve_adom_quantifiers
from ..db.instance import FiniteInstance
from ..geometry.sampling import compile_formula_numpy
from ..logic.formulas import Formula
from ..logic.metrics import max_degree
from ..logic.normalform import is_quantifier_free
from ..qe.fourier_motzkin import qe_linear
from ..vc.bounds import vc_dimension_bound
from .._errors import ApproximationError, EvaluationError

__all__ = ["witness", "UniformVolumeApproximator", "theorem4_sample_size"]


def witness(
    candidates: Sequence, rng: np.random.Generator
):
    """The W operator on a materialised finite set: a random element.

    Returns ``None`` on an empty set (the paper: W selects a tuple *if*
    the set is nonempty).
    """
    if len(candidates) == 0:
        return None
    return candidates[int(rng.integers(len(candidates)))]


def theorem4_sample_size(
    epsilon: float,
    delta: float,
    constant: float,
    database_size: int,
) -> int:
    """Theorem 4's bound on the number of W calls:
    ``max((4/eps) log(2/delta), (C log|D|/eps) log(13/eps))``."""
    vc_bound = vc_dimension_bound(constant, database_size)
    # Identical to the Blumer bound with d = C log|D| / 8 scaled back in;
    # the paper states it with the 8d folded into C log|D|.
    if not (0 < epsilon < 1) or not (0 < delta < 1):
        raise ApproximationError("epsilon and delta must lie in (0, 1)")
    first = (4.0 / epsilon) * math.log2(2.0 / delta)
    second = (vc_bound / epsilon) * math.log2(13.0 / epsilon)
    return math.floor(max(first, second)) + 1


class UniformVolumeApproximator:
    """Theorem 4: a single sample that approximates VOL_I(phi(a, D)) for
    *all* parameters a at once.

    Parameters
    ----------
    query:
        ``phi(x, y)`` over the instance's schema; ``param_vars`` lists the
        x variables, ``point_vars`` the y variables (the volume is over y
        restricted to the unit cube I^m).
    instance:
        A finite or f.r. instance.
    epsilon, delta:
        Accuracy and failure probability.
    constant:
        The query-dependent constant C of Proposition 6 (e.g. from
        :func:`repro.vc.bounds.goldberg_jerrum_constant_for_query`).
        ``sample_size`` can be passed directly to override.
    """

    def __init__(
        self,
        query: Formula,
        instance,
        param_vars: Sequence[str],
        point_vars: Sequence[str],
        epsilon: float,
        delta: float,
        rng: np.random.Generator,
        constant: float | None = None,
        sample_size: int | None = None,
    ):
        self.param_vars = tuple(param_vars)
        self.point_vars = tuple(point_vars)
        self.epsilon = float(epsilon)
        self.delta = float(delta)

        if sample_size is None:
            if constant is None:
                raise ApproximationError(
                    "provide either the Proposition 6 constant or an "
                    "explicit sample_size"
                )
            database_size = (
                instance.size() if isinstance(instance, FiniteInstance) else 2
            )
            sample_size = theorem4_sample_size(
                epsilon, delta, constant, max(2, database_size)
            )
        self.sample_size = int(sample_size)

        if isinstance(instance, FiniteInstance):
            query = resolve_adom_quantifiers(query, instance)
        expanded = expand_relations(query, instance)
        if not is_quantifier_free(expanded):
            if max_degree(expanded) > 1:
                raise EvaluationError(
                    "quantified polynomial queries are not supported; "
                    "eliminate quantifiers first"
                )
            expanded = qe_linear(expanded)
        self._predicate = compile_formula_numpy(
            expanded, self.param_vars + self.point_vars
        )
        # M witness draws from the uniform distribution on I^m.
        self.sample = rng.random((self.sample_size, len(self.point_vars)))

    def estimate(self, parameters: Sequence[float]) -> float:
        """The sample-fraction estimator of VOL_I(phi(parameters, D))."""
        if len(parameters) != len(self.param_vars):
            raise ApproximationError("parameter arity mismatch")
        tiled = np.hstack(
            [
                np.tile(np.asarray(parameters, dtype=float), (self.sample_size, 1)),
                self.sample,
            ]
        )
        hits = int(np.count_nonzero(self._predicate(tiled)))
        return hits / self.sample_size

    def estimate_many(self, parameter_grid: Sequence[Sequence[float]]) -> list[float]:
        """Estimates for a whole grid of parameters (one shared sample)."""
        return [self.estimate(p) for p in parameter_grid]
