"""The FO + POLY + SUM language (Section 5 of the paper).

FO + POLY + SUM extends FO + POLY with a *summation term-former* that is
only applicable to sets guaranteed finite, via three ingredients:

* **deterministic formulae** ``gamma(x, w)`` defining a partial function
  ``f_gamma`` from parameter tuples ``w`` to at most one output ``x``
  (:class:`DetFormula`);
* the **END operator**: ``END[y, phi(y, z)](u, z)`` holds iff ``u`` is an
  endpoint of the intervals composing ``phi(D, z)`` — a finite set by
  o-minimality (:class:`End`);
* **range-restricted expressions**
  ``rho(w, z) = (phi1(w, z) | END[y, phi2(y, z)])``: the tuples satisfying
  ``phi1`` all of whose components are END-points of ``phi2``
  (:class:`RangeRestricted`).

The summation term ``[sum_{rho(w,z)} gamma](z)`` (:class:`SumTerm`) sums
the bag ``{ f_gamma(a) : a in rho(D, b) }``.  Sum terms compose with the
field operations ``+``/``*`` (they are ordinary :class:`~repro.logic.terms.Term`
nodes) and appear inside comparison atoms, closing the language.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

from ..logic.formulas import Formula
from ..logic.terms import Term, Var
from .._errors import SafetyError

__all__ = ["DetFormula", "End", "RangeRestricted", "SumTerm", "contains_sum_term"]


@dataclass(frozen=True)
class DetFormula:
    """A deterministic formula ``gamma(x, w1..wn)`` over the real field.

    Defines the partial function ``f_gamma(w) = the unique x with
    gamma(x, w)``.  ``body`` must not mention schema relations (it is a
    formula "in the language of the real field", per the paper) and its
    free variables must lie in ``{x} ∪ w``.

    Determinism is checked by :func:`repro.core.deterministic.check_deterministic`
    and is additionally verified pointwise during evaluation (the
    evaluator solves for ``x`` exactly and fails if more than one solution
    exists).
    """

    x: str
    w: tuple[str, ...]
    body: Formula

    @staticmethod
    def make(
        x: Var | str, w: Sequence[Var | str], body: Formula
    ) -> "DetFormula":
        x_name = x.name if isinstance(x, Var) else x
        w_names = tuple(v.name if isinstance(v, Var) else v for v in w)
        if x_name in w_names:
            raise ValueError("output variable cannot be a parameter")
        if len(set(w_names)) != len(w_names):
            raise ValueError("duplicate parameter names")
        if body.relation_names():
            raise ValueError(
                "a deterministic formula must be over the real field only "
                f"(mentions relations {sorted(body.relation_names())})"
            )
        allowed = {x_name, *w_names}
        if not body.free_variables() <= allowed:
            raise ValueError(
                "deterministic formula has stray free variables "
                f"{sorted(body.free_variables() - allowed)}"
            )
        return DetFormula(x_name, w_names, body)

    @staticmethod
    def from_term(x: Var | str, w: Sequence[Var | str], value: Term) -> "DetFormula":
        """The deterministic formula ``x = value(w)`` for an explicit term."""
        x_name = x.name if isinstance(x, Var) else x
        return DetFormula.make(x_name, w, Var(x_name).eq(value))

    def arity(self) -> int:
        return len(self.w)


@dataclass(frozen=True)
class End(Formula):
    """The formula ``END[y, body](point, z)``.

    Holds on a database D and parameters z iff ``point`` is an endpoint of
    one of the finitely many intervals composing ``{ y : D |= body(y, z) }``.
    ``var`` (the paper's y) is bound; the free variables are those of
    ``point`` plus the z-parameters of ``body``.
    """

    var: str
    body: Formula
    point: Term

    __slots__ = ("var", "body", "point")

    def free_variables(self) -> frozenset[str]:
        return (self.body.free_variables() - {self.var}) | self.point.variables()

    def relation_names(self) -> frozenset[str]:
        return self.body.relation_names()

    def __str__(self) -> str:
        return f"END[{self.var}, {self.body}]({self.point})"


@dataclass(frozen=True)
class RangeRestricted:
    """A range-restricted expression ``rho(w, z) = (guard | END[y, end_body])``.

    Denotes, on database D with parameters b for z:

        rho(D, b) = { a in E^n : D |= guard(a, b) }

    where E is the (finite) set of endpoints of the intervals composing
    ``{ y : D |= end_body(y, b) }`` and n = len(w).  Finiteness of
    ``rho(D, b)`` is guaranteed *by construction* — this is the language's
    safety mechanism.
    """

    w: tuple[str, ...]
    guard: Formula
    end_var: str
    end_body: Formula

    @staticmethod
    def make(
        w: Sequence[Var | str],
        guard: Formula,
        end_var: Var | str,
        end_body: Formula,
    ) -> "RangeRestricted":
        w_names = tuple(v.name if isinstance(v, Var) else v for v in w)
        if not w_names:
            raise ValueError("a range-restricted expression needs parameters w")
        if len(set(w_names)) != len(w_names):
            raise ValueError("duplicate names in w")
        end_name = end_var.name if isinstance(end_var, Var) else end_var
        if end_name in w_names:
            raise ValueError("the END variable cannot occur in w")
        return RangeRestricted(w_names, guard, end_name, end_body)

    def arity(self) -> int:
        return len(self.w)

    def parameters(self) -> frozenset[str]:
        """The z-variables: free variables besides the bound w tuple."""
        guard_free = self.guard.free_variables() - set(self.w)
        end_free = self.end_body.free_variables() - {self.end_var}
        return frozenset(guard_free | end_free)

    def __str__(self) -> str:
        w_text = ", ".join(self.w)
        return f"({self.guard} | END[{self.end_var}, {self.end_body}]) over ({w_text})"


@dataclass(frozen=True, repr=False)
class SumTerm(Term):
    """The aggregation term ``[sum_{rho(w, z)} gamma](z)``.

    Its value on a database D at parameters b is the sum of the finite bag
    ``⊎_{a in rho(D, b)} f_gamma(a)`` (tuples where ``f_gamma`` is
    undefined contribute nothing, matching the partial-function semantics).
    """

    gamma: DetFormula
    rho: RangeRestricted

    __slots__ = ("gamma", "rho")

    def __post_init__(self) -> None:
        if self.gamma.arity() != self.rho.arity():
            raise SafetyError(
                f"gamma has {self.gamma.arity()} parameters but rho binds "
                f"{self.rho.arity()}"
            )

    def variables(self) -> frozenset[str]:
        # The free variables are the z-parameters of rho; gamma's w
        # variables are bound by the summation.
        return frozenset(self.rho.parameters())

    def evaluate(self, env: Mapping[str, Fraction]) -> Fraction:
        raise SafetyError(
            "a SumTerm needs a database to be evaluated; use "
            "repro.core.evaluator.SumEvaluator"
        )

    def __str__(self) -> str:
        return f"SUM[{self.rho}][{self.gamma.x} : {self.gamma.body}]"


def contains_sum_term(node) -> bool:
    """True if a term or formula contains a :class:`SumTerm` anywhere."""
    from ..logic.formulas import And, Compare, Not, Or, RelAtom
    from ..logic.formulas import Exists, ExistsAdom, Forall, ForallAdom
    from ..logic.terms import Add, Const, Mul, Neg, Pow

    if isinstance(node, SumTerm):
        return True
    if isinstance(node, (Var, Const)):
        return False
    if isinstance(node, (Add, Mul)):
        return any(contains_sum_term(a) for a in node.args)
    if isinstance(node, Neg):
        return contains_sum_term(node.arg)
    if isinstance(node, Pow):
        return contains_sum_term(node.base)
    if isinstance(node, Compare):
        return contains_sum_term(node.lhs) or contains_sum_term(node.rhs)
    if isinstance(node, RelAtom):
        return any(contains_sum_term(a) for a in node.args)
    if isinstance(node, (And, Or)):
        return any(contains_sum_term(a) for a in node.args)
    if isinstance(node, Not):
        return contains_sum_term(node.arg)
    if isinstance(node, (Exists, Forall, ExistsAdom, ForallAdom)):
        return contains_sum_term(node.body)
    if isinstance(node, End):
        return contains_sum_term(node.body) or contains_sum_term(node.point)
    return False
