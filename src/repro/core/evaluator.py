"""Evaluation of FO + POLY + SUM terms and formulas over a database.

The evaluator is *pointwise*: given rational values for the free variables
it computes term values (exact rationals) and formula truth.  Safety is
enforced by construction — summation only ever ranges over
:class:`~repro.core.language.RangeRestricted` sets, whose finiteness comes
from the END operator — and determinism of ``gamma`` is verified at each
evaluated point (the solution set for ``x`` is computed exactly; more than
one solution raises).

Exactness: everything is exact rational arithmetic as long as the
END-points and gamma-outputs encountered are rational — which is always
the case over semi-linear databases (the paper's Theorem 3 setting).
Irrational algebraic values (possible over semi-algebraic inputs) are
approximated to ``ALGEBRAIC_PRECISION`` and a note to that effect is in
DESIGN.md.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, Sequence

from ..db.evaluation import expand_relations
from ..db.fr_instance import FRInstance
from ..db.instance import FiniteInstance
from ..logic.evaluate import evaluate as evaluate_pure
from ..logic.formulas import (
    And,
    Compare,
    Exists,
    ExistsAdom,
    FalseFormula,
    Forall,
    ForallAdom,
    Formula,
    Not,
    Or,
    RelAtom,
    TrueFormula,
)
from ..logic.metrics import max_degree
from ..logic.substitution import substitute
from ..logic.terms import Add, Const, Mul, Neg, Pow, Term, Var
from ..qe.cad import decide as cad_decide
from ..qe.fourier_motzkin import decide_linear
from ..qe.intervals import Endpoint
from ..qe.onevar import solve_univariate
from .. import guard, obs
from .._errors import EvaluationError, NotDeterministicError, SafetyError
from .deterministic import explicit_function_term
from .endpoints import end_set
from .language import DetFormula, End, RangeRestricted, SumTerm, contains_sum_term

__all__ = ["SumEvaluator", "ALGEBRAIC_PRECISION", "MAX_RANGE_CANDIDATES"]

#: Rational approximation width for irrational algebraic values.
ALGEBRAIC_PRECISION = Fraction(1, 10**30)

#: Guard against accidental combinatorial explosion of E^n.
MAX_RANGE_CANDIDATES = 200_000


def _rationalise(value: Endpoint) -> Fraction:
    if isinstance(value, Fraction):
        return value
    return value.approximate(ALGEBRAIC_PRECISION)


class SumEvaluator:
    """Pointwise evaluator for FO + POLY + SUM over a fixed instance."""

    def __init__(self, instance: "FiniteInstance | FRInstance"):
        self.instance = instance

    # -- terms -----------------------------------------------------------------
    def term_value(
        self, term: Term, env: Mapping[str, Fraction] | None = None
    ) -> Fraction:
        """Exact value of an FO + POLY + SUM term under *env*."""
        env = {k: Fraction(v) for k, v in (env or {}).items()}
        return self._term(term, env)

    def _term(self, term: Term, env: dict[str, Fraction]) -> Fraction:
        if isinstance(term, SumTerm):
            return self._sum_term(term, env)
        if isinstance(term, Var):
            if term.name not in env:
                raise EvaluationError(f"unbound variable {term.name!r}")
            return env[term.name]
        if isinstance(term, Const):
            return term.value
        if isinstance(term, Add):
            total = Fraction(0)
            for arg in term.args:
                total += self._term(arg, env)
            return total
        if isinstance(term, Mul):
            total = Fraction(1)
            for arg in term.args:
                total *= self._term(arg, env)
            return total
        if isinstance(term, Neg):
            return -self._term(term.arg, env)
        if isinstance(term, Pow):
            return self._term(term.base, env) ** term.exponent
        raise TypeError(f"unknown term node {type(term).__name__}")

    # -- the summation term ---------------------------------------------------
    def range_set(
        self, rho: RangeRestricted, env: Mapping[str, Fraction] | None = None
    ) -> list[tuple[Fraction, ...]]:
        """The finite set ``rho(D, b)``, rationalised (see module docstring)."""
        env = {k: Fraction(v) for k, v in (env or {}).items()}
        missing = rho.parameters() - set(env)
        if missing:
            raise EvaluationError(
                f"range-restricted expression has unbound parameters {sorted(missing)}"
            )
        with obs.span("evaluator.range_set", arity=rho.arity()):
            return self._range_set(rho, env)

    def _range_set(
        self, rho: RangeRestricted, env: dict[str, Fraction]
    ) -> list[tuple[Fraction, ...]]:
        endpoints = end_set(
            self.instance,
            rho.end_var,
            rho.end_body,
            {k: env[k] for k in rho.end_body.free_variables() - {rho.end_var}},
        )
        values = [_rationalise(e) for e in endpoints]
        n = rho.arity()

        # Conjunctive guard pruning: test each conjunct of the guard as soon
        # as all its tuple variables are bound, cutting the E^n enumeration
        # the way a join planner would.  The explosion guard counts nodes
        # actually explored, so a selective guard can search large E^n
        # spaces while an unguarded blow-up still fails fast.
        conjuncts = list(rho.guard.args) if isinstance(rho.guard, And) else [rho.guard]
        stages: list[list[Formula]] = [[] for _ in range(n)]
        for conjunct in conjuncts:
            needed = conjunct.free_variables() & set(rho.w)
            stage = max((rho.w.index(v) for v in needed), default=0)
            stages[stage].append(conjunct)

        selected: list[tuple[Fraction, ...]] = []
        explored = 0

        def extend(index: int, inner: dict[str, Fraction], prefix: tuple) -> None:
            nonlocal explored
            if index == n:
                selected.append(prefix)
                return
            for value in values:
                explored += 1
                guard.checkpoint()
                if explored > MAX_RANGE_CANDIDATES:
                    raise SafetyError(
                        f"range-restricted enumeration explored more than "
                        f"{MAX_RANGE_CANDIDATES} candidates (|END| = "
                        f"{len(values)}, arity {n}); tighten the guard"
                    )
                inner[rho.w[index]] = value
                if all(self._truth(c, inner) for c in stages[index]):
                    extend(index + 1, inner, prefix + (value,))
            inner.pop(rho.w[index], None)

        try:
            extend(0, dict(env), ())
        finally:
            obs.add("evaluator.range_candidates", explored)
        obs.add("evaluator.range_selected", len(selected))
        return selected

    def apply_gamma(
        self, gamma: DetFormula, arguments: Sequence[Fraction]
    ) -> Fraction | None:
        """``f_gamma(arguments)``: the unique solution for x, or None.

        Raises :class:`NotDeterministicError` if more than one solution
        exists at this point — runtime verification of determinism.
        """
        if len(arguments) != gamma.arity():
            raise EvaluationError("gamma arity mismatch")
        env = dict(zip(gamma.w, (Fraction(a) for a in arguments)))
        explicit = explicit_function_term(gamma)
        if explicit is not None:
            return self._term(explicit, env)
        obs.add("evaluator.determinism_checks")
        bound = substitute(
            gamma.body, {name: Const(value) for name, value in env.items()}
        )
        solutions = solve_univariate(bound, gamma.x)
        points: list[Endpoint] = []
        for interval in solutions:
            if not interval.is_point():
                raise NotDeterministicError(
                    f"gamma defines an interval of outputs at w = {arguments}"
                )
            points.append(interval.low)
            if len(points) > 1:
                raise NotDeterministicError(
                    f"gamma defines multiple outputs at w = {arguments}"
                )
        if not points:
            return None
        return _rationalise(points[0])

    def _sum_term(self, term: SumTerm, env: dict[str, Fraction]) -> Fraction:
        obs.add("evaluator.sum_terms")
        with obs.span("evaluator.sum_term", arity=term.rho.arity()):
            total = Fraction(0)
            for arguments in self.range_set(term.rho, env):
                guard.checkpoint()
                value = self.apply_gamma(term.gamma, arguments)
                if value is not None:
                    total += value
            return total

    # -- formulas ---------------------------------------------------------------
    def formula_truth(
        self, formula: Formula, env: Mapping[str, Fraction] | None = None
    ) -> bool:
        """Truth of an FO + POLY + SUM formula at rational *env*."""
        env = {k: Fraction(v) for k, v in (env or {}).items()}
        return self._truth(formula, env)

    def _truth(self, formula: Formula, env: dict[str, Fraction]) -> bool:
        if isinstance(formula, TrueFormula):
            return True
        if isinstance(formula, FalseFormula):
            return False
        if isinstance(formula, Compare):
            lhs = self._term(formula.lhs, env)
            rhs = self._term(formula.rhs, env)
            return _compare(formula.op, lhs, rhs)
        if isinstance(formula, RelAtom):
            point = tuple(self._term(a, env) for a in formula.args)
            return self._relation_member(formula.name, point)
        if isinstance(formula, And):
            return all(self._truth(a, env) for a in formula.args)
        if isinstance(formula, Or):
            return any(self._truth(a, env) for a in formula.args)
        if isinstance(formula, Not):
            return not self._truth(formula.arg, env)
        if isinstance(formula, End):
            value = self._term(formula.point, env)
            endpoints = end_set(
                self.instance,
                formula.var,
                formula.body,
                {
                    k: env[k]
                    for k in (formula.body.free_variables() - {formula.var})
                },
            )
            return any(value == e for e in endpoints)
        if isinstance(formula, (Exists, Forall)):
            if contains_sum_term(formula.body):
                raise SafetyError(
                    "natural quantification over subformulas containing "
                    "summation terms is outside the evaluable fragment"
                )
            return self._decide_quantified(formula, env)
        if isinstance(formula, (ExistsAdom, ForallAdom)):
            return self._adom_quantified(formula, env)
        raise TypeError(f"unknown formula node {type(formula).__name__}")

    def _relation_member(self, name: str, point: tuple[Fraction, ...]) -> bool:
        if isinstance(self.instance, FiniteInstance):
            return point in self.instance.relation(name)
        if isinstance(self.instance, FRInstance):
            body = self.instance.instantiate(
                name, [Const(value) for value in point]
            )
            return evaluate_pure(body)
        raise EvaluationError(
            f"unsupported instance type {type(self.instance).__name__}"
        )

    def _decide_quantified(self, formula: Formula, env: dict[str, Fraction]) -> bool:
        free = formula.free_variables()
        bound = substitute(
            formula, {name: Const(env[name]) for name in free if name in env}
        )
        if bound.free_variables():
            raise EvaluationError(
                f"unbound variables {sorted(bound.free_variables())}"
            )
        expanded = expand_relations(bound, self.instance)
        if max_degree(expanded) <= 1:
            with obs.span("evaluator.decide", kind="linear"):
                return decide_linear(expanded)
        with obs.span("evaluator.decide", kind="cad"):
            return cad_decide(expanded)

    def _adom_quantified(self, formula, env: dict[str, Fraction]) -> bool:
        if not isinstance(self.instance, FiniteInstance):
            raise EvaluationError(
                "active-domain quantifiers require a finite instance"
            )
        existential = isinstance(formula, ExistsAdom)
        for value in sorted(self.instance.active_domain()):
            inner = dict(env)
            inner[formula.var] = value
            result = self._truth(formula.body, inner)
            if existential and result:
                return True
            if not existential and not result:
                return False
        return not existential


def _compare(op: str, lhs: Fraction, rhs: Fraction) -> bool:
    if op == "<":
        return lhs < rhs
    if op == "<=":
        return lhs <= rhs
    if op == "=":
        return lhs == rhs
    if op == "!=":
        return lhs != rhs
    if op == ">=":
        return lhs >= rhs
    return lhs > rhs
