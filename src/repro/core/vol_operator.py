"""The VOL term-former of Section 2, with the paper's taxonomy of
evaluation strategies.

Section 2 defines ``[VOL y. phi(x, y)](x, z)`` — z equals the volume of
``phi(a, D)`` — and the bounded variant VOL_I (volume inside the unit
cube).  The paper then studies *which* languages can evaluate it:

* exactly, for semi-linear sets — Theorem 3 (this module's
  ``strategy="exact"``),
* not at all within FO + POLY — Theorem 2 — so for semi-algebraic sets
  only probabilistic evaluation remains: per-query Monte Carlo
  (``strategy="montecarlo"``) or Theorem 4's uniform witness sampling
  (:class:`repro.core.witness.UniformVolumeApproximator`),
* trivially within 1/2 — Proposition 4 (``strategy="trivial"``).

:class:`VolTerm` is the syntax node; :func:`evaluate_vol` dispatches on
strategy.  Nesting VOL inside further constraints is intentionally not
closed — that is the paper's central negative result — so :class:`VolTerm`
is a *top-level* aggregation, mirroring the remark after Theorem 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

import numpy as np

from ..db.evaluation import expand_relations, resolve_adom_quantifiers
from ..db.instance import FiniteInstance
from ..geometry.decomposition import formula_volume, formula_volume_unit_cube
from ..geometry.sampling import hit_or_miss_volume, hoeffding_sample_size
from ..logic.formulas import Formula
from ..logic.metrics import max_degree
from ..logic.normalform import is_quantifier_free
from ..logic.substitution import substitute
from ..logic.terms import Const
from ..qe.fourier_motzkin import qe_linear
from .._errors import ApproximationError, EvaluationError

__all__ = ["VolTerm", "evaluate_vol"]


@dataclass(frozen=True)
class VolTerm:
    """``[VOL y. body](x, z)``: the volume of ``{ y : D |= body(x, y) }``.

    ``point_vars`` are the y (the measured coordinates); the remaining
    free variables of ``body`` are the parameters x.  ``bounded`` selects
    VOL_I (restriction to the unit cube), the variant under which the
    paper's approximation theory lives.
    """

    point_vars: tuple[str, ...]
    body: Formula
    bounded: bool = True

    def parameters(self) -> frozenset[str]:
        return self.body.free_variables() - set(self.point_vars)


def _prepared(term: VolTerm, instance, env: Mapping[str, Fraction]) -> Formula:
    bound = term.body
    missing = term.parameters() - set(env or {})
    if missing:
        raise EvaluationError(f"unbound VOL parameters {sorted(missing)}")
    if env:
        bound = substitute(
            bound,
            {k: Const(Fraction(v)) for k, v in env.items() if k in term.parameters()},
        )
    if isinstance(instance, FiniteInstance):
        bound = resolve_adom_quantifiers(bound, instance)
    return expand_relations(bound, instance)


def evaluate_vol(
    term: VolTerm,
    instance,
    env: Mapping[str, Fraction] | None = None,
    strategy: str = "exact",
    epsilon: float = 0.05,
    delta: float = 0.05,
    rng: np.random.Generator | None = None,
) -> Fraction | float:
    """Evaluate a VOL term under the chosen strategy.

    ``exact``      — Theorem 3; requires a linear (semi-linear) body.
    ``trivial``    — Proposition 4; requires VOL_I and eps >= 1/2 semantics:
                     returns 0, 1 or 1/2 (linear bodies only).
    ``montecarlo`` — hit-or-miss sampling with the Hoeffding sample size
                     for (epsilon, delta); works for any body, VOL_I only.
    """
    env = dict(env or {})
    expanded = _prepared(term, instance, env)
    if strategy == "exact":
        if max_degree(expanded) > 1:
            raise EvaluationError(
                "exact VOL is available for semi-linear sets only "
                "(Theorem 2: no language in the paper's class evaluates "
                "polynomial volumes); use strategy='montecarlo'"
            )
        if term.bounded:
            return formula_volume_unit_cube(expanded, term.point_vars)
        return formula_volume(expanded, term.point_vars)
    if strategy == "trivial":
        if not term.bounded:
            raise ApproximationError("the trivial approximation needs VOL_I")
        from ..approx.trivial import trivial_vol_approximation

        return trivial_vol_approximation(expanded, term.point_vars)
    if strategy == "montecarlo":
        if not term.bounded:
            raise ApproximationError("Monte Carlo sampling needs VOL_I")
        if rng is None:
            raise ApproximationError("supply an rng for randomised strategies")
        if not is_quantifier_free(expanded):
            if max_degree(expanded) > 1:
                raise EvaluationError(
                    "quantified polynomial bodies are not supported"
                )
            expanded = qe_linear(expanded)
        samples = hoeffding_sample_size(epsilon, delta)
        return hit_or_miss_volume(
            expanded, term.point_vars, samples, rng, delta=delta
        ).estimate
    raise ApproximationError(f"unknown VOL strategy {strategy!r}")
