"""FO + POLY + SUM: the paper's aggregate constraint query language.

The language (Section 5) extends FO + POLY with summation over
range-restricted — provably finite — sets:

* :class:`DetFormula` — deterministic formulae ``gamma(x, w)``;
* :class:`End` / :func:`end_set` — the END interval-endpoint operator;
* :class:`RangeRestricted` — ``(phi1 | END[y, phi2])`` expressions;
* :class:`SumTerm` — ``[sum_rho gamma](z)`` aggregation terms;
* :class:`SumEvaluator` — exact pointwise evaluation over a database;
* classical aggregates (COUNT/SUM/AVG/MIN/MAX) built from these;
* Theorem 3 — exact volumes of semi-linear sets;
* the Section 5 worked example — convex polygon area by fan triangulation;
* FO + POLY + SUM + W — the witness operator and Theorem 4's uniform
  probabilistic volume approximation.
"""

from .language import DetFormula, End, RangeRestricted, SumTerm, contains_sum_term
from .deterministic import (
    check_deterministic,
    explicit_function_term,
    is_deterministic,
)
from .endpoints import definable_set, end_set
from .evaluator import SumEvaluator
from .aggregates import (
    aggregate_avg,
    aggregate_count,
    aggregate_max,
    aggregate_min,
    aggregate_sum,
    count_term,
    endpoints_range,
    sum_of_endpoints,
    sum_term,
)
from .volume_query import (
    maximal_interval_range,
    slice_measure_term,
    volume_2d_fo_poly_sum,
    volume_nd_fo_poly_sum,
    volume_of_query,
    volume_of_relation,
)
from .polygon_area import (
    absolute_area_gamma,
    fan_selector_psi1,
    polygon_area,
    polygon_area_sum_term,
    polygon_instance,
    signed_area_gamma,
)
from .witness import UniformVolumeApproximator, theorem4_sample_size, witness
from .vol_operator import VolTerm, evaluate_vol
from .grouping import GroupedAggregate, group_by

__all__ = [
    "DetFormula",
    "End",
    "RangeRestricted",
    "SumTerm",
    "contains_sum_term",
    "is_deterministic",
    "check_deterministic",
    "explicit_function_term",
    "end_set",
    "definable_set",
    "SumEvaluator",
    "endpoints_range",
    "count_term",
    "sum_term",
    "aggregate_count",
    "aggregate_sum",
    "aggregate_avg",
    "aggregate_min",
    "aggregate_max",
    "sum_of_endpoints",
    "volume_of_query",
    "volume_of_relation",
    "maximal_interval_range",
    "slice_measure_term",
    "volume_2d_fo_poly_sum",
    "volume_nd_fo_poly_sum",
    "polygon_area",
    "polygon_area_sum_term",
    "polygon_instance",
    "signed_area_gamma",
    "absolute_area_gamma",
    "fan_selector_psi1",
    "witness",
    "UniformVolumeApproximator",
    "theorem4_sample_size",
    "VolTerm",
    "evaluate_vol",
    "GroupedAggregate",
    "group_by",
]
