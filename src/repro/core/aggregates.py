"""Classical aggregates (COUNT, SUM, AVG, MIN, MAX) in FO + POLY + SUM.

Lemma 4 of the paper shows FO + POLY + SUM expresses the cardinality of any
SAF query output and the sum/average of a deterministic function over it.
These helpers build the corresponding :class:`~repro.core.language.SumTerm`
objects and evaluate them; they are the library's "SQL aggregation over
constraint queries" surface.

All aggregates operate over a :class:`~repro.core.language.RangeRestricted`
expression — the language's safety mechanism — so they can never be applied
to an infinite set.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

from ..logic.formulas import Formula, TRUE
from ..logic.terms import Term, Var
from .._errors import EvaluationError
from .evaluator import SumEvaluator
from .language import DetFormula, RangeRestricted, SumTerm

__all__ = [
    "count_term",
    "sum_term",
    "endpoints_range",
    "aggregate_count",
    "aggregate_sum",
    "aggregate_avg",
    "aggregate_min",
    "aggregate_max",
    "sum_of_endpoints",
]


def endpoints_range(
    var: Var | str, body: Formula, guard: Formula = TRUE
) -> RangeRestricted:
    """The 1-dimensional range ``(guard | END[var, body])`` over ``var``.

    With the default guard this is "all endpoints of the intervals of the
    set defined by *body*" — the paper's first example.
    """
    name = var.name if isinstance(var, Var) else var
    return RangeRestricted.make((name,), guard, name + "_end", _rename_bound(body, name, name + "_end"))


def _rename_bound(body: Formula, old: str, new: str) -> Formula:
    from ..logic.substitution import substitute

    return substitute(body, {old: Var(new)})


def count_term(rho: RangeRestricted) -> SumTerm:
    """The cardinality ``card(rho(D, b))`` as a summation term.

    Uses ``gamma(x, w) := (x = 1)``: each selected tuple contributes 1.
    """
    fresh = "_count_out"
    gamma = DetFormula.from_term(fresh, rho.w, _one())
    return SumTerm(gamma, rho)


def sum_term(rho: RangeRestricted, value: Term | DetFormula) -> SumTerm:
    """Sum of ``value(w)`` over ``rho(D, b)``.

    *value* may be an explicit term in the tuple variables ``rho.w`` or a
    full deterministic formula.
    """
    if isinstance(value, DetFormula):
        if value.w != rho.w:
            raise EvaluationError(
                f"gamma parameters {value.w} do not match rho variables {rho.w}"
            )
        return SumTerm(value, rho)
    extra = value.variables() - set(rho.w)
    if extra:
        raise EvaluationError(
            f"value term uses variables {sorted(extra)} outside rho's {rho.w}"
        )
    gamma = DetFormula.from_term("_sum_out", rho.w, value)
    return SumTerm(gamma, rho)


def _one() -> Term:
    from ..logic.terms import Const

    return Const(Fraction(1))


def aggregate_count(
    instance, rho: RangeRestricted, env: Mapping[str, Fraction] | None = None
) -> int:
    """COUNT: the number of tuples in ``rho(D, b)``."""
    value = SumEvaluator(instance).term_value(count_term(rho), env)
    return int(value)


def aggregate_sum(
    instance,
    rho: RangeRestricted,
    value: Term | DetFormula,
    env: Mapping[str, Fraction] | None = None,
) -> Fraction:
    """SUM of *value* over ``rho(D, b)`` (exact)."""
    return SumEvaluator(instance).term_value(sum_term(rho, value), env)


def aggregate_avg(
    instance,
    rho: RangeRestricted,
    value: Term | DetFormula,
    env: Mapping[str, Fraction] | None = None,
) -> Fraction:
    """AVG of *value* over ``rho(D, b)``.

    Expressed as SUM / COUNT, exactly as Lemma 4 composes the two terms
    with the field operations.  Raises on an empty range.
    """
    evaluator = SumEvaluator(instance)
    total = evaluator.term_value(sum_term(rho, value), env)
    cardinality = evaluator.term_value(count_term(rho), env)
    if cardinality == 0:
        raise EvaluationError("AVG over an empty range")
    return total / cardinality


def aggregate_min(
    instance,
    rho: RangeRestricted,
    value: Term | DetFormula,
    env: Mapping[str, Fraction] | None = None,
) -> Fraction:
    """MIN of *value* over ``rho(D, b)`` (computed on the materialised range)."""
    return _extremum(instance, rho, value, env, minimum=True)


def aggregate_max(
    instance,
    rho: RangeRestricted,
    value: Term | DetFormula,
    env: Mapping[str, Fraction] | None = None,
) -> Fraction:
    """MAX of *value* over ``rho(D, b)``."""
    return _extremum(instance, rho, value, env, minimum=False)


def _extremum(instance, rho, value, env, minimum: bool) -> Fraction:
    evaluator = SumEvaluator(instance)
    gamma = (
        value
        if isinstance(value, DetFormula)
        else DetFormula.from_term("_ext_out", rho.w, value)
    )
    values = [
        v
        for arguments in evaluator.range_set(rho, env)
        for v in [evaluator.apply_gamma(gamma, arguments)]
        if v is not None
    ]
    if not values:
        raise EvaluationError("extremum over an empty range")
    return min(values) if minimum else max(values)


def sum_of_endpoints(
    instance, var: Var | str, body: Formula, env: Mapping[str, Fraction] | None = None
) -> Fraction:
    """The paper's first worked example: the sum of all endpoints of the
    intervals composing ``{ var : D |= body }``."""
    name = var.name if isinstance(var, Var) else var
    rho = endpoints_range(name, body)
    return aggregate_sum(instance, rho, Var(name), env)
