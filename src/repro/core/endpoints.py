"""Evaluation of the END operator: interval endpoints of definable sets.

``END[y, phi(y, z)]`` on database D with parameters b denotes the set of
endpoints of the intervals composing ``{ y : D |= phi(y, b) }``.  By
o-minimality this set is finite, and Lemma 4's closure argument rests on a
uniform bound on the number of intervals.  Computationally:

1. substitute the parameter values and the database's relation definitions,
2. eliminate quantifiers (linear fragment) if present,
3. solve the resulting one-variable formula exactly
   (:func:`repro.qe.onevar.solve_univariate`),
4. read off the endpoints of the resulting interval union.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

from ..db.evaluation import expand_relations
from ..logic.formulas import Formula
from ..logic.metrics import max_degree
from ..logic.normalform import is_quantifier_free
from ..logic.substitution import substitute
from ..logic.terms import Const
from ..qe.fourier_motzkin import qe_linear
from ..qe.intervals import Endpoint, IntervalUnion
from ..qe.onevar import solve_univariate
from .. import obs
from .._errors import SafetyError

__all__ = ["definable_set", "end_set"]


def definable_set(
    instance,
    var: str,
    body: Formula,
    env: Mapping[str, Fraction] | None = None,
) -> IntervalUnion:
    """The one-dimensional definable set ``{ var : D |= body(var, env) }``."""
    obs.add("evaluator.end_sets")
    with obs.span("core.end_set", var=var):
        return _definable_set(instance, var, body, env)


def _definable_set(
    instance,
    var: str,
    body: Formula,
    env: Mapping[str, Fraction] | None = None,
) -> IntervalUnion:
    formula = body
    if env:
        formula = substitute(
            formula, {name: Const(Fraction(v)) for name, v in env.items()}
        )
    from ..db.instance import FiniteInstance

    if isinstance(instance, FiniteInstance):
        from ..db.evaluation import resolve_adom_quantifiers

        formula = resolve_adom_quantifiers(formula, instance)
    expanded = expand_relations(formula, instance)
    stray = expanded.free_variables() - {var}
    if stray:
        raise SafetyError(
            f"END body has unbound parameters {sorted(stray)}; bind them via env"
        )
    if not is_quantifier_free(expanded):
        if max_degree(expanded) <= 1:
            expanded = qe_linear(expanded)
        else:
            raise SafetyError(
                "quantified polynomial END bodies are not supported; "
                "eliminate quantifiers first"
            )
    return solve_univariate(expanded, var)


def end_set(
    instance,
    var: str,
    body: Formula,
    env: Mapping[str, Fraction] | None = None,
) -> list[Endpoint]:
    """The END set: finite, sorted list of interval endpoints.

    Endpoints are exact: rational (``Fraction``) or real algebraic
    (:class:`~repro.realalg.algebraic.RealAlgebraic`).  Note that an
    unbounded interval contributes only its finite endpoints, exactly as in
    the paper ("b is an endpoint of the intervals that compose
    phi(D, a)").
    """
    return definable_set(instance, var, body, env).endpoints()
