"""Grouping for FO + POLY + SUM — the paper's closing open problem.

The conclusion of the paper asks "how to add grouping constructs to the
language".  This module implements the natural design consistent with the
range-restriction discipline: a **GROUP BY over a range-restricted key
set**.  A grouped aggregate

    GROUP g BY (key_guard | END[y, key_body])
    AGGREGATE sum_{rho(w, z, g)} gamma

evaluates, for each key value g drawn from the (finite, by construction)
key range, the inner aggregate with g bound — so every group is indexed by
an END-point and every group's contents are range-restricted.  Safety is
inherited rather than re-proved: both layers are ordinary
:class:`~repro.core.language.RangeRestricted` sets.

This stays within the *spirit* of FO + POLY + SUM: a grouped aggregate is
expressible as a family of ordinary summation terms (one per key), which
is exactly how the evaluator runs it.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

from .._errors import EvaluationError
from .evaluator import SumEvaluator
from .language import RangeRestricted, SumTerm

__all__ = ["GroupedAggregate", "group_by"]


@dataclass(frozen=True)
class GroupedAggregate:
    """``GROUP key BY keys AGGREGATE term``.

    ``keys`` is a 1-dimensional range-restricted expression whose single
    tuple variable is the grouping key; ``term`` is a summation term in
    which that key occurs as a free parameter.
    """

    key: str
    keys: RangeRestricted
    term: SumTerm

    def __post_init__(self) -> None:
        if self.keys.arity() != 1:
            raise EvaluationError("the grouping key range must be 1-dimensional")
        if self.keys.w[0] != self.key:
            raise EvaluationError(
                f"key variable {self.key!r} must be the range's tuple variable"
            )
        if self.key not in self.term.variables():
            raise EvaluationError(
                f"the aggregate does not depend on the key {self.key!r} — "
                "grouping would produce identical rows"
            )


def group_by(
    instance,
    grouped: GroupedAggregate,
    env: Mapping[str, Fraction] | None = None,
) -> dict[Fraction, Fraction]:
    """Evaluate a grouped aggregate: ``{ key value -> aggregate value }``.

    The key set is materialised through the END machinery (finite by
    construction); the inner term is evaluated once per key with the key
    bound in the environment.
    """
    evaluator = SumEvaluator(instance)
    env = {k: Fraction(v) for k, v in (env or {}).items()}
    groups: dict[Fraction, Fraction] = {}
    for (key_value,) in evaluator.range_set(grouped.keys, env):
        inner_env = dict(env)
        inner_env[grouped.key] = key_value
        groups[key_value] = evaluator.term_value(grouped.term, inner_env)
    return groups
