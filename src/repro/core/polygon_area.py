"""The paper's Section 5 worked example: convex polygon area in
FO + POLY + SUM, via fan triangulation.

The paper constructs, for a convex polygon P:

* ``phi_P``: the vertices of P (definable in FO + POLY because a point is
  a vertex iff it is not in the convex hull of the rest);
* ``nu_P``: adjacency of two vertices;
* ``psi_2(u)``: u is a *coordinate* of a vertex (the END-set generator);
* ``psi_1(x, y, z)``: the fan-triangulation selector — x is the
  lexicographically minimal vertex and (x, y, z) ranges over the fan's
  triangles;
* ``gamma``: the deterministic signed-area formula
  ``v = (a1 b2 - a2 b1 + a2 c1 - a1 c2 + b1 c2 - b2 c1) / 2``.

The area is the summation term ``sum_{rho} gamma`` with
``rho = (psi_1 | END[u, psi_2])``.

Substitution note (recorded in DESIGN.md): evaluating the paper's
``phi_P``/``nu_P`` *as formulas* needs parametric polynomial QE, which
this library scopes out.  Instead, the vertex and adjacency relations are
computed exactly by the polyhedral substrate and materialised as a derived
**finite instance** with relations VERT/2 and ADJ/4; ``psi_1`` is then a
genuine first-order formula over that schema, ``rho`` a genuine
range-restricted expression, and the area a genuine SumTerm evaluated by
the FO + POLY + SUM evaluator.  The arithmetic path of the paper —
END-set, guard, deterministic gamma, summation — is exercised end to end.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from ..db.instance import FiniteInstance
from ..db.schema import Schema
from ..geometry.polyhedron import Point
from ..geometry.triangulate import sort_ccw
from ..logic.builders import Relation
from ..logic.formulas import Formula, conjunction
from ..logic.terms import Const, Var
from .._errors import GeometryError
from .evaluator import SumEvaluator
from .language import DetFormula, RangeRestricted, SumTerm

__all__ = [
    "signed_area_gamma",
    "absolute_area_gamma",
    "fan_selector_psi1",
    "polygon_area_sum_term",
    "polygon_area",
    "polygon_instance",
]

_VERT = Relation("VERT", 2)
_ADJ = Relation("ADJ", 4)


def signed_area_gamma() -> DetFormula:
    """The paper's deterministic triangle-area formula gamma(v, x, y, z)."""
    a1, a2, b1, b2, c1, c2 = (Var(n) for n in ("a1", "a2", "b1", "b2", "c1", "c2"))
    signed = (
        a1 * b2 - a2 * b1 + a2 * c1 - a1 * c2 + b1 * c2 - b2 * c1
    )
    return DetFormula.from_term(
        "v",
        ("a1", "a2", "b1", "b2", "c1", "c2"),
        signed * Const(Fraction(1, 2)),
    )


def absolute_area_gamma() -> DetFormula:
    """The *unsigned* triangle area as a deterministic formula.

    The paper's fan selector does not fix the orientation of each triangle,
    so the signed formula can contribute with either sign; the unsigned
    area is still deterministic, via the non-explicit body

        v >= 0  AND  (2v = s  OR  2v = -s)

    with s the signed double area.  This also exercises the evaluator's
    root-solving path for deterministic formulas that are not of the
    explicit ``x = t(w)`` shape.
    """
    a1, a2, b1, b2, c1, c2 = (Var(n) for n in ("a1", "a2", "b1", "b2", "c1", "c2"))
    signed = (
        a1 * b2 - a2 * b1 + a2 * c1 - a1 * c2 + b1 * c2 - b2 * c1
    )
    v = Var("v")
    body = (v >= 0) & (((2 * v).eq(signed)) | ((2 * v).eq(-signed)))
    return DetFormula.make("v", ("a1", "a2", "b1", "b2", "c1", "c2"), body)


def _lex_less(p1: Var, p2: Var, q1: Var, q2: Var) -> Formula:
    """Lexicographic order on points: (p1, p2) < (q1, q2)."""
    return (p1 < q1) | ((p1.eq(q1)) & (p2 < q2))


def fan_selector_psi1() -> Formula:
    """The paper's psi_1(x, y, z) over the derived schema {VERT, ADJ}.

    Conditions (using the paper's numbering):
    (1) x, y, z are vertices;
    (2) x is the lexicographically minimal vertex;
    (3) either y, z are adjacent, y lex-less-than z, and neither is
        adjacent to x — an interior fan triangle — or x is adjacent to y,
        y to z, and not x to z — a boundary fan triangle.
    """
    a1, a2, b1, b2, c1, c2 = (Var(n) for n in ("a1", "a2", "b1", "b2", "c1", "c2"))
    u1, u2 = Var("u1"), Var("u2")

    is_vertices = _VERT(a1, a2) & _VERT(b1, b2) & _VERT(c1, c2)
    from ..logic.builders import forall_adom

    lex_minimal = forall_adom(
        (u1, u2),
        _VERT(u1, u2).implies(
            _lex_less(a1, a2, u1, u2) | (a1.eq(u1) & a2.eq(u2))
        ),
    )
    interior = (
        _ADJ(b1, b2, c1, c2)
        & _lex_less(b1, b2, c1, c2)
        & ~_ADJ(a1, a2, b1, b2)
        & ~_ADJ(a1, a2, c1, c2)
    )
    boundary = (
        _ADJ(a1, a2, b1, b2) & _ADJ(b1, b2, c1, c2) & ~_ADJ(a1, a2, c1, c2)
    )
    # The paper's two cases assume >= 4 vertices; when P *is* a triangle
    # every vertex pair is adjacent and neither case fires.  The triangle
    # disjunct below can only hold in that situation (a 3-cycle in the
    # adjacency relation of a convex polygon means exactly 3 vertices).
    triangle = (
        _ADJ(a1, a2, b1, b2)
        & _ADJ(b1, b2, c1, c2)
        & _ADJ(a1, a2, c1, c2)
        & _lex_less(b1, b2, c1, c2)
    )
    return conjunction(is_vertices, lex_minimal, interior | boundary | triangle)


def polygon_instance(vertices: Sequence[Point]) -> FiniteInstance:
    """The derived finite instance {VERT, ADJ} of a convex polygon.

    VERT holds the vertices; ADJ holds adjacent (consecutive) vertex pairs,
    symmetrically.  This materialises the denotations of the paper's
    ``phi_P`` and ``nu_P`` (see the module's substitution note).
    """
    if len(vertices) < 3:
        raise GeometryError("a polygon needs at least three vertices")
    ordered = sort_ccw([tuple(Fraction(c) for c in v) for v in vertices])
    schema = Schema.make({"VERT": 2, "ADJ": 4})
    count = len(ordered)
    adjacency = []
    for i in range(count):
        p, q = ordered[i], ordered[(i + 1) % count]
        adjacency.append((*p, *q))
        adjacency.append((*q, *p))
    return FiniteInstance.make(schema, {"VERT": ordered, "ADJ": adjacency})


def polygon_area_sum_term() -> SumTerm:
    """The paper's area term ``sum_{(psi_1 | END[u, psi_2])} gamma``.

    ``psi_2(u)``: u is a coordinate of a vertex, expressed over the derived
    schema as ``exists_adom w (VERT(u, w) or VERT(w, u))`` — its END set is
    exactly the vertex coordinates (a finite union of points has itself as
    its set of endpoints).
    """
    from ..logic.builders import exists_adom

    u, w = Var("_u"), Var("_w")
    psi2 = exists_adom(w, _VERT(u, w) | _VERT(w, u))
    return SumTerm(
        absolute_area_gamma(),
        RangeRestricted.make(
            ("a1", "a2", "b1", "b2", "c1", "c2"),
            fan_selector_psi1(),
            "_u",
            psi2,
        ),
    )


def polygon_area(vertices: Sequence[Point]) -> Fraction:
    """Exact area of a convex polygon via the FO + POLY + SUM area term.

    The fan triangles partition the polygon, so the sum of their unsigned
    areas (see :func:`absolute_area_gamma`) is the polygon's area.
    """
    instance = polygon_instance(vertices)
    term = polygon_area_sum_term()
    return SumEvaluator(instance).term_value(term)
