"""JSON-lines export of traces and counters (the ``BENCH_*`` trajectory).

Record schema (``repro.obs/v1``) — one JSON object per line::

    {
      "schema": "repro.obs/v1",
      "experiment": "E9",            # or a CLI command name
      "row": {...},                  # one benchmark/report row, optional
      "counters": {"cad.cells": 7},  # non-zero metrics snapshot
      "spans": [                     # literal span forest, optional
        {"name": "...", "duration_s": 0.1, "attrs": {...},
         "children": [...]}
      ]
    }

The schema is append-only: consumers must ignore unknown keys, and new
versions bump the ``schema`` string.  Timestamps are deliberately absent
so records from identical runs are byte-comparable.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from .metrics import Registry
from .trace import SpanRecord, Trace

__all__ = [
    "SCHEMA",
    "span_to_dict",
    "trace_to_dicts",
    "make_record",
    "JsonlSink",
    "read_jsonl",
]

SCHEMA = "repro.obs/v1"


def span_to_dict(record: SpanRecord) -> dict[str, Any]:
    """A JSON-friendly dict for one span (recursing into children)."""
    out: dict[str, Any] = {
        "name": record.name,
        "duration_s": record.duration_s,
    }
    if record.attrs:
        out["attrs"] = {k: _jsonable(v) for k, v in record.attrs.items()}
    if record.error:
        out["error"] = record.error
    if record.children:
        out["children"] = [span_to_dict(c) for c in record.children]
    return out


def trace_to_dicts(trace: Trace) -> list[dict[str, Any]]:
    return [span_to_dict(r) for r in trace.roots]


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def make_record(
    experiment: str,
    row: dict[str, Any] | None = None,
    registry: Registry | None = None,
    trace: Trace | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble one trajectory record; empty sections are omitted."""
    record: dict[str, Any] = {"schema": SCHEMA, "experiment": experiment}
    if row:
        record["row"] = {str(k): _jsonable(v) for k, v in row.items()}
    if registry is not None:
        counters = registry.as_dict(skip_empty=True)
        if counters:
            record["counters"] = counters
    if trace is not None and trace.roots:
        record["spans"] = trace_to_dicts(trace)
    if extra:
        record.update(extra)
    return record


class JsonlSink:
    """Appends records to a JSON-lines file, one object per line."""

    __slots__ = ("path",)

    def __init__(self, path: str):
        self.path = path

    def write(self, record: dict[str, Any]) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def write_all(self, records: Sequence[dict[str, Any]]) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")


def read_jsonl(path: str) -> list[dict[str, Any]]:
    """Parse a JSON-lines trajectory file (blank lines ignored)."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
