"""JSON-lines export of traces and counters (the ``BENCH_*`` trajectory).

Record schema (``repro.obs/v2``) — one JSON object per line::

    {
      "schema": "repro.obs/v2",
      "experiment": "E9",            # or a CLI command name
      "row": {...},                  # one benchmark/report row, optional
      "counters": {"cad.cells": 7},  # non-zero scalar metrics snapshot
      "histograms": {                # non-empty histogram snapshots
        "engine.plan.compile_s": {"count": 1, "sum": 0.01, "min": 0.01,
                                   "max": 0.01, "buckets": {"9": 1}}
      },
      "spans": [                     # literal span forest, optional
        {"name": "...", "duration_s": 0.1, "attrs": {...},
         "children": [...]}
      ],
      "dropped": 3                   # spans lost to the MAX_SPANS cap
    }

``v2`` extends ``v1`` with the optional ``histograms`` and ``dropped``
sections; every ``v1`` record is a valid ``v2`` record.  The schema is
append-only: consumers must ignore unknown keys, and incompatible
changes bump the ``schema`` string.  Timestamps are deliberately absent
so records from identical runs are byte-comparable.
"""

from __future__ import annotations

import json
import warnings
from typing import Any, Iterable, Mapping, Sequence

from .metrics import Registry
from .trace import SpanRecord, Trace

__all__ = [
    "SCHEMA",
    "SCHEMA_V1",
    "SCHEMA_SLOWQUERY",
    "KNOWN_SCHEMAS",
    "span_to_dict",
    "span_from_dict",
    "trace_to_dicts",
    "make_record",
    "JsonlSink",
    "JsonlRecords",
    "read_jsonl",
    "read_jsonl_lines",
]

SCHEMA = "repro.obs/v2"
SCHEMA_V1 = "repro.obs/v1"

#: One record per request that exceeded ``repro serve --slow-query-s``:
#: wall-clock ``ts``, ``trace_id``, elapsed/queue-wait timings, cache
#: provenance, budget-relevant counters, and the full span tree (worker
#: forest reparented under the request root).  Unlike ``repro.obs/v2``
#: task records these carry timestamps and durations — slow-query logs
#: are forensic, not byte-stable.
SCHEMA_SLOWQUERY = "repro.slowquery/v1"

#: Schema strings :func:`read_jsonl` accepts; anything else that *claims*
#: to be an obs record (has a ``schema`` key) is skipped with a warning.
KNOWN_SCHEMAS = frozenset({SCHEMA_V1, SCHEMA, SCHEMA_SLOWQUERY})


def span_to_dict(record: SpanRecord) -> dict[str, Any]:
    """A JSON-friendly dict for one span (recursing into children)."""
    out: dict[str, Any] = {
        "name": record.name,
        "duration_s": record.duration_s,
    }
    if record.attrs:
        out["attrs"] = {k: _jsonable(v) for k, v in record.attrs.items()}
    if record.error:
        out["error"] = record.error
    if record.children:
        out["children"] = [span_to_dict(c) for c in record.children]
    return out


def span_from_dict(data: dict[str, Any]) -> SpanRecord:
    """Rebuild a :class:`SpanRecord` tree from :func:`span_to_dict` output.

    The inverse used when a parent process re-materialises worker span
    forests (start offsets are process-local and are not round-tripped).
    """
    return SpanRecord(
        name=str(data.get("name", "")),
        attrs=dict(data.get("attrs") or {}),
        children=[span_from_dict(c) for c in data.get("children") or []],
        duration_s=float(data.get("duration_s", 0.0)),
        error=data.get("error"),
    )


def trace_to_dicts(trace: Trace) -> list[dict[str, Any]]:
    return [span_to_dict(r) for r in trace.roots]


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


def make_record(
    experiment: str,
    row: dict[str, Any] | None = None,
    registry: Registry | None = None,
    trace: Trace | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble one trajectory record; empty sections are omitted."""
    record: dict[str, Any] = {"schema": SCHEMA, "experiment": experiment}
    if row:
        record["row"] = {str(k): _jsonable(v) for k, v in row.items()}
    if registry is not None:
        counters = registry.as_dict(skip_empty=True)
        if counters:
            record["counters"] = counters
        histograms = registry.histograms_as_dict(skip_empty=True)
        if histograms:
            record["histograms"] = histograms
    if trace is not None and trace.roots:
        record["spans"] = trace_to_dicts(trace)
    if trace is not None and trace.dropped_spans:
        record["dropped"] = trace.dropped_spans
    if extra:
        record.update(extra)
    return record


class JsonlSink:
    """Appends records to a JSON-lines file, one object per line."""

    __slots__ = ("path",)

    def __init__(self, path: str):
        self.path = path

    def write(self, record: dict[str, Any]) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def write_all(self, records: Sequence[dict[str, Any]]) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")


class JsonlRecords(list):
    """Parsed records plus how many lines were skipped as unreadable.

    Behaves exactly like the plain list older callers expect; ``skipped``
    carries the count of malformed / unknown-schema lines that were
    dropped (each with a warning) instead of aborting the whole file.
    """

    __slots__ = ("skipped",)

    def __init__(self, records: Sequence[dict[str, Any]] = (), skipped: int = 0):
        super().__init__(records)
        self.skipped = skipped


def read_jsonl(path: str) -> JsonlRecords:
    """Parse a JSON-lines trajectory file, skipping unreadable lines.

    Blank lines are ignored silently (they are legitimate separators).
    Lines that are not valid JSON objects, and records that declare a
    ``schema`` outside :data:`KNOWN_SCHEMAS`, are *skipped* — counted in
    the result's ``skipped`` attribute and reported once each via
    :mod:`warnings` — rather than raising mid-file, so one corrupt line
    cannot make an entire trajectory unreadable.  Records with no
    ``schema`` key pass through untouched (generic JSONL).
    """
    with open(path, encoding="utf-8") as handle:
        return read_jsonl_lines(handle, where=path)


def read_jsonl_lines(
    lines: Iterable[str], where: str = "<lines>"
) -> JsonlRecords:
    """:func:`read_jsonl` over already-read lines (stdin, a pipe, a test).

    *where* names the source in skip warnings, standing in for the file
    path.  This is the piece that lets ``repro metrics -`` replay a
    trajectory streamed on stdin, which cannot be re-opened by path.
    """
    records: list[dict[str, Any]] = []
    skipped = 0
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            skipped += 1
            warnings.warn(
                f"{where}:{lineno}: skipping malformed JSONL line ({error})",
                stacklevel=2,
            )
            continue
        if not isinstance(record, dict):
            skipped += 1
            warnings.warn(
                f"{where}:{lineno}: skipping non-object JSONL line",
                stacklevel=2,
            )
            continue
        schema = record.get("schema")
        if schema is not None and schema not in KNOWN_SCHEMAS:
            skipped += 1
            warnings.warn(
                f"{where}:{lineno}: skipping record with unknown schema "
                f"{schema!r} (known: {sorted(KNOWN_SCHEMAS)})",
                stacklevel=2,
            )
            continue
        records.append(record)
    return JsonlRecords(records, skipped)
