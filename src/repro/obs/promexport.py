"""Prometheus text-format exposition of a metrics registry.

Renders counters, gauges, and histograms in the Prometheus
`text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_:
``# HELP`` / ``# TYPE`` comment pairs followed by the sample lines.
Histograms emit the conventional cumulative ``_bucket{le="..."}`` series
over the shared :data:`~repro.obs.histogram.BUCKET_BOUNDS` layout
(terminated by the mandatory ``le="+Inf"`` bucket) plus ``_sum`` and
``_count``; counters get the conventional ``_total`` suffix.

Metric names are mapped ``engine.plan.compile_s`` →
``repro_engine_plan_compile_s``: a ``repro_`` namespace prefix and every
character outside ``[a-zA-Z0-9_:]`` replaced by ``_``.

This is a *pull-free* exporter: the CLI's ``repro metrics`` subcommand
writes the exposition to a file or stdout, from where a node-exporter
textfile collector (or a human) can pick it up.  There is deliberately
no HTTP server here.
"""

from __future__ import annotations

import re
from typing import Iterable

from .histogram import Histogram
from .metrics import Counter, Gauge, Registry

__all__ = [
    "prom_name", "escape_help", "escape_label_value", "render_prometheus",
]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_PREFIX = "repro_"


def prom_name(name: str) -> str:
    """The Prometheus-safe series name for a catalogue metric name."""
    sanitized = _NAME_OK.sub("_", name)
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] in "_:"):
        sanitized = "_" + sanitized
    return _PREFIX + sanitized


def escape_help(text: str) -> str:
    """``# HELP`` text with the exposition-format escapes applied.

    The format mandates escaping backslash and line feed in help text
    (an unescaped newline would terminate the comment mid-text and leave
    the remainder as a garbage sample line, breaking the whole scrape).
    Carriage returns are folded into the newline escape: bare ``\\r`` is
    not representable in the format and a ``\\r\\n`` help text must not
    smuggle a line break past the escaping.
    """
    return (
        text.replace("\\", "\\\\")
        .replace("\r\n", "\n")
        .replace("\r", "\n")
        .replace("\n", "\\n")
    )


def escape_label_value(text: str) -> str:
    """A label value with the exposition-format escapes applied.

    Label values additionally escape the double quote — ``{le="..."}``
    is quote-delimited, so an unescaped ``"`` would end the value early
    and corrupt every sample after it.  Applied to every label this
    module emits (and available to callers adding their own labels),
    so ``/metrics`` stays parseable whatever ends up in a value.
    """
    return (
        text.replace("\\", "\\\\")
        .replace("\r\n", "\n")
        .replace("\r", "\n")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_value(value: "int | float") -> str:
    if isinstance(value, bool):  # bools are ints; never emit True/False
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def _format_bound(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    return f"{bound:.6g}"


def render_prometheus(
    registry: Registry, skip_empty: bool = True, exemplars: bool = False
) -> str:
    """The full text exposition of *registry*, one block per metric.

    ``skip_empty`` drops zero counters, unset gauges, and empty
    histograms — the same "only what the run touched" contract as the
    ``--stats`` table.  Output is sorted by metric name, ends in a
    newline, and contains no timestamps, so identical registries render
    identical bytes.

    ``exemplars=True`` appends OpenMetrics exemplars to histogram
    ``_bucket`` lines that have one recorded::

        repro_serve_latency_s_bucket{le="0.1"} 4 # {trace_id="4bf9..."} 0.073

    Only bucket series ever carry the suffix (per the OpenMetrics spec);
    with the flag off (the default) the output is plain Prometheus text
    format, byte-identical to pre-exemplar releases.
    """
    blocks: list[str] = []
    for name, metric in registry.items():
        series = prom_name(name)
        if isinstance(metric, Counter):
            if skip_empty and not metric.value:
                continue
            blocks.extend(_header(series, metric.description, "counter"))
            blocks.append(f"{series}_total {_format_value(metric.value)}")
        elif isinstance(metric, Gauge):
            if metric.value is None:
                continue
            blocks.extend(_header(series, metric.description, "gauge"))
            blocks.append(f"{series} {_format_value(_as_number(metric.value))}")
        elif isinstance(metric, Histogram):
            if skip_empty and not metric.count:
                continue
            blocks.extend(_header(series, metric.description, "histogram"))
            for index, (bound, cumulative) in enumerate(
                metric.cumulative_buckets()
            ):
                le = escape_label_value(_format_bound(bound))
                line = f'{series}_bucket{{le="{le}"}} {cumulative}'
                exemplar = metric.exemplars.get(index) if exemplars else None
                if exemplar is not None:
                    value, trace_id = exemplar
                    line += (
                        f' # {{trace_id="{escape_label_value(trace_id)}"}}'
                        f" {_format_value(value)}"
                    )
                blocks.append(line)
            blocks.append(f"{series}_sum {_format_value(metric.sum)}")
            blocks.append(f"{series}_count {metric.count}")
    return "\n".join(blocks) + "\n" if blocks else ""


def _as_number(value) -> "int | float":
    from fractions import Fraction

    if isinstance(value, Fraction):
        return float(value)
    return value


def _header(series: str, description: str, kind: str) -> Iterable[str]:
    lines = []
    if description:
        lines.append(f"# HELP {series} {escape_help(description)}")
    lines.append(f"# TYPE {series} {kind}")
    return lines
