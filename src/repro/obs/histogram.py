"""Histogram metric: fixed log-scaled buckets with exact cross-process merge.

Every histogram in the process shares one bucket layout,
:data:`BUCKET_BOUNDS` — upper bounds spaced a constant factor of
``10^(1/3)`` (≈2.154x) apart, spanning ``1e-7`` to ``1e6``.  Values above
the last bound land in an implicit ``+Inf`` overflow bucket, so no
observation is ever lost.  Because the layout is fixed, merging two
histograms is exact integer addition per bucket: merge order cannot
change the result, which is what lets worker-process snapshots be
combined deterministically (:mod:`repro.obs.aggregate`).

A histogram also tracks ``count`` / ``sum`` / ``min`` / ``max`` exactly,
and estimates quantiles (p50/p95/p99) by linear interpolation inside the
bucket containing the target rank — the standard Prometheus-style
estimate, accurate to a bucket width.

Observation is gated the same way as counters: call sites go through
:func:`repro.obs.observe_value`, which is a near-free no-op while
collection is off.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Mapping

__all__ = ["BUCKET_BOUNDS", "Histogram"]

#: Shared bucket upper bounds (seconds, cells, ...): 10^(k/3) for
#: k in [-21, 18], i.e. 1e-7 .. 1e6 at ~2.154x resolution.  Fixed so
#: merges are exact and any two histograms are comparable.
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    10.0 ** (k / 3.0) for k in range(-21, 19)
)

#: Index of the implicit +Inf overflow bucket.
_OVERFLOW = len(BUCKET_BOUNDS)


class Histogram:
    """A mergeable distribution metric over the shared bucket layout."""

    kind = "histogram"
    __slots__ = (
        "name", "description", "buckets", "count", "sum", "min", "max",
        "exemplars",
    )

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        #: Sparse bucket index -> observation count (``_OVERFLOW`` = +Inf).
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        #: Sparse bucket index -> ``(value, trace_id)`` of the most recent
        #: trace-tagged observation landing in that bucket (OpenMetrics
        #: exemplars).  Never affects counts, sums, or quantiles.
        self.exemplars: dict[int, tuple[float, str]] = {}

    # -- recording ---------------------------------------------------------
    def observe(self, value: "int | float", trace_id: "str | None" = None) -> None:
        """Record one observation (negative values clamp into bucket 0).

        *trace_id* attaches an exemplar: the bucket the value lands in
        remembers this (value, trace id) pair, most recent observation
        winning, so an operator can jump from a bad latency bucket to a
        concrete request that hit it.
        """
        value = float(value)
        index = bisect_left(BUCKET_BOUNDS, value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if trace_id is not None:
            self.exemplars[index] = (value, trace_id)

    def reset(self) -> None:
        self.buckets.clear()
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self.exemplars.clear()

    @property
    def value(self) -> int:
        """The observation count (what generic metric listings show)."""
        return self.count

    # -- merging -----------------------------------------------------------
    def merge(self, other: "Histogram") -> "Histogram":
        """Fold *other* into this histogram (exact; order-independent)."""
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        # Exemplars are advisory, not additive: the incoming snapshot is
        # the newer observation, so its exemplars win per bucket.
        self.exemplars.update(other.exemplars)
        return self

    def merge_dict(self, data: Mapping[str, Any]) -> "Histogram":
        """Fold an :meth:`as_dict` snapshot (possibly from another process)."""
        return self.merge(Histogram.from_dict(self.name, data))

    # -- quantiles ---------------------------------------------------------
    def quantile(self, q: float) -> float | None:
        """Estimated *q*-quantile (0..1); ``None`` while empty.

        Linear interpolation inside the bucket holding the target rank,
        clamped to the exact observed ``[min, max]``.
        """
        if self.count == 0 or self.min is None or self.max is None:
            return None
        target = q * self.count
        cumulative = 0
        for index in sorted(self.buckets):
            in_bucket = self.buckets[index]
            cumulative += in_bucket
            if cumulative >= target:
                low = BUCKET_BOUNDS[index - 1] if index > 0 else self.min
                high = BUCKET_BOUNDS[index] if index < _OVERFLOW else self.max
                low = max(low, self.min)
                high = min(high, self.max)
                if high <= low or in_bucket == 0:
                    return min(max(low, self.min), self.max)
                inner = (target - (cumulative - in_bucket)) / in_bucket
                return min(max(low + (high - low) * inner, self.min), self.max)
        return self.max

    def summary(self) -> dict[str, float | int | None]:
        """count/sum/min/max plus p50/p95/p99 estimates."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    # -- serialization -----------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """A compact JSON-able snapshot (sparse buckets keyed by index).

        The ``exemplars`` section is present only when non-empty, so
        snapshots from untraced runs are byte-identical to pre-exemplar
        ones, and old readers (which ignore unknown keys) stay compatible.
        """
        out: dict[str, Any] = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": {str(i): n for i, n in sorted(self.buckets.items())},
        }
        if self.exemplars:
            out["exemplars"] = {
                str(i): [value, trace_id]
                for i, (value, trace_id) in sorted(self.exemplars.items())
            }
        return out

    @staticmethod
    def from_dict(name: str, data: Mapping[str, Any]) -> "Histogram":
        hist = Histogram(name)
        hist.count = int(data.get("count", 0))
        hist.sum = float(data.get("sum", 0.0))
        hist.min = None if data.get("min") is None else float(data["min"])
        hist.max = None if data.get("max") is None else float(data["max"])
        hist.buckets = {
            int(i): int(n) for i, n in (data.get("buckets") or {}).items()
        }
        for i, pair in (data.get("exemplars") or {}).items():
            try:
                value, trace_id = pair
                hist.exemplars[int(i)] = (float(value), str(trace_id))
            except (TypeError, ValueError):
                continue  # malformed exemplar: advisory data, drop it
        return hist

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs incl. ``+Inf``."""
        out: list[tuple[float, int]] = []
        running = 0
        for index, bound in enumerate(BUCKET_BOUNDS):
            running += self.buckets.get(index, 0)
            out.append((bound, running))
        out.append((float("inf"), running + self.buckets.get(_OVERFLOW, 0)))
        return out

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, count={self.count}, sum={self.sum:.6g})"
        )
