"""Observability: spans, counters, and trace export for the pipeline.

Everything is **off by default** and the disabled fast path costs one
boolean / thread-local check per instrumentation site (well under a
microsecond), so the exact pipeline's throughput is unaffected when
nobody is measuring.  See docs/OBSERVABILITY.md for the metric catalogue
and the sink API.

Typical use::

    from repro import obs

    with obs.observe("my-run") as trace:
        run_query()
    print(obs.format_span_tree(trace))
    print(obs.format_counters(obs.REGISTRY))

Instrumentation sites use the module-level helpers directly::

    with obs.span("qe.cad.decide", variables=n):
        ...
    obs.add("cad.cells", len(samples))
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .metrics import (
    CATALOGUE,
    Counter,
    Gauge,
    Histogram,
    REGISTRY,
    Registry,
    add,
    counting_enabled,
    disable_counting,
    enable_counting,
    observe_value,
    set_gauge,
)
from .histogram import BUCKET_BOUNDS
from .trace import (
    MAX_SPANS,
    SpanRecord,
    Trace,
    TraceContext,
    collect,
    current_trace,
    current_trace_id,
    new_span_id,
    new_trace_id,
    span,
    start_trace,
    stop_trace,
    tracing_enabled,
)
from .sinks import MemorySink, format_counters, format_span_tree, render_table
from .export import (
    KNOWN_SCHEMAS,
    SCHEMA,
    SCHEMA_SLOWQUERY,
    SCHEMA_V1,
    JsonlRecords,
    JsonlSink,
    make_record,
    read_jsonl,
    read_jsonl_lines,
    span_from_dict,
    span_to_dict,
    trace_to_dicts,
)
from .promexport import (
    escape_help,
    escape_label_value,
    prom_name,
    render_prometheus,
)
from .perfetto import perfetto_json, record_events, render_perfetto
from .promparse import (
    MetricsSnapshot,
    ParsedHistogram,
    parse_prometheus,
    quantile_from_buckets,
)
from .aggregate import (
    SUMMARY_EXPERIMENT,
    TASK_EXPERIMENT,
    merge_snapshot_into,
    merged_registry,
    registry_from_records,
    request_trace,
    summary_record,
    task_observation,
    task_record,
)

__all__ = [
    # switches
    "observe", "enable", "disable", "reset",
    # tracing
    "span", "collect", "start_trace", "stop_trace", "current_trace",
    "tracing_enabled", "Trace", "SpanRecord", "MAX_SPANS",
    # trace context / request correlation
    "TraceContext", "new_trace_id", "new_span_id", "current_trace_id",
    # metrics
    "add", "set_gauge", "observe_value", "REGISTRY", "Registry", "Counter",
    "Gauge", "Histogram", "BUCKET_BOUNDS", "CATALOGUE", "counting_enabled",
    "enable_counting", "disable_counting",
    # sinks / export
    "render_table", "format_span_tree", "format_counters", "MemorySink",
    "SCHEMA", "SCHEMA_V1", "SCHEMA_SLOWQUERY", "KNOWN_SCHEMAS", "JsonlSink",
    "JsonlRecords",
    "make_record", "read_jsonl", "read_jsonl_lines", "span_to_dict",
    "span_from_dict",
    "trace_to_dicts",
    # prometheus exposition
    "prom_name", "escape_help", "escape_label_value", "render_prometheus",
    # perfetto / scrape parsing
    "perfetto_json", "record_events", "render_perfetto",
    "MetricsSnapshot", "ParsedHistogram", "parse_prometheus",
    "quantile_from_buckets",
    # cross-process aggregation
    "TASK_EXPERIMENT", "SUMMARY_EXPERIMENT", "task_observation",
    "merge_snapshot_into", "merged_registry", "registry_from_records",
    "task_record", "summary_record", "request_trace",
]


def enable(name: str = "trace") -> Trace:
    """Turn on counters and install a fresh trace; returns the trace."""
    enable_counting()
    return start_trace(name)


def disable() -> Trace | None:
    """Turn off counters and detach the active trace (returned, if any)."""
    disable_counting()
    return stop_trace()


def reset() -> None:
    """Zero all metrics; does not touch the enabled/disabled switches."""
    REGISTRY.reset()


@contextmanager
def observe(name: str = "observe") -> Iterator[Trace]:
    """Counters + tracing for the duration of the block.

    Metrics are reset on entry so the block's counts stand alone; the
    previous enabled/disabled state is restored on exit.
    """
    was_counting = counting_enabled()
    previous_trace = stop_trace()
    REGISTRY.reset()
    trace = enable(name)
    try:
        yield trace
    finally:
        stop_trace()
        if previous_trace is not None:
            # Restore the outer trace (nested observe blocks).
            from .trace import _state

            _state.trace = previous_trace
        if not was_counting:
            disable_counting()
