"""Typed counter / gauge / histogram registries with a metric catalogue.

Counters accumulate monotonically (``add``); gauges record the most
recent value (``set_gauge``); histograms record distributions over a
fixed log-scaled bucket layout (``observe_value``, see
:mod:`repro.obs.histogram`).  Collection is gated on a module-level flag
so instrumented hot loops pay only a boolean test when observability is
off — the same disabled-by-default contract as :mod:`repro.obs.trace`.

The :data:`CATALOGUE` below is the authoritative list of metric names
emitted by the instrumented pipeline; docs/OBSERVABILITY.md renders it.
Ad-hoc names are allowed (the registry is open), but everything the
runtime emits should be registered here so summaries are self-describing.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

from .._errors import ReproError
from .histogram import Histogram

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "REGISTRY",
    "CATALOGUE",
    "add",
    "set_gauge",
    "observe_value",
    "counting_enabled",
    "enable_counting",
    "disable_counting",
]

Number = Union[int, float, Fraction]


class MetricError(ReproError):
    """A metric was re-registered with a conflicting type."""


class Counter:
    """A monotonically increasing metric."""

    kind = "counter"
    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self.value: Number = 0

    def add(self, amount: Number = 1) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A metric holding the most recently observed value."""

    kind = "gauge"
    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self.value: Number | None = None

    def set(self, value: Number) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = None


#: Any metric the registry can hold.
Metric = Union[Counter, Gauge, Histogram]


class Registry:
    """A name -> metric map with typed get-or-create accessors."""

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def counter(self, name: str, description: str = "") -> Counter:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Counter(name, description)
            self._metrics[name] = metric
        elif not isinstance(metric, Counter):
            raise MetricError(f"{name!r} is registered as a {metric.kind}")
        return metric

    def gauge(self, name: str, description: str = "") -> Gauge:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Gauge(name, description)
            self._metrics[name] = metric
        elif not isinstance(metric, Gauge):
            raise MetricError(f"{name!r} is registered as a {metric.kind}")
        return metric

    def histogram(self, name: str, description: str = "") -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, description)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise MetricError(f"{name!r} is registered as a {metric.kind}")
        return metric

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def value(self, name: str) -> Number | None:
        metric = self._metrics.get(name)
        return None if metric is None else metric.value

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def items(self) -> list[tuple[str, Metric]]:
        return sorted(self._metrics.items())

    def histograms(self) -> list[tuple[str, Histogram]]:
        """The registered histograms, sorted by name."""
        return [
            (name, metric)
            for name, metric in self.items()
            if isinstance(metric, Histogram)
        ]

    def reset(self) -> None:
        """Zero every metric (registrations and descriptions survive)."""
        for metric in self._metrics.values():
            metric.reset()

    def as_dict(self, skip_empty: bool = True) -> dict[str, Number]:
        """A JSON-friendly snapshot of current scalar values.

        Exact :class:`~fractions.Fraction` values are converted to float
        (counters are almost always ints; fractions appear only in gauges
        fed from the exact pipeline).  Histograms are not scalar and are
        excluded; snapshot them via :meth:`histograms_as_dict`.
        """
        out: dict[str, Number] = {}
        for name, metric in self.items():
            if isinstance(metric, Histogram):
                continue
            value = metric.value
            if skip_empty and (value is None or value == 0):
                continue
            if isinstance(value, Fraction):
                value = float(value)
            out[name] = value
        return out

    def histograms_as_dict(self, skip_empty: bool = True) -> dict[str, dict]:
        """JSON-able snapshots of the (non-empty, by default) histograms."""
        return {
            name: metric.as_dict()
            for name, metric in self.histograms()
            if metric.count or not skip_empty
        }


#: Metric name -> (kind, description).  The runtime's full vocabulary.
CATALOGUE: dict[str, tuple[str, str]] = {
    "evaluator.sum_terms": ("counter", "SumTerm expansions performed"),
    "evaluator.range_candidates": (
        "counter", "candidate tuples explored while enumerating rho(D, b)"),
    "evaluator.range_selected": (
        "counter", "tuples that satisfied the range-restriction guard"),
    "evaluator.determinism_checks": (
        "counter", "runtime determinism verifications of gamma"),
    "evaluator.end_sets": ("counter", "END-set computations"),
    "cad.decisions": ("counter", "full CAD decision-procedure runs"),
    "cad.cells": ("counter", "cells sampled while lifting CAD stacks"),
    "cad.section_roots": ("counter", "distinct section roots isolated during lifting"),
    "cad.projection_polys": (
        "counter", "polynomials produced by Collins projection (post-dedup)"),
    "fm.eliminations": ("counter", "Fourier-Motzkin variable eliminations"),
    "fm.disjuncts": ("counter", "DNF disjuncts processed during linear QE"),
    "fm.disjuncts_pruned": (
        "counter", "infeasible disjuncts dropped by the feasibility prune"),
    "fm.constraints_pruned": (
        "counter",
        "constraints dropped as constant-true, duplicate, or redundant"),
    "volume.cells": ("counter", "convex cells produced by formula decomposition"),
    "volume.polytopes": ("counter", "polytope-volume evaluations (incl. recursion)"),
    "volume.slices": ("counter", "interior slice samples taken by Theorem-3 slicing"),
    "volume.intersections": (
        "counter", "cell intersections formed by inclusion-exclusion"),
    "triangulate.simplices": ("counter", "simplices measured by the triangulators"),
    "mc.samples": ("counter", "hit-or-miss sample points drawn"),
    "mc.hits": ("counter", "hit-or-miss sample points inside the set"),
    "mc.hoeffding_sample_size": (
        "gauge", "last Hoeffding sample size chosen from (epsilon, delta)"),
    "km.sample_size": ("gauge", "last KM construction sample size M"),
    "km.atoms": ("gauge", "last KM formula-size lower bound: atoms"),
    "km.quantifiers": ("gauge", "last KM formula-size lower bound: quantifiers"),
    "sturm.sign_changes": ("counter", "sign variations counted in Sturm chains"),
    "sturm.evaluations": ("counter", "Sturm chain evaluations at a point"),
    "guard.checkpoints": (
        "counter", "cooperative budget checkpoints passed (flushed on deactivation)"),
    "guard.trips": ("counter", "budget exhaustions raised (all resources)"),
    "guard.trips.deadline": ("counter", "wall-clock deadline exhaustions"),
    "guard.trips.cells": ("counter", "cell-budget exhaustions"),
    "guard.trips.constraints": ("counter", "FM constraint-budget exhaustions"),
    "guard.trips.size": ("counter", "formula size-cap exhaustions"),
    "guard.trips.depth": ("counter", "recursion depth-cap exhaustions"),
    "guard.trips.store_ios": ("counter", "shared-store round-trip-cap exhaustions"),
    "guard.trips.retries": ("counter", "per-task retry-budget exhaustions"),
    "guard.fallback_transitions": (
        "counter", "degradation-ladder rung transitions after an exhausted attempt"),
    "engine.compile": ("counter", "query plans compiled (cache misses that ran)"),
    "engine.cache.hit": ("counter", "plan-cache lookups served from the cache"),
    "engine.cache.miss": ("counter", "plan-cache lookups that found no plan"),
    "engine.cache.eviction": ("counter", "plans evicted by the LRU size caps"),
    "engine.cache.spilled": ("counter", "plans written to a JSONL spill file"),
    "engine.cache.loaded": ("counter", "plans loaded from a JSONL spill file"),
    "engine.cache.entries": ("gauge", "plans currently held by the cache"),
    "engine.cache.cells": ("gauge", "total compiled cells held by the cache"),
    "engine.cache.load_skipped": (
        "counter", "unreadable spill-file lines skipped during a cache load"),
    "engine.store.hit": (
        "counter", "plan lookups served from the shared cross-process store"),
    "engine.store.miss": (
        "counter", "shared-store lookups that found no published plan"),
    "engine.store.publish": (
        "counter", "plans published to the shared store (exactly once per key)"),
    "engine.store.compile": (
        "counter", "plans compiled under a shared-store claim"),
    "engine.store.race": (
        "counter", "compile races lost: winner's published record adopted"),
    "engine.store.stale_claims": (
        "counter", "abandoned compile claims stolen from dead owners"),
    "engine.store.plans": (
        "gauge", "plans held by the shared store after the last batch"),
    "engine.store.fetch_s": (
        "histogram", "seconds to fetch and decode one plan from the shared store"),
    "engine.eval.volume": ("counter", "exact volume evaluations of prepared plans"),
    "engine.eval.memo_hit": (
        "counter", "volume evaluations answered by a plan's per-box memo"),
    "engine.eval.truth": ("counter", "point-membership evaluations of prepared plans"),
    "engine.eval.approx": ("counter", "Monte Carlo evaluations of prepared plans"),
    "engine.eval.decide": ("counter", "cached CAD decisions served"),
    "engine.batch.runs": ("counter", "batch-executor invocations"),
    "engine.batch.tasks": ("counter", "manifest tasks submitted to the executor"),
    "engine.batch.ok": ("counter", "batch tasks that completed successfully"),
    "engine.batch.errors": ("counter", "batch tasks that failed with a query error"),
    "engine.batch.budget_exceeded": (
        "counter", "batch tasks that exhausted their per-task budget"),
    "engine.batch.wall_s": ("gauge", "wall-clock seconds of the last batch"),
    "engine.batch.quarantined": (
        "counter", "batch tasks quarantined after exhausting their retry budget"),
    "engine.retry.attempts": (
        "counter", "task re-dispatches after a transient worker failure"),
    "engine.retry.exhausted": (
        "counter", "tasks whose retry budget ran out (they get quarantined)"),
    "engine.retry.backoff_s": (
        "histogram", "seconds slept (backoff + jitter) before a pool rebuild"),
    "engine.quarantine.tasks": (
        "counter", "poison tasks quarantined by the fault-tolerant executor"),
    "engine.quarantine.fallbacks": (
        "counter", "quarantined tasks answered by the in-process MC fallback"),
    "engine.pool.rebuilds": (
        "counter", "worker pools rebuilt after a crash broke them"),
    "engine.pool.hang_kills": (
        "counter", "hung workers shot by the hang watchdog"),
    "engine.journal.records": ("counter", "task records appended to a batch journal"),
    "engine.journal.resumed": (
        "counter", "journaled tasks replayed (skipped) by a resumed batch"),
    "engine.journal.truncated": (
        "counter", "torn or malformed journal lines skipped during replay"),
    "engine.store.lock_retries": (
        "counter", "SQLite busy/locked errors absorbed by the store's retry"),
    "engine.plan.compile_s": (
        "histogram", "seconds to compile one prepared query plan"),
    "engine.query.volume_s": (
        "histogram", "seconds per exact volume evaluation of a prepared plan"),
    "engine.query.mc_s": (
        "histogram", "seconds per Monte Carlo evaluation of a prepared plan"),
    "cad.cells_per_decision": (
        "histogram", "cells lifted per CAD decision-procedure run"),
    "guard.fallback.attempts": (
        "histogram", "exhausted ladder rungs per robust volume evaluation"),
    "serve.requests": (
        "counter", "HTTP requests received by the query service (all routes)"),
    "serve.queries": (
        "counter", "query tasks admitted for execution by the service"),
    "serve.ok": ("counter", "served tasks that completed successfully"),
    "serve.errors": ("counter", "served tasks that failed with a query error"),
    "serve.budget_exceeded": (
        "counter", "served tasks that exhausted their per-request budget"),
    "serve.shed": (
        "counter", "requests shed with 429 because the admission queue was full"),
    "serve.timeouts": (
        "counter",
        "requests whose deadline expired in the admission queue (never ran)"),
    "serve.coalesce.leads": (
        "counter", "cold content hashes whose compile one request led"),
    "serve.coalesce.waits": (
        "counter",
        "requests that waited on another request's in-flight compile"),
    "serve.queue.depth": (
        "gauge", "requests currently waiting in the admission queue"),
    "serve.inflight": (
        "gauge", "tasks currently dispatched to the worker pool"),
    "serve.draining": (
        "gauge", "1 while the server is draining after SIGTERM/SIGINT, else 0"),
    "serve.drain.aborted": (
        "counter", "in-flight tasks abandoned when the drain timeout expired"),
    "serve.queue_wait_s": (
        "histogram", "seconds a request spent in the admission queue"),
    "serve.latency_s": (
        "histogram",
        "end-to-end seconds from admission to response per served task"),
    "serve.slow_queries": (
        "counter", "requests that exceeded the --slow-query-s threshold"),
    "trace.spans_dropped": (
        "counter", "spans dropped after a trace hit the MAX_SPANS cap"),
    "realalg.cache.hit": (
        "counter", "Sturm-chain / square-free lru_cache lookups served cached"),
    "realalg.cache.miss": (
        "counter", "Sturm-chain / square-free lru_cache lookups that computed"),
}


def _fresh_registry() -> Registry:
    registry = Registry()
    for name, (kind, description) in CATALOGUE.items():
        if kind == "counter":
            registry.counter(name, description)
        elif kind == "histogram":
            registry.histogram(name, description)
        else:
            registry.gauge(name, description)
    return registry


#: The process-wide registry used by the instrumented pipeline.
REGISTRY = _fresh_registry()

_enabled = False


def counting_enabled() -> bool:
    return _enabled


def enable_counting() -> None:
    global _enabled
    _enabled = True


def disable_counting() -> None:
    global _enabled
    _enabled = False


def add(name: str, amount: Number = 1) -> None:
    """Increment a counter; a near-free no-op while collection is off."""
    if not _enabled:
        return
    REGISTRY.counter(name).add(amount)


def set_gauge(name: str, value: Number) -> None:
    """Record a gauge value; a near-free no-op while collection is off."""
    if not _enabled:
        return
    REGISTRY.gauge(name).set(value)


#: Set by :mod:`repro.obs.trace` at import: a zero-argument callable
#: returning the active trace id (or ``None``).  A hook rather than an
#: import because trace.py imports this module.
_trace_id_provider = None


def observe_value(
    name: str, value: Number, trace_id: "str | None" = None
) -> None:
    """Record a histogram observation; a near-free no-op while off.

    The disabled path is the same single boolean test as :func:`add`, so
    instrumenting a hot loop with a histogram costs the same as a counter
    when nobody is collecting (``benchmarks/bench_obs_overhead.py`` pins
    the ratio under 2x).

    *trace_id* tags the observation's bucket with an OpenMetrics
    exemplar; when omitted, the id of the thread's active trace context
    (if any) is used, so instrumented code inside a request trace gets
    exemplars for free.
    """
    if not _enabled:
        return
    if trace_id is None and _trace_id_provider is not None:
        trace_id = _trace_id_provider()
    REGISTRY.histogram(name).observe(float(value), trace_id=trace_id)
