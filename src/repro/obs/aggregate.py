"""Cross-process telemetry: per-task snapshots and deterministic merging.

The batch executor (:mod:`repro.engine.executor`) runs tasks in worker
*processes*; their spans and counters would die with the worker.  This
module is the bridge:

* :func:`task_observation` wraps one task in its own trace and a
  **delta** view of the process registry — the task's counters,
  gauges, histograms, and span forest are captured and then *removed*
  from the ambient registry, so serial and parallel execution hand the
  parent identical material to merge;
* :func:`merge_snapshot_into` folds a snapshot back into a registry —
  counter addition, exact histogram bucket merge, last-writer gauges —
  in task order, so the merged result is independent of worker count
  and scheduling;
* :func:`task_record` / :func:`summary_record` render the harvest as
  ``repro.obs/v2`` JSONL for ``repro batch --trace-out``: one record per
  task plus one run summary.

**Byte stability.**  Task records are deterministic for a fixed
``(manifest, seed)``: spans are exported *structurally* (name, attrs,
nesting, error — no durations), ``worker_pid`` is elided, and histograms
appear as observation counts only.  Wall-clock material (span durations,
histogram buckets/sums, pids) lives in the run summary record, which is
the part that legitimately differs between runs.  Sorting task records
by ``task`` therefore yields byte-identical files for ``--workers 1``
and ``--workers 4``.

Snapshots travel embedded in a task's result dict under the ``"obs"``
key; they are plain JSON so they cross the process-pool pickle boundary
unchanged.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Iterator, Mapping, Sequence

from .export import SCHEMA, span_from_dict, span_to_dict
from .histogram import Histogram
from .metrics import (
    CATALOGUE,
    Counter,
    Gauge,
    REGISTRY,
    Registry,
    counting_enabled,
    disable_counting,
    enable_counting,
)
from .trace import SpanRecord, TraceContext, start_trace, stop_trace, _state

__all__ = [
    "TASK_EXPERIMENT",
    "SUMMARY_EXPERIMENT",
    "TaskObservation",
    "task_observation",
    "merge_snapshot_into",
    "merged_registry",
    "stable_span",
    "task_record",
    "summary_record",
    "registry_from_records",
    "request_trace",
]

#: ``experiment`` tags of the two record shapes ``--trace-out`` emits.
TASK_EXPERIMENT = "repro.batch.task"
SUMMARY_EXPERIMENT = "repro.batch.summary"


class TaskObservation:
    """Holder filled when a :func:`task_observation` block exits."""

    __slots__ = ("snapshot",)

    def __init__(self) -> None:
        self.snapshot: dict[str, Any] | None = None


def _description(name: str) -> str:
    kind_description = CATALOGUE.get(name)
    return kind_description[1] if kind_description else ""


def _scalar(value: Any) -> Any:
    """JSON-safe metric value (exact Fractions become floats, as in export)."""
    from fractions import Fraction

    return float(value) if isinstance(value, Fraction) else value


@contextmanager
def task_observation(
    trace_ctx: "Mapping[str, Any] | TraceContext | None" = None,
) -> Iterator[TaskObservation]:
    """Observe one task as a self-contained delta.

    On entry: the ambient trace is parked, a fresh per-task trace starts,
    counting turns on, and the process registry is checkpointed (fresh
    histogram objects are swapped in so per-task min/max are exact).  On
    exit: the task's *delta* — counters grown, gauges changed, histogram
    observations, span forest — becomes ``holder.snapshot``, the ambient
    registry is restored to its checkpoint, and the previous trace and
    counting state come back.  The ambient registry is left untouched on
    purpose: the parent re-applies snapshots via
    :func:`merge_snapshot_into`, identically for in-process (serial) and
    cross-process (worker) tasks.

    *trace_ctx* (a :class:`~repro.obs.trace.TraceContext` or its dict
    form, handed across the process-pool boundary) attributes the task's
    trace to an end-to-end request: histogram observations inside the
    block pick up its trace id as exemplars, and the snapshot records it
    under a ``"trace"`` key so the parent can reparent the harvested span
    forest under the request's trace root.  Byte-stable task records
    never read the key (see :func:`task_record`).
    """
    registry = REGISTRY
    if trace_ctx is not None and not isinstance(trace_ctx, TraceContext):
        trace_ctx = TraceContext.from_dict(trace_ctx)
    previous_trace = stop_trace()
    was_counting = counting_enabled()

    counter_base: dict[str, Any] = {}
    gauge_base: dict[str, Any] = {}
    swapped: dict[str, Histogram] = {}
    for name, metric in list(registry._metrics.items()):
        if isinstance(metric, Counter):
            counter_base[name] = metric.value
        elif isinstance(metric, Gauge):
            gauge_base[name] = metric.value
        elif isinstance(metric, Histogram):
            swapped[name] = metric
            registry._metrics[name] = Histogram(name, metric.description)

    enable_counting()
    trace = start_trace("task", context=trace_ctx)
    holder = TaskObservation()
    try:
        yield holder
    finally:
        stop_trace()
        counters: dict[str, Any] = {}
        gauges: dict[str, Any] = {}
        histograms: dict[str, Any] = {}
        for name, metric in list(registry._metrics.items()):
            if isinstance(metric, Counter):
                base = counter_base.get(name, 0)
                delta = metric.value - base
                if delta:
                    counters[name] = _scalar(delta)
                metric.value = base
            elif isinstance(metric, Gauge):
                base = gauge_base.get(name)
                if metric.value is not None and metric.value != base:
                    gauges[name] = _scalar(metric.value)
                metric.value = base
            elif isinstance(metric, Histogram):
                if metric.count:
                    histograms[name] = metric.as_dict()
        # Put the checkpointed histogram objects back (identity matters:
        # outer code may hold references from registry.histogram()).
        for name, original in swapped.items():
            registry._metrics[name] = original
        snapshot: dict[str, Any] = {"worker_pid": os.getpid()}
        if trace_ctx is not None:
            snapshot["trace"] = trace_ctx.to_dict()
        if counters:
            snapshot["counters"] = counters
        if gauges:
            snapshot["gauges"] = gauges
        if histograms:
            snapshot["histograms"] = histograms
        if trace.roots:
            snapshot["spans"] = [span_to_dict(r) for r in trace.roots]
        if trace.dropped_spans:
            snapshot["dropped"] = trace.dropped_spans
        holder.snapshot = snapshot
        if previous_trace is not None:
            _state.trace = previous_trace
        if not was_counting:
            disable_counting()


def merge_snapshot_into(registry: Registry, snapshot: Mapping[str, Any]) -> None:
    """Fold one task snapshot into *registry* (parent-side merge).

    Counters add, histograms merge bucket-exactly, gauges take the
    snapshot's value (callers apply snapshots in manifest/task order, so
    "last task that set it" wins deterministically).
    """
    for name, value in (snapshot.get("counters") or {}).items():
        registry.counter(name, _description(name)).add(value)
    for name, value in (snapshot.get("gauges") or {}).items():
        registry.gauge(name, _description(name)).set(value)
    for name, data in (snapshot.get("histograms") or {}).items():
        registry.histogram(name, _description(name)).merge_dict(data)
    dropped = snapshot.get("dropped", 0)
    if dropped:
        registry.counter(
            "trace.spans_dropped", _description("trace.spans_dropped")
        ).add(dropped)


def merged_registry(results: Sequence[Mapping[str, Any]]) -> Registry:
    """A fresh registry holding the merge of every result's snapshot."""
    registry = Registry()
    for result in results:
        snapshot = result.get("obs")
        if snapshot:
            merge_snapshot_into(registry, snapshot)
    return registry


def snapshot_spans(snapshot: Mapping[str, Any], task: int) -> list[SpanRecord]:
    """Re-materialise a snapshot's span forest, tagging roots ``task=i``."""
    roots = []
    for data in snapshot.get("spans") or []:
        record = span_from_dict(data)
        record.attrs = {"task": task, **record.attrs}
        roots.append(record)
    return roots


def request_trace(
    snapshot: Mapping[str, Any],
    ctx: TraceContext,
    name: str = "serve.request",
    attrs: Mapping[str, Any] | None = None,
) -> SpanRecord:
    """Reparent a worker snapshot's span forest under a request root.

    Builds a root :class:`SpanRecord` named *name* carrying the request's
    ``trace_id``/``span_id`` in its attrs, with the snapshot's spans as
    children — the harvested worker forest, attributed back to the
    request that caused it.  The snapshot's own ``"trace"`` record (the
    context the worker actually ran under) is the proof of propagation:
    callers can assert it matches *ctx*.
    """
    root = SpanRecord(
        name=name,
        attrs={
            "trace_id": ctx.trace_id,
            "span_id": ctx.span_id,
            **(attrs or {}),
        },
    )
    for data in snapshot.get("spans") or []:
        root.children.append(span_from_dict(data))
    return root


def stable_span(data: Mapping[str, Any]) -> dict[str, Any]:
    """The byte-stable view of one exported span dict.

    Keeps the deterministic structure — name, attributes, error,
    children — and drops wall-clock durations, which is what lets task
    records from different worker counts compare byte-for-byte.
    """
    out: dict[str, Any] = {"name": data.get("name")}
    if data.get("attrs"):
        out["attrs"] = dict(data["attrs"])
    if data.get("error"):
        out["error"] = data["error"]
    if data.get("children"):
        out["children"] = [stable_span(c) for c in data["children"]]
    return out


def task_record(result: Mapping[str, Any], task: int) -> dict[str, Any]:
    """One byte-stable ``repro.obs/v2`` record for a finished task.

    ``task`` is the manifest position (results arrive in manifest order).
    ``worker_pid`` and all timing material are elided — see the module
    docstring for the stability contract.
    """
    snapshot = result.get("obs") or {}
    record: dict[str, Any] = {
        "schema": SCHEMA,
        "experiment": TASK_EXPERIMENT,
        "task": task,
        "id": result.get("id"),
        "op": result.get("op"),
        "status": result.get("status"),
        "seed": result.get("seed"),
    }
    # Deterministic (parent-computed) plan-cache provenance — byte-stable,
    # unlike the racy hit/miss events workers actually observed.
    if result.get("cache") is not None:
        record["cache"] = dict(result["cache"])
    # The task's trace context is derived from (seed, index), so it is
    # byte-stable too — and lets a trace-out file cross-reference logs.
    if snapshot.get("trace"):
        record["trace"] = dict(snapshot["trace"])
    counters = snapshot.get("counters")
    if counters:
        record["counters"] = dict(counters)
    gauges = snapshot.get("gauges")
    if gauges:
        record["gauges"] = dict(gauges)
    histograms = snapshot.get("histograms")
    if histograms:
        record["histograms"] = {
            name: data.get("count", 0) for name, data in histograms.items()
        }
    spans = snapshot.get("spans")
    if spans:
        record["spans"] = [
            {**stable_span(span), "attrs": {
                "task": task, **(span.get("attrs") or {})
            }}
            for span in spans
        ]
    if snapshot.get("dropped"):
        record["dropped"] = snapshot["dropped"]
    return record


def summary_record(
    results: Sequence[Mapping[str, Any]],
    extra: Mapping[str, Any] | None = None,
    extra_metrics: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """The run-level merge: full histograms, merged counters, status tally.

    This is the record that carries timing (histogram buckets and sums),
    so it is *not* byte-stable between runs — by design.  ``extra_metrics``
    is an optional snapshot-shaped mapping (``counters`` / ``gauges`` /
    ``histograms`` sections) merged in on top of the task harvest — the
    CLI uses it for metrics the tasks themselves cannot see, like the
    shared plan store's cross-process traffic delta.
    """
    registry = merged_registry(results)
    if extra_metrics:
        merge_snapshot_into(registry, extra_metrics)
    tally = {"ok": 0, "budget-exceeded": 0, "error": 0}
    for result in results:
        status = result.get("status", "error")
        tally[status] = tally.get(status, 0) + 1
    record: dict[str, Any] = {
        "schema": SCHEMA,
        "experiment": SUMMARY_EXPERIMENT,
        "tasks": len(results),
        "ok": tally["ok"],
        "budget_exceeded": tally["budget-exceeded"],
        "errors": tally["error"],
    }
    # Only present when nonzero, so pre-fault-tolerance summaries replay
    # byte-identically.
    if tally.get("quarantined"):
        record["quarantined"] = tally["quarantined"]
    # Counters and gauges go to *separate* sections (unlike Registry.as_dict)
    # so replaying the record re-registers each name with its right type.
    counters: dict[str, Any] = {}
    gauges: dict[str, Any] = {}
    for name, metric in registry.items():
        if isinstance(metric, Counter) and metric.value:
            counters[name] = _scalar(metric.value)
        elif isinstance(metric, Gauge) and metric.value is not None:
            gauges[name] = _scalar(metric.value)
    if counters:
        record["counters"] = counters
    if gauges:
        record["gauges"] = gauges
    histograms = registry.histograms_as_dict(skip_empty=True)
    if histograms:
        record["histograms"] = histograms
    if extra:
        record.update(extra)
    return record


def registry_from_records(records: Sequence[Mapping[str, Any]]) -> Registry:
    """Rebuild a merged registry from a ``--trace-out`` file's records.

    The run summary (full histogram data) is authoritative when present;
    otherwise counters accumulate from task records and histograms
    degrade to observation counts (task records elide timing).  Files
    with neither shape — e.g. ``--json`` records from any CLI command —
    fall back to a generic snapshot merge of every record, so
    ``repro metrics`` can replay them too.
    """
    registry = Registry()
    summaries = [
        r for r in records if r.get("experiment") == SUMMARY_EXPERIMENT
    ]
    if summaries:
        for summary in summaries:
            merge_snapshot_into(registry, summary)
        return registry
    if not any(r.get("experiment") == TASK_EXPERIMENT for r in records):
        for record in records:
            merge_snapshot_into(registry, record)
        return registry
    for record in records:
        if record.get("experiment") != TASK_EXPERIMENT:
            continue
        counters = record.get("counters") or {}
        for name, value in counters.items():
            registry.counter(name, _description(name)).add(value)
        for name, value in (record.get("gauges") or {}).items():
            registry.gauge(name, _description(name)).set(value)
        for name, count in (record.get("histograms") or {}).items():
            # Count-only degradation: the observations exist but their
            # timing stayed in the (absent) summary record.
            registry.histogram(name, _description(name)).merge_dict(
                {"count": count, "sum": 0.0, "buckets": {}}
            )
        if record.get("dropped"):
            registry.counter(
                "trace.spans_dropped", _description("trace.spans_dropped")
            ).add(record["dropped"])
    return registry
