"""Thread-local tracing: nested, monotonically-clocked spans.

A :class:`Trace` is a forest of :class:`SpanRecord` nodes built by the
``span(name, **attrs)`` context manager.  Tracing is *off* by default and
the disabled path is a single thread-local attribute read returning a
shared no-op context manager, so instrumented hot paths cost well under a
microsecond per call when nobody is collecting.

Timing uses :func:`time.perf_counter` (monotonic); wall-clock timestamps
never enter span records, keeping traces comparable across runs.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from . import metrics

__all__ = [
    "SpanRecord",
    "Trace",
    "span",
    "current_trace",
    "tracing_enabled",
    "start_trace",
    "stop_trace",
    "collect",
    "MAX_SPANS",
]

#: Soft cap on recorded spans per trace; beyond it spans are counted but
#: not materialised, so a runaway recursion cannot exhaust memory.
MAX_SPANS = 100_000


@dataclass
class SpanRecord:
    """One completed (or still-open) span in the trace forest."""

    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["SpanRecord"] = field(default_factory=list)
    start_s: float = 0.0
    duration_s: float = 0.0
    error: str | None = None

    def total_children(self) -> int:
        return len(self.children) + sum(c.total_children() for c in self.children)


class Trace:
    """A forest of spans recorded on one thread."""

    __slots__ = ("name", "roots", "dropped_spans", "_stack", "_count")

    def __init__(self, name: str = "trace"):
        self.name = name
        self.roots: list[SpanRecord] = []
        #: Spans not materialised because MAX_SPANS was exceeded.
        self.dropped_spans = 0
        self._stack: list[SpanRecord] = []
        self._count = 0

    def span_count(self) -> int:
        return self._count

    def adopt(self, record: SpanRecord) -> None:
        """Graft an externally-built span subtree as a new root.

        Used by the batch executor's parent process to fold worker-task
        span forests into its own trace; the adopted spans count toward
        :meth:`span_count` but are exempt from :data:`MAX_SPANS` (they
        were already capped in the process that recorded them).
        """
        self.roots.append(record)
        self._count += 1 + record.total_children()

    def depth(self) -> int:
        """Maximum nesting depth over the whole forest."""

        def deep(record: SpanRecord) -> int:
            return 1 + max((deep(c) for c in record.children), default=0)

        return max((deep(r) for r in self.roots), default=0)


class _State(threading.local):
    trace: Trace | None = None


_state = _State()


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager recording one span into the active trace."""

    __slots__ = ("_trace", "record")

    def __init__(self, trace: Trace, name: str, attrs: dict[str, Any]):
        self._trace = trace
        self.record = SpanRecord(name=name, attrs=attrs)

    def set(self, **attrs: Any) -> None:
        """Attach attributes after the span has been opened."""
        self.record.attrs.update(attrs)

    def __enter__(self) -> "_LiveSpan":
        trace = self._trace
        trace._count += 1
        if trace._count > MAX_SPANS:
            trace.dropped_spans += 1
            # Dropping is never silent: surface it as a counter too, so a
            # truncated trace is visible in any metrics snapshot even when
            # nobody inspects the trace object itself.  Off the hot path
            # (only runs past the cap), so the registry write is
            # unconditional rather than gated on counting_enabled().
            metrics.REGISTRY.counter("trace.spans_dropped").add()
        else:
            sink = trace._stack[-1].children if trace._stack else trace.roots
            sink.append(self.record)
            trace._stack.append(self.record)
        self.record.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        record = self.record
        record.duration_s = time.perf_counter() - record.start_s
        if exc_type is not None:
            record.error = exc_type.__name__
        stack = self._trace._stack
        # Unwind to this record even if inner spans leaked (a child raised
        # without its __exit__ running cannot happen with `with`, but be
        # defensive: generators suspended inside spans can strand frames).
        while stack:
            top = stack.pop()
            if top is record:
                break
        return False


def span(name: str, **attrs: Any) -> "_LiveSpan | _NullSpan":
    """Open a timed span; no-op when tracing is disabled.

    Usage::

        with span("qe.cad.decide", variables=3):
            ...
    """
    trace = _state.trace
    if trace is None:
        return _NULL_SPAN
    return _LiveSpan(trace, name, attrs)


def current_trace() -> Trace | None:
    """The trace active on this thread, if any."""
    return _state.trace


def tracing_enabled() -> bool:
    return _state.trace is not None


def start_trace(name: str = "trace") -> Trace:
    """Install a fresh trace on this thread and return it."""
    trace = Trace(name)
    _state.trace = trace
    return trace


def stop_trace() -> Trace | None:
    """Detach and return this thread's trace (``None`` if not tracing)."""
    trace = _state.trace
    _state.trace = None
    return trace


@contextmanager
def collect(name: str = "trace") -> Iterator[Trace]:
    """Trace everything inside the ``with`` block::

        with collect("experiment") as trace:
            run()
        print(format_span_tree(trace))
    """
    trace = start_trace(name)
    try:
        yield trace
    finally:
        if _state.trace is trace:
            _state.trace = None
