"""Thread-local tracing: nested, monotonically-clocked spans.

A :class:`Trace` is a forest of :class:`SpanRecord` nodes built by the
``span(name, **attrs)`` context manager.  Tracing is *off* by default and
the disabled path is a single thread-local attribute read returning a
shared no-op context manager, so instrumented hot paths cost well under a
microsecond per call when nobody is collecting.

Timing uses :func:`time.perf_counter` (monotonic); wall-clock timestamps
never enter span records, keeping traces comparable across runs.

A trace may carry a :class:`TraceContext` — a W3C-style
``trace_id``/``span_id`` pair that identifies *which request or batch
task* the span forest belongs to.  The context crosses process
boundaries as a plain dict (see :func:`TraceContext.to_dict`), so worker
span forests harvested by a parent can be re-attributed to the request
that caused them, and the ``traceparent`` helpers interoperate with
external W3C Trace Context propagation.
"""

from __future__ import annotations

import os as _os
import re
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from . import metrics

__all__ = [
    "SpanRecord",
    "Trace",
    "TraceContext",
    "new_trace_id",
    "new_span_id",
    "span",
    "current_trace",
    "current_trace_id",
    "tracing_enabled",
    "start_trace",
    "stop_trace",
    "collect",
    "MAX_SPANS",
]

#: Soft cap on recorded spans per trace; beyond it spans are counted but
#: not materialised, so a runaway recursion cannot exhaust memory.
MAX_SPANS = 100_000


def new_trace_id() -> str:
    """A fresh random 128-bit trace id (32 lowercase hex chars)."""
    return _os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh random 64-bit span id (16 lowercase hex chars)."""
    return _os.urandom(8).hex()


#: ``traceparent: 00-<32 hex>-<16 hex>-<2 hex>`` (W3C Trace Context).
_TRACEPARENT = re.compile(
    r"^00-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)


@dataclass(frozen=True)
class TraceContext:
    """W3C-style request identity: which trace a span forest belongs to.

    ``trace_id`` names the end-to-end request (or batch task) and is
    shared by every process that works on it; ``span_id`` names the
    current hop, and ``parent_span_id`` the hop that caused it (``None``
    at the root).  Instances are frozen so a context can be shared
    freely; derive new hops with :meth:`child`.
    """

    trace_id: str
    span_id: str
    parent_span_id: str | None = None

    @classmethod
    def mint(cls) -> "TraceContext":
        """A brand-new root context with random ids."""
        return cls(trace_id=new_trace_id(), span_id=new_span_id())

    def child(self) -> "TraceContext":
        """A new hop under this one: same trace, fresh span id."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=new_span_id(),
            parent_span_id=self.span_id,
        )

    # -- wire formats ------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """The JSON-safe form that crosses the process-pool boundary."""
        out: dict[str, Any] = {
            "trace_id": self.trace_id, "span_id": self.span_id,
        }
        if self.parent_span_id is not None:
            out["parent_span_id"] = self.parent_span_id
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceContext":
        return cls(
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_span_id=(
                None if data.get("parent_span_id") is None
                else str(data["parent_span_id"])
            ),
        )

    def traceparent(self) -> str:
        """This context as a W3C ``traceparent`` header value."""
        return f"00-{self.trace_id}-{self.span_id}-01"

    @classmethod
    def parse_traceparent(cls, header: "str | None") -> "TraceContext | None":
        """Parse a ``traceparent`` header; ``None`` when absent/malformed.

        Per the W3C spec, an all-zero trace or span id is invalid and is
        rejected the same as a syntax error — the caller should mint a
        fresh context rather than propagate a broken one.
        """
        if not header:
            return None
        match = _TRACEPARENT.match(header.strip().lower())
        if match is None:
            return None
        trace_id, span_id = match.group(1), match.group(2)
        if set(trace_id) == {"0"} or set(span_id) == {"0"}:
            return None
        return cls(trace_id=trace_id, span_id=span_id)


@dataclass
class SpanRecord:
    """One completed (or still-open) span in the trace forest."""

    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["SpanRecord"] = field(default_factory=list)
    start_s: float = 0.0
    duration_s: float = 0.0
    error: str | None = None

    def total_children(self) -> int:
        return len(self.children) + sum(c.total_children() for c in self.children)


class Trace:
    """A forest of spans recorded on one thread."""

    __slots__ = (
        "name", "roots", "dropped_spans", "context", "_stack", "_count",
    )

    def __init__(
        self, name: str = "trace", context: "TraceContext | None" = None
    ):
        self.name = name
        self.roots: list[SpanRecord] = []
        #: Spans not materialised because MAX_SPANS was exceeded.
        self.dropped_spans = 0
        #: The request/task identity this forest belongs to, if any.
        self.context = context
        self._stack: list[SpanRecord] = []
        self._count = 0

    def span_count(self) -> int:
        return self._count

    def adopt(self, record: SpanRecord) -> None:
        """Graft an externally-built span subtree as a new root.

        Used by the batch executor's parent process to fold worker-task
        span forests into its own trace; the adopted spans count toward
        :meth:`span_count` but are exempt from :data:`MAX_SPANS` (they
        were already capped in the process that recorded them).
        """
        self.roots.append(record)
        self._count += 1 + record.total_children()

    def depth(self) -> int:
        """Maximum nesting depth over the whole forest."""

        def deep(record: SpanRecord) -> int:
            return 1 + max((deep(c) for c in record.children), default=0)

        return max((deep(r) for r in self.roots), default=0)


class _State(threading.local):
    trace: Trace | None = None


_state = _State()


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager recording one span into the active trace."""

    __slots__ = ("_trace", "record")

    def __init__(self, trace: Trace, name: str, attrs: dict[str, Any]):
        self._trace = trace
        self.record = SpanRecord(name=name, attrs=attrs)

    def set(self, **attrs: Any) -> None:
        """Attach attributes after the span has been opened."""
        self.record.attrs.update(attrs)

    def __enter__(self) -> "_LiveSpan":
        trace = self._trace
        trace._count += 1
        if trace._count > MAX_SPANS:
            trace.dropped_spans += 1
            # Dropping is never silent: surface it as a counter too, so a
            # truncated trace is visible in any metrics snapshot even when
            # nobody inspects the trace object itself.  Off the hot path
            # (only runs past the cap), so the registry write is
            # unconditional rather than gated on counting_enabled().
            metrics.REGISTRY.counter("trace.spans_dropped").add()
        else:
            sink = trace._stack[-1].children if trace._stack else trace.roots
            sink.append(self.record)
            trace._stack.append(self.record)
        self.record.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        record = self.record
        record.duration_s = time.perf_counter() - record.start_s
        if exc_type is not None:
            record.error = exc_type.__name__
        stack = self._trace._stack
        # Unwind to this record even if inner spans leaked (a child raised
        # without its __exit__ running cannot happen with `with`, but be
        # defensive: generators suspended inside spans can strand frames).
        while stack:
            top = stack.pop()
            if top is record:
                break
        return False


def span(name: str, **attrs: Any) -> "_LiveSpan | _NullSpan":
    """Open a timed span; no-op when tracing is disabled.

    Usage::

        with span("qe.cad.decide", variables=3):
            ...
    """
    trace = _state.trace
    if trace is None:
        return _NULL_SPAN
    return _LiveSpan(trace, name, attrs)


def current_trace() -> Trace | None:
    """The trace active on this thread, if any."""
    return _state.trace


def tracing_enabled() -> bool:
    return _state.trace is not None


def current_trace_id() -> str | None:
    """The trace id of this thread's active trace context, if any.

    This is the exemplar hook: histogram observations made while a
    context-carrying trace is active pick up its trace id automatically
    (see :func:`repro.obs.metrics.observe_value`).
    """
    trace = _state.trace
    if trace is None or trace.context is None:
        return None
    return trace.context.trace_id


def start_trace(
    name: str = "trace", context: "TraceContext | None" = None
) -> Trace:
    """Install a fresh trace on this thread and return it.

    *context* attaches a request/task identity to the new trace; spans
    recorded under it are attributable to that trace id when harvested.
    """
    trace = Trace(name, context=context)
    _state.trace = trace
    return trace


def stop_trace() -> Trace | None:
    """Detach and return this thread's trace (``None`` if not tracing)."""
    trace = _state.trace
    _state.trace = None
    return trace


@contextmanager
def collect(name: str = "trace") -> Iterator[Trace]:
    """Trace everything inside the ``with`` block::

        with collect("experiment") as trace:
            run()
        print(format_span_tree(trace))
    """
    trace = start_trace(name)
    try:
        yield trace
    finally:
        if _state.trace is trace:
            _state.trace = None


# Exemplar auto-pull: metrics.observe_value asks this module (via the
# hook, avoiding a circular import — trace already imports metrics) for
# the active trace id when the caller did not pass one explicitly.
metrics._trace_id_provider = current_trace_id
