"""Chrome trace-event export: span forests as a Perfetto timeline.

Converts ``repro.obs/v2`` trajectory records and ``repro.slowquery/v1``
slow-query records into the `Chrome trace-event JSON format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_,
which ``chrome://tracing`` and https://ui.perfetto.dev load directly::

    {"traceEvents": [...], "displayTimeUnit": "ms"}

Each input record becomes one **process lane** (``pid``), named after
its experiment / trace id via a ``"M"`` (metadata) ``process_name``
event; its span forest becomes ``"X"`` (complete) events with
microsecond ``ts`` / ``dur``.

Two impedance mismatches are bridged deliberately:

* **No start offsets.**  Exported span dicts carry durations but not
  start times (process-local offsets are dropped so task records stay
  byte-comparable).  The timeline is therefore *synthesized*: siblings
  are laid out sequentially, each child starting where the previous one
  ended, at the parent's start.  Relative widths and nesting are
  faithful; gaps and true concurrency are not represented.
* **Byte-stable records elide durations entirely** (``duration_s`` is
  ``0``).  A zero-width event is invisible in Perfetto, so durations
  are synthesized bottom-up: a leaf gets :data:`MIN_DUR_US`, a parent
  gets at least the sum of its (laid-out) children.  The shape of the
  tree survives; absolute times are meaningless for such records.

Timestamps are monotone and non-negative within every lane — the
invariant the schema check in CI asserts.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "MIN_DUR_US",
    "span_events",
    "record_events",
    "perfetto_json",
    "render_perfetto",
]

#: Synthesized width (µs) of a span whose record carries no duration.
MIN_DUR_US = 1


def _recorded_dur_us(span: Mapping[str, Any]) -> int:
    try:
        return max(0, int(round(float(span.get("duration_s") or 0.0) * 1e6)))
    except (TypeError, ValueError):
        return 0


def span_events(
    span: Mapping[str, Any],
    pid: int,
    tid: int = 1,
    start_us: int = 0,
) -> tuple[list[dict[str, Any]], int]:
    """Trace events for one span dict (children included), laid out
    sequentially from *start_us*; returns ``(events, end_us)``.

    The parent's event is emitted first (Perfetto renders enclosing
    "X" events as the outer slice), spanning at least its children.
    """
    children = span.get("children") or []
    child_events: list[dict[str, Any]] = []
    cursor = start_us
    for child in children:
        events, cursor = span_events(child, pid, tid, cursor)
        child_events.extend(events)
    dur = max(_recorded_dur_us(span), cursor - start_us, MIN_DUR_US)
    event: dict[str, Any] = {
        "name": str(span.get("name", "?")),
        "ph": "X",
        "ts": start_us,
        "dur": dur,
        "pid": pid,
        "tid": tid,
    }
    args: dict[str, Any] = dict(span.get("attrs") or {})
    if span.get("error"):
        args["error"] = span["error"]
    if args:
        event["args"] = args
    return [event] + child_events, start_us + dur


def _lane_name(record: Mapping[str, Any], pid: int) -> str:
    """A human-facing process-lane label for one record."""
    schema = record.get("schema", "")
    if schema == "repro.slowquery/v1":
        trace_id = str(record.get("trace_id", ""))[:8]
        return f"slowquery {trace_id or pid} ({record.get('path', '?')})"
    parts = [str(record.get("experiment") or schema or "record")]
    if record.get("id") is not None:
        parts.append(str(record["id"]))
    elif record.get("task") is not None:
        parts.append(f"task {record['task']}")
    else:
        row = record.get("row")
        if isinstance(row, Mapping):
            task = row.get("task") if "task" in row else row.get("id")
            if task is not None:
                parts.append(str(task))
    trace = record.get("trace")
    if isinstance(trace, Mapping) and trace.get("trace_id"):
        parts.append(f"[{str(trace['trace_id'])[:8]}]")
    return " ".join(parts)


def record_events(
    record: Mapping[str, Any], pid: int
) -> list[dict[str, Any]]:
    """All trace events for one trajectory / slow-query record.

    Returns ``[]`` for records with no span forest (pure counter rows):
    they have no timeline to draw.
    """
    spans = record.get("spans") or []
    if not spans:
        return []
    events: list[dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "ts": 0,
        "pid": pid,
        "tid": 1,
        "args": {"name": _lane_name(record, pid)},
    }]
    cursor = 0
    for span in spans:
        span_evts, cursor = span_events(span, pid, 1, cursor)
        events.extend(span_evts)
    return events


def perfetto_json(
    records: Iterable[Mapping[str, Any]]
) -> dict[str, Any]:
    """The complete Chrome trace-event document for *records*.

    One process lane per record that carries spans; records without a
    span forest contribute nothing (and cost no empty lane).
    """
    trace_events: list[dict[str, Any]] = []
    pid = 0
    for record in records:
        events = record_events(record, pid + 1)
        if events:
            pid += 1
            trace_events.extend(events)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def render_perfetto(records: Sequence[Mapping[str, Any]]) -> str:
    """:func:`perfetto_json` serialized, ready to write to a file."""
    return json.dumps(perfetto_json(records), sort_keys=True)
