"""Parse Prometheus / OpenMetrics text exposition back into numbers.

The inverse of :mod:`repro.obs.promexport`, used by ``repro top`` to
turn a live ``/metrics`` scrape into a render-able snapshot without a
client library.  It understands exactly the dialect the exporter emits
(plus enough generality for hand-written fixtures):

* ``# HELP`` / ``# TYPE`` comments (recorded, otherwise ignored);
* plain samples ``name 3`` and labelled samples ``name{le="0.1"} 4``;
* the OpenMetrics exemplar suffix on bucket lines::

      repro_serve_latency_s_bucket{le="0.1"} 4 # {trace_id="4bf9..."} 0.073

* histogram family reassembly: ``*_bucket`` / ``*_sum`` / ``*_count``
  series fold into one :class:`ParsedHistogram` keyed by the base name.

Unparseable lines are skipped, not fatal — a scrape mid-flight from a
foreign exporter must degrade to "fewer panels", not a stack trace.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "ParsedHistogram",
    "MetricsSnapshot",
    "parse_prometheus",
    "quantile_from_buckets",
]

_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"          # metric name
    r"(?:\{([^}]*)\})?"                      # optional label set
    r"\s+(\S+)"                              # value
    r"(?:\s+#\s+\{([^}]*)\}\s+(\S+))?"       # optional exemplar
    r"\s*$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _number(text: str) -> float | None:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        return None


@dataclass
class ParsedHistogram:
    """One reassembled histogram family from a scrape."""

    #: Cumulative buckets in ascending ``le`` order: ``(le, cum_count)``.
    buckets: list[tuple[float, float]] = field(default_factory=list)
    sum: float = 0.0
    count: float = 0.0
    #: Exemplars keyed by the bucket's ``le``: ``(trace_id, value)``.
    exemplars: dict[float, tuple[str, float]] = field(default_factory=dict)

    def sorted_buckets(self) -> list[tuple[float, float]]:
        return sorted(self.buckets, key=lambda pair: pair[0])

    def quantile(self, q: float) -> float:
        return quantile_from_buckets(self.sorted_buckets(), q)


@dataclass
class MetricsSnapshot:
    """Everything one scrape said, in render-friendly shape."""

    #: Plain series (counters' ``_total`` kept verbatim, gauges as-is).
    samples: dict[str, float] = field(default_factory=dict)
    #: Histogram families keyed by base name (no ``_bucket`` suffix).
    histograms: dict[str, ParsedHistogram] = field(default_factory=dict)
    #: ``# TYPE`` declarations seen, name → type string.
    types: dict[str, str] = field(default_factory=dict)

    def value(self, name: str, default: float = 0.0) -> float:
        """A sample by exact name, accepting the ``_total`` spelling."""
        if name in self.samples:
            return self.samples[name]
        return self.samples.get(name + "_total", default)


def parse_prometheus(text: str) -> MetricsSnapshot:
    """Parse one exposition document; skips lines it cannot read."""
    snapshot = MetricsSnapshot()
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                snapshot.types[parts[2]] = parts[3]
            continue
        match = _SAMPLE.match(line)
        if match is None:
            continue
        name, labels_text, value_text, ex_labels, ex_value = match.groups()
        value = _number(value_text)
        if value is None:
            continue
        labels = {
            key: _unescape(raw)
            for key, raw in _LABEL.findall(labels_text or "")
        }
        if name.endswith("_bucket") and "le" in labels:
            base = name[: -len("_bucket")]
            hist = snapshot.histograms.setdefault(base, ParsedHistogram())
            le = _number(labels["le"])
            if le is None:
                continue
            hist.buckets.append((le, value))
            if ex_labels is not None:
                ex_val = _number(ex_value)
                exemplar_labels = {
                    key: _unescape(raw)
                    for key, raw in _LABEL.findall(ex_labels)
                }
                trace_id = exemplar_labels.get("trace_id")
                if trace_id is not None and ex_val is not None:
                    hist.exemplars[le] = (trace_id, ex_val)
            continue
        if name.endswith("_sum") and name[: -len("_sum")] in snapshot.histograms:
            snapshot.histograms[name[: -len("_sum")]].sum = value
            continue
        if (name.endswith("_count")
                and name[: -len("_count")] in snapshot.histograms):
            snapshot.histograms[name[: -len("_count")]].count = value
            continue
        snapshot.samples[name] = value
    return snapshot


def quantile_from_buckets(
    buckets: list[tuple[float, float]], q: float
) -> float:
    """Estimate the *q*-quantile from cumulative ``(le, count)`` buckets.

    Standard Prometheus ``histogram_quantile`` semantics: linear
    interpolation within the bucket that crosses the target rank, with
    the ``+Inf`` bucket collapsing to the highest finite bound (there is
    nothing defensible to interpolate toward past it).
    """
    if not buckets:
        return 0.0
    total = buckets[-1][1]
    if total <= 0:
        return 0.0
    target = q * total
    prev_le = 0.0
    prev_cum = 0.0
    for le, cum in buckets:
        if cum >= target:
            if math.isinf(le):
                return prev_le
            if cum == prev_cum:
                return le
            frac = (target - prev_cum) / (cum - prev_cum)
            return prev_le + frac * (le - prev_le)
        if not math.isinf(le):
            prev_le = le
        prev_cum = cum
    return prev_le
