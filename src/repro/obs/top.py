"""``repro top``: a one-screen live view of a serving process.

Polls a server's ``/metrics`` endpoint (no client library — one
:mod:`urllib` GET per interval through :mod:`repro.obs.promparse`) and
renders request rate, latency quantiles, admission-queue state, shed
rate, pool health, and the slowest recently-observed traces (read off
the latency histogram's OpenMetrics exemplars, so each slow bucket
names a ``trace_id`` you can go grep in the slow-query log).

Rates need two scrapes: the first frame shows ``-`` where a delta
would go.  ``--once`` renders a single frame from a single scrape —
that is what CI smoke-tests against a live server.
"""

from __future__ import annotations

import math
import sys
import time
import urllib.error
import urllib.request

from .promparse import MetricsSnapshot, parse_prometheus

__all__ = ["scrape", "render_top", "run_top"]

#: Histogram whose exemplars name the slow traces.
_LATENCY = "repro_serve_latency_s"
_QUEUE_WAIT = "repro_serve_queue_wait_s"

#: ANSI: clear screen + home, used between live frames.
_CLEAR = "\x1b[2J\x1b[H"


def scrape(url: str, timeout: float = 5.0) -> str:
    """Fetch one exposition document from *url* (http/https only)."""
    if not url.startswith(("http://", "https://")):
        raise ValueError(f"metrics url must be http(s), got {url!r}")
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8", errors="replace")


def _fmt_s(seconds: float) -> str:
    if seconds <= 0:
        return "0"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def _fmt_rate(value: float | None) -> str:
    return "-" if value is None else f"{value:.1f}/s"


def _delta_rate(
    current: MetricsSnapshot,
    previous: MetricsSnapshot | None,
    name: str,
    interval: float | None,
) -> float | None:
    if previous is None or not interval or interval <= 0:
        return None
    return max(0.0, current.value(name) - previous.value(name)) / interval


def _slow_traces(
    snapshot: MetricsSnapshot, limit: int = 5
) -> list[tuple[float, str, float]]:
    """The highest-bucket latency exemplars: ``(le, trace_id, value)``."""
    hist = snapshot.histograms.get(_LATENCY)
    if hist is None:
        return []
    rows = [
        (le if not math.isinf(le) else float("inf"), trace_id, value)
        for le, (trace_id, value) in hist.exemplars.items()
    ]
    rows.sort(key=lambda row: row[2], reverse=True)
    return rows[:limit]


def render_top(
    snapshot: MetricsSnapshot,
    previous: MetricsSnapshot | None = None,
    interval: float | None = None,
    url: str = "",
) -> str:
    """One frame: the whole serving picture in <25 terminal lines."""
    lines: list[str] = []
    title = "repro top"
    if url:
        title += f" — {url}"
    lines.append(title)
    lines.append("=" * max(24, len(title)))

    rps = _delta_rate(snapshot, previous, "repro_serve_requests", interval)
    shed_rate = _delta_rate(snapshot, previous, "repro_serve_shed", interval)
    served_ok = snapshot.value("repro_serve_ok")
    errors = snapshot.value("repro_serve_errors")
    budget = snapshot.value("repro_serve_budget_exceeded")
    lines.append(
        f"requests {snapshot.value('repro_serve_requests'):.0f} total"
        f"   rate {_fmt_rate(rps)}"
        f"   ok {served_ok:.0f}  errors {errors:.0f}"
        f"  budget-exceeded {budget:.0f}"
    )

    latency = snapshot.histograms.get(_LATENCY)
    if latency is not None and latency.count:
        lines.append(
            "latency"
            f"   p50 {_fmt_s(latency.quantile(0.50))}"
            f"   p95 {_fmt_s(latency.quantile(0.95))}"
            f"   p99 {_fmt_s(latency.quantile(0.99))}"
            f"   ({latency.count:.0f} observed)"
        )
    else:
        lines.append("latency   (no observations yet)")

    queue_wait = snapshot.histograms.get(_QUEUE_WAIT)
    queue_line = (
        f"queue     depth {snapshot.value('repro_serve_queue_depth'):.0f}"
        f"   inflight {snapshot.value('repro_serve_inflight'):.0f}"
        f"   shed {snapshot.value('repro_serve_shed'):.0f} total"
        f" ({_fmt_rate(shed_rate)})"
    )
    if queue_wait is not None and queue_wait.count:
        queue_line += f"   wait p95 {_fmt_s(queue_wait.quantile(0.95))}"
    lines.append(queue_line)

    draining = snapshot.value("repro_serve_draining")
    rebuilds = snapshot.value("repro_engine_pool_rebuilds")
    lines.append(
        f"pool      rebuilds {rebuilds:.0f}"
        f"   coalesce leads {snapshot.value('repro_serve_coalesce_leads'):.0f}"
        f" / waits {snapshot.value('repro_serve_coalesce_waits'):.0f}"
        f"   {'DRAINING' if draining else 'serving'}"
    )
    lines.append(
        f"slow      {snapshot.value('repro_serve_slow_queries'):.0f} over"
        " threshold"
    )

    slow = _slow_traces(snapshot)
    if slow:
        lines.append("")
        lines.append("top slow traces (latency exemplars)")
        for _, trace_id, value in slow:
            lines.append(f"  {_fmt_s(value):>8}  trace_id={trace_id}")
    return "\n".join(lines) + "\n"


def run_top(
    url: str,
    interval: float = 2.0,
    once: bool = False,
    out=None,
) -> int:
    """Scrape-render loop; ``once=True`` prints a single frame.

    Returns a process exit code: 1 when the very first scrape fails
    (nothing to show), 0 otherwise — a mid-loop scrape failure prints a
    warning frame and keeps polling, because servers restart.
    """
    out = out if out is not None else sys.stdout
    previous: MetricsSnapshot | None = None
    first = True
    while True:
        try:
            text = scrape(url)
        except (urllib.error.URLError, OSError, ValueError) as error:
            if first:
                print(f"repro top: cannot scrape {url}: {error}",
                      file=sys.stderr)
                return 1
            print(f"{_CLEAR}repro top — {url}\n(scrape failed: {error};"
                  " retrying)", file=out)
            time.sleep(interval)
            continue
        snapshot = parse_prometheus(text)
        frame = render_top(snapshot, previous, None if first else interval,
                           url=url)
        if once:
            out.write(frame)
            return 0
        out.write(_CLEAR + frame)
        out.flush()
        previous = snapshot
        first = False
        time.sleep(interval)
