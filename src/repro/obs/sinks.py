"""Sinks: turning traces and counters into tables, trees, and records.

Three consumers are served:

* **tests** — :class:`MemorySink` collects export records in memory;
* **humans** — :func:`render_table` (the single table renderer shared
  with ``benchmarks/conftest.py``), :func:`format_span_tree` and
  :func:`format_counters` produce the ``--stats`` report;
* **trajectory files** — JSON-lines writing lives in
  :mod:`repro.obs.export`.

``format_span_tree`` aggregates sibling spans that share a name (showing
call counts and total time) so hot loops render as one line instead of
thousands.
"""

from __future__ import annotations

from typing import Any, Sequence

from .metrics import Registry
from .trace import SpanRecord, Trace

__all__ = [
    "render_table",
    "format_span_tree",
    "format_counters",
    "MemorySink",
]


def render_table(title: str, header: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """A fixed-width text table; tolerates an empty row list.

    This is the one table renderer in the project — the benchmark
    reporting helper delegates here.  With no rows the header is still
    printed, followed by ``(no rows)``.
    """
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows))
        if rows
        else len(str(header[i]))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    out = [f"\n=== {title} ===", line, "-" * len(line)]
    if not rows:
        out.append("(no rows)")
    for row in rows:
        out.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def _format_attrs(attrs: dict[str, Any]) -> str:
    if not attrs:
        return ""
    body = ", ".join(f"{k}={v}" for k, v in attrs.items())
    return f" [{body}]"


def _merge_siblings(records: Sequence[SpanRecord]) -> list[tuple[SpanRecord, int, float]]:
    """Group same-named siblings: (exemplar, call count, total seconds).

    The exemplar keeps the first occurrence's attributes; children of all
    occurrences are concatenated so aggregation recurses naturally.
    """
    order: list[str] = []
    groups: dict[str, list[SpanRecord]] = {}
    for record in records:
        if record.name not in groups:
            order.append(record.name)
            groups[record.name] = []
        groups[record.name].append(record)
    merged = []
    for name in order:
        members = groups[name]
        exemplar = SpanRecord(
            name=name,
            attrs=dict(members[0].attrs),
            children=[c for m in members for c in m.children],
            start_s=members[0].start_s,
            duration_s=members[0].duration_s,
            error=next((m.error for m in members if m.error), None),
        )
        merged.append((exemplar, len(members), sum(m.duration_s for m in members)))
    return merged


def format_span_tree(trace: Trace) -> str:
    """Human-readable span tree with per-name aggregation at each level."""
    lines = [f"trace {trace.name!r}: {trace.span_count()} spans, "
             f"depth {trace.depth()}"]
    if trace.dropped_spans:
        lines.append(f"  ({trace.dropped_spans} spans over the cap were dropped)")

    def walk(records: Sequence[SpanRecord], indent: int) -> None:
        for exemplar, calls, total in _merge_siblings(records):
            suffix = f" x{calls}" if calls > 1 else ""
            error = f" !{exemplar.error}" if exemplar.error else ""
            lines.append(
                f"{'  ' * indent}- {exemplar.name}{suffix}  "
                f"{total * 1000:.3f} ms{_format_attrs(exemplar.attrs)}{error}"
            )
            walk(exemplar.children, indent + 1)

    walk(trace.roots, 1)
    return "\n".join(lines)


def format_counters(registry: Registry, skip_empty: bool = True) -> str:
    """The counter/gauge/histogram summary table for ``--stats`` output.

    Histograms render as a one-line distribution summary
    (``n=… p50=… p95=… max=…``) in the value column.
    """
    rows = []
    for name, metric in registry.items():
        if metric.kind == "histogram":
            if skip_empty and metric.count == 0:
                continue
            value = _histogram_cell(metric)
        else:
            value = metric.value
            if skip_empty and (value is None or value == 0):
                continue
        rows.append([name, metric.kind, value, metric.description])
    return render_table("counters", ["metric", "kind", "value", "description"], rows)


def _histogram_cell(metric) -> str:
    summary = metric.summary()

    def fmt(x):
        return "-" if x is None else f"{x:.4g}"

    return (
        f"n={summary['count']} p50={fmt(summary['p50'])} "
        f"p95={fmt(summary['p95'])} max={fmt(summary['max'])}"
    )


class MemorySink:
    """Collects export records in memory; the sink used by tests."""

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def write(self, record: dict[str, Any]) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)
