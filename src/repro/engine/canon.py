"""Canonical structural normal form and content hashes for formula ASTs.

Two queries that differ only in bound-variable names, operand order of
commutative connectives, or the surface spelling of their polynomial
atoms describe the *same query shape* — and QE/CAD compilation, the
exponential part of the pipeline, depends only on that shape.  This
module computes a canonical representative so shapes can share one cache
entry:

* **atoms** are rewritten to ``p OP 0`` with ``p`` a polynomial in
  graded-lex monomial order and primitive integer coefficients
  (inequalities are scaled by positive rationals only; equations also fix
  the sign of the leading coefficient), constant atoms fold to
  ``TRUE``/``FALSE``;
* **connectives** are brought to negation normal form, flattened,
  deduplicated, and their operands sorted by the printed form of the
  (already canonical) operands;
* **bound variables** are alpha-renamed bottom-up to ``_q0, _q1, ...``
  so alpha-variants coincide; renaming is capture-avoiding against free
  variables.

Every step preserves semantics exactly, so a canonical form may be
compiled *in place of* the original formula.  :func:`content_hash`
derives the plan-cache key from the canonical printed form (the printer
round-trips through the parser, so the same string also serves as the
spill representation — see :mod:`repro.engine.cache`).
"""

from __future__ import annotations

import hashlib
from fractions import Fraction
from functools import reduce
from math import gcd
from typing import Sequence

from ..logic.formulas import (
    And,
    Compare,
    Exists,
    ExistsAdom,
    FALSE,
    FalseFormula,
    Forall,
    ForallAdom,
    Formula,
    Not,
    Or,
    RelAtom,
    TRUE,
    TrueFormula,
    conjunction,
    disjunction,
    walk_ast,
)
from ..logic.normalform import to_nnf
from ..logic.printer import formula_to_str
from ..logic.substitution import substitute
from ..logic.terms import Add, Const, Mul, Neg, Pow, Term, Var, ZERO
from ..realalg.polynomial import Polynomial, term_to_polynomial
from .. import guard

__all__ = [
    "BOUND_PREFIX",
    "canonical_term",
    "canonical_formula",
    "canonical_text",
    "content_hash",
]

#: Prefix of canonical bound-variable names (parseable identifiers).
BOUND_PREFIX = "_q"

_QUANTIFIERS = (Exists, Forall, ExistsAdom, ForallAdom)


def _monomial_key(mono: tuple[int, ...]) -> tuple:
    """Graded-lex order: higher total degree first, then lex on exponents."""
    return (-sum(mono), tuple(-e for e in mono))


def _polynomial_to_term(poly: Polynomial) -> Term:
    """Rebuild a term from *poly* with monomials in graded-lex order."""
    variables = poly.variables
    parts: list[Term] = []
    for mono in sorted(poly.coeffs, key=_monomial_key):
        coeff = poly.coeffs[mono]
        factors: list[Term] = []
        for var, exponent in zip(variables, mono):
            if exponent == 1:
                factors.append(Var(var))
            elif exponent > 1:
                factors.append(Pow(Var(var), exponent))
        if not factors:
            parts.append(Const(coeff))
        elif coeff == 1 and len(factors) == 1:
            parts.append(factors[0])
        elif coeff == 1:
            parts.append(Mul(tuple(factors)))
        else:
            parts.append(Mul((Const(coeff), *factors)))
    if not parts:
        return ZERO
    if len(parts) == 1:
        return parts[0]
    return Add(tuple(parts))


def canonical_term(term: Term) -> Term:
    """The polynomial normal form of *term*.

    Flattens and sorts sums/products, folds constants, and expands powers
    of compound bases, so e.g. ``x*x`` and ``x^2`` coincide.
    """
    poly = term_to_polynomial(term)
    used = tuple(sorted(poly.used_variables()))
    return _polynomial_to_term(poly.with_variables(used))


def _scale_primitive(poly: Polynomial) -> Polynomial:
    """Scale by the positive rational making all coefficients primitive ints."""
    denominators = [c.denominator for c in poly.coeffs.values()]
    numerators = [abs(c.numerator) for c in poly.coeffs.values()]
    denom_lcm = reduce(lambda a, b: a * b // gcd(a, b), denominators, 1)
    num_gcd = reduce(gcd, numerators, 0)
    if num_gcd == 0:
        return poly
    return poly * Fraction(denom_lcm, num_gcd)


def _canonical_compare(atom: Compare) -> Formula:
    """Normalise ``lhs OP rhs`` to ``p OP 0`` (or fold it to TRUE/FALSE)."""
    diff = term_to_polynomial(Add((atom.lhs, Neg(atom.rhs))))
    op = atom.op
    if op in (">", ">="):
        diff = -diff
        op = "<" if op == ">" else "<="
    if diff.is_constant():
        value = diff.constant_value()
        holds = {
            "<": value < 0, "<=": value <= 0,
            "=": value == 0, "!=": value != 0,
        }[op]
        return TRUE if holds else FALSE
    used = tuple(sorted(diff.used_variables()))
    diff = _scale_primitive(diff.with_variables(used))
    if op in ("=", "!="):
        leading = diff.coeffs[min(diff.coeffs, key=_monomial_key)]
        if leading < 0:
            diff = -diff
    return Compare(op, _polynomial_to_term(diff), ZERO)


def _sort_key(formula: Formula) -> tuple[str, str]:
    """Deterministic operand order: atoms before connectives, then text.

    Operands are already canonical (bound variables included), so the
    printed form is a faithful, alpha-invariant structural key.
    """
    return (type(formula).__name__, formula_to_str(formula))


def _bound_names(formula: Formula) -> set[str]:
    return {
        node.var for node in walk_ast(formula)
        if isinstance(node, _QUANTIFIERS)
    }


def _canon(formula: Formula) -> Formula:
    guard.checkpoint()
    if isinstance(formula, (TrueFormula, FalseFormula)):
        return formula
    if isinstance(formula, Compare):
        return _canonical_compare(formula)
    if isinstance(formula, RelAtom):
        return RelAtom(formula.name, tuple(canonical_term(a) for a in formula.args))
    if isinstance(formula, Not):
        # NNF leaves Not only over relation atoms.
        return Not(_canon(formula.arg))
    if isinstance(formula, (And, Or)):
        args = [_canon(a) for a in formula.args]
        combine = conjunction if isinstance(formula, And) else disjunction
        combined = combine(*args)
        if not isinstance(combined, (And, Or)):
            return combined
        unique = sorted(set(combined.args), key=_sort_key)
        if len(unique) == 1:
            return unique[0]
        return type(combined)(tuple(unique))
    if isinstance(formula, _QUANTIFIERS):
        body = _canon(formula.body)
        if (isinstance(formula, (Exists, Forall))
                and formula.var not in body.free_variables()):
            # Vacuous *natural* quantifier: the reals are non-empty, so it
            # is a no-op.  (Vacuous active-domain quantifiers are kept:
            # over an empty active domain they are not.)
            return body
        bound = _bound_names(body)
        avoid = (body.free_variables() - {formula.var}) | bound
        index = len(bound)
        name = f"{BOUND_PREFIX}{index}"
        while name in avoid:
            index += 1
            name = f"{BOUND_PREFIX}{index}"
        if name != formula.var:
            # Renaming changes monomial and operand orderings that were
            # computed with the old name, so re-canonicalize the body.
            # Idempotent for already-canonical inner structure (the inner
            # name choices are deterministic), so this converges.
            body = _canon(substitute(body, {formula.var: Var(name)}))
        return type(formula)(name, body)
    raise TypeError(f"unknown formula node {type(formula).__name__}")


def canonical_formula(formula: Formula) -> Formula:
    """A canonical, semantically equivalent representative of *formula*.

    Alpha-variants, commutative reorderings, and polynomially equal atom
    spellings all map to the same AST (and therefore the same
    :func:`content_hash`).
    """
    return _canon(to_nnf(formula))


def canonical_text(formula: Formula) -> str:
    """The printed canonical form — a stable, re-parseable serialization."""
    return formula_to_str(canonical_formula(formula))


def content_hash(
    formula: Formula,
    variables: Sequence[str] = (),
    kind: str = "volume",
) -> str:
    """Content-addressed cache key for a query shape.

    The key covers the canonical formula text, the evaluation variable
    order (it fixes the dimension order of compiled cells), and the plan
    *kind* (a volume plan and a decision plan for the same formula are
    different artifacts).
    """
    payload = "\x00".join((kind, ",".join(variables), canonical_text(formula)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
