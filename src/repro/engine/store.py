"""A process-safe, content-addressed shared plan store (SQLite-backed).

The batch executor gives every worker *process* its own in-memory
:class:`~repro.engine.cache.PlanCache`, so without coordination N workers
recompile the same content-hashed plan up to N times.  This module is the
coordination point: one SQLite file (WAL mode, so concurrent readers
never block) holding ``repro.engine.plan/v1``-compatible records keyed by
:func:`~repro.engine.canon.content_hash` digests, shared by every process
— and, over a shared filesystem, every machine — that evaluates the same
manifest.

Three tables do the work:

``plans``
    ``key -> record`` — the published plan, serialized exactly like a
    :meth:`PlanCache.spill <repro.engine.cache.PlanCache.spill>` line, so
    spill files and stores are mutually convertible.
``claims``
    advisory **compile claims**: before compiling a missing key, a process
    claims it (``BEGIN IMMEDIATE`` write transaction), compiles outside
    any lock, and publishes exactly once.  A process that finds a live
    claim *waits* for the winner's record instead of duplicating the
    compile; claims abandoned by dead owners (same-host pid probe, or a
    lease timeout for remote owners) are stolen.
``stats``
    monotonic cross-process counters (hits / misses / publishes /
    compiles / races / stale claims) plus a mergeable
    ``engine.store.fetch_s`` histogram, so the dedup win survives the
    worker pool and lands in the parent's registry and Prometheus output.

Budget accounting: every store round trip passes a
:func:`repro.guard.checkpoint` (deadlines cancel store waits) and charges
one ``store_ios`` unit against the active budget, so a task's budget
covers its store traffic, not just its compute.

:class:`StoreBackedCache` is the read-through / write-back adapter the
executor threads into :func:`repro.engine.prepare`: in-memory misses fall
through to the store before compiling, and fresh compiles are published
back exactly once — losers of a compile race adopt the winner's record.
"""

from __future__ import annotations

import json
import os
import socket
import sqlite3
import threading
import time
from typing import Any, Callable, TYPE_CHECKING

from .. import guard, obs
from .._errors import ReproError
from ..obs.histogram import Histogram
from .cache import PlanCache, SPILL_SCHEMA

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .prepared import PreparedQuery

__all__ = ["PlanStore", "StoreBackedCache", "STORE_SCHEMA"]

#: Store schema tag kept in the ``meta`` table; bump on incompatible changes.
STORE_SCHEMA = "repro.engine.store/v1"

#: ``stats`` table counter names (all monotonic).
STAT_NAMES = (
    "hits", "misses", "publishes", "compiles", "races", "stale_claims",
)

#: ``stats`` row holding the serialized cross-process fetch histogram.
_FETCH_HIST_ROW = "fetch_s"


class PlanStore:
    """One SQLite plan store; safe to open from many processes at once.

    ``lease_s`` bounds how long a compile claim from a *remote* host is
    honoured after its owner stops making progress; claims from this host
    are additionally probed by pid, so a crashed local worker's claim is
    stolen on the next lookup instead of after the lease.

    Transient ``database is locked`` errors (SQLite's busy timeout ran
    out under heavy cross-process write contention) are absorbed by a
    small bounded in-place retry (``lock_retries`` attempts,
    ``lock_retry_s`` apart, counted as ``engine.store.lock_retries``)
    instead of surfacing as a task failure — they are contention, not
    corruption.  ``clock`` injects the wall clock used for claim-lease
    arithmetic; tests pass a fake to make staleness deterministic.
    """

    def __init__(
        self,
        path: str,
        *,
        lease_s: float = 120.0,
        poll_s: float = 0.02,
        busy_timeout_s: float = 30.0,
        lock_retries: int = 8,
        lock_retry_s: float = 0.05,
        clock: Callable[[], float] = time.time,
    ):
        self.path = str(path)
        self.lease_s = lease_s
        self.poll_s = poll_s
        self.lock_retries = lock_retries
        self.lock_retry_s = lock_retry_s
        self._clock = clock
        self._host = socket.gethostname()
        self._lock = threading.RLock()
        #: Process-local fetch timings not yet merged into ``stats``.
        self._pending_fetch = Histogram("engine.store.fetch_s")
        self._con = sqlite3.connect(
            self.path, timeout=busy_timeout_s, isolation_level=None,
            check_same_thread=False,
        )
        self._con.execute("PRAGMA journal_mode=WAL")
        self._con.execute("PRAGMA synchronous=NORMAL")
        self._init_schema()

    # -- lifecycle ---------------------------------------------------------
    def _init_schema(self) -> None:
        with self._write():
            self._con.execute(
                "CREATE TABLE IF NOT EXISTS meta"
                " (name TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            self._con.execute(
                "CREATE TABLE IF NOT EXISTS plans"
                " (key TEXT PRIMARY KEY, record TEXT NOT NULL)"
            )
            self._con.execute(
                "CREATE TABLE IF NOT EXISTS claims"
                " (key TEXT PRIMARY KEY, pid INTEGER NOT NULL,"
                "  host TEXT NOT NULL, acquired_s REAL NOT NULL)"
            )
            self._con.execute(
                "CREATE TABLE IF NOT EXISTS stats"
                " (name TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            row = self._con.execute(
                "SELECT value FROM meta WHERE name = 'schema'"
            ).fetchone()
            if row is None:
                self._con.execute(
                    "INSERT INTO meta (name, value) VALUES ('schema', ?)",
                    (STORE_SCHEMA,),
                )
            elif row[0] != STORE_SCHEMA:
                raise ReproError(
                    f"{self.path}: unknown plan-store schema {row[0]!r} "
                    f"(expected {STORE_SCHEMA!r})"
                )

    def close(self) -> None:
        """Flush pending metrics and close the connection."""
        self.flush_metrics()
        self._con.close()

    def __enter__(self) -> "PlanStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _write(self):
        """An ``IMMEDIATE`` write transaction (advisory cross-process lock)."""
        return _ImmediateTxn(self._con, self._lock, self._locked_retry)

    def _locked_retry(self, operation: Callable[[], Any]) -> Any:
        """Run *operation*, absorbing transient ``database is locked`` errors.

        SQLite raises ``OperationalError: database is locked`` when the
        busy timeout runs out while another process holds the write lock —
        transient contention, not corruption, so a bounded retry is the
        right response (the satellite of the executor's broader retry
        taxonomy: transient errors retry, deterministic ones don't).
        Anything else, and anything still failing after ``lock_retries``
        attempts, propagates.
        """
        attempt = 0
        while True:
            try:
                return operation()
            except sqlite3.OperationalError as error:
                if "locked" not in str(error).lower():
                    raise
                if attempt >= self.lock_retries:
                    raise
                attempt += 1
                obs.add("engine.store.lock_retries")
                time.sleep(self.lock_retry_s)

    # -- introspection -----------------------------------------------------
    def keys(self) -> list[str]:
        with self._lock:
            rows = self._con.execute("SELECT key FROM plans ORDER BY key")
            return [key for (key,) in rows]

    def __len__(self) -> int:
        with self._lock:
            (n,) = self._con.execute("SELECT COUNT(*) FROM plans").fetchone()
        return n

    def __contains__(self, key: str) -> bool:
        with self._lock:
            row = self._con.execute(
                "SELECT 1 FROM plans WHERE key = ?", (key,)
            ).fetchone()
        return row is not None

    def stats_snapshot(self) -> dict[str, int]:
        """The cross-process counters (zero-filled for never-bumped names)."""
        with self._lock:
            rows = dict(
                self._con.execute(
                    "SELECT name, value FROM stats WHERE name != ?",
                    (_FETCH_HIST_ROW,),
                )
            )
        return {name: int(rows.get(name, 0)) for name in STAT_NAMES}

    def fetch_hist_snapshot(self) -> dict[str, Any]:
        """The merged cross-process ``fetch_s`` histogram (as a dict)."""
        self.flush_metrics()
        with self._lock:
            row = self._con.execute(
                "SELECT value FROM stats WHERE name = ?", (_FETCH_HIST_ROW,)
            ).fetchone()
        if row is None:
            return Histogram("engine.store.fetch_s").as_dict()
        return json.loads(row[0])

    # -- records -----------------------------------------------------------
    def _decode(self, text: str) -> "PreparedQuery":
        from .prepared import PlanProvenance, PreparedQuery

        record = json.loads(text)
        if record.get("schema") != SPILL_SCHEMA:
            raise ReproError(
                f"{self.path}: plan record with unknown schema "
                f"{record.get('schema')!r} (expected {SPILL_SCHEMA!r})"
            )
        plan = PreparedQuery.from_record(record)
        provenance = plan.provenance
        plan.provenance = PlanProvenance(
            provenance.stages, provenance.compile_s, provenance.budget, "store"
        )
        return plan

    def _read(self, key: str) -> str | None:
        with self._lock:
            row = self._locked_retry(
                lambda: self._con.execute(
                    "SELECT record FROM plans WHERE key = ?", (key,)
                ).fetchone()
            )
        return None if row is None else row[0]

    def fetch(self, key: str) -> "PreparedQuery | None":
        """Look *key* up in the store; ``None`` when nothing is published."""
        guard.checkpoint()
        guard.charge("store_ios")
        start = time.perf_counter()
        text = self._read(key)
        if text is None:
            self._bump(misses=1)
            return None
        plan = self._decode(text)
        self._pending_fetch.observe(time.perf_counter() - start)
        self._bump(hits=1)
        return plan

    def publish(self, plan: "PreparedQuery") -> tuple["PreparedQuery", bool]:
        """Publish *plan* exactly once; returns ``(canonical plan, won)``.

        The first publication of a key wins.  A caller that loses the race
        gets back the winner's record (decoded), so every process ends up
        sharing byte-identical compiled artifacts for the key.  The
        caller's compile claim on the key, if any, is released atomically
        with the publication.
        """
        guard.checkpoint()
        guard.charge("store_ios")
        record = plan.to_record()
        record["schema"] = SPILL_SCHEMA
        text = json.dumps(record, sort_keys=True)
        with self._write():
            cursor = self._con.execute(
                "INSERT OR IGNORE INTO plans (key, record) VALUES (?, ?)",
                (plan.key, text),
            )
            published = cursor.rowcount == 1
            self._con.execute(
                "DELETE FROM claims WHERE key = ? AND pid = ? AND host = ?",
                (plan.key, os.getpid(), self._host),
            )
            self._bump_locked(publishes=1 if published else 0,
                              races=0 if published else 1)
        if published:
            return plan, True
        return self._decode(self._read(plan.key)), False

    def get_or_compile(
        self, key: str, factory: Callable[[], "PreparedQuery"]
    ) -> tuple["PreparedQuery", str]:
        """Fetch *key*, or compile-and-publish it exactly once store-wide.

        Returns ``(plan, outcome)`` with outcome one of ``"store_hit"``
        (already published), ``"miss"`` (this process claimed the key,
        ran *factory*, and published), or ``"race"`` (another process
        held the claim; we waited and adopted its record).  The wait loop
        passes budget checkpoints, so a task deadline cancels a store
        wait like any other long-running stage.
        """
        plan = self.fetch(key)
        if plan is not None:
            return plan, "store_hit"
        while True:
            claim = self._claim(key)
            if claim == "published":
                # The winner published between our fetch and the claim.
                return self.fetch(key), "store_hit"
            if claim == "ours":
                try:
                    plan = factory()
                except BaseException:
                    self._release(key)
                    raise
                self._bump(compiles=1)
                plan, _ = self.publish(plan)
                return plan, "miss"
            plan = self._await_publication(key)
            if plan is not None:
                self._bump(races=1)
                return plan, "race"
            # The claim vanished without a publication (owner died or
            # its compile failed) — contend for the claim again.

    # -- claims ------------------------------------------------------------
    def _claim(self, key: str) -> str:
        """Try to claim *key*: ``"ours"`` / ``"theirs"`` / ``"published"``."""
        guard.checkpoint()
        guard.charge("store_ios")
        now = self._clock()
        with self._write():
            row = self._con.execute(
                "SELECT 1 FROM plans WHERE key = ?", (key,)
            ).fetchone()
            if row is not None:
                return "published"
            claim = self._con.execute(
                "SELECT pid, host, acquired_s FROM claims WHERE key = ?",
                (key,),
            ).fetchone()
            if claim is not None:
                if not self._stale(claim, now):
                    return "theirs"
                self._con.execute("DELETE FROM claims WHERE key = ?", (key,))
                self._bump_locked(stale_claims=1)
            self._con.execute(
                "INSERT OR REPLACE INTO claims (key, pid, host, acquired_s)"
                " VALUES (?, ?, ?, ?)",
                (key, os.getpid(), self._host, now),
            )
        return "ours"

    def _release(self, key: str) -> None:
        """Drop this process's claim on *key* (compile failed or aborted)."""
        with self._write():
            self._con.execute(
                "DELETE FROM claims WHERE key = ? AND pid = ? AND host = ?",
                (key, os.getpid(), self._host),
            )

    def _stale(self, claim: tuple[int, str, float], now: float) -> bool:
        pid, host, acquired_s = claim
        if host == self._host:
            try:
                os.kill(int(pid), 0)
            except ProcessLookupError:
                return True
            except PermissionError:  # pragma: no cover - alive, not ours
                pass
        return now - float(acquired_s) > self.lease_s

    def _await_publication(self, key: str) -> "PreparedQuery | None":
        """Wait for another process's compile; ``None`` if its claim died."""
        while True:
            guard.checkpoint()
            guard.charge("store_ios")
            start = time.perf_counter()
            text = self._read(key)
            if text is not None:
                plan = self._decode(text)
                self._pending_fetch.observe(time.perf_counter() - start)
                return plan
            with self._lock:
                claim = self._con.execute(
                    "SELECT pid, host, acquired_s FROM claims WHERE key = ?",
                    (key,),
                ).fetchone()
            if claim is None or self._stale(claim, self._clock()):
                return None
            time.sleep(self.poll_s)

    # -- cross-process metrics --------------------------------------------
    def _bump_locked(self, **deltas: int) -> None:
        """Apply counter deltas inside an already-open write transaction."""
        for name, delta in deltas.items():
            if not delta:
                continue
            self._con.execute(
                "INSERT INTO stats (name, value) VALUES (?, ?)"
                " ON CONFLICT(name) DO UPDATE SET"
                " value = CAST(value AS INTEGER) + excluded.value",
                (name, delta),
            )

    def _bump(self, **deltas: int) -> None:
        if any(deltas.values()):
            with self._write():
                self._bump_locked(**deltas)

    def flush_metrics(self) -> None:
        """Merge pending fetch timings into the shared histogram row.

        The merge is exact and order-independent (fixed bucket layout, see
        :mod:`repro.obs.histogram`), so any number of processes flushing
        concurrently converge to the same totals.
        """
        if not self._pending_fetch.count:
            return
        pending, self._pending_fetch = (
            self._pending_fetch, Histogram("engine.store.fetch_s")
        )
        with self._write():
            row = self._con.execute(
                "SELECT value FROM stats WHERE name = ?", (_FETCH_HIST_ROW,)
            ).fetchone()
            merged = (
                Histogram.from_dict("engine.store.fetch_s", json.loads(row[0]))
                if row is not None
                else Histogram("engine.store.fetch_s")
            )
            merged.merge(pending)
            self._con.execute(
                "INSERT OR REPLACE INTO stats (name, value) VALUES (?, ?)",
                (_FETCH_HIST_ROW, json.dumps(merged.as_dict())),
            )

    def __repr__(self) -> str:
        return f"PlanStore({self.path!r}, plans={len(self)})"


class _ImmediateTxn:
    """``BEGIN IMMEDIATE`` under the instance lock; commit/rollback on exit.

    Acquiring the transaction goes through the store's bounded
    lock-contention retry: ``BEGIN IMMEDIATE`` is where cross-process
    write contention surfaces as ``database is locked``.
    """

    __slots__ = ("_con", "_lock", "_retry")

    def __init__(
        self,
        con: sqlite3.Connection,
        lock: threading.RLock,
        retry: Callable[[Callable[[], Any]], Any],
    ):
        self._con = con
        self._lock = lock
        self._retry = retry

    def __enter__(self) -> sqlite3.Connection:
        self._lock.acquire()
        try:
            self._retry(lambda: self._con.execute("BEGIN IMMEDIATE"))
        except BaseException:
            self._lock.release()
            raise
        return self._con

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        try:
            if exc_type is None:
                self._con.execute("COMMIT")
            else:
                self._con.execute("ROLLBACK")
        finally:
            self._lock.release()


class StoreBackedCache:
    """Read-through / write-back adapter: a `PlanCache` over a `PlanStore`.

    Drop-in for the ``cache=`` argument of :func:`repro.engine.prepare`:
    lookups try the in-memory cache first (``engine.cache.*`` counters as
    usual), fall through to the shared store, and only then compile —
    under the store's claim protocol, so each content hash is compiled at
    most once across every process sharing the store file.
    """

    __slots__ = ("cache", "store", "outcomes")

    def __init__(self, store: PlanStore, cache: PlanCache | None = None):
        self.store = store
        self.cache = cache if cache is not None else PlanCache()
        #: Monotonic tally of ``get_or_compile`` outcomes in this process.
        self.outcomes = {"hits": 0, "store_hits": 0, "misses": 0, "races": 0}

    def get(self, key: str) -> "PreparedQuery | None":
        plan = self.cache.get(key)
        if plan is not None:
            return plan
        plan = self.store.fetch(key)
        if plan is None:
            return None
        return self.cache.put(plan)

    def put(self, plan: "PreparedQuery") -> "PreparedQuery":
        plan, _ = self.store.publish(plan)
        return self.cache.put(plan)

    def get_or_compile(
        self, key: str, factory: Callable[[], "PreparedQuery"]
    ) -> "PreparedQuery":
        plan = self.cache.get(key)
        if plan is not None:
            self.outcomes["hits"] += 1
            return plan
        try:
            plan, outcome = self.store.get_or_compile(key, factory)
        finally:
            self.store.flush_metrics()
        self.outcomes["store_hits" if outcome == "store_hit" else
                      "misses" if outcome == "miss" else "races"] += 1
        return self.cache.put(plan)

    def __contains__(self, key: str) -> bool:
        return key in self.cache or key in self.store

    def __len__(self) -> int:
        return len(self.store)
